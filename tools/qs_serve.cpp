// qs_serve — the fault-tolerant solver daemon.
//
//   qs_serve --socket /tmp/qs.sock --workers 2 --cache-dir /var/cache/qs
//   qs_serve --selfcheck          # in-process round trip, exits 0/1
//
// Listens on an AF_UNIX socket for length-prefixed solve requests (see
// src/service/protocol.hpp), runs them through the admission-controlled
// SolverService — bounded queue, per-request deadlines, batches coalesced
// by (nu, p) through the panel family solver, crash-safe scenario cache —
// and replies with structured status codes.  SIGINT/SIGTERM drain
// gracefully: the listener closes, queued requests are answered
// SHUTTING_DOWN, in-flight batches cancel at the next iteration boundary,
// and the final service statistics are printed (and exported with
// --metrics).
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <iostream>
#include <thread>

#include "quasispecies.hpp"
#include "support/args.hpp"

namespace {

void print_usage() {
  std::cout <<
      "qs_serve — solver service daemon (AF_UNIX)\n\n"
      "  --socket PATH       listening socket path (default /tmp/qs_serve.sock)\n"
      "  --workers N         worker threads popping batches (default 1;\n"
      "                      one worker keeps batches maximally wide)\n"
      "  --queue-capacity N  admission bound; beyond it requests shed with\n"
      "                      REJECTED_OVERLOAD (default 64)\n"
      "  --max-batch M       panel width cap per coalesced batch (default 8)\n"
      "  --cache-entries N   in-memory LRU entries (default 256)\n"
      "  --cache-dir DIR     durable scenario cache directory (atomic +\n"
      "                      checksummed entries; corrupt files are\n"
      "                      quarantined as .bad and recomputed); omit for a\n"
      "                      memory-only cache\n"
      "  --io-timeout-ms T   per-chunk socket read/write timeout (default 5000)\n"
      "  --metrics FILE      write the service metrics snapshot on shutdown\n"
      "  --trace-json FILE   write a Chrome trace-event JSON on shutdown: every\n"
      "                      request span (started at the client's send time),\n"
      "                      queue/batch span, and solver iteration span,\n"
      "                      sharing the client's trace id\n"
      "  --selfcheck         start on a private socket, run a client round\n"
      "                      trip (solve, cached re-solve, ping), stop, and\n"
      "                      exit 0 on success — a smoke test of the full\n"
      "                      daemon path without an external client\n"
      "  --help              this text\n";
}

struct CliError {
  std::string message;
};

/// Same --trace-json/--metrics idiom as qs_solve: spans only exist in
/// QS_ENABLE_TRACING builds, so a --trace-json request against a span-less
/// daemon gets a loud warning instead of a silently empty trace.
void setup_observability(const qs::ArgParser& args) {
  if (!args.has("trace-json") && !args.has("metrics")) return;
  if (qs::obs::compiled_in()) {
    qs::obs::set_enabled(true);
  } else if (args.has("trace-json")) {
    std::cerr << "warning: this binary was built without QS_ENABLE_TRACING; "
                 "the trace will contain no span events (configure with "
                 "--preset trace, or -DQS_ENABLE_TRACING=ON)\n";
  }
}

void export_observability(const qs::ArgParser& args) {
  if (args.has("trace-json")) {
    const std::string path = args.get("trace-json", "");
    if (qs::obs::write_chrome_trace_file(path)) {
      std::cout << "trace written to " << path
                << " (load in ui.perfetto.dev)\n";
    } else {
      std::cerr << "warning: could not write trace to " << path << "\n";
    }
  }
  if (args.has("metrics") &&
      !qs::obs::write_metrics_file(args.get("metrics", ""))) {
    std::cerr << "warning: could not write metrics to "
              << args.get("metrics", "") << "\n";
  }
}

qs::service::SocketServerConfig parse_config(const qs::ArgParser& args) {
  qs::service::SocketServerConfig config;
  config.socket_path = args.get("socket", "/tmp/qs_serve.sock");
  config.io_timeout_ms =
      static_cast<unsigned>(args.get_long("io-timeout-ms", 5000, 10, 3600000));
  config.service.workers =
      static_cast<std::size_t>(args.get_long("workers", 1, 1, 64));
  config.service.queue_capacity =
      static_cast<std::size_t>(args.get_long("queue-capacity", 64, 1, 1000000));
  config.service.max_batch =
      static_cast<std::size_t>(args.get_long("max-batch", 8, 1, 64));
  config.service.cache_entries =
      static_cast<std::size_t>(args.get_long("cache-entries", 256, 1, 10000000));
  if (args.has("cache-dir")) {
    config.service.cache_dir = args.get("cache-dir", "");
  }
  return config;
}

void print_stats(const qs::service::SocketServer& server,
                 qs::service::SolverService& service) {
  const auto queue = service.queue_stats();
  const auto cache = service.cache_stats();
  std::cout << "served " << service.completed() << " request(s) over "
            << server.connections() << " connection(s)\n"
            << "  admission: " << queue.accepted << " accepted, "
            << queue.rejected_overload << " shed (overload), "
            << queue.rejected_closed << " refused (drain), " << queue.expired
            << " expired in queue\n"
            << "  batches:   " << queue.batches << " (" << queue.popped
            << " request(s) popped)\n"
            << "  cache:     " << cache.hits << " hit(s), " << cache.misses
            << " miss(es), " << cache.quarantined << " quarantined, "
            << cache.collisions << " key collision(s), "
            << cache.store_failures << " store failure(s)\n";
}

int serve(const qs::ArgParser& args) {
  setup_observability(args);
  qs::service::SocketServer server(parse_config(args));
  server.start();
  std::cout << "qs_serve listening on " << server.socket_path().string()
            << " (SIGINT/SIGTERM to drain)\n";

  // The handler only sets a flag; this thread owns the actual drain so the
  // daemon never dies mid-batch or mid-cache-write.
  qs::install_shutdown_handlers();
  while (!qs::shutdown_requested() && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (qs::shutdown_requested()) {
    std::cout << "\nsignal "
              << (qs::shutdown_signal() == SIGTERM ? "SIGTERM" : "SIGINT")
              << " received — draining\n";
  }
  server.stop();
  print_stats(server, server.service());
  export_observability(args);
  return 0;
}

int selfcheck(const qs::ArgParser& args) {
  setup_observability(args);
  // A private socket keyed by pid: the check must not collide with (or
  // disturb) a real daemon on the default path.
  qs::service::SocketServerConfig config = parse_config(args);
  if (!args.has("socket")) {
    config.socket_path = std::filesystem::temp_directory_path() /
                         ("qs_serve_selfcheck_" + std::to_string(::getpid()) +
                          ".sock");
  }
  qs::service::SocketServer server(config);
  server.start();

  qs::service::SolveRequest request;
  request.nu = 6;
  request.landscape = qs::service::LandscapeKind::single_peak;
  request.param0 = 8.0;
  request.param1 = 1.0;
  request.p = 0.02;
  request.tolerance = 1e-10;

  qs::service::Client client(server.socket_path());
  bool ok = true;
  if (!client.ping()) {
    std::cerr << "selfcheck: ping failed\n";
    ok = false;
  }
  const auto first = client.solve(request);
  if (first.status != qs::service::StatusCode::ok) {
    std::cerr << "selfcheck: solve failed: " << to_string(first.status) << " "
              << first.message << "\n";
    ok = false;
  }
  const auto second = client.solve(request);
  if (second.status != qs::service::StatusCode::ok || !second.cache_hit) {
    std::cerr << "selfcheck: cached re-solve failed (status "
              << to_string(second.status) << ", cache_hit "
              << second.cache_hit << ")\n";
    ok = false;
  }
  if (ok && second.eigenvalue != first.eigenvalue) {
    std::cerr << "selfcheck: cached eigenvalue differs from fresh solve\n";
    ok = false;
  }
  // Live introspection: the STATS op must reflect the two solves above
  // without entering the solver path.  With a warm --cache-dir even the
  // first solve can be a disk hit, so the solve histogram is only owed a
  // sample when something actually solved; cache lookups always happen.
  const std::string stats = client.stats();
  const auto accepted =
      qs::service::stats_value(stats, "qs_queue_total{event=\"accepted\"}");
  const auto lookup_count = qs::service::stats_value(
      stats, "qs_latency_seconds{op=\"service.cache_lookup\",stat=\"count\"}");
  const auto solve_count = qs::service::stats_value(
      stats, "qs_latency_seconds{op=\"service.solve\",stat=\"count\"}");
  const bool solved_fresh = ok && !first.cache_hit;
  if (!accepted || *accepted < 1.0 || !lookup_count || *lookup_count < 1.0 ||
      (solved_fresh && (!solve_count || *solve_count < 1.0))) {
    std::cerr << "selfcheck: STATS reply missing queue/latency data:\n"
              << stats;
    ok = false;
  }
  server.stop();
  export_observability(args);
  if (ok) {
    std::cout << "selfcheck ok: lambda_0 = " << first.eigenvalue << " in "
              << first.iterations << " iteration(s); cached reply bit-identical\n";
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const qs::ArgParser args(argc, argv);
    if (args.has("help")) {
      print_usage();
      return 0;
    }
    return args.has("selfcheck") ? selfcheck(args) : serve(args);
  } catch (const CliError& e) {
    std::cerr << "error: " << e.message << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
