// qs_simulate — finite-population Wright-Fisher / Moran simulation from the
// command line.
//
//   qs_simulate --nu 10 --p 0.03 --pop 10000 --generations 500
//   qs_simulate --nu 8 --p 0.05 --pop 500 --process moran --generations 200
//               --landscape single-peak --peak 3 --trace trace.csv
//
// Prints the time-averaged class concentrations next to the deterministic
// (infinite-population) quasispecies for comparison; --trace writes the
// per-generation master-class trajectory as CSV.
#include <fstream>
#include <iostream>

#include "quasispecies.hpp"
#include "support/args.hpp"

namespace {

void print_usage() {
  std::cout <<
      "qs_simulate — finite-population quasispecies dynamics\n\n"
      "  --nu N             chain length (<= 20 for simulation)\n"
      "  --p RATE           per-position error rate\n"
      "  --pop SIZE         population size (default 10000)\n"
      "  --generations G    generations to run (default 500; the second half\n"
      "                     is time-averaged)\n"
      "  --process KIND     wright-fisher (default) or moran\n"
      "  --landscape KIND   single-peak (--peak/--rest, default 2/1) or\n"
      "                     random (--c/--sigma/--seed)\n"
      "  --seed S           RNG seed (default 1)\n"
      "  --start KIND       master (default) or uniform\n"
      "  --trace FILE       per-generation CSV of t, x0, mean fitness\n"
      "  --trace-json FILE  Chrome trace-event JSON of the run (distinct from\n"
      "                     --trace; span events need a QS_ENABLE_TRACING build)\n"
      "  --metrics FILE     aggregate metrics snapshot (JSON, or CSV when\n"
      "                     FILE ends in .csv)\n"
      "  --help             this text\n";
}

struct CliError {
  std::string message;
};

/// Shared --trace-json/--metrics handling (same flags as qs_solve; note the
/// pre-existing --trace flag is the per-generation CSV, not this).
void setup_observability(const qs::ArgParser& args) {
  if (!args.has("trace-json") && !args.has("metrics")) return;
  if (qs::obs::compiled_in()) {
    qs::obs::set_enabled(true);
  } else if (args.has("trace-json")) {
    std::cerr << "warning: this binary was built without QS_ENABLE_TRACING; "
                 "the trace will contain no span events\n";
  }
}

void export_observability(const qs::ArgParser& args) {
  if (args.has("trace-json") &&
      !qs::obs::write_chrome_trace_file(args.get("trace-json", ""))) {
    std::cerr << "warning: could not write trace to "
              << args.get("trace-json", "") << "\n";
  }
  if (args.has("metrics") &&
      !qs::obs::write_metrics_file(args.get("metrics", ""))) {
    std::cerr << "warning: could not write metrics to "
              << args.get("metrics", "") << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const qs::ArgParser args(argc, argv);
    if (args.has("help")) {
      print_usage();
      return 0;
    }
    const unsigned nu = static_cast<unsigned>(args.get_long("nu", 0, 1, 20));
    if (nu == 0) throw CliError{"--nu is required (try --help)"};
    const double p = args.get_double("p", 0.0, 1e-12, 0.5);
    if (p == 0.0) throw CliError{"--p is required (try --help)"};
    const auto pop_size =
        static_cast<std::uint64_t>(args.get_long("pop", 10000, 2, 100000000));
    const auto generations =
        static_cast<std::uint64_t>(args.get_long("generations", 500, 1, 10000000));
    const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 1, 0, 1L << 62));
    setup_observability(args);

    const auto model = qs::core::MutationModel::uniform(nu, p);
    const std::string kind = args.get("landscape", "single-peak");
    auto landscape = [&]() -> qs::core::Landscape {
      if (kind == "single-peak") {
        return qs::core::Landscape::single_peak(
            nu, args.get_double("peak", 2.0, 1e-12, 1e12),
            args.get_double("rest", 1.0, 1e-12, 1e12));
      }
      if (kind == "random") {
        const double c = args.get_double("c", 5.0, 1e-12, 1e12);
        return qs::core::Landscape::random(
            nu, c, args.get_double("sigma", 1.0, 1e-12, c / 2 * (1 - 1e-9)),
            static_cast<std::uint64_t>(args.get_long("seed", 1, 0, 1L << 62)));
      }
      throw CliError{"unknown landscape kind '" + kind + "'"};
    }();

    const std::string start_kind = args.get("start", "master");
    auto population = (start_kind == "uniform")
                          ? qs::stochastic::Population::uniform(nu, pop_size)
                          : qs::stochastic::Population::monomorphic(nu, pop_size);

    // Deterministic reference.
    const auto deterministic = qs::solvers::solve(model, landscape);

    const std::string process = args.get("process", "wright-fisher");
    std::ofstream trace_file;
    const bool tracing = args.has("trace");
    if (tracing) {
      trace_file.open(args.get("trace", ""));
      trace_file << "generation,x0,mean_fitness\n";
    }

    std::vector<double> average(population.counts().size(), 0.0);
    const std::uint64_t average_start = generations / 2;
    qs::Timer timer;

    auto record = [&](std::uint64_t g) {
      const auto x = population.frequencies();
      if (tracing) {
        trace_file << g << ',' << x[0] << ','
                   << qs::analysis::mean_fitness(landscape, x) << '\n';
      }
      if (g >= average_start) {
        for (std::size_t i = 0; i < x.size(); ++i) {
          average[i] += x[i] / static_cast<double>(generations - average_start);
        }
      }
    };

    if (process == "wright-fisher") {
      qs::stochastic::WrightFisher wf(model, landscape, seed);
      for (std::uint64_t g = 1; g <= generations; ++g) {
        wf.step(population);
        record(g);
      }
    } else if (process == "moran") {
      qs::stochastic::Moran moran(model, landscape, seed);
      for (std::uint64_t g = 1; g <= generations; ++g) {
        moran.run(population, pop_size);  // one generation = N_pop events
        record(g);
      }
    } else {
      throw CliError{"unknown process '" + process + "'"};
    }
    const double seconds = timer.seconds();

    std::cout << process << ": nu = " << nu << ", p = " << p << ", N_pop = "
              << pop_size << ", " << generations << " generations (" << seconds
              << " s)\n\n"
              << "class  simulated (time avg)  deterministic (infinite N)\n";
    const auto sim_classes = qs::analysis::class_concentrations(nu, average);
    for (unsigned k = 0; k <= nu; ++k) {
      std::printf("  %2u    %-20.6f  %.6f\n", k, sim_classes[k],
                  deterministic.class_concentrations[k]);
    }
    std::cout << "\nsimulated mean fitness: "
              << qs::analysis::mean_fitness(landscape, average)
              << "   deterministic lambda_0: " << deterministic.eigenvalue << "\n";

    auto& m = qs::obs::metrics();
    m.set_info("tool", "qs_simulate");
    m.set_info("process", process);
    m.set_value("nu", nu);
    m.set_value("p", p);
    m.set_value("pop", static_cast<double>(pop_size));
    m.set_value("generations", static_cast<double>(generations));
    m.set_value("sim_seconds", seconds);
    m.set_value("mean_fitness", qs::analysis::mean_fitness(landscape, average));
    m.set_value("deterministic_eigenvalue", deterministic.eigenvalue);
    export_observability(args);
    return 0;
  } catch (const CliError& e) {
    std::cerr << "error: " << e.message << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
