// qs_solve — command-line quasispecies solver.
//
// One binary that exposes the library's main solve paths:
//
//   qs_solve --nu 16 --p 0.01 --landscape single-peak --peak 2 --rest 1
//   qs_solve --nu 20 --p 0.02 --landscape linear --f0 2 --fnu 1 --reduced
//   qs_solve --nu 14 --p 0.01 --landscape random --c 5 --sigma 1 --seed 7
//            --solver lanczos --csv out.csv
//   qs_solve --nu 16 --p 0.005 --landscape load --input land.qs
//            --save-landscape snapshot.qs --checkpoint state.qs
//
// Prints the dominant eigenvalue, iteration statistics, and the error-class
// concentrations; optionally writes the full concentration vector / class
// table as CSV and saves landscapes / solver checkpoints through the binary
// io module.
#include <algorithm>
#include <csignal>
#include <fstream>
#include <iostream>
#include <optional>

#include "quasispecies.hpp"
#include "support/args.hpp"

namespace {

void print_usage() {
  std::cout <<
      "qs_solve — fast quasispecies solver (SC'11 reproduction)\n\n"
      "required:\n"
      "  --nu N              chain length (1..24 for full solves)\n"
      "  --p RATE            per-position error rate, 0 < p <= 1/2\n"
      "landscape (--landscape KIND):\n"
      "  single-peak         --peak F0 --rest F (default 2 / 1)\n"
      "  linear              --f0 F0 --fnu FN (default 2 / 1)\n"
      "  random              --c C --sigma S --seed SEED (Eq. 13; default 5/1/1)\n"
      "  flat                --c C (default 1)\n"
      "  load                --input FILE (a landscape saved by this tool)\n"
      "solver (--solver KIND, default power):\n"
      "  power               shifted power iteration on Fmmp (the paper's solver)\n"
      "  lanczos             restarted Lanczos (faster, more memory)\n"
      "  arnoldi             restarted Arnoldi (asymmetric-capable)\n"
      "  rqi                 Rayleigh quotient iteration (shift-and-invert)\n"
      "  xmvp                power iteration on Xmvp(--dmax D, default 5)\n"
      "  block               block subspace iteration (same as --block-size 2)\n"
      "options:\n"
      "  --reduced           use the exact (nu+1)^2 reduction (error-class\n"
      "                      landscapes only; allows huge --nu)\n"
      "  --ranks R           distributed power solve over R ranks (power of\n"
      "                      two; hypercube decomposition, each rank owns a\n"
      "                      2^nu/R block; bit-identical to the serial solve)\n"
      "  --exchange KIND     distributed transport: lockstep (threads, the\n"
      "                      default) or process (forked ranks over AF_UNIX\n"
      "                      socketpairs — real per-rank address spaces)\n"
      "  --tolerance T       relative residual target (default 1e-13)\n"
      "  --no-shift          disable the convergence-acceleration shift\n"
      "  --parallel          use the OpenMP engine\n"
      "  --block-size K      compute the K leading eigenpairs by block\n"
      "                      subspace iteration on the banded *panel* kernel\n"
      "                      (one memory sweep advances all K vectors; the\n"
      "                      dominant pair is reported as the solution)\n"
      "  --autotune          measure a grid of banded-kernel tiling plans at\n"
      "                      this problem size (seeded by the detected cache\n"
      "                      hierarchy) and solve with the fastest; never\n"
      "                      slower than the fixed default plan\n"
      "  --tile-log2 T       banded kernel tile size override (default 14)\n"
      "  --chunk-log2 C      banded kernel chunk size override (default 6)\n"
      "  --csv FILE          write species concentrations as CSV\n"
      "  --classes-csv FILE  write [Gamma_k] per class as CSV\n"
      "  --save-landscape F  persist the landscape in binary form\n"
      "resilience (every full solver; not --reduced):\n"
      "  --checkpoint FILE   periodically persist the solver state to FILE\n"
      "                      (atomic + checksummed; for power/xmvp also\n"
      "                      written on exit) so an interrupted run can\n"
      "                      restart with --resume\n"
      "  --checkpoint-every N  iterations between checkpoints (default 1000;\n"
      "                      restart cycles for lanczos/arnoldi, outer steps\n"
      "                      for rqi, panel products for block)\n"
      "  --checkpoint-every-seconds S  wall-clock seconds between checkpoints\n"
      "                      (default 30 when given without a value source;\n"
      "                      combines with --checkpoint-every as a union —\n"
      "                      whichever cadence fires first writes)\n"
      "  --resume FILE       resume an interrupted run from a checkpoint\n"
      "                      written by --checkpoint (the model, landscape,\n"
      "                      options, and --solver must match the original\n"
      "                      run; a checkpoint from a different solver is\n"
      "                      refused with a clear message)\n"
      "  --no-recover        fail immediately instead of restarting once from\n"
      "                      the last good checkpoint / dropping the shift\n"
      "                      when the iterate goes non-finite or stalls\n"
      "observability:\n"
      "  --trace-json FILE   write a Chrome trace-event JSON of the run\n"
      "                      (load in ui.perfetto.dev or chrome://tracing;\n"
      "                      span events need a build with the 'trace'\n"
      "                      preset / QS_ENABLE_TRACING=ON)\n"
      "  --metrics FILE      write an aggregate metrics snapshot (JSON, or\n"
      "                      CSV when FILE ends in .csv): solver values,\n"
      "                      residual tail, per-phase time shares, SIMD/plan\n"
      "                      provenance\n"
      "other:\n"
      "  --top K             print the K most concentrated species (default 5)\n"
      "  --help              this text\n";
}

struct CliError {
  std::string message;
};

/// Thrown when SIGINT/SIGTERM stopped the solve at an iteration boundary:
/// the driver has already flushed a final checkpoint (when --checkpoint is
/// set), so main() only has to report where the state went and exit 130.
struct Interrupted {
  std::string checkpoint_path;
};

/// The checkpoint/resume command-line block, parsed once and applied to
/// whichever solver branch runs.  Every full solver supports it through the
/// shared iteration driver; the reduced path (a direct small eigensolve,
/// nothing to resume) rejects it.
struct ResilienceCli {
  std::string checkpoint_path;
  unsigned checkpoint_every = 0;
  double checkpoint_every_seconds = 0.0;
  std::optional<qs::io::SolverCheckpoint> resume;
};

ResilienceCli parse_resilience(const qs::ArgParser& args) {
  ResilienceCli cli;
  if (args.has("checkpoint")) {
    cli.checkpoint_path = args.get("checkpoint", "");
    const bool has_seconds = args.has("checkpoint-every-seconds");
    if (has_seconds) {
      cli.checkpoint_every_seconds =
          args.get_double("checkpoint-every-seconds", 30.0, 1e-3, 1e9);
    }
    // The iteration cadence stays on by default; giving only the seconds
    // cadence switches to pure wall-clock checkpointing.
    if (args.has("checkpoint-every") || !has_seconds) {
      cli.checkpoint_every = static_cast<unsigned>(
          args.get_long("checkpoint-every", 1000, 1, 1000000000));
    }
  } else if (args.has("checkpoint-every") ||
             args.has("checkpoint-every-seconds")) {
    throw CliError{
        "--checkpoint-every/--checkpoint-every-seconds need --checkpoint FILE"};
  }
  if (args.has("resume")) {
    cli.resume = qs::io::load_checkpoint(args.get("resume", ""));
    std::cout << "resuming from iteration " << cli.resume->iteration
              << " (residual " << cli.resume->residual << ")\n";
  }
  return cli;
}

/// Copies the shared checkpointing knobs into a solver's option block and
/// arms cooperative cancellation: SIGINT/SIGTERM set a flag (see
/// support/signals.hpp) that the iteration driver polls each convergence
/// check, so an interrupted run stops at an iteration boundary — flushing a
/// final checkpoint when one is configured — instead of dying mid-write.
void apply_resilience(const ResilienceCli& cli, qs::solvers::IterationOptions& opts) {
  if (!cli.checkpoint_path.empty()) {
    opts.checkpoint_path = cli.checkpoint_path;
    opts.checkpoint_every = cli.checkpoint_every;
    opts.checkpoint_every_seconds = cli.checkpoint_every_seconds;
  }
  opts.should_stop = [] { return qs::shutdown_requested(); };
}

/// Converts a cancelled solver result into the Interrupted exit path.
void check_interrupted(qs::solvers::SolverFailure failure,
                       const ResilienceCli& cli) {
  if (failure == qs::solvers::SolverFailure::cancelled) {
    throw Interrupted{cli.checkpoint_path};
  }
}

/// Turns the span layer on when an observability export was requested.
/// Spans only exist in QS_ENABLE_TRACING builds; metrics values and the
/// residual tail are recorded in every build, so --metrics still produces a
/// useful file from a default build — but a --trace-json request against a
/// span-less binary gets a loud warning instead of a silently empty trace.
void setup_observability(const qs::ArgParser& args) {
  if (!args.has("trace-json") && !args.has("metrics")) return;
  if (qs::obs::compiled_in()) {
    qs::obs::set_enabled(true);
  } else if (args.has("trace-json")) {
    std::cerr << "warning: this binary was built without QS_ENABLE_TRACING; "
                 "the trace will contain no span events (configure with "
                 "--preset trace, or -DQS_ENABLE_TRACING=ON)\n";
  }
}

/// Writes the requested trace/metrics files.  Called on the success paths
/// of run(); a failed solve throws past this, which is fine — partial
/// telemetry of a failed run is better served by the error message.
void export_observability(const qs::ArgParser& args) {
  if (args.has("trace-json")) {
    const std::string path = args.get("trace-json", "");
    if (qs::obs::write_chrome_trace_file(path)) {
      std::cout << "trace written to " << path
                << " (load in ui.perfetto.dev)\n";
    } else {
      std::cerr << "warning: could not write trace to " << path << "\n";
    }
  }
  if (args.has("metrics")) {
    const std::string path = args.get("metrics", "");
    if (qs::obs::write_metrics_file(path)) {
      std::cout << "metrics written to " << path << "\n";
    } else {
      std::cerr << "warning: could not write metrics to " << path << "\n";
    }
  }
}

void warn_checkpoint_failures(unsigned failures) {
  if (failures > 0) {
    std::cerr << "warning: " << failures
              << " checkpoint write(s) failed; the run continued but the "
                 "on-disk state may be older than expected\n";
  }
}

qs::core::Landscape build_landscape(const qs::ArgParser& args, unsigned nu) {
  const std::string kind = args.get("landscape", "single-peak");
  if (kind == "single-peak") {
    return qs::core::Landscape::single_peak(nu, args.get_double("peak", 2.0, 1e-12, 1e12),
                                            args.get_double("rest", 1.0, 1e-12, 1e12));
  }
  if (kind == "linear") {
    return qs::core::Landscape::linear(nu, args.get_double("f0", 2.0, 1e-12, 1e12),
                                       args.get_double("fnu", 1.0, 1e-12, 1e12));
  }
  if (kind == "random") {
    const double c = args.get_double("c", 5.0, 1e-12, 1e12);
    return qs::core::Landscape::random(
        nu, c, args.get_double("sigma", 1.0, 1e-12, c / 2 * (1 - 1e-9)),
        static_cast<std::uint64_t>(args.get_long("seed", 1, 0, 1L << 62)));
  }
  if (kind == "flat") {
    return qs::core::Landscape::flat(nu, args.get_double("c", 1.0, 1e-12, 1e12));
  }
  if (kind == "load") {
    const std::string input = args.get("input", "");
    if (input.empty()) throw CliError{"--landscape load requires --input FILE"};
    auto loaded = qs::io::load_landscape(input);
    if (loaded.nu() != nu) {
      throw CliError{"loaded landscape has nu = " + std::to_string(loaded.nu()) +
                     ", but --nu is " + std::to_string(nu)};
    }
    return loaded;
  }
  throw CliError{"unknown landscape kind '" + kind + "'"};
}

void write_concentrations_csv(const std::string& path,
                              std::span<const double> x) {
  std::ofstream file(path);
  qs::CsvWriter csv(file);
  csv.header({"species", "hamming_class", "concentration"});
  for (qs::seq_t i = 0; i < x.size(); ++i) {
    csv.row().cell(std::size_t{i}).cell(std::size_t{qs::hamming_weight(i)}).cell(x[i]);
    csv.end_row();
  }
}

void write_classes_csv(const std::string& path, std::span<const double> classes) {
  std::ofstream file(path);
  qs::CsvWriter csv(file);
  csv.header({"class_k", "concentration"});
  for (std::size_t k = 0; k < classes.size(); ++k) {
    csv.row().cell(k).cell(classes[k]);
    csv.end_row();
  }
}

int run(const qs::ArgParser& args) {
  if (args.has("help")) {
    print_usage();
    return 0;
  }
  const unsigned nu = static_cast<unsigned>(args.get_long("nu", 0, 1, 1000));
  if (nu == 0) throw CliError{"--nu is required (try --help)"};
  const double p = args.get_double("p", 0.0, 1e-12, 0.5);
  if (p == 0.0) throw CliError{"--p is required (try --help)"};

  const double tolerance = args.get_double("tolerance", 1e-13, 1e-16, 1e-2);
  const long top = args.get_long("top", 5, 0, 1000);
  setup_observability(args);

  // Reduced path: error-class landscapes at any nu.
  if (args.has("reduced")) {
    if (args.has("checkpoint") || args.has("checkpoint-every") || args.has("resume")) {
      throw CliError{
          "--reduced does not support --checkpoint/--resume: the reduced "
          "solve is a direct (nu+1)x(nu+1) eigensolve, not a resumable "
          "iteration"};
    }
    const std::string kind = args.get("landscape", "single-peak");
    std::optional<qs::core::ErrorClassLandscape> ecl;
    if (kind == "single-peak") {
      ecl = qs::core::ErrorClassLandscape::single_peak(
          nu, args.get_double("peak", 2.0, 1e-12, 1e12),
          args.get_double("rest", 1.0, 1e-12, 1e12));
    } else if (kind == "linear") {
      ecl = qs::core::ErrorClassLandscape::linear(
          nu, args.get_double("f0", 2.0, 1e-12, 1e12),
          args.get_double("fnu", 1.0, 1e-12, 1e12));
    } else {
      throw CliError{"--reduced supports single-peak and linear landscapes"};
    }
    qs::Timer timer;
    const auto r = qs::solvers::solve_reduced(p, *ecl);
    std::cout << "reduced (nu+1)x(nu+1) solve: nu = " << nu << ", p = " << p
              << "\nlambda_0 = " << r.eigenvalue << "  (" << timer.seconds()
              << " s)\n\nclass concentrations:\n";
    const unsigned shown = std::min(nu, 20u);
    for (unsigned k = 0; k <= shown; ++k) {
      std::cout << "  [Gamma_" << k << "] = " << r.class_concentrations[k] << "\n";
    }
    if (shown < nu) std::cout << "  ... (" << (nu - shown) << " more classes)\n";
    if (args.has("classes-csv")) {
      write_classes_csv(args.get("classes-csv", ""), r.class_concentrations);
    }
    auto& m = qs::obs::metrics();
    m.set_info("tool", "qs_solve");
    m.set_info("solver", "reduced");
    m.set_value("nu", nu);
    m.set_value("p", p);
    m.set_value("eigenvalue", r.eigenvalue);
    export_observability(args);
    return 0;
  }

  if (nu > 24) {
    throw CliError{"full solves need --nu <= 24 (use --reduced for larger chains)"};
  }

  const auto model = qs::core::MutationModel::uniform(nu, p);
  const auto landscape = build_landscape(args, nu);
  if (args.has("save-landscape")) {
    qs::io::save_landscape(args.get("save-landscape", ""), landscape);
  }

  const qs::parallel::Engine* engine =
      args.has("parallel") ? &qs::parallel::parallel_engine() : nullptr;
  const std::string solver = args.get("solver", "power");

  qs::transforms::BlockedPlan plan;
  if (args.has("tile-log2")) {
    plan.tile_log2 = static_cast<unsigned>(args.get_long("tile-log2", 14, 4, 30));
  }
  if (args.has("chunk-log2")) {
    plan.chunk_log2 = static_cast<unsigned>(args.get_long("chunk-log2", 6, 1, 20));
  }
  if (args.has("autotune")) {
    const auto report = qs::transforms::autotune_blocked_plan(
        nu, engine != nullptr ? *engine : qs::parallel::serial_engine());
    plan = report.best;
    std::cout << "autotuned plan: tile_log2 = " << plan.tile_log2
              << ", chunk_log2 = " << plan.chunk_log2 << ", sv kernel = "
              << qs::transforms::resolved_sv_kernel_name(plan.sv_kernel)
              << " (max radix " << plan.sv_max_radix << "; "
              << report.timings.size() << " candidates, default "
              << report.timings.front().seconds << " s/matvec)\n";
    if (plan.sv_kernel == qs::transforms::SvKernel::autovec) {
      std::cout << "note: the plain autovec loops beat every SIMD "
                   "single-vector candidate on this host, so the tuned plan "
                   "keeps the microkernel dispatch off\n";
    }
  }

  double eigenvalue = 0.0;
  std::vector<double> concentrations;
  unsigned iterations = 0;
  double residual = 0.0;
  const ResilienceCli resilience = parse_resilience(args);
  qs::install_shutdown_handlers();
  qs::Timer timer;

  if (args.has("ranks")) {
    if (solver != "power") {
      throw CliError{"--ranks supports --solver power only"};
    }
    const unsigned ranks =
        static_cast<unsigned>(args.get_long("ranks", 2, 1, 1u << 20));
    const std::string exchange = args.get("exchange", "lockstep");
    qs::distributed::DistributedPowerOptions opts;
    opts.tolerance = tolerance;
    opts.plan = plan;
    if (!args.has("no-shift")) {
      opts.shift = qs::core::conservative_shift(model, landscape);
    }
    if (exchange == "lockstep") {
      opts.exchange = qs::distributed::ExchangeKind::lockstep;
    } else if (exchange == "process") {
      opts.exchange = qs::distributed::ExchangeKind::process;
    } else {
      throw CliError{"--exchange must be lockstep or process"};
    }
    apply_resilience(resilience, opts);
    const auto r =
        resilience.resume
            ? qs::distributed::resume_distributed_power_iteration(
                  model, landscape, ranks, *resilience.resume, opts)
            : qs::distributed::distributed_power_iteration(model, landscape,
                                                           ranks, opts);
    warn_checkpoint_failures(r.checkpoint_failures);
    // Traffic totals are aggregated before the group disbands, so even a
    // cancelled run reports what it shipped up to the stop point.
    std::cout << "distributed: ranks = " << r.rank_count << " (" << exchange
              << "), block = " << (qs::sequence_count(nu) / r.rank_count)
              << " doubles, local levels = " << r.local_levels << "/" << nu
              << ", sv kernel = " << r.plan_kernel << "\n"
              << "traffic: " << r.traffic.messages << " messages, "
              << r.traffic.bytes_moved() << " bytes, "
              << r.traffic.allreduce_calls << " allreduces, overlap ratio = "
              << r.traffic.overlap_ratio() << "\n";
    check_interrupted(r.failure, resilience);
    if (r.failure != qs::solvers::SolverFailure::none) {
      throw CliError{std::string("distributed solver failed: ") +
                     std::string(qs::solvers::to_string(r.failure))};
    }
    if (!r.converged) throw CliError{"distributed solver did not converge"};
    eigenvalue = r.eigenvalue;
    concentrations = r.eigenvector;
    iterations = r.iterations;
    residual = r.residual;
  } else if (args.has("block-size") || solver == "block") {
    qs::solvers::BlockPowerOptions bopts;
    bopts.k = static_cast<unsigned>(args.get_long("block-size", 2, 1, 64));
    bopts.tolerance = std::max(tolerance, 1e-11);
    bopts.engine = engine;
    bopts.plan = plan;
    apply_resilience(resilience, bopts);
    const auto r = resilience.resume
                       ? qs::solvers::resume_top_k_spectrum(
                             model, landscape, *resilience.resume, bopts)
                       : qs::solvers::top_k_spectrum(model, landscape, bopts);
    warn_checkpoint_failures(r.checkpoint_failures);
    check_interrupted(r.failure, resilience);
    if (r.failure != qs::solvers::SolverFailure::none) {
      throw CliError{std::string("block solver failed: ") +
                     std::string(qs::solvers::to_string(r.failure))};
    }
    if (!r.converged) throw CliError{"block solver did not converge"};
    std::cout << "leading eigenvalues (block subspace iteration, k = "
              << bopts.k << "):\n";
    for (std::size_t j = 0; j < r.eigenvalues.size(); ++j) {
      std::cout << "  lambda_" << j << " = " << r.eigenvalues[j]
                << "   residual = " << r.residuals[j] << "\n";
    }
    eigenvalue = r.eigenvalues.front();
    concentrations = r.eigenvectors.front();
    iterations = r.iterations;
    residual = r.residuals.front();
  } else if (solver == "power" || solver == "xmvp") {
    qs::solvers::SolveOptions opts;
    opts.tolerance = tolerance;
    opts.use_shift = !args.has("no-shift");
    opts.engine = engine;
    opts.plan = plan;
    opts.recover = !args.has("no-recover");
    if (solver == "xmvp") {
      opts.matvec = qs::solvers::MatvecKind::xmvp;
      opts.xmvp_d_max = static_cast<unsigned>(args.get_long("dmax", 5, 0, nu));
    }
    apply_resilience(resilience, opts);
    if (resilience.resume) opts.resume = &*resilience.resume;
    const auto r = qs::solvers::solve(model, landscape, opts);
    check_interrupted(r.failure, resilience);
    if (r.failure != qs::solvers::SolverFailure::none) {
      throw CliError{std::string("solver failed: ") +
                     std::string(qs::solvers::to_string(r.failure)) +
                     " (after " + std::to_string(r.recovery_attempts) +
                     " recovery attempt(s))"};
    }
    warn_checkpoint_failures(r.checkpoint_failures);
    if (!r.converged) throw CliError{"solver did not converge"};
    eigenvalue = r.eigenvalue;
    concentrations = r.concentrations;
    iterations = r.iterations;
    residual = r.residual;
  } else if (solver == "lanczos") {
    qs::solvers::LanczosOptions opts;
    opts.tolerance = tolerance;
    opts.engine = engine;
    apply_resilience(resilience, opts);
    const auto r = resilience.resume
                       ? qs::solvers::resume_lanczos_dominant_w(
                             model, landscape, *resilience.resume, opts)
                       : qs::solvers::lanczos_dominant_w(model, landscape, {}, opts);
    warn_checkpoint_failures(r.checkpoint_failures);
    check_interrupted(r.failure, resilience);
    if (r.failure != qs::solvers::SolverFailure::none) {
      throw CliError{std::string("solver failed: ") +
                     std::string(qs::solvers::to_string(r.failure))};
    }
    if (!r.converged) throw CliError{"solver did not converge"};
    eigenvalue = r.eigenvalue;
    concentrations = r.concentrations;
    iterations = r.matvec_count;
    residual = r.residual;
  } else if (solver == "arnoldi") {
    qs::solvers::ArnoldiOptions opts;
    opts.tolerance = tolerance;
    opts.engine = engine;
    apply_resilience(resilience, opts);
    const auto r = resilience.resume
                       ? qs::solvers::resume_arnoldi_dominant_w(
                             model, landscape, *resilience.resume, opts)
                       : qs::solvers::arnoldi_dominant_w(model, landscape, {}, opts);
    warn_checkpoint_failures(r.checkpoint_failures);
    check_interrupted(r.failure, resilience);
    if (r.failure != qs::solvers::SolverFailure::none) {
      throw CliError{std::string("solver failed: ") +
                     std::string(qs::solvers::to_string(r.failure))};
    }
    if (!r.converged) throw CliError{"solver did not converge"};
    eigenvalue = r.eigenvalue;
    concentrations = r.concentrations;
    iterations = r.matvec_count;
    residual = r.residual;
  } else if (solver == "rqi") {
    qs::solvers::ShiftInvertOptions opts;
    opts.tolerance = tolerance;
    opts.engine = engine;
    apply_resilience(resilience, opts);
    const auto r = resilience.resume
                       ? qs::solvers::resume_rayleigh_quotient_iteration_w(
                             model, landscape, *resilience.resume, opts)
                       : qs::solvers::rayleigh_quotient_iteration_w(model, landscape,
                                                                    {}, opts);
    warn_checkpoint_failures(r.checkpoint_failures);
    check_interrupted(r.failure, resilience);
    if (r.failure != qs::solvers::SolverFailure::none) {
      throw CliError{std::string("solver failed: ") +
                     std::string(qs::solvers::to_string(r.failure))};
    }
    if (!r.converged) throw CliError{"solver did not converge"};
    eigenvalue = r.eigenvalue;
    concentrations = r.concentrations;
    iterations = r.outer_iterations;
    residual = r.residual;
  } else {
    throw CliError{"unknown solver '" + solver + "'"};
  }
  const double seconds = timer.seconds();

  std::cout << "quasispecies solve: nu = " << nu << " (N = " << qs::sequence_count(nu)
            << "), p = " << p << ", solver = " << solver
            << (engine != nullptr ? " [parallel]" : "") << "\n"
            << "lambda_0 = " << eigenvalue << "   iterations = " << iterations
            << "   residual = " << residual << "   time = " << seconds << " s\n";

  if (top > 0) {
    std::cout << "\ntop species:\n";
    std::vector<qs::seq_t> order(concentrations.size());
    for (qs::seq_t i = 0; i < order.size(); ++i) order[i] = i;
    std::partial_sort(order.begin(),
                      order.begin() + std::min<std::size_t>(top, order.size()),
                      order.end(), [&](qs::seq_t a, qs::seq_t b) {
                        return concentrations[a] > concentrations[b];
                      });
    for (long r = 0; r < std::min<long>(top, static_cast<long>(order.size())); ++r) {
      const qs::seq_t i = order[r];
      std::cout << "  X_" << i << " (class " << qs::hamming_weight(i)
                << "): " << concentrations[i] << "\n";
    }
  }

  const auto classes = qs::analysis::class_concentrations(nu, concentrations);
  std::cout << "\nclass concentrations:\n";
  for (unsigned k = 0; k <= nu; ++k) {
    std::cout << "  [Gamma_" << k << "] = " << classes[k] << "\n";
  }

  if (args.has("csv")) {
    write_concentrations_csv(args.get("csv", ""), concentrations);
  }
  if (args.has("classes-csv")) {
    write_classes_csv(args.get("classes-csv", ""), classes);
  }
  // End-of-run checkpoint: only the power/xmvp iterate *is* the
  // concentration vector, so only there is this snapshot resumable.  The
  // other solvers persist their native state (restart vector, panel, shift)
  // through the driver's periodic checkpoints instead.
  if (args.has("checkpoint") && (solver == "power" || solver == "xmvp")) {
    qs::io::SolverCheckpoint state;
    state.iteration = iterations;
    state.eigenvalue = eigenvalue;
    state.residual = residual;
    state.solver_kind = qs::io::SolverKind::power;
    state.eigenvector = concentrations;
    qs::io::save_checkpoint(args.get("checkpoint", ""), state);
  }

  // Solve-level telemetry.  The facade's PlannedOperator records its own
  // plan provenance too; this stamps the tier for the solvers that take the
  // plan directly (block, lanczos, arnoldi, rqi) and surfaces it on stdout
  // whenever a metrics snapshot was requested.
  if (args.has("metrics")) {
    std::cout << "single-vector kernel tier: "
              << qs::transforms::resolved_sv_kernel_name(plan.sv_kernel)
              << " (max radix " << plan.sv_max_radix << ")\n";
  }
  auto& m = qs::obs::metrics();
  m.set_info("tool", "qs_solve");
  m.set_info("solver", solver);
  m.set_info("engine", engine != nullptr ? "parallel" : "serial");
  m.set_info("sv_kernel",
             qs::transforms::resolved_sv_kernel_name(plan.sv_kernel));
  m.set_value("plan.sv_max_radix", plan.sv_max_radix);
  m.set_value("nu", nu);
  m.set_value("p", p);
  m.set_value("eigenvalue", eigenvalue);
  m.set_value("iterations", iterations);
  m.set_value("residual", residual);
  m.set_value("solve_seconds", seconds);
  export_observability(args);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(qs::ArgParser(argc, argv));
  } catch (const Interrupted& e) {
    std::cerr << "interrupted by signal "
              << (qs::shutdown_signal() == SIGTERM ? "SIGTERM" : "SIGINT")
              << "; the solve stopped at an iteration boundary";
    if (!e.checkpoint_path.empty()) {
      std::cerr << " and flushed a final checkpoint to " << e.checkpoint_path
                << " (restart with --resume " << e.checkpoint_path << ")";
    }
    std::cerr << "\n";
    return 130;
  } catch (const CliError& e) {
    std::cerr << "error: " << e.message << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
