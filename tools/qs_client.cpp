// qs_client — command-line client for the qs_serve daemon.
//
//   qs_client --socket /tmp/qs.sock --nu 10 --p 0.01 --landscape single-peak
//   qs_client --socket /tmp/qs.sock --nu 8 --p 0.02 --deadline-ms 500
//             --retries 6 --base-delay-ms 50
//   qs_client --socket /tmp/qs.sock --ping
//
// Sends one solve request over the length-prefixed AF_UNIX protocol and
// prints the structured reply.  Transport failures and load-shed replies
// (REJECTED_OVERLOAD / SHUTTING_DOWN) are retried with capped exponential
// backoff and jitter; every other status is final.  The exit code mirrors
// the outcome: 0 for OK, 3 for a non-OK reply, 4 when every attempt failed
// on the wire, 2 for bad arguments.
#include <cstdio>
#include <iostream>

#include "quasispecies.hpp"
#include "support/args.hpp"

namespace {

void print_usage() {
  std::cout <<
      "qs_client — solver service client\n\n"
      "connection:\n"
      "  --socket PATH       daemon socket (default /tmp/qs_serve.sock)\n"
      "  --io-timeout-ms T   per-chunk read/write timeout (default 5000)\n"
      "  --ping              health probe only (exit 0 iff the daemon replies)\n"
      "  --stats             fetch and print the daemon's live stats (the\n"
      "                      scrape-format text exposition; see qs_top for a\n"
      "                      pretty-printed view), then exit\n"
      "scenario:\n"
      "  --nu N              chain length (1..24; required)\n"
      "  --p RATE            per-position error rate (required)\n"
      "  --landscape KIND    single-peak (--peak/--rest, default 10/1),\n"
      "                      linear (--f0/--fnu), random (--c/--sigma --seed),\n"
      "                      or flat (--c)\n"
      "  --tolerance T       relative residual target (default 1e-10)\n"
      "  --max-iterations N  iteration budget (default 200000)\n"
      "  --deadline-ms D     per-request deadline; the daemon sheds or\n"
      "                      cancels past it (default 0 = none)\n"
      "retry:\n"
      "  --retries N         total attempts (default 4; 1 = no retry)\n"
      "  --base-delay-ms B   first backoff step (default 25)\n"
      "  --max-delay-ms M    backoff cap (default 1000)\n"
      "  --jitter J          delay drawn from [d*(1-J), d] (default 0.5)\n"
      "  --retry-seed S      jitter stream seed (default 1)\n"
      "other:\n"
      "  --trace-json FILE   write a Chrome trace-event JSON of this client's\n"
      "                      side of the request (the request's trace id is\n"
      "                      printed, and the daemon's --trace-json spans\n"
      "                      carry the same id)\n"
      "  --quiet             print only the eigenvalue (scripting)\n"
      "  --help              this text\n";
}

struct CliError {
  std::string message;
};

/// Same span-gate warning as the other tools: a --trace-json request
/// against a span-less binary gets a loud warning, not an empty trace.
void setup_observability(const qs::ArgParser& args) {
  if (!args.has("trace-json")) return;
  if (qs::obs::compiled_in()) {
    qs::obs::set_enabled(true);
  } else {
    std::cerr << "warning: this binary was built without QS_ENABLE_TRACING; "
                 "the trace will contain no span events (configure with "
                 "--preset trace, or -DQS_ENABLE_TRACING=ON)\n";
  }
}

void export_observability(const qs::ArgParser& args) {
  if (!args.has("trace-json")) return;
  const std::string path = args.get("trace-json", "");
  if (qs::obs::write_chrome_trace_file(path)) {
    std::cout << "trace written to " << path << " (load in ui.perfetto.dev)\n";
  } else {
    std::cerr << "warning: could not write trace to " << path << "\n";
  }
}

qs::service::SolveRequest parse_request(const qs::ArgParser& args) {
  qs::service::SolveRequest request;
  request.nu = static_cast<std::uint32_t>(args.get_long("nu", 0, 1, 64));
  if (request.nu == 0) throw CliError{"--nu is required (try --help)"};
  request.p = args.get_double("p", 0.0, 1e-12, 0.5);
  if (request.p == 0.0) throw CliError{"--p is required (try --help)"};

  const std::string kind = args.get("landscape", "single-peak");
  if (kind == "single-peak") {
    request.landscape = qs::service::LandscapeKind::single_peak;
    request.param0 = args.get_double("peak", 10.0, 1e-12, 1e12);
    request.param1 = args.get_double("rest", 1.0, 1e-12, 1e12);
  } else if (kind == "linear") {
    request.landscape = qs::service::LandscapeKind::linear;
    request.param0 = args.get_double("f0", 2.0, 1e-12, 1e12);
    request.param1 = args.get_double("fnu", 1.0, 1e-12, 1e12);
  } else if (kind == "random") {
    request.landscape = qs::service::LandscapeKind::random;
    request.param0 = args.get_double("c", 5.0, 1e-12, 1e12);
    request.param1 = args.get_double("sigma", 1.0, 1e-12, 1e12);
  } else if (kind == "flat") {
    request.landscape = qs::service::LandscapeKind::flat;
    request.param0 = args.get_double("c", 1.0, 1e-12, 1e12);
    request.param1 = 0.0;
  } else {
    throw CliError{"unknown landscape kind '" + kind + "'"};
  }
  request.seed =
      static_cast<std::uint64_t>(args.get_long("seed", 1, 0, 1L << 62));
  request.tolerance = args.get_double("tolerance", 1e-10, 1e-16, 1e-2);
  request.max_iterations = static_cast<std::uint64_t>(
      args.get_long("max-iterations", 200000, 1, 1000000000));
  request.deadline_ms = static_cast<std::uint64_t>(
      args.get_long("deadline-ms", 0, 0, 86400000));

  const std::string problem = qs::service::validate(request);
  if (!problem.empty()) throw CliError{problem};
  return request;
}

qs::service::RetryPolicy parse_policy(const qs::ArgParser& args) {
  qs::service::RetryPolicy policy;
  policy.max_attempts =
      static_cast<unsigned>(args.get_long("retries", 4, 1, 100));
  policy.base_delay_ms =
      static_cast<std::uint64_t>(args.get_long("base-delay-ms", 25, 1, 60000));
  policy.max_delay_ms = static_cast<std::uint64_t>(
      args.get_long("max-delay-ms", 1000, 1, 600000));
  policy.jitter = args.get_double("jitter", 0.5, 0.0, 1.0);
  policy.seed =
      static_cast<std::uint64_t>(args.get_long("retry-seed", 1, 1, 1L << 62));
  return policy;
}

int run(const qs::ArgParser& args) {
  if (args.has("help")) {
    print_usage();
    return 0;
  }
  const std::filesystem::path socket = args.get("socket", "/tmp/qs_serve.sock");
  const unsigned io_timeout_ms =
      static_cast<unsigned>(args.get_long("io-timeout-ms", 5000, 10, 3600000));
  qs::service::Client client(socket, io_timeout_ms);

  if (args.has("ping")) {
    const bool up = client.ping();
    std::cout << (up ? "daemon is up\n" : "no reply\n");
    return up ? 0 : 4;
  }
  if (args.has("stats")) {
    try {
      std::cout << client.stats();
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "error: stats fetch failed: " << e.what() << "\n";
      return 4;
    }
  }

  setup_observability(args);
  qs::service::SolveRequest request = parse_request(args);
  // Mint here (not in Client::solve) so every retry reuses one trace id and
  // we can print it for matching against the daemon's trace.
  request.trace_id = qs::obs::mint_trace_id();
  const qs::service::ClientOutcome outcome =
      client.solve_with_retry(request, parse_policy(args));
  const qs::service::SolveReply& reply = outcome.reply;

  if (!outcome.last_error.empty() &&
      reply.status == qs::service::StatusCode::internal_error) {
    std::cerr << "error: no reply after " << outcome.attempts
              << " attempt(s) (" << outcome.backoff_ms
              << " ms backoff): " << outcome.last_error << "\n";
    return 4;
  }
  if (reply.status != qs::service::StatusCode::ok) {
    std::cerr << "error: " << to_string(reply.status)
              << (reply.message.empty() ? "" : ": " + reply.message)
              << " (after " << outcome.attempts << " attempt(s))\n";
    return 3;
  }

  if (args.has("quiet")) {
    std::cout.precision(15);
    std::cout << reply.eigenvalue << "\n";
    export_observability(args);
    return 0;
  }
  std::cout.precision(12);
  if (args.has("trace-json")) {
    char hex[32];
    std::snprintf(hex, sizeof hex, "0x%016llx",
                  static_cast<unsigned long long>(request.trace_id));
    std::cout << "trace id " << hex << "\n";
  }
  std::cout << "lambda_0 = " << reply.eigenvalue
            << "   residual = " << reply.residual
            << "   iterations = " << reply.iterations
            << (reply.cache_hit ? "   [cache hit]" : "") << "\n"
            << "service: queue wait " << reply.queue_wait_ms
            << " ms, batch width " << reply.batch_width;
  if (request.deadline_ms > 0) {
    std::cout << ", deadline slack " << reply.deadline_slack_ms << " ms";
  }
  if (outcome.attempts > 1) {
    std::cout << ", " << outcome.attempts << " attempt(s), "
              << outcome.backoff_ms << " ms backoff";
  }
  std::cout << "\n\nclass concentrations:\n";
  for (std::size_t k = 0; k < reply.class_concentrations.size(); ++k) {
    std::cout << "  [Gamma_" << k << "] = " << reply.class_concentrations[k]
              << "\n";
  }
  export_observability(args);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(qs::ArgParser(argc, argv));
  } catch (const CliError& e) {
    std::cerr << "error: " << e.message << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
