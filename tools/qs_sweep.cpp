// qs_sweep — error-rate sweeps and threshold detection from the command
// line (Figure-1-style studies on arbitrary parameters).
//
//   qs_sweep --nu 20 --landscape single-peak --peak 2 --from 0.001 --to 0.09
//            --points 120 --csv sweep.csv
//   qs_sweep --nu 50 --landscape linear --f0 2 --fnu 1 --threshold
//   qs_sweep --nu 14 --landscape random --c 5 --sigma 1 --seed 3
//            --from 0.005 --to 0.05 --points 10      # full solver per point
//
// Error-class landscapes (single-peak / linear) ride on the exact reduced
// solver and support huge nu; the random landscape runs the warm-started
// Fmmp power iteration per grid point.
#include <fstream>
#include <iostream>

#include "quasispecies.hpp"
#include "support/args.hpp"

namespace {

void print_usage() {
  std::cout <<
      "qs_sweep — error-rate sweeps of the quasispecies model\n\n"
      "  --nu N               chain length\n"
      "  --landscape KIND     single-peak (--peak/--rest), linear (--f0/--fnu),\n"
      "                       or random (--c/--sigma/--seed; full solver, nu <= 20)\n"
      "  --from P --to P      error-rate bracket (default 0.001 .. 0.09)\n"
      "  --points K           grid points (default 60)\n"
      "  --csv FILE           write the sweep as CSV (default: stdout)\n"
      "  --threshold          also locate p_max by bisection (error-class only)\n"
      "  --trace-json FILE    write a Chrome trace-event JSON of the sweep\n"
      "                       (span events need a QS_ENABLE_TRACING build)\n"
      "  --metrics FILE       write an aggregate metrics snapshot (JSON, or\n"
      "                       CSV when FILE ends in .csv)\n"
      "  --help               this text\n";
}

struct CliError {
  std::string message;
};

/// Shared --trace-json/--metrics handling (same flags as qs_solve).
void setup_observability(const qs::ArgParser& args) {
  if (!args.has("trace-json") && !args.has("metrics")) return;
  if (qs::obs::compiled_in()) {
    qs::obs::set_enabled(true);
  } else if (args.has("trace-json")) {
    std::cerr << "warning: this binary was built without QS_ENABLE_TRACING; "
                 "the trace will contain no span events\n";
  }
}

void export_observability(const qs::ArgParser& args) {
  if (args.has("trace-json") &&
      !qs::obs::write_chrome_trace_file(args.get("trace-json", ""))) {
    std::cerr << "warning: could not write trace to "
              << args.get("trace-json", "") << "\n";
  }
  if (args.has("metrics") &&
      !qs::obs::write_metrics_file(args.get("metrics", ""))) {
    std::cerr << "warning: could not write metrics to "
              << args.get("metrics", "") << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const qs::ArgParser args(argc, argv);
    if (args.has("help")) {
      print_usage();
      return 0;
    }
    const unsigned nu = static_cast<unsigned>(args.get_long("nu", 0, 1, 1000));
    if (nu == 0) throw CliError{"--nu is required (try --help)"};
    const double from = args.get_double("from", 0.001, 1e-9, 0.5);
    const double to = args.get_double("to", 0.09, from, 0.5);
    const std::size_t points =
        static_cast<std::size_t>(args.get_long("points", 60, 2, 100000));
    const std::string kind = args.get("landscape", "single-peak");
    const auto grid = qs::analysis::error_rate_grid(from, to, points);
    setup_observability(args);

    qs::analysis::SweepResult sweep;
    std::optional<qs::core::ErrorClassLandscape> ecl;
    if (kind == "single-peak") {
      ecl = qs::core::ErrorClassLandscape::single_peak(
          nu, args.get_double("peak", 2.0, 1e-12, 1e12),
          args.get_double("rest", 1.0, 1e-12, 1e12));
    } else if (kind == "linear") {
      ecl = qs::core::ErrorClassLandscape::linear(
          nu, args.get_double("f0", 2.0, 1e-12, 1e12),
          args.get_double("fnu", 1.0, 1e-12, 1e12));
    }

    qs::Timer timer;
    if (ecl.has_value()) {
      sweep = qs::analysis::sweep_error_rates(*ecl, grid);
    } else if (kind == "random") {
      if (nu > 20) throw CliError{"full-solver sweeps need --nu <= 20"};
      const double c = args.get_double("c", 5.0, 1e-12, 1e12);
      const auto landscape = qs::core::Landscape::random(
          nu, c, args.get_double("sigma", 1.0, 1e-12, c / 2 * (1 - 1e-9)),
          static_cast<std::uint64_t>(args.get_long("seed", 1, 0, 1L << 62)));
      sweep = qs::analysis::sweep_error_rates(landscape, grid);
    } else {
      throw CliError{"unknown landscape kind '" + kind + "'"};
    }
    const double seconds = timer.seconds();

    if (args.has("csv")) {
      std::ofstream file(args.get("csv", ""));
      qs::analysis::write_sweep_csv(sweep, file);
      std::cout << "wrote " << grid.size() << "-point sweep to "
                << args.get("csv", "") << " (" << seconds << " s)\n";
    } else {
      qs::analysis::write_sweep_csv(sweep, std::cout);
    }

    if (args.has("threshold")) {
      if (!ecl.has_value()) {
        throw CliError{"--threshold requires an error-class landscape"};
      }
      const auto pmax = qs::analysis::find_error_threshold(*ecl);
      if (pmax.has_value()) {
        std::cout << "error threshold p_max = " << *pmax << "\n";
      } else {
        std::cout << "no error threshold in the bracket\n";
      }
      std::cout << "transition kink strength = "
                << qs::analysis::transition_kink(*ecl, from, to) << "\n";
    }

    auto& m = qs::obs::metrics();
    m.set_info("tool", "qs_sweep");
    m.set_info("landscape", kind);
    m.set_value("nu", nu);
    m.set_value("points", static_cast<double>(grid.size()));
    m.set_value("p_from", from);
    m.set_value("p_to", to);
    m.set_value("sweep_seconds", seconds);
    export_observability(args);
    return 0;
  } catch (const CliError& e) {
    std::cerr << "error: " << e.message << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
