// qs_top — one-shot pretty-printer for a live qs_serve daemon.
//
//   qs_top --socket /tmp/qs_serve.sock
//   qs_top --file stats.txt          # render a saved scrape instead
//
// Fetches the daemon's STATS exposition (the same text qs_client --stats
// prints verbatim) and renders it as a human-oriented dashboard: uptime and
// throughput, queue admission counters, cache effectiveness, the request
// mix by landscape kind, and one latency row per histogram with
// p50/p90/p99/max.  One shot, no curses: run it under `watch` for a live
// view.  Exit 0 on success, 4 when the daemon is unreachable, 2 for bad
// arguments.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "quasispecies.hpp"
#include "support/args.hpp"

namespace {

void print_usage() {
  std::cout <<
      "qs_top — one-shot dashboard for the qs_serve daemon\n\n"
      "  --socket PATH       daemon socket (default /tmp/qs_serve.sock)\n"
      "  --io-timeout-ms T   per-chunk read/write timeout (default 5000)\n"
      "  --file FILE         render a saved stats exposition instead of\n"
      "                      querying a daemon (scraping pipelines, tests)\n"
      "  --raw               print the exposition verbatim after the dashboard\n"
      "  --help              this text\n";
}

struct CliError {
  std::string message;
};

/// One parsed histogram row: family is qs_latency_seconds or qs_ratio.
struct HistRow {
  std::string family;
  std::string op;
  double count = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Collects every {op=...} histogram in the exposition, keyed in first-seen
/// order.  The exposition emits all six stats per op consecutively, but the
/// parser tolerates any order.
std::vector<HistRow> parse_hist_rows(const std::string& text) {
  std::vector<HistRow> rows;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t brace = line.find("{op=\"");
    if (brace == std::string::npos) continue;
    const std::string family = line.substr(0, brace);
    const std::size_t op_begin = brace + 5;
    const std::size_t op_end = line.find('"', op_begin);
    const std::size_t stat_begin = line.find(",stat=\"", op_end);
    if (op_end == std::string::npos || stat_begin == std::string::npos) continue;
    const std::size_t stat_val = stat_begin + 7;
    const std::size_t stat_end = line.find('"', stat_val);
    const std::size_t space = line.find(' ', stat_end);
    if (stat_end == std::string::npos || space == std::string::npos) continue;
    const std::string op = line.substr(op_begin, op_end - op_begin);
    const std::string stat = line.substr(stat_val, stat_end - stat_val);
    const double value = std::strtod(line.c_str() + space + 1, nullptr);

    HistRow* row = nullptr;
    for (HistRow& r : rows) {
      if (r.op == op && r.family == family) row = &r;
    }
    if (row == nullptr) {
      rows.push_back(HistRow{family, op, 0, 0, 0, 0, 0});
      row = &rows.back();
    }
    if (stat == "count") row->count = value;
    else if (stat == "p50") row->p50 = value;
    else if (stat == "p90") row->p90 = value;
    else if (stat == "p99") row->p99 = value;
    else if (stat == "max") row->max = value;
  }
  return rows;
}

double metric_or_zero(const std::string& text, const std::string& metric) {
  return qs::service::stats_value(text, metric).value_or(0.0);
}

std::string format_seconds(double v) {
  char buf[32];
  if (v >= 1.0) std::snprintf(buf, sizeof buf, "%8.3f s", v);
  else if (v >= 1e-3) std::snprintf(buf, sizeof buf, "%7.3f ms", v * 1e3);
  else std::snprintf(buf, sizeof buf, "%7.1f us", v * 1e6);
  return buf;
}

void render(const std::string& text, const std::string& source) {
  const double uptime = metric_or_zero(text, "qs_uptime_seconds");
  const auto count = [&](const std::string& m) {
    return static_cast<std::uint64_t>(metric_or_zero(text, m));
  };
  std::printf("qs_serve %s — up %.1f s, %llu connection(s), %llu completed\n\n",
              source.c_str(), uptime,
              static_cast<unsigned long long>(count("qs_connections_total")),
              static_cast<unsigned long long>(count("qs_completed_total")));

  std::printf(
      "queue   depth %llu | accepted %llu | shed %llu | refused %llu | "
      "expired %llu | %llu batch(es) from %llu pop(s)\n",
      static_cast<unsigned long long>(count("qs_queue_depth")),
      static_cast<unsigned long long>(count("qs_queue_total{event=\"accepted\"}")),
      static_cast<unsigned long long>(
          count("qs_queue_total{event=\"rejected_overload\"}")),
      static_cast<unsigned long long>(
          count("qs_queue_total{event=\"rejected_closed\"}")),
      static_cast<unsigned long long>(count("qs_queue_total{event=\"expired\"}")),
      static_cast<unsigned long long>(count("qs_queue_total{event=\"batches\"}")),
      static_cast<unsigned long long>(count("qs_queue_total{event=\"popped\"}")));

  const double hits = metric_or_zero(text, "qs_cache_total{event=\"hits\"}");
  const double misses = metric_or_zero(text, "qs_cache_total{event=\"misses\"}");
  const double lookups = hits + misses;
  std::printf(
      "cache   hits %llu | misses %llu | hit rate %.1f%% | stores %llu | "
      "quarantined %llu | collisions %llu\n",
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses),
      lookups > 0.0 ? 100.0 * hits / lookups : 0.0,
      static_cast<unsigned long long>(count("qs_cache_total{event=\"stores\"}")),
      static_cast<unsigned long long>(
          count("qs_cache_total{event=\"quarantined\"}")),
      static_cast<unsigned long long>(
          count("qs_cache_total{event=\"collisions\"}")));

  std::printf(
      "mix     single-peak %llu | linear %llu | random %llu | flat %llu\n",
      static_cast<unsigned long long>(
          count("qs_requests_total{landscape=\"single-peak\"}")),
      static_cast<unsigned long long>(
          count("qs_requests_total{landscape=\"linear\"}")),
      static_cast<unsigned long long>(
          count("qs_requests_total{landscape=\"random\"}")),
      static_cast<unsigned long long>(
          count("qs_requests_total{landscape=\"flat\"}")));

  const std::vector<HistRow> rows = parse_hist_rows(text);
  bool latency_header = false;
  for (const HistRow& r : rows) {
    if (r.family != "qs_latency_seconds") continue;
    if (!latency_header) {
      std::printf("\n%-24s %10s %10s %10s %10s %10s\n", "latency", "count",
                  "p50", "p90", "p99", "max");
      latency_header = true;
    }
    std::printf("  %-22s %10llu %10s %10s %10s %10s\n", r.op.c_str(),
                static_cast<unsigned long long>(r.count),
                format_seconds(r.p50).c_str(), format_seconds(r.p90).c_str(),
                format_seconds(r.p99).c_str(), format_seconds(r.max).c_str());
  }
  bool ratio_header = false;
  for (const HistRow& r : rows) {
    if (r.family != "qs_ratio") continue;
    if (!ratio_header) {
      std::printf("\n%-24s %10s %10s %10s %10s %10s\n", "ratios", "count",
                  "p50", "p90", "p99", "max");
      ratio_header = true;
    }
    std::printf("  %-22s %10llu %10.4f %10.4f %10.4f %10.4f\n", r.op.c_str(),
                static_cast<unsigned long long>(r.count), r.p50, r.p90, r.p99,
                r.max);
  }
}

int run(const qs::ArgParser& args) {
  if (args.has("help")) {
    print_usage();
    return 0;
  }
  std::string text;
  std::string source;
  if (args.has("file")) {
    const std::string path = args.get("file", "");
    std::ifstream in(path);
    if (!in) throw CliError{"cannot open stats file '" + path + "'"};
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
    source = "(" + path + ")";
  } else {
    const std::filesystem::path socket =
        args.get("socket", "/tmp/qs_serve.sock");
    const unsigned io_timeout_ms = static_cast<unsigned>(
        args.get_long("io-timeout-ms", 5000, 10, 3600000));
    qs::service::Client client(socket, io_timeout_ms);
    try {
      text = client.stats();
    } catch (const std::exception& e) {
      std::cerr << "error: cannot fetch stats from " << socket.string() << ": "
                << e.what() << "\n";
      return 4;
    }
    source = "on " + socket.string();
  }
  render(text, source);
  if (args.has("raw")) {
    std::printf("\n-- raw exposition --\n%s", text.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(qs::ArgParser(argc, argv));
  } catch (const CliError& e) {
    std::cerr << "error: " << e.message << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
