// bench_diff — machine-checkable guard over the BENCH_*.json perf trajectory.
//
// Diffs two benchmark JSON files (a committed baseline and a fresh run) and
// exits nonzero when any *pinned* row regressed by more than the threshold.
// Pinned rows are the timing leaves: numeric values whose key ends in "_s"
// or "seconds" (the convention every BENCH_*.json in this repo follows —
// fig2's fmmp_*_s / panel seconds, ensemble_throughput's *_seconds, ...).
// Derived ratios (speedups), counts, and metadata are reported but never
// fail the diff: they move whenever their inputs move, and the timings are
// the ground truth.
//
// Rows are matched by a structural path.  Array elements that carry
// identifying keys (nu, backend, m, p, R, name) are addressed by those keys
// instead of their index — "rows[nu=16].panel[backend=serial,m=8].seconds"
// — so inserting a new nu row into a benchmark does not misalign every
// later comparison.
//
// Usage:
//   bench_diff BASELINE.json CANDIDATE.json [--threshold PCT] [--pin SUBSTR]
//              [--list]
//
//   --threshold PCT  allowed slowdown per pinned row, percent (default 10)
//   --pin SUBSTR     only compare pinned keys containing SUBSTR
//   --list           print the pinned keys of BASELINE and exit
//
// Exit codes: 0 = no pinned regression, 1 = at least one pinned row
// regressed (or went missing), 2 = usage or parse error.  Improvements
// never fail, and keys new in the candidate are informational only.
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "support/args.hpp"

namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader.  Only what the BENCH files need:
// objects, arrays, numbers, strings, true/false/null.  On malformed input it
// throws std::runtime_error with a byte offset.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { object, array, number, string, boolean, null } kind;
  double number = 0.0;
  bool boolean = false;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> members;  // object, in order
  std::vector<JsonValue> elements;                         // array

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON error at byte " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::string;
        v.string = string_literal();
        return v;
      }
      case 't': literal("true"); return boolean_value(true);
      case 'f': literal("false"); return boolean_value(false);
      case 'n': {
        literal("null");
        JsonValue v;
        v.kind = JsonValue::Kind::null;
        return v;
      }
      default: return number();
    }
  }

  static JsonValue boolean_value(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::boolean;
    v.boolean = b;
    return v;
  }

  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string_literal();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.elements.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string_literal() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            // BENCH files are plain ASCII; skip the four hex digits.
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            pos_ += 4;
            out += '?';
            break;
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::number;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Flattening: JSON tree -> path -> numeric leaf.
// ---------------------------------------------------------------------------

/// Keys that identify an array element better than its index.  Checked in
/// this order; every match is appended, so a fig2 panel row flattens to
/// [backend=serial,m=8] and survives row insertions in either dimension.
const char* const kIdentifyingKeys[] = {"nu", "backend", "m", "p", "R",
                                        "replicas", "name", "label"};

std::string element_tag(const JsonValue& element, std::size_t index) {
  if (element.kind == JsonValue::Kind::object) {
    std::string tag;
    for (const char* key : kIdentifyingKeys) {
      const JsonValue* id = element.find(key);
      if (id == nullptr) continue;
      if (!tag.empty()) tag += ',';
      tag += key;
      tag += '=';
      if (id->kind == JsonValue::Kind::string) {
        tag += id->string;
      } else if (id->kind == JsonValue::Kind::number) {
        std::ostringstream os;
        os << id->number;
        tag += os.str();
      }
    }
    if (!tag.empty()) return tag;
  }
  return std::to_string(index);
}

void flatten(const JsonValue& v, const std::string& path,
             std::map<std::string, double>& out) {
  switch (v.kind) {
    case JsonValue::Kind::object:
      for (const auto& [key, child] : v.members) {
        flatten(child, path.empty() ? key : path + "." + key, out);
      }
      break;
    case JsonValue::Kind::array:
      for (std::size_t i = 0; i < v.elements.size(); ++i) {
        flatten(v.elements[i], path + "[" + element_tag(v.elements[i], i) + "]",
                out);
      }
      break;
    case JsonValue::Kind::number:
      out[path] = v.number;
      break;
    default:
      break;  // strings/booleans/null: metadata, not comparable rows
  }
}

/// A pinned row is a timing: its key's final segment ends in "_s" or
/// "seconds".  Everything else (speedups, candidate counts, nu, n, ...) is
/// context.
bool pinned(const std::string& path) {
  const std::size_t dot = path.find_last_of('.');
  const std::string leaf = dot == std::string::npos ? path : path.substr(dot + 1);
  auto ends_with = [&leaf](const std::string& suffix) {
    return leaf.size() >= suffix.size() &&
           leaf.compare(leaf.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  return ends_with("_s") || ends_with("seconds");
}

std::map<std::string, double> load_rows(const std::string& file) {
  std::ifstream in(file);
  if (!in) throw std::runtime_error("cannot open " + file);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonReader reader(buffer.str());
  const JsonValue root = reader.parse();
  std::map<std::string, double> rows;
  flatten(root, "", rows);
  return rows;
}

void usage(std::ostream& os) {
  os << "usage: bench_diff BASELINE.json CANDIDATE.json [--threshold PCT]\n"
        "                  [--pin SUBSTR] [--list]\n"
        "Compares the pinned timing rows (keys ending in _s/seconds) of two\n"
        "BENCH_*.json files; exits 1 when any pinned row of BASELINE is\n"
        "missing from CANDIDATE or slower by more than PCT percent\n"
        "(default 10).  Improvements and non-timing rows never fail.\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const qs::ArgParser args(argc, argv);
    if (args.has("help")) {
      usage(std::cout);
      return EXIT_SUCCESS;
    }
    if (args.positional().size() < 1 ||
        (args.positional().size() < 2 && !args.has("list"))) {
      usage(std::cerr);
      return 2;
    }
    const double threshold = args.get_double("threshold", 10.0, 0.0, 1e6);
    const std::string pin = args.get("pin", "");

    const auto base = load_rows(args.positional()[0]);

    if (args.has("list")) {
      for (const auto& [key, value] : base) {
        if (pinned(key) && (pin.empty() || key.find(pin) != std::string::npos)) {
          std::cout << key << " = " << value << "\n";
        }
      }
      return EXIT_SUCCESS;
    }

    const auto cand = load_rows(args.positional()[1]);

    std::size_t compared = 0, regressed = 0, missing = 0, improved = 0;
    for (const auto& [key, base_value] : base) {
      if (!pinned(key)) continue;
      if (!pin.empty() && key.find(pin) == std::string::npos) continue;
      const auto it = cand.find(key);
      if (it == cand.end()) {
        // A pinned baseline row the candidate no longer reports is itself a
        // regression of the guard's coverage — fail loudly, not silently.
        std::cerr << "MISSING  " << key << " (baseline " << base_value
                  << ")\n";
        ++missing;
        continue;
      }
      ++compared;
      const double cand_value = it->second;
      if (base_value <= 0.0) continue;  // degenerate timing; nothing to pin
      const double delta_pct = (cand_value / base_value - 1.0) * 100.0;
      if (delta_pct > threshold) {
        std::cerr << "REGRESSED " << key << ": " << base_value << " -> "
                  << cand_value << " (+" << delta_pct << "% > " << threshold
                  << "%)\n";
        ++regressed;
      } else if (delta_pct < -threshold) {
        ++improved;
      }
    }

    std::cout << "bench_diff: " << compared << " pinned row(s) compared, "
              << regressed << " regressed, " << missing << " missing, "
              << improved << " improved beyond " << threshold << "%\n";
    if (compared == 0 && missing == 0) {
      std::cerr << "bench_diff: no pinned rows matched";
      if (!pin.empty()) std::cerr << " --pin '" << pin << "'";
      std::cerr << " — nothing was checked\n";
      return 2;
    }
    return (regressed != 0 || missing != 0) ? EXIT_FAILURE : EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << "bench_diff: " << e.what() << "\n";
    return 2;
  }
}
