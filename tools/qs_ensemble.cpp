// qs_ensemble — panel-batched finite-population replica ensembles from the
// command line.
//
//   qs_ensemble --nu 10 --p 0.03 --pop 5000 --replicas 32 --generations 400
//   qs_ensemble --nu 8 --pop 1000 --replicas 16 --p-from 0.01 --p-to 0.11
//               --p-points 6 --ensemble-out smearing.json
//
// Runs R independent Wright-Fisher (or Moran) replicas with their
// per-generation mutation products batched through the panel Fmmp path,
// and reports the ensemble mean / spread of the species frequencies
// against the deterministic (infinite-population) quasispecies.  With a
// --p-from/--p-to grid it sweeps the error rate — the finite-N
// error-threshold smearing experiment: where the deterministic master
// concentration drops as a step at p_max, the finite-N ensemble mean
// crosses over smoothly, with a cross-replica spread that peaks near the
// threshold.
#include <fstream>
#include <iostream>
#include <vector>

#include "quasispecies.hpp"
#include "support/args.hpp"

namespace {

void print_usage() {
  std::cout <<
      "qs_ensemble — finite-population replica ensembles, panel-batched\n\n"
      "  --nu N             chain length (<= 20 for ensembles)\n"
      "  --p RATE           per-position error rate (single run), or\n"
      "  --p-from A --p-to B --p-points K   error-rate sweep (smearing)\n"
      "  --pop SIZE         population size per replica (default 10000)\n"
      "  --replicas R       independent replicas (default 16)\n"
      "  --generations G    generations per replica (default 400; the second\n"
      "                     half is time-averaged unless --window is given)\n"
      "  --window W         explicit time-averaging window\n"
      "  --process KIND     wright-fisher (default) or moran\n"
      "  --backend KIND     serial (default), openmp, or thread-pool\n"
      "  --panel-width M    columns per interleaved panel (default 8)\n"
      "  --sequential       per-replica single-vector products (reference\n"
      "                     path; the default is the batched panel path)\n"
      "  --landscape KIND   single-peak (--peak/--rest, default 2/1) or\n"
      "                     random (--c/--sigma)\n"
      "  --seed S           root seed of the per-replica RNG streams\n"
      "  --start KIND       master (default) or uniform\n"
      "  --ensemble-out F   machine-readable JSON of the ensemble statistics\n"
      "  --trace-json FILE  Chrome trace-event JSON of the run\n"
      "  --metrics FILE     aggregate metrics snapshot (JSON/CSV)\n"
      "  --help             this text\n";
}

struct CliError {
  std::string message;
};

void setup_observability(const qs::ArgParser& args) {
  if (!args.has("trace-json") && !args.has("metrics")) return;
  if (qs::obs::compiled_in()) {
    qs::obs::set_enabled(true);
  } else if (args.has("trace-json")) {
    std::cerr << "warning: this binary was built without QS_ENABLE_TRACING; "
                 "the trace will contain no span events\n";
  }
}

void export_observability(const qs::ArgParser& args) {
  if (args.has("trace-json") &&
      !qs::obs::write_chrome_trace_file(args.get("trace-json", ""))) {
    std::cerr << "warning: could not write trace to "
              << args.get("trace-json", "") << "\n";
  }
  if (args.has("metrics") &&
      !qs::obs::write_metrics_file(args.get("metrics", ""))) {
    std::cerr << "warning: could not write metrics to "
              << args.get("metrics", "") << "\n";
  }
}

struct SweepPoint {
  double p = 0.0;
  double deterministic_master = 0.0;
  double deterministic_eigenvalue = 0.0;
  qs::stochastic::EnsembleStatistics stats;
  double seconds = 0.0;
};

void write_ensemble_json(const std::string& path, unsigned nu,
                         const qs::stochastic::EnsembleOptions& options,
                         const std::string& backend,
                         const std::vector<SweepPoint>& points) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: could not write " << path << "\n";
    return;
  }
  out.precision(12);
  out << "{\n  \"tool\": \"qs_ensemble\",\n  \"nu\": " << nu
      << ",\n  \"replicas\": " << options.replicas
      << ",\n  \"population\": " << options.population_size
      << ",\n  \"panel_width\": " << options.panel_width
      << ",\n  \"backend\": \"" << backend << "\",\n  \"process\": \""
      << (options.process == qs::stochastic::EnsembleProcess::moran
              ? "moran"
              : "wright-fisher")
      << "\",\n  \"seed\": " << options.seed << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& pt = points[i];
    out << "    {\"p\": " << pt.p
        << ", \"deterministic_master\": " << pt.deterministic_master
        << ", \"deterministic_eigenvalue\": " << pt.deterministic_eigenvalue
        << ", \"master_mean\": " << pt.stats.master_mean
        << ", \"master_std\": " << pt.stats.master_std
        << ", \"mean_fitness\": " << pt.stats.mean_fitness
        << ", \"seconds\": " << pt.seconds << ", \"class_mean\": [";
    for (std::size_t k = 0; k < pt.stats.class_mean.size(); ++k) {
      out << pt.stats.class_mean[k]
          << (k + 1 < pt.stats.class_mean.size() ? ", " : "");
    }
    out << "]}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const qs::ArgParser args(argc, argv);
    if (args.has("help")) {
      print_usage();
      return 0;
    }
    const unsigned nu = static_cast<unsigned>(args.get_long("nu", 0, 1, 20));
    if (nu == 0) throw CliError{"--nu is required (try --help)"};

    std::vector<double> p_grid;
    if (args.has("p-from") || args.has("p-to")) {
      const double from = args.get_double("p-from", 0.01, 1e-12, 0.5);
      const double to = args.get_double("p-to", 0.1, from, 0.5);
      const long points = args.get_long("p-points", 5, 2, 1000);
      for (long i = 0; i < points; ++i) {
        p_grid.push_back(from + (to - from) * static_cast<double>(i) /
                                    static_cast<double>(points - 1));
      }
    } else {
      const double p = args.get_double("p", 0.0, 1e-12, 0.5);
      if (p == 0.0) {
        throw CliError{"--p (or --p-from/--p-to) is required (try --help)"};
      }
      p_grid.push_back(p);
    }

    qs::stochastic::EnsembleOptions options;
    options.replicas =
        static_cast<std::size_t>(args.get_long("replicas", 16, 1, 100000));
    options.population_size =
        static_cast<std::uint64_t>(args.get_long("pop", 10000, 2, 100000000));
    options.panel_width =
        static_cast<std::size_t>(args.get_long("panel-width", 8, 1, 64));
    options.seed = static_cast<std::uint64_t>(args.get_long("seed", 1, 0, 1L << 62));
    options.start_uniform = args.get("start", "master") == "uniform";
    const std::string process = args.get("process", "wright-fisher");
    if (process == "moran") {
      options.process = qs::stochastic::EnsembleProcess::moran;
    } else if (process != "wright-fisher") {
      throw CliError{"unknown process '" + process + "'"};
    }

    const auto generations =
        static_cast<std::uint64_t>(args.get_long("generations", 400, 1, 10000000));
    const auto window = static_cast<std::uint64_t>(args.get_long(
        "window", static_cast<long>(generations / 2), 0,
        static_cast<long>(generations)));
    const bool batched = !args.has("sequential");

    const std::string backend_name = args.get("backend", "serial");
    qs::parallel::Backend backend = qs::parallel::Backend::serial;
    if (backend_name == "openmp") {
      backend = qs::parallel::Backend::openmp;
    } else if (backend_name == "thread-pool") {
      backend = qs::parallel::Backend::thread_pool;
    } else if (backend_name != "serial") {
      throw CliError{"unknown backend '" + backend_name + "'"};
    }
    const auto engine = qs::parallel::make_engine(backend);
    setup_observability(args);

    const std::string kind = args.get("landscape", "single-peak");
    auto landscape = [&]() -> qs::core::Landscape {
      if (kind == "single-peak") {
        return qs::core::Landscape::single_peak(
            nu, args.get_double("peak", 2.0, 1e-12, 1e12),
            args.get_double("rest", 1.0, 1e-12, 1e12));
      }
      if (kind == "random") {
        const double c = args.get_double("c", 5.0, 1e-12, 1e12);
        return qs::core::Landscape::random(
            nu, c, args.get_double("sigma", 1.0, 1e-12, c / 2 * (1 - 1e-9)),
            options.seed);
      }
      throw CliError{"unknown landscape kind '" + kind + "'"};
    }();

    std::cout << "ensemble: nu = " << nu << ", N_pop = " << options.population_size
              << ", R = " << options.replicas << " replicas, " << generations
              << " generations (window " << window << "), process = " << process
              << ", backend = " << engine->name() << " x" << engine->concurrency()
              << ", " << (batched ? "panel-batched" : "sequential")
              << " (m = " << options.panel_width << ")\n\n";

    qs::TextTable table({"p", "det [G0]", "ens mean [G0]", "ens std [G0]",
                        "mean fitness", "det lambda0", "[s]"});
    // SIGINT/SIGTERM stop the replica loop at the next generation boundary;
    // the completed generations still produce statistics and the partial
    // sweep is flushed to --ensemble-out before exiting nonzero.
    qs::install_shutdown_handlers();
    bool interrupted = false;
    std::uint64_t interrupted_after = 0;
    std::vector<SweepPoint> points;
    for (double p : p_grid) {
      const auto model = qs::core::MutationModel::uniform(nu, p);
      const auto deterministic = qs::solvers::solve(model, landscape);

      qs::stochastic::ReplicaEnsemble ensemble(model, landscape, options,
                                               engine.get());
      qs::Timer timer;
      ensemble.run(generations, window, batched,
                   [] { return qs::shutdown_requested(); });
      SweepPoint pt;
      pt.seconds = timer.seconds();
      pt.p = p;
      pt.deterministic_master = deterministic.class_concentrations[0];
      pt.deterministic_eigenvalue = deterministic.eigenvalue;
      pt.stats = ensemble.statistics();
      ensemble.record_metrics(pt.stats);
      table.add_row_numeric(
          qs::format_short(p),
          {pt.deterministic_master, pt.stats.master_mean, pt.stats.master_std,
           pt.stats.mean_fitness, pt.deterministic_eigenvalue, pt.seconds});
      points.push_back(std::move(pt));
      if (ensemble.cancelled()) {
        interrupted = true;
        interrupted_after = ensemble.generations_completed();
        break;
      }
    }
    table.print(std::cout);
    if (p_grid.size() > 1) {
      std::cout << "\nexpected shape: the deterministic [G0] column steps down "
                   "near p_max while the ensemble mean crosses over smoothly; "
                   "the cross-replica std peaks near the threshold (finite-N "
                   "smearing).\n";
    }

    if (args.has("ensemble-out")) {
      write_ensemble_json(args.get("ensemble-out", ""), nu, options,
                          std::string(engine->name()), points);
    }

    auto& m = qs::obs::metrics();
    m.set_info("tool", "qs_ensemble");
    m.set_value("nu", nu);
    m.set_value("generations", static_cast<double>(generations));
    m.set_value("sweep_points", static_cast<double>(points.size()));
    export_observability(args);
    if (interrupted) {
      std::cerr << "interrupted by signal after " << interrupted_after
                << " generation(s) at p = " << points.back().p << "; the "
                << points.size() << " completed point(s) were written\n";
      return 130;
    }
    return 0;
  } catch (const CliError& e) {
    std::cerr << "error: " << e.message << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
