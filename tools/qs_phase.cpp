// qs_phase — two-dimensional phase diagram of the error threshold.
//
//   qs_phase --nu 50 --sigma-from 1.2 --sigma-to 10 --sigma-points 20
//            --csv phase.csv
//
// For a grid of selective advantages sigma (single-peak landscapes), the
// critical error rate p_max(sigma) is located with the exact reduced solver
// and printed next to the classic infinite-chain prediction
// p_max ~ ln(sigma) / nu.  The CSV has one row per sigma; with --alphabet A
// the scan runs over the A-letter model instead (threshold vs alphabet
// size).
#include <cmath>
#include <fstream>
#include <iostream>

#include "quasispecies.hpp"
#include "support/args.hpp"

namespace {

void print_usage() {
  std::cout <<
      "qs_phase — error-threshold phase boundary p_max(sigma)\n\n"
      "  --nu N               chain length (reduced solver; up to 1000)\n"
      "  --sigma-from S       smallest peak advantage (default 1.2)\n"
      "  --sigma-to S         largest peak advantage (default 10)\n"
      "  --sigma-points K     grid points (default 15)\n"
      "  --alphabet A         alphabet size (default 2 = binary)\n"
      "  --uniformity-tol T   uniformity tolerance for the detector\n"
      "                       (default 0.01)\n"
      "  --csv FILE           write the boundary as CSV\n"
      "  --help               this text\n";
}

struct CliError {
  std::string message;
};

/// p_max for the A-letter single-peak model by bisection on the master
/// class concentration dropping below `tol`-uniformity.
double locate_threshold(unsigned nu, unsigned alphabet, double sigma, double tol) {
  const auto phi = qs::core::ErrorClassLandscape::single_peak(nu, sigma, 1.0);
  const double random_replication =
      static_cast<double>(alphabet - 1) / static_cast<double>(alphabet);
  double lo = 1e-6, hi = random_replication;
  auto ordered = [&](double mu) {
    const auto r = qs::solvers::solve_reduced_alphabet(mu, alphabet, phi);
    // Uniform share of the master class is ~A^-nu; "ordered" means the
    // master still holds more than `tol` of the population.
    return r.class_concentrations[0] > tol;
  };
  if (!ordered(lo)) return 0.0;  // no ordered phase at all
  for (int step = 0; step < 40; ++step) {
    const double mid = 0.5 * (lo + hi);
    (ordered(mid) ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const qs::ArgParser args(argc, argv);
    if (args.has("help")) {
      print_usage();
      return 0;
    }
    const unsigned nu = static_cast<unsigned>(args.get_long("nu", 50, 2, 1000));
    const unsigned alphabet =
        static_cast<unsigned>(args.get_long("alphabet", 2, 2, 64));
    const double sigma_from = args.get_double("sigma-from", 1.2, 1.0 + 1e-9, 1e6);
    const double sigma_to = args.get_double("sigma-to", 10.0, sigma_from, 1e6);
    const auto points =
        static_cast<std::size_t>(args.get_long("sigma-points", 15, 2, 10000));
    const double tol = args.get_double("uniformity-tol", 0.01, 1e-12, 0.5);

    std::ofstream csv_file;
    std::ostream* out = &std::cout;
    if (args.has("csv")) {
      csv_file.open(args.get("csv", ""));
      out = &csv_file;
    }
    qs::CsvWriter csv(*out);
    csv.header({"sigma", "p_max", "theory_ln_sigma_over_nu"});

    std::cout << "phase boundary, nu = " << nu << ", alphabet = " << alphabet
              << "\n  sigma     p_max       ln(sigma)/nu\n";
    for (std::size_t i = 0; i < points; ++i) {
      // Log-spaced sigma grid (the boundary is logarithmic in sigma).
      const double t = static_cast<double>(i) / static_cast<double>(points - 1);
      const double sigma = sigma_from * std::pow(sigma_to / sigma_from, t);
      const double pmax = locate_threshold(nu, alphabet, sigma, tol);
      const double theory = std::log(sigma) / static_cast<double>(nu);
      std::printf("  %-8.4g  %-10.6f  %.6f\n", sigma, pmax, theory);
      csv.row().cell(sigma).cell(pmax).cell(theory);
      csv.end_row();
    }
    if (args.has("csv")) {
      std::cout << "wrote " << points << "-row boundary to " << args.get("csv", "")
                << "\n";
    }
    return 0;
  } catch (const CliError& e) {
    std::cerr << "error: " << e.message << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
