// Ablation: continuation strategy along an error-rate sweep.
//
// Figure-1-style studies solve the same problem across a p grid; each
// solution is a smooth function of p, so consecutive grid points can seed
// each other.  Compared here on one general-landscape sweep:
//
//   cold            every grid point starts from the landscape vector
//   warm            each point starts from the previous eigenvector
//   warm+secant     ... secant-extrapolated one grid step forward
//
// Reported: total power iterations over the grid and wall time.
#include <iostream>

#include "analysis/sweep.hpp"
#include "bench_common.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  const unsigned nu = std::min(14u, bench::env_unsigned("QS_BENCH_MAX_NU", 14));
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 7);
  const auto grid = analysis::error_rate_grid(0.002, 0.05, 40);

  std::cout << "# Ablation: sweep continuation (random landscape, nu = " << nu
            << ", " << grid.size() << " grid points)\n\n";

  TextTable table({"strategy", "total iterations", "iterations/point", "time [s]"});
  CsvWriter csv(std::cout);
  csv.header({"strategy", "total_iterations", "iterations_per_point", "time_s"});

  struct Strategy {
    const char* name;
    bool warm;
    bool extrapolate;
  };
  for (const Strategy s : {Strategy{"cold", false, false},
                           Strategy{"warm", true, false},
                           Strategy{"warm+secant", true, true}}) {
    analysis::SweepOptions opts;
    opts.warm_start = s.warm;
    opts.extrapolate = s.extrapolate;
    Timer t;
    const auto sweep = analysis::sweep_error_rates(landscape, grid, opts);
    const double seconds = t.seconds();
    const double per_point =
        static_cast<double>(sweep.total_iterations) / static_cast<double>(grid.size());
    table.add_row({s.name, std::to_string(sweep.total_iterations),
                   format_short(per_point), format_short(seconds)});
    csv.row().cell(std::string(s.name)).cell(sweep.total_iterations)
        .cell(per_point).cell(seconds);
    csv.end_row();
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nexpected shape: warm starts cut iterations substantially; "
               "the secant extrapolation cuts them again (the eigenvector "
               "drifts nearly linearly between nearby grid points).\n";
  return 0;
}
