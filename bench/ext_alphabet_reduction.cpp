// Extension bench: the Section 5.1 reduction generalised to A-letter
// alphabets (binary, RNA, amino acids).
//
// The reduced (L+1)^2 solve is alphabet-size independent in cost, so whole
// protein-scale problems (20^300 states) run in milliseconds.  This bench
// reports solve times across alphabet sizes and chain lengths, and shows
// how the error threshold moves with the alphabet: a larger alphabet makes
// back-mutation rarer (mu/(A-1)), destabilising the master at lower mu.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "solvers/reduced_alphabet.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  std::cout << "# Alphabet-generalised reduction: cost and threshold vs A\n\n";

  TextTable times({"alphabet A", "length L", "states A^L", "solve [s]", "lambda",
                   "[G0]"});
  CsvWriter csv(std::cout);
  csv.header({"alphabet", "length", "log10_states", "solve_s", "lambda", "g0"});

  struct Case {
    unsigned alphabet;
    unsigned length;
  };
  for (const auto [alphabet, length] :
       {Case{2, 100}, Case{4, 100}, Case{20, 100}, Case{4, 1000}, Case{20, 300}}) {
    const auto phi = core::ErrorClassLandscape::single_peak(length, 5.0, 1.0);
    const double mu = 0.5 / length;
    Timer t;
    const auto r = solvers::solve_reduced_alphabet(mu, alphabet, phi);
    const double seconds = t.seconds();
    const double log10_states = length * std::log10(static_cast<double>(alphabet));
    times.add_row({std::to_string(alphabet), std::to_string(length),
                   "10^" + format_short(log10_states), format_short(seconds),
                   format_short(r.eigenvalue), format_short(r.class_concentrations[0])});
    csv.row().cell(std::size_t{alphabet}).cell(std::size_t{length})
        .cell(log10_states).cell(seconds).cell(r.eigenvalue)
        .cell(r.class_concentrations[0]);
    csv.end_row();
  }
  std::cout << "\n";
  times.print(std::cout);

  // Threshold vs alphabet at fixed L: find the mu where [G0] drops below 1%.
  std::cout << "\n# master-class collapse rate vs alphabet (L = 50, sigma = 2):\n";
  TextTable threshold({"alphabet A", "mu at [G0] < 1%"});
  const auto phi50 = core::ErrorClassLandscape::single_peak(50, 2.0, 1.0);
  for (unsigned alphabet : {2u, 4u, 8u, 20u}) {
    double lo = 1e-4, hi = 0.5;
    for (int step = 0; step < 40; ++step) {
      const double mid = 0.5 * (lo + hi);
      const auto r = solvers::solve_reduced_alphabet(mid, alphabet, phi50);
      (r.class_concentrations[0] > 0.01 ? lo : hi) = mid;
    }
    threshold.add_row({std::to_string(alphabet), format_short(0.5 * (lo + hi))});
  }
  threshold.print(std::cout);
  std::cout << "\nexpected shape: solve cost depends only on L (milliseconds "
               "even at 20^300 states); the collapse point decreases with A "
               "(weaker back-mutation mu/(A-1)).\n";
  return 0;
}
