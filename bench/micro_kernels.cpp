// Kernel-level microbenchmarks (google-benchmark): the primitives every
// solver is built from.  Complexity annotations let `--benchmark_enable_
// random_interleaving` style runs verify the Theta(N log N) scaling claims
// at the kernel level.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/fmmp.hpp"
#include "core/xmvp.hpp"
#include "parallel/engine.hpp"
#include "support/rng.hpp"
#include "transforms/butterfly.hpp"
#include "transforms/fwht.hpp"

namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  qs::Xoshiro256 rng(seed);
  for (double& x : v) x = rng.uniform(0.0, 1.0);
  return v;
}

void BM_Fwht(benchmark::State& state) {
  const std::size_t n = std::size_t{1} << state.range(0);
  auto v = random_vector(n, 1);
  for (auto _ : state) {
    qs::transforms::fwht(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_Fwht)->DenseRange(10, 22, 4)->Complexity(benchmark::oNLogN);

void BM_UniformButterfly(benchmark::State& state) {
  const std::size_t n = std::size_t{1} << state.range(0);
  auto v = random_vector(n, 2);
  for (auto _ : state) {
    qs::transforms::apply_uniform_butterfly(v, 0.01);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_UniformButterfly)->DenseRange(10, 22, 4)->Complexity(benchmark::oNLogN);

void BM_FmmpApply(benchmark::State& state) {
  const unsigned nu = static_cast<unsigned>(state.range(0));
  const std::size_t n = std::size_t{1} << nu;
  const auto model = qs::core::MutationModel::uniform(nu, 0.01);
  const auto landscape = qs::core::Landscape::random(nu, 5.0, 1.0, 3);
  const qs::core::FmmpOperator op(model, landscape);
  auto x = random_vector(n, 4);
  std::vector<double> y(n);
  for (auto _ : state) {
    op.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_FmmpApply)->DenseRange(10, 22, 4)->Complexity(benchmark::oNLogN);

void BM_FmmpApplyEngine(benchmark::State& state) {
  const unsigned nu = static_cast<unsigned>(state.range(0));
  const std::size_t n = std::size_t{1} << nu;
  const auto model = qs::core::MutationModel::uniform(nu, 0.01);
  const auto landscape = qs::core::Landscape::random(nu, 5.0, 1.0, 3);
  const qs::core::FmmpOperator op(model, landscape, qs::core::Formulation::right,
                                  &qs::parallel::parallel_engine());
  auto x = random_vector(n, 4);
  std::vector<double> y(n);
  for (auto _ : state) {
    op.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FmmpApplyEngine)->DenseRange(14, 22, 4);

void BM_XmvpApply(benchmark::State& state) {
  const unsigned nu = static_cast<unsigned>(state.range(0));
  const unsigned d = static_cast<unsigned>(state.range(1));
  const std::size_t n = std::size_t{1} << nu;
  const auto model = qs::core::MutationModel::uniform(nu, 0.01);
  const auto landscape = qs::core::Landscape::random(nu, 5.0, 1.0, 5);
  const qs::core::XmvpOperator op(model, landscape, d);
  auto x = random_vector(n, 6);
  std::vector<double> y(n);
  for (auto _ : state) {
    op.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["patterns"] = static_cast<double>(op.pattern_count());
}
BENCHMARK(BM_XmvpApply)
    ->Args({14, 1})
    ->Args({14, 3})
    ->Args({14, 5})
    ->Args({14, 14})
    ->Args({18, 1})
    ->Args({18, 5});

void BM_EngineReduceSum(benchmark::State& state) {
  const std::size_t n = std::size_t{1} << state.range(0);
  const auto v = random_vector(n, 7);
  const auto& engine = qs::parallel::parallel_engine();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.reduce_sum(v));
  }
}
BENCHMARK(BM_EngineReduceSum)->DenseRange(14, 22, 4);

}  // namespace
