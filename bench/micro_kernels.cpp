// Kernel-level microbenchmarks (google-benchmark): the primitives every
// solver is built from.  Complexity annotations let `--benchmark_enable_
// random_interleaving` style runs verify the Theta(N log N) scaling claims
// at the kernel level.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/fmmp.hpp"
#include "core/xmvp.hpp"
#include "parallel/engine.hpp"
#include "support/rng.hpp"
#include "transforms/blocked_butterfly.hpp"
#include "transforms/butterfly.hpp"
#include "transforms/fwht.hpp"
#include "transforms/sv_microkernel.hpp"
#include "transforms/panel_butterfly.hpp"
#include "transforms/panel_microkernel.hpp"

namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  qs::Xoshiro256 rng(seed);
  for (double& x : v) x = rng.uniform(0.0, 1.0);
  return v;
}

void BM_Fwht(benchmark::State& state) {
  const std::size_t n = std::size_t{1} << state.range(0);
  auto v = random_vector(n, 1);
  for (auto _ : state) {
    qs::transforms::fwht(v);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_Fwht)->DenseRange(10, 22, 4)->Complexity(benchmark::oNLogN);

void BM_UniformButterfly(benchmark::State& state) {
  const std::size_t n = std::size_t{1} << state.range(0);
  auto v = random_vector(n, 2);
  for (auto _ : state) {
    qs::transforms::apply_uniform_butterfly(v, 0.01);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_UniformButterfly)->DenseRange(10, 22, 4)->Complexity(benchmark::oNLogN);

void BM_FmmpApply(benchmark::State& state) {
  const unsigned nu = static_cast<unsigned>(state.range(0));
  const std::size_t n = std::size_t{1} << nu;
  const auto model = qs::core::MutationModel::uniform(nu, 0.01);
  const auto landscape = qs::core::Landscape::random(nu, 5.0, 1.0, 3);
  const qs::core::FmmpOperator op(model, landscape);
  auto x = random_vector(n, 4);
  std::vector<double> y(n);
  for (auto _ : state) {
    op.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_FmmpApply)->DenseRange(10, 22, 4)->Complexity(benchmark::oNLogN);

// Engine-backed Fmmp: arg0 = nu, arg1 = 0 for the per-level Algorithm 2
// reference, 1 for the cache-blocked banded kernel (fused F-scalings).
void BM_FmmpApplyEngine(benchmark::State& state) {
  const unsigned nu = static_cast<unsigned>(state.range(0));
  const auto kernel = state.range(1) == 0 ? qs::core::EngineKernel::per_level
                                          : qs::core::EngineKernel::blocked;
  const std::size_t n = std::size_t{1} << nu;
  const auto model = qs::core::MutationModel::uniform(nu, 0.01);
  const auto landscape = qs::core::Landscape::random(nu, 5.0, 1.0, 3);
  const qs::core::FmmpOperator op(model, landscape, qs::core::Formulation::right,
                                  &qs::parallel::parallel_engine(),
                                  qs::transforms::LevelOrder::ascending, kernel);
  auto x = random_vector(n, 4);
  std::vector<double> y(n);
  for (auto _ : state) {
    op.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FmmpApplyEngine)
    ->ArgsProduct({benchmark::CreateDenseRange(14, 22, 4), {0, 1}});

// The bare banded butterfly vs the per-level launch loop, isolated from the
// diagonal scalings: the pass-count story of DESIGN.md's banded-kernel
// section at the transform level.
void BM_MutationApplyPerLevel(benchmark::State& state) {
  const unsigned nu = static_cast<unsigned>(state.range(0));
  const auto model = qs::core::MutationModel::uniform(nu, 0.01);
  auto v = random_vector(std::size_t{1} << nu, 5);
  for (auto _ : state) {
    model.apply_per_level(v, qs::parallel::parallel_engine());
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_MutationApplyPerLevel)->DenseRange(14, 22, 4);

void BM_MutationApplyBlocked(benchmark::State& state) {
  const unsigned nu = static_cast<unsigned>(state.range(0));
  const auto model = qs::core::MutationModel::uniform(nu, 0.01);
  auto v = random_vector(std::size_t{1} << nu, 5);
  for (auto _ : state) {
    model.apply(v, qs::parallel::parallel_engine());
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_MutationApplyBlocked)->DenseRange(14, 22, 4);

// Multi-vector (panel) banded butterfly: arg0 = nu, arg1 = panel width m.
// Per-vector items-per-second lets this be compared directly against the
// single-vector BM_MutationApplyBlocked above.
void BM_PanelButterfly(benchmark::State& state) {
  const unsigned nu = static_cast<unsigned>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  const std::size_t n = std::size_t{1} << nu;
  const auto model = qs::core::MutationModel::uniform(nu, 0.01);
  auto panel = random_vector(n * m, 10);
  const auto& engine = qs::parallel::parallel_engine();
  for (auto _ : state) {
    model.apply_panel(panel, m, engine);
    benchmark::DoNotOptimize(panel.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * m));
}
BENCHMARK(BM_PanelButterfly)
    ->ArgsProduct({benchmark::CreateDenseRange(14, 22, 4), {1, 4, 8}});

// Engine-backed panel Fmmp (scalings fused) vs m sequential blocked applies:
// arg0 = nu, arg1 = m.
void BM_FmmpApplyPanel(benchmark::State& state) {
  const unsigned nu = static_cast<unsigned>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  const std::size_t n = std::size_t{1} << nu;
  const auto model = qs::core::MutationModel::uniform(nu, 0.01);
  const auto landscape = qs::core::Landscape::random(nu, 5.0, 1.0, 3);
  const qs::core::FmmpOperator op(model, landscape, qs::core::Formulation::right,
                                  &qs::parallel::parallel_engine(),
                                  qs::transforms::LevelOrder::ascending,
                                  qs::core::EngineKernel::blocked);
  auto x = random_vector(n * m, 11);
  std::vector<double> y(n * m);
  for (auto _ : state) {
    op.apply_panel(x, y, m);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * m));
}
BENCHMARK(BM_FmmpApplyPanel)
    ->ArgsProduct({benchmark::CreateDenseRange(14, 22, 4), {1, 4, 8}});

// The bare span microkernels, active table vs the scalar reference:
// arg0 = log2(span length), arg1 = 0 for scalar, 1 for the active (widest
// supported) table.  Shows the raw SIMD win before cache effects.
void BM_PanelKernelButterflySpan(benchmark::State& state) {
  const std::size_t cnt = std::size_t{1} << state.range(0);
  const auto& kernels = state.range(1) == 0
                            ? qs::transforms::scalar_panel_kernels()
                            : qs::transforms::panel_kernels();
  auto lo = random_vector(cnt, 12);
  auto hi = random_vector(cnt, 13);
  const qs::transforms::Factor2 f = qs::transforms::Factor2::uniform(0.01);
  for (auto _ : state) {
    kernels.butterfly_span(lo.data(), hi.data(), cnt, f);
    benchmark::DoNotOptimize(lo.data());
    benchmark::DoNotOptimize(hi.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * cnt));
  state.SetLabel(kernels.name);
}
BENCHMARK(BM_PanelKernelButterflySpan)->ArgsProduct({{8, 12, 16}, {0, 1}});

// The bare single-vector span microkernels, per tier: arg0 = log2(span
// length), arg1 = tier (0 scalar, 1 avx2, 2 avx512 — unavailable tiers
// skip).  Unlike the panel kernels these are non-FMA by contract, so this
// row also shows what bit-identity costs relative to the FMA panel span
// kernel above.
void BM_SvKernelButterflySpan(benchmark::State& state) {
  const qs::transforms::SvKernels* table = nullptr;
  switch (state.range(1)) {
    case 0: table = &qs::transforms::scalar_sv_kernels(); break;
    case 1: table = qs::transforms::avx2_sv_kernels(); break;
    case 2: table = qs::transforms::avx512_sv_kernels(); break;
  }
  if (table == nullptr) {
    state.SkipWithError("kernel tier not available on this build/CPU");
    return;
  }
  const std::size_t cnt = std::size_t{1} << state.range(0);
  auto lo = random_vector(cnt, 14);
  auto hi = random_vector(cnt, 15);
  const qs::transforms::Factor2 f = qs::transforms::Factor2::uniform(0.01);
  for (auto _ : state) {
    table->butterfly_span(lo.data(), hi.data(), cnt, f);
    benchmark::DoNotOptimize(lo.data());
    benchmark::DoNotOptimize(hi.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * cnt));
  state.SetLabel(table->name);
}
BENCHMARK(BM_SvKernelButterflySpan)->ArgsProduct({{8, 12, 16}, {0, 1, 2}});

// The fused-level sv kernels: arg0 = log2(span length), arg1 = tier as
// above, arg2 = radix (4 = quad, 8 = oct).  Fusing two/three levels per
// sweep halves/thirds the loads+stores per butterfly, which is where most
// of the single-vector speedup lives.
void BM_SvKernelFusedSpan(benchmark::State& state) {
  const qs::transforms::SvKernels* table = nullptr;
  switch (state.range(1)) {
    case 0: table = &qs::transforms::scalar_sv_kernels(); break;
    case 1: table = qs::transforms::avx2_sv_kernels(); break;
    case 2: table = qs::transforms::avx512_sv_kernels(); break;
  }
  if (table == nullptr) {
    state.SkipWithError("kernel tier not available on this build/CPU");
    return;
  }
  const std::size_t cnt = std::size_t{1} << state.range(0);
  const std::size_t radix = static_cast<std::size_t>(state.range(2));
  auto block = random_vector(radix * cnt, 16);
  const qs::transforms::Factor2 f0 = qs::transforms::Factor2::uniform(0.01);
  const qs::transforms::Factor2 f1 = qs::transforms::Factor2::uniform(0.02);
  const qs::transforms::Factor2 f2 = qs::transforms::Factor2::uniform(0.03);
  for (auto _ : state) {
    double* q = block.data();
    if (radix == 4) {
      table->butterfly_quad_span(q, q + cnt, q + 2 * cnt, q + 3 * cnt, cnt,
                                 f0, f1);
    } else {
      table->butterfly_oct_span(q, cnt, cnt, f0, f1, f2);
    }
    benchmark::DoNotOptimize(block.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(radix * cnt));
  state.SetLabel(table->name);
}
BENCHMARK(BM_SvKernelFusedSpan)
    ->ArgsProduct({{8, 12, 16}, {0, 1, 2}, {4, 8}});

// The whole banded apply per sv tier and radix: arg0 = nu, arg1 = tier
// (0 autovec, 1 avx2, 2 avx512, 3 automatic), arg2 = max fused radix.
// ns/element here is the fig2 "raw speed" number the tentpole targets.
void BM_BlockedButterflySvTier(benchmark::State& state) {
  using qs::transforms::SvKernel;
  const unsigned nu = static_cast<unsigned>(state.range(0));
  qs::transforms::BlockedPlan plan;
  switch (state.range(1)) {
    case 0: plan.sv_kernel = SvKernel::autovec; break;
    case 1: plan.sv_kernel = SvKernel::avx2; break;
    case 2: plan.sv_kernel = SvKernel::avx512; break;
    default: plan.sv_kernel = SvKernel::automatic; break;
  }
  plan.sv_max_radix = static_cast<unsigned>(state.range(2));
  if (plan.sv_kernel != SvKernel::autovec &&
      qs::transforms::resolve_sv_kernels(plan.sv_kernel) == nullptr) {
    state.SkipWithError("kernel tier not available on this build/CPU");
    return;
  }
  const auto model = qs::core::MutationModel::uniform(nu, 0.01);
  auto v = random_vector(std::size_t{1} << nu, 17);
  const auto& engine = qs::parallel::serial_engine();
  for (auto _ : state) {
    qs::transforms::apply_blocked_butterfly(v, model.site_factors(), engine,
                                            plan);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(std::size_t{1} << nu));
  state.SetLabel(qs::transforms::resolved_sv_kernel_name(plan.sv_kernel));
}
BENCHMARK(BM_BlockedButterflySvTier)
    ->ArgsProduct({{16, 22}, {0, 1, 2, 3}, {4, 8}});

void BM_XmvpApply(benchmark::State& state) {
  const unsigned nu = static_cast<unsigned>(state.range(0));
  const unsigned d = static_cast<unsigned>(state.range(1));
  const std::size_t n = std::size_t{1} << nu;
  const auto model = qs::core::MutationModel::uniform(nu, 0.01);
  const auto landscape = qs::core::Landscape::random(nu, 5.0, 1.0, 5);
  const qs::core::XmvpOperator op(model, landscape, d);
  auto x = random_vector(n, 6);
  std::vector<double> y(n);
  for (auto _ : state) {
    op.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["patterns"] = static_cast<double>(op.pattern_count());
}
BENCHMARK(BM_XmvpApply)
    ->Args({14, 1})
    ->Args({14, 3})
    ->Args({14, 5})
    ->Args({14, 14})
    ->Args({18, 1})
    ->Args({18, 5});

void BM_EngineReduceSum(benchmark::State& state) {
  const std::size_t n = std::size_t{1} << state.range(0);
  const auto v = random_vector(n, 7);
  const auto& engine = qs::parallel::parallel_engine();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.reduce_sum(v));
  }
}
BENCHMARK(BM_EngineReduceSum)->DenseRange(14, 22, 4);

// Thread-pool reduction throughput (per-lane partials are padded to cache
// lines; compare against BM_ReduceSlotsAdjacent for the false-sharing cost).
void BM_ThreadPoolReduceSum(benchmark::State& state) {
  const std::size_t n = std::size_t{1} << state.range(0);
  const auto v = random_vector(n, 8);
  const auto pool = qs::parallel::make_engine(qs::parallel::Backend::thread_pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool->reduce_sum(v));
  }
}
BENCHMARK(BM_ThreadPoolReduceSum)->DenseRange(14, 22, 4);

// The false-sharing datapoint: per-lane accumulator slots that are adjacent
// doubles (the pre-fix layout of ThreadPoolBackend::reduce_*, one shared
// cache line ping-ponging between cores) vs slots padded to one cache line
// each.  Each lane accumulates element-wise straight into its slot so the
// line stays contended for the whole reduction.
template <typename Slot>
void reduce_into_slots(const qs::parallel::Engine& engine,
                       const std::vector<double>& v, std::vector<Slot>& slots) {
  const std::size_t n = v.size();
  const std::size_t lanes = engine.concurrency();
  const std::size_t chunk = (n + lanes - 1) / lanes;
  const double* data = v.data();
  Slot* out = slots.data();
  engine.dispatch(n, [=](std::size_t begin, std::size_t end) {
    Slot& slot = out[std::min(begin / chunk, lanes - 1)];
    slot.value = 0.0;
    for (std::size_t i = begin; i < end; ++i) slot.value += data[i];
  });
}

struct AdjacentSlot {
  double value = 0.0;
};
struct alignas(64) PaddedSlot {
  double value = 0.0;
};

void BM_ReduceSlotsAdjacent(benchmark::State& state) {
  const auto v = random_vector(std::size_t{1} << state.range(0), 9);
  const auto pool = qs::parallel::make_engine(qs::parallel::Backend::thread_pool);
  std::vector<AdjacentSlot> slots(pool->concurrency());
  for (auto _ : state) {
    reduce_into_slots(*pool, v, slots);
    benchmark::DoNotOptimize(slots.data());
  }
}
BENCHMARK(BM_ReduceSlotsAdjacent)->DenseRange(18, 22, 4);

void BM_ReduceSlotsPadded(benchmark::State& state) {
  const auto v = random_vector(std::size_t{1} << state.range(0), 9);
  const auto pool = qs::parallel::make_engine(qs::parallel::Backend::thread_pool);
  std::vector<PaddedSlot> slots(pool->concurrency());
  for (auto _ : state) {
    reduce_into_slots(*pool, v, slots);
    benchmark::DoNotOptimize(slots.data());
  }
}
BENCHMARK(BM_ReduceSlotsPadded)->DenseRange(18, 22, 4);

}  // namespace
