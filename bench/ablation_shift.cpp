// Ablation (Section 3): the conservative spectral shift
// mu = (1 - 2p)^nu * f_min.
//
// The paper reports "a clearly measurable reduction of the number of
// iterations of about ten percent and more" on random landscapes.  This
// bench runs the power iteration with and without the shift over several
// random landscapes and error rates and reports the iteration counts.
#include <iostream>

#include "bench_common.hpp"
#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "solvers/power_iteration.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  const unsigned nu = std::min(16u, bench::env_unsigned("QS_BENCH_MAX_NU", 16));

  std::cout << "# Ablation: conservative shift mu = (1-2p)^nu f_min in the "
               "power iteration (random landscapes, nu = "
            << nu << ")\n\n";

  TextTable table({"p", "seed", "iters unshifted", "iters shifted", "reduction %"});
  CsvWriter csv(std::cout);
  csv.header({"p", "seed", "iterations_unshifted", "iterations_shifted",
              "reduction_percent"});

  double total_unshifted = 0.0, total_shifted = 0.0;
  for (double p : {0.001, 0.01, 0.05}) {
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
      const auto model = core::MutationModel::uniform(nu, p);
      const auto landscape = core::Landscape::random(nu, 5.0, 1.0, seed);
      const core::FmmpOperator op(model, landscape);
      const auto start = solvers::landscape_start(landscape);

      solvers::PowerOptions plain;
      const auto unshifted = solvers::power_iteration(op, start, plain);

      solvers::PowerOptions shifted = plain;
      shifted.shift = core::conservative_shift(model, landscape);
      const auto with_shift = solvers::power_iteration(op, start, shifted);

      const double reduction =
          100.0 * (1.0 - static_cast<double>(with_shift.iterations) /
                             static_cast<double>(unshifted.iterations));
      total_unshifted += unshifted.iterations;
      total_shifted += with_shift.iterations;

      table.add_row({format_short(p), std::to_string(seed),
                     std::to_string(unshifted.iterations),
                     std::to_string(with_shift.iterations), format_short(reduction)});
      csv.row().cell(p).cell(std::size_t{seed}).cell(std::size_t{unshifted.iterations})
          .cell(std::size_t{with_shift.iterations}).cell(reduction);
      csv.end_row();
    }
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\noverall iteration reduction: "
            << format_short(100.0 * (1.0 - total_shifted / total_unshifted))
            << " % (paper: about ten percent and more)\n";
  return 0;
}
