// Ablation: implicit recomputation (Xmvp) vs explicit CSR storage for the
// truncated product.
//
// Both evaluate the identical Hamming-truncated W; the CSR path trades
// Theta(N * sum_k C(nu, k)) bytes for branch-free row sweeps, the implicit
// path recomputes XOR patterns at Theta(N) memory.  The memory column is
// the story: it explodes combinatorially with d and nu — which is exactly
// why this line of work moved to implicit products and ultimately to the
// paper's Fmmp.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/fmmp.hpp"
#include "core/xmvp.hpp"
#include "sparse/sparse_w.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  const unsigned nu = std::min(14u, bench::env_unsigned("QS_BENCH_MAX_NU", 14));
  const double p = 0.01;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 3);
  const std::size_t n = std::size_t{1} << nu;

  std::cout << "# Implicit (Xmvp) vs explicit CSR for the truncated product, "
               "nu = "
            << nu << "\n\n";

  TextTable table({"d_max", "CSR memory [MB]", "CSR assemble [s]", "CSR apply [s]",
                   "Xmvp apply [s]", "Fmmp apply [s] (exact ref)"});
  CsvWriter csv(std::cout);
  csv.header({"d_max", "csr_mb", "assemble_s", "csr_apply_s", "xmvp_apply_s",
              "fmmp_apply_s"});

  std::vector<double> x(n), y(n);
  Xoshiro256 rng(1);
  for (double& v : x) v = rng.uniform(0.0, 1.0);

  const core::FmmpOperator fmmp(model, landscape);
  const double t_fmmp = bench::time_best_of(3, [&] { fmmp.apply(x, y); });

  for (unsigned d : {1u, 2u, 3u, 5u}) {
    Timer assemble;
    const sparse::SparseWOperator sparse_op(model, landscape, d);
    const double assemble_s = assemble.seconds();
    const double csr_mb =
        static_cast<double>(sparse_op.matrix().memory_bytes()) / (1024.0 * 1024.0);
    const double t_csr = bench::time_best_of(3, [&] { sparse_op.apply(x, y); });

    const core::XmvpOperator xmvp(model, landscape, d);
    const double t_xmvp = bench::time_best_of(3, [&] { xmvp.apply(x, y); });

    table.add_row({std::to_string(d), format_short(csr_mb), format_short(assemble_s),
                   format_short(t_csr), format_short(t_xmvp), format_short(t_fmmp)});
    csv.row().cell(std::size_t{d}).cell(csr_mb).cell(assemble_s).cell(t_csr)
        .cell(t_xmvp).cell(t_fmmp);
    csv.end_row();
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nexpected shape: the implicit product wins on BOTH axes — "
               "its pattern-major sweep streams memory while CSR rows gather "
               "randomly, and CSR storage grows like sum_k C(nu,k) per row "
               "(gigabytes already at moderate d) — and the exact Fmmp beats "
               "both without storing anything: the paper's algorithmic point "
               "in one table.\n";
  return 0;
}
