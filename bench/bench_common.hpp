// Shared helpers for the figure-reproduction bench binaries.
//
// Each bench binary reproduces one table/figure of the paper: it prints a
// human-readable table mirroring the figure's series plus a CSV block for
// re-plotting.  Problem sizes are capped so the default run finishes on a
// laptop; the caps can be raised via the QS_BENCH_MAX_NU environment
// variable (the paper itself extrapolates the O(N^2) reference beyond
// nu = 21, and so do we — extrapolated rows are marked).
#pragma once

#include <cmath>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "support/timer.hpp"

namespace qs::bench {

/// Reads an unsigned from the environment with a default.
inline unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<unsigned>(parsed) : fallback;
}

/// Wall-clock time of fn(), in seconds: best of `reps` runs.  Thin alias
/// for qs::best_of_seconds (support/timer.hpp) — the benches, the plan
/// autotuner, and the obs layer all share that one timing idiom now.
template <typename Fn>
double time_best_of(unsigned reps, Fn&& fn) {
  return qs::best_of_seconds(reps, std::forward<Fn>(fn));
}

/// Least-squares fit of log2(t) = a + b * nu over the measured points;
/// used to extrapolate the O(N^2) reference beyond feasible sizes exactly
/// as the paper does for nu >= 22.
struct LogFit {
  double a = 0.0;
  double b = 0.0;

  double evaluate(double nu) const { return std::exp2(a + b * nu); }
};

inline LogFit fit_log2(const std::vector<double>& nus,
                       const std::vector<double>& times) {
  const std::size_t n = nus.size();
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = nus[i];
    const double y = std::log2(times[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  LogFit fit;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  fit.b = (static_cast<double>(n) * sxy - sx * sy) / denom;
  fit.a = (sy - fit.b * sx) / static_cast<double>(n);
  return fit;
}

}  // namespace qs::bench
