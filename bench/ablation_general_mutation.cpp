// Ablation (Section 2.2): generality of the mutation process is free (or
// cheap).
//
// The paper's point: the fast product only relies on the Kronecker
// structure, so replacing the uniform error rate with per-site rates costs
// nothing, and grouped (dependent) mutation processes with group size g
// cost Theta(N * (nu/g) * 2^g) instead of Theta(N * nu) — still far from
// the dense Theta(N^2).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/fmmp.hpp"
#include "core/site_process.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  const unsigned max_nu = std::min(20u, bench::env_unsigned("QS_BENCH_MAX_NU", 20));

  std::cout << "# Ablation: mutation-model generality vs product cost "
               "(per product, best of 3)\n\n";

  TextTable table({"nu", "uniform [s]", "per-site [s]", "grouped g=2 [s]",
                   "grouped g=4 [s]"});
  CsvWriter csv(std::cout);
  csv.header({"nu", "uniform_s", "per_site_s", "grouped2_s", "grouped4_s"});

  for (unsigned nu = 12; nu <= max_nu; nu += 4) {
    const std::size_t n = std::size_t{1} << nu;
    const auto landscape = core::Landscape::random(nu, 5.0, 1.0, nu);
    std::vector<double> x(n), y(n);
    Xoshiro256 rng(nu);
    for (double& v : x) v = rng.uniform(0.0, 1.0);

    const auto uniform = core::MutationModel::uniform(nu, 0.01);

    std::vector<transforms::Factor2> sites;
    for (unsigned k = 0; k < nu; ++k) {
      sites.push_back(core::asymmetric_site(rng.uniform(0.001, 0.05),
                                            rng.uniform(0.001, 0.05)));
    }
    const auto per_site = core::MutationModel::per_site(sites);

    auto grouped_model = [&](unsigned g) {
      std::vector<linalg::DenseMatrix> groups;
      for (unsigned i = 0; i < nu / g; ++i) {
        groups.push_back(core::coupled_single_flip_group(g, 0.02));
      }
      return core::MutationModel::grouped(std::move(groups));
    };
    const auto grouped2 = grouped_model(2);
    const auto grouped4 = grouped_model(4);

    auto time_model = [&](const core::MutationModel& m) {
      const core::FmmpOperator op(m, landscape);
      return bench::time_best_of(3, [&] { op.apply(x, y); });
    };

    const double t_uniform = time_model(uniform);
    const double t_per_site = time_model(per_site);
    const double t_g2 = time_model(grouped2);
    const double t_g4 = time_model(grouped4);

    table.add_row({std::to_string(nu), format_short(t_uniform),
                   format_short(t_per_site), format_short(t_g2), format_short(t_g4)});
    csv.row().cell(std::size_t{nu}).cell(t_uniform).cell(t_per_site).cell(t_g2)
        .cell(t_g4);
    csv.end_row();
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nexpected shape: per-site ~ uniform (identical structure); "
               "grouped models cost a modest factor ~2^g/g more per level "
               "group, never approaching the dense N^2.\n";
  return 0;
}
