// Figure 3 reproduction: overall execution times for finding the dominating
// eigenvector of Q*F (p = 0.01) on the paper's random landscape (Eq. (13),
// c = 5, sigma = 1) for increasing chain length nu.
//
// Series: Pi(Xmvp(nu)) with tau = 1e-13 (standard product, fully accurate),
// Pi(Xmvp(5)) with tau = 1e-10 (the approximation the paper reports to lose
// ~5 decimal digits), and Pi(Fmmp) with tau = 1e-13 (exact and fastest).
// The paper runs these on a Tesla C2050; here the parallel engine plays the
// GPU's role (see DESIGN.md, Substitutions) and absolute numbers differ,
// but the series ordering and slopes are the reproduction target.
//
// Caps (override with QS_BENCH_MAX_NU): Fmmp to nu = 20, Xmvp(5) to nu = 14,
// Xmvp(nu) to nu = 12; beyond the caps the cost is extrapolated from the
// measured slope (marked *), as the paper does for nu >= 22.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "core/xmvp.hpp"
#include "solvers/power_iteration.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  const unsigned max_nu = bench::env_unsigned("QS_BENCH_MAX_NU", 20);
  const unsigned max_xmvp5_nu = std::min(14u, max_nu);
  const unsigned max_full_nu = std::min(12u, max_nu);
  const double p = 0.01;
  const parallel::Engine& engine = parallel::parallel_engine();

  std::cout << "# Figure 3: overall power-iteration times, random landscape "
               "(Eq. 13) c = 5, sigma = 1, p = "
            << p << "\n# engine: " << engine.name() << " ("
            << engine.concurrency() << " lanes) as the GPU substitute\n\n";

  TextTable table({"nu", "Pi(Xmvp(nu)) [s]", "Pi(Xmvp(5)) [s]", "Pi(Fmmp) [s]",
                   "iters(Fmmp)"});
  CsvWriter csv(std::cout);
  csv.header({"nu", "pi_xmvp_full_s", "full_extrapolated", "pi_xmvp5_s",
              "xmvp5_extrapolated", "pi_fmmp_s", "fmmp_iterations"});

  std::vector<double> full_nus, full_times, x5_nus, x5_times;
  for (unsigned nu = 10; nu <= max_nu; ++nu) {
    const auto model = core::MutationModel::uniform(nu, p);
    const auto landscape = core::Landscape::random(nu, 5.0, 1.0, nu);
    const auto start = solvers::landscape_start(landscape);
    const double shift = core::conservative_shift(model, landscape);

    auto run = [&](const core::LinearOperator& op, double tol) {
      solvers::PowerOptions opts;
      opts.tolerance = tol;
      opts.shift = shift;
      opts.engine = &engine;
      Timer t;
      const auto r = solvers::power_iteration(op, start, opts);
      return std::pair<double, unsigned>(t.seconds(), r.iterations);
    };

    const core::FmmpOperator fmmp(model, landscape, core::Formulation::right, &engine);
    const auto [t_fmmp, it_fmmp] = run(fmmp, 1e-13);

    double t_x5 = 0.0;
    bool x5_extrapolated = false;
    if (nu <= max_xmvp5_nu) {
      const core::XmvpOperator xmvp5(model, landscape, 5,
                                     core::Formulation::right, &engine);
      t_x5 = run(xmvp5, 1e-10).first;
      x5_nus.push_back(nu);
      x5_times.push_back(t_x5);
    } else {
      t_x5 = bench::fit_log2(x5_nus, x5_times).evaluate(nu);
      x5_extrapolated = true;
    }

    double t_full = 0.0;
    bool full_extrapolated = false;
    if (nu <= max_full_nu) {
      const core::XmvpOperator xmvp_full(model, landscape, nu,
                                         core::Formulation::right, &engine);
      t_full = run(xmvp_full, 1e-13).first;
      full_nus.push_back(nu);
      full_times.push_back(t_full);
    } else {
      t_full = bench::fit_log2(full_nus, full_times).evaluate(nu);
      full_extrapolated = true;
    }

    table.add_row({std::to_string(nu),
                   format_short(t_full) + (full_extrapolated ? "*" : ""),
                   format_short(t_x5) + (x5_extrapolated ? "*" : ""),
                   format_short(t_fmmp), std::to_string(it_fmmp)});
    csv.row().cell(std::size_t{nu}).cell(t_full)
        .cell(std::string(full_extrapolated ? "1" : "0")).cell(t_x5)
        .cell(std::string(x5_extrapolated ? "1" : "0")).cell(t_fmmp)
        .cell(std::size_t{it_fmmp});
    csv.end_row();
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n(* = extrapolated from the measured slope)\n"
            << "expected shape: Pi(Fmmp) << Pi(Xmvp(5)) << Pi(Xmvp(nu)), gaps "
               "widening with nu.\n";
  return 0;
}
