// Ablation (Section 2.1 / 4): butterfly kernel variants.
//
//  * Eq. (9) vs Eq. (10): ascending vs descending level order — identical
//    arithmetic, different memory traversal.
//  * Serial Algorithm 1 vs engine-dispatched Algorithm 2 (the GPU kernel
//    with the index mapping j = 2*ID - (ID & (stride-1))) on both backends.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/fmmp.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  const unsigned max_nu = bench::env_unsigned("QS_BENCH_MAX_NU", 22);
  const double p = 0.01;

  std::cout << "# Ablation: Fmmp kernel variants (times per product, best of 3)\n\n";

  TextTable table({"nu", "Eq.(9) asc [s]", "Eq.(10) desc [s]", "Alg.2 serial [s]",
                   "Alg.2 engine [s]"});
  CsvWriter csv(std::cout);
  csv.header({"nu", "eq9_ascending_s", "eq10_descending_s", "alg2_serial_s",
              "alg2_engine_s"});

  for (unsigned nu = 14; nu <= max_nu; nu += 2) {
    const std::size_t n = std::size_t{1} << nu;
    const auto model = core::MutationModel::uniform(nu, p);
    const auto landscape = core::Landscape::random(nu, 5.0, 1.0, nu);
    std::vector<double> x(n), y(n);
    Xoshiro256 rng(nu);
    for (double& v : x) v = rng.uniform(0.0, 1.0);

    const core::FmmpOperator asc(model, landscape, core::Formulation::right, nullptr,
                                 transforms::LevelOrder::ascending);
    const core::FmmpOperator desc(model, landscape, core::Formulation::right, nullptr,
                                  transforms::LevelOrder::descending);
    const core::FmmpOperator alg2_serial(model, landscape, core::Formulation::right,
                                         &parallel::serial_engine());
    const core::FmmpOperator alg2_engine(model, landscape, core::Formulation::right,
                                         &parallel::parallel_engine());

    const double t_asc = bench::time_best_of(3, [&] { asc.apply(x, y); });
    const double t_desc = bench::time_best_of(3, [&] { desc.apply(x, y); });
    const double t_ser = bench::time_best_of(3, [&] { alg2_serial.apply(x, y); });
    const double t_eng = bench::time_best_of(3, [&] { alg2_engine.apply(x, y); });

    table.add_row({std::to_string(nu), format_short(t_asc), format_short(t_desc),
                   format_short(t_ser), format_short(t_eng)});
    csv.row().cell(std::size_t{nu}).cell(t_asc).cell(t_desc).cell(t_ser).cell(t_eng);
    csv.end_row();
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nexpected shape: Eq.(9) and Eq.(10) within noise of each "
               "other (same arithmetic, both stream memory); Algorithm 2 adds "
               "index-arithmetic overhead serially and wins on multi-lane "
               "hardware in proportion to the lane count.\n";
  return 0;
}
