// Figure 2 reproduction: runtimes of the implicit matrix-vector products
// W x = (Q F) x on a single CPU core.
//
// Series (as in the paper): Xmvp(nu) — fully accurate sparsified XOR
// product, cost Theta(N^2), equivalent to Smvp up to constants; Xmvp(1) —
// the coarsest sparsification, Theta(N (nu+1)); Fmmp — the paper's exact
// fast product, Theta(N log2 N).  The paper's expectation: Fmmp undercuts
// even Xmvp(1) already for small nu while being exact.
//
// Size caps (defaults; override with QS_BENCH_MAX_NU): Fmmp/Xmvp(1) to
// nu = 22, the quadratic Xmvp(nu) to nu = 14 — beyond that its cost is
// extrapolated from the measured slope, exactly as the paper extrapolates
// its reference beyond nu = 21.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/fmmp.hpp"
#include "core/xmvp.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  const unsigned max_nu = bench::env_unsigned("QS_BENCH_MAX_NU", 22);
  const unsigned max_quadratic_nu = std::min(14u, max_nu);
  const double p = 0.01;

  std::cout << "# Figure 2: single mat-vec runtimes on one CPU core, p = " << p
            << "\n# series: Xmvp(nu) ~ Theta(N^2), Xmvp(1) ~ Theta(N nu), "
               "Fmmp ~ Theta(N log2 N)\n\n";

  TextTable table({"nu", "N", "Xmvp(nu) [s]", "Xmvp(1) [s]", "Fmmp [s]",
                   "Fmmp speedup vs Xmvp(nu)"});
  CsvWriter csv(std::cout);
  csv.header({"nu", "xmvp_full_s", "xmvp_full_extrapolated", "xmvp1_s", "fmmp_s"});

  std::vector<double> quad_nus, quad_times;
  for (unsigned nu = 10; nu <= max_nu; ++nu) {
    const std::size_t n = std::size_t{1} << nu;
    const auto model = core::MutationModel::uniform(nu, p);
    const auto landscape = core::Landscape::random(nu, 5.0, 1.0, nu);
    std::vector<double> x(n), y(n);
    Xoshiro256 rng(nu);
    for (double& v : x) v = rng.uniform(0.0, 1.0);

    const core::FmmpOperator fmmp(model, landscape);
    const double t_fmmp = bench::time_best_of(3, [&] { fmmp.apply(x, y); });

    const core::XmvpOperator xmvp1(model, landscape, 1);
    const double t_xmvp1 = bench::time_best_of(3, [&] { xmvp1.apply(x, y); });

    double t_full = 0.0;
    bool extrapolated = false;
    if (nu <= max_quadratic_nu) {
      const core::XmvpOperator xmvp_full(model, landscape, nu);
      t_full = bench::time_best_of(2, [&] { xmvp_full.apply(x, y); });
      quad_nus.push_back(nu);
      quad_times.push_back(t_full);
    } else {
      t_full = bench::fit_log2(quad_nus, quad_times).evaluate(nu);
      extrapolated = true;
    }

    table.add_row({std::to_string(nu), std::to_string(n),
                   format_short(t_full) + (extrapolated ? "*" : ""),
                   format_short(t_xmvp1), format_short(t_fmmp),
                   format_short(t_full / t_fmmp)});
    csv.row().cell(std::size_t{nu}).cell(t_full).cell(std::string(extrapolated ? "1" : "0"))
        .cell(t_xmvp1).cell(t_fmmp);
    csv.end_row();
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n(* = extrapolated from the measured Theta(N^2) slope, as in "
               "the paper for nu >= 22)\n"
            << "expected shape: Fmmp fastest at every nu, and faster than "
               "Xmvp(1) despite being exact.\n";
  return 0;
}
