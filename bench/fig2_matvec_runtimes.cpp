// Figure 2 reproduction: runtimes of the implicit matrix-vector products
// W x = (Q F) x on a single CPU core, extended with the engine-backed Fmmp
// columns (per-level Algorithm 2 vs the cache-blocked banded kernel), the
// multi-vector panel kernel, and the BlockedPlan autotuner.
//
// Series (as in the paper): Xmvp(nu) — fully accurate sparsified XOR
// product, cost Theta(N^2), equivalent to Smvp up to constants; Xmvp(1) —
// the coarsest sparsification, Theta(N (nu+1)); Fmmp — the paper's exact
// fast product, Theta(N log2 N).  The paper's expectation: Fmmp undercuts
// even Xmvp(1) already for small nu while being exact.
//
// Engine columns: per-level launches one kernel per butterfly level (nu
// sweeps + 2 scaling sweeps per matvec); blocked launches one kernel per
// level *band* with the diagonal F-scalings fused into the first/last band
// (~nu/B sweeps).  Expected: blocked strictly faster at nu >= 20 on both
// the openmp and thread_pool backends.
//
// Panel columns: one banded product applied to an interleaved panel of m
// vectors (FmmpOperator::apply_panel) vs m sequential single-vector blocked
// products over distinct vector pairs on the same backend — exactly the
// work a block subspace iteration performs per round without the panel
// kernel.  per-vector speedup = t_seq / t_panel; the memory-bound regime
// (large nu) is where the amortisation pays.  m = 16 and 32 go through the
// full-width wide path (transforms::apply_panel_wide) and are measured
// wherever the panel buffer pair fits in 4 GiB (printed as "-" otherwise);
// the sequential baseline reuses at most 8 distinct buffer pairs cycled
// m/8 times so baseline memory stays capped regardless of m.
//
// Autotune columns: the measured-candidate BlockedPlan autotuner vs the
// fixed default plan (2^14, 2^6) at every nu.  The default is always among
// the measured candidates and wins ties, so tuned <= default up to noise.
//
// Size caps (defaults; override with QS_BENCH_MAX_NU): Fmmp/Xmvp(1) to
// nu = 22, the quadratic Xmvp(nu) to nu = 14 — beyond that its cost is
// extrapolated from the measured slope, exactly as the paper extrapolates
// its reference beyond nu = 21.
//
// Besides the human-readable tables + CSV, the full measurement set is
// written as machine-readable JSON to BENCH_fig2.json (override the path
// with QS_BENCH_JSON).
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/fmmp.hpp"
#include "core/xmvp.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "transforms/panel_butterfly.hpp"
#include "transforms/panel_microkernel.hpp"
#include "transforms/plan_autotune.hpp"
#include "transforms/sv_microkernel.hpp"

namespace {

struct PanelPoint {
  std::string backend;
  std::size_t m = 0;
  double seconds = 0.0;             // one panel product, all m vectors
  double seq_seconds = 0.0;         // m sequential products, distinct vectors
  double per_vector_speedup = 0.0;  // seq / panel
};

struct AutotunePoint {
  qs::transforms::BlockedPlan tuned;
  double default_seconds = 0.0;
  double tuned_seconds = 0.0;
  std::size_t candidates = 0;
};

struct Fig2Row {
  unsigned nu = 0;
  std::size_t n = 0;
  double xmvp_full_s = 0.0;
  bool xmvp_full_extrapolated = false;
  double xmvp1_s = 0.0;
  double fmmp_s = 0.0;
  double serial_blocked_s = 0.0;
  double omp_level_s = 0.0;
  double omp_blocked_s = 0.0;
  double pool_level_s = 0.0;
  double pool_blocked_s = 0.0;
  std::vector<PanelPoint> panel;
  AutotunePoint autotune;
};

void write_json(const std::string& path, double p, unsigned max_nu,
                const std::vector<Fig2Row>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: could not open " << path << " for writing\n";
    return;
  }
  out.precision(9);
  // Provenance: why two hosts produce different rows.  Mirrors the
  // simd_tier / plan.* keys of the --metrics snapshot (src/obs/metrics.hpp)
  // so bench JSON and solver telemetry can be joined on the same fields.
  const auto caches = qs::transforms::detect_cache_hierarchy();
  const qs::transforms::BlockedPlan default_plan{};
  out << "{\n"
      << "  \"figure\": \"fig2\",\n"
      << "  \"p\": " << p << ",\n"
      << "  \"max_nu\": " << max_nu << ",\n"
      << "  \"panel_kernels\": \"" << qs::transforms::panel_kernels().name
      << "\",\n"
      << "  \"provenance\": {\n"
      << "    \"simd_tier\": \"" << qs::transforms::panel_kernels().name
      << "\",\n"
      << "    \"sv_kernel\": \""
      << qs::transforms::resolved_sv_kernel_name(default_plan.sv_kernel)
      << "\",\n"
      << "    \"sv_max_radix\": " << default_plan.sv_max_radix << ",\n"
      << "    \"default_tile_log2\": " << default_plan.tile_log2 << ",\n"
      << "    \"default_chunk_log2\": " << default_plan.chunk_log2 << ",\n"
      << "    \"cache_detected\": " << (caches.detected ? "true" : "false")
      << ",\n"
      << "    \"l1d_bytes\": " << caches.l1d_bytes << ",\n"
      << "    \"l2_bytes\": " << caches.l2_bytes << ",\n"
      << "    \"l3_bytes\": " << caches.l3_bytes << "\n"
      << "  },\n"
      << "  \"rows\": [\n";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const Fig2Row& row = rows[r];
    out << "    {\n"
        << "      \"nu\": " << row.nu << ",\n"
        << "      \"n\": " << row.n << ",\n"
        << "      \"xmvp_full_s\": " << row.xmvp_full_s << ",\n"
        << "      \"xmvp_full_extrapolated\": "
        << (row.xmvp_full_extrapolated ? "true" : "false") << ",\n"
        << "      \"xmvp1_s\": " << row.xmvp1_s << ",\n"
        << "      \"fmmp_s\": " << row.fmmp_s << ",\n"
        << "      \"fmmp_serial_blocked_s\": " << row.serial_blocked_s << ",\n"
        << "      \"fmmp_omp_level_s\": " << row.omp_level_s << ",\n"
        << "      \"fmmp_omp_blocked_s\": " << row.omp_blocked_s << ",\n"
        << "      \"fmmp_pool_level_s\": " << row.pool_level_s << ",\n"
        << "      \"fmmp_pool_blocked_s\": " << row.pool_blocked_s << ",\n"
        << "      \"panel\": [\n";
    for (std::size_t i = 0; i < row.panel.size(); ++i) {
      const PanelPoint& pt = row.panel[i];
      out << "        {\"backend\": \"" << pt.backend << "\", \"m\": " << pt.m
          << ", \"seconds\": " << pt.seconds
          << ", \"sequential_seconds\": " << pt.seq_seconds
          << ", \"per_vector_speedup\": " << pt.per_vector_speedup << "}"
          << (i + 1 < row.panel.size() ? "," : "") << "\n";
    }
    out << "      ],\n"
        << "      \"autotune\": {\"tile_log2\": " << row.autotune.tuned.tile_log2
        << ", \"chunk_log2\": " << row.autotune.tuned.chunk_log2
        << ", \"sv_kernel\": \""
        << qs::transforms::resolved_sv_kernel_name(row.autotune.tuned.sv_kernel)
        << "\", \"sv_max_radix\": " << row.autotune.tuned.sv_max_radix
        << ", \"default_s\": " << row.autotune.default_seconds
        << ", \"tuned_s\": " << row.autotune.tuned_seconds
        << ", \"candidates\": " << row.autotune.candidates << "}\n"
        << "    }" << (r + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace

int main() {
  using namespace qs;
  const unsigned max_nu = bench::env_unsigned("QS_BENCH_MAX_NU", 22);
  const unsigned max_quadratic_nu = std::min(14u, max_nu);
  const double p = 0.01;
  const char* json_env = std::getenv("QS_BENCH_JSON");
  const std::string json_path = json_env != nullptr ? json_env : "BENCH_fig2.json";

  const auto serial_engine = parallel::make_engine(parallel::Backend::serial);
  const auto omp_engine = parallel::make_engine(parallel::Backend::openmp);
  const auto pool_engine = parallel::make_engine(parallel::Backend::thread_pool);
  const std::vector<std::pair<const char*, const parallel::Engine*>> backends = {
      {"serial", serial_engine.get()},
      {"openmp", omp_engine.get()},
      {"thread_pool", pool_engine.get()}};
  const std::vector<std::size_t> widths = {2, 4, 8, 16, 32};
  // Widths whose interleaved xp/yp pair would not fit in this budget are
  // skipped (table shows "-"); on typical hosts everything up to m = 32 at
  // nu = 22 (2 GiB pair) runs.
  constexpr std::size_t kWidePanelByteCap = std::size_t{4} << 30;

  std::cout << "# Figure 2: single mat-vec runtimes, p = " << p
            << "\n# series: Xmvp(nu) ~ Theta(N^2), Xmvp(1) ~ Theta(N nu), "
               "Fmmp ~ Theta(N log2 N)\n# engine columns: omp = '"
            << omp_engine->name() << "' x" << omp_engine->concurrency()
            << ", pool = '" << pool_engine->name() << "' x"
            << pool_engine->concurrency()
            << "; lvl = per-level Algorithm 2, blk = banded blocked kernel\n"
            << "# panel kernels: " << transforms::panel_kernels().name << "\n\n";

  TextTable table({"nu", "N", "Xmvp(nu) [s]", "Xmvp(1) [s]", "Fmmp [s]",
                   "omp lvl [s]", "omp blk [s]", "pool lvl [s]", "pool blk [s]",
                   "Fmmp speedup vs Xmvp(nu)"});
  TextTable panel_table({"nu", "backend", "blk x1 [s]", "panel m=2 [s]",
                         "panel m=4 [s]", "panel m=8 [s]", "panel m=16 [s]",
                         "panel m=32 [s]", "per-vec m=2", "per-vec m=4",
                         "per-vec m=8", "per-vec m=16", "per-vec m=32"});
  TextTable tune_table({"nu", "default (14,6) [s]", "tuned [s]", "tuned plan",
                        "speedup", "candidates"});
  CsvWriter csv(std::cout);
  csv.header({"nu", "xmvp_full_s", "xmvp_full_extrapolated", "xmvp1_s", "fmmp_s",
              "fmmp_omp_level_s", "fmmp_omp_blocked_s", "fmmp_pool_level_s",
              "fmmp_pool_blocked_s"});

  std::vector<Fig2Row> rows;
  std::vector<double> quad_nus, quad_times;
  for (unsigned nu = 10; nu <= max_nu; ++nu) {
    const std::size_t n = std::size_t{1} << nu;
    const auto model = core::MutationModel::uniform(nu, p);
    const auto landscape = core::Landscape::random(nu, 5.0, 1.0, nu);
    std::vector<double> x(n), y(n);
    Xoshiro256 rng(nu);
    for (double& v : x) v = rng.uniform(0.0, 1.0);

    Fig2Row row;
    row.nu = nu;
    row.n = n;

    const core::FmmpOperator fmmp(model, landscape);
    row.fmmp_s = bench::time_best_of(3, [&] { fmmp.apply(x, y); });

    auto time_engine = [&](const parallel::Engine* engine, core::EngineKernel kernel) {
      const core::FmmpOperator op(model, landscape, core::Formulation::right, engine,
                                  transforms::LevelOrder::ascending, kernel);
      return bench::time_best_of(3, [&] { op.apply(x, y); });
    };
    row.serial_blocked_s = time_engine(serial_engine.get(), core::EngineKernel::blocked);
    row.omp_level_s = time_engine(omp_engine.get(), core::EngineKernel::per_level);
    row.omp_blocked_s = time_engine(omp_engine.get(), core::EngineKernel::blocked);
    row.pool_level_s = time_engine(pool_engine.get(), core::EngineKernel::per_level);
    row.pool_blocked_s = time_engine(pool_engine.get(), core::EngineKernel::blocked);

    const core::XmvpOperator xmvp1(model, landscape, 1);
    row.xmvp1_s = bench::time_best_of(3, [&] { xmvp1.apply(x, y); });

    if (nu <= max_quadratic_nu) {
      const core::XmvpOperator xmvp_full(model, landscape, nu);
      row.xmvp_full_s = bench::time_best_of(2, [&] { xmvp_full.apply(x, y); });
      quad_nus.push_back(nu);
      quad_times.push_back(row.xmvp_full_s);
    } else {
      row.xmvp_full_s = bench::fit_log2(quad_nus, quad_times).evaluate(nu);
      row.xmvp_full_extrapolated = true;
    }

    // Panel columns: one interleaved m-wide product vs m sequential blocked
    // single-vector products over m distinct vector pairs on the same
    // backend (the block-solver workload without the panel kernel).
    for (const auto& [bname, engine] : backends) {
      const core::FmmpOperator op(model, landscape, core::Formulation::right,
                                  engine, transforms::LevelOrder::ascending,
                                  core::EngineKernel::blocked);
      const double t_single = bench::time_best_of(3, [&] { op.apply(x, y); });
      std::vector<std::string> cells = {std::to_string(nu), bname,
                                        format_short(t_single)};
      std::vector<std::string> speedups;
      for (std::size_t m : widths) {
        if (2 * n * m * sizeof(double) > kWidePanelByteCap) {
          cells.push_back("-");
          speedups.push_back("-");
          continue;
        }
        PanelPoint pt;
        pt.backend = bname;
        pt.m = m;
        {
          // Sequential baseline over distinct vector pairs; for the wide
          // widths the same 8 pairs are cycled m/8 times so the baseline's
          // working set (and hence its cache behaviour) matches the m = 8
          // case instead of ballooning with m.
          const std::size_t pairs = std::min<std::size_t>(m, 8);
          std::vector<std::vector<double>> xs(pairs), ys(pairs);
          for (std::size_t j = 0; j < pairs; ++j) {
            xs[j].resize(n);
            ys[j].resize(n);
            for (double& v : xs[j]) v = rng.uniform(0.0, 1.0);
          }
          pt.seq_seconds = bench::time_best_of(3, [&] {
            for (std::size_t j = 0; j < m; ++j)
              op.apply(xs[j % pairs], ys[j % pairs]);
          });
        }
        std::vector<double> xp(n * m), yp(n * m);
        for (double& v : xp) v = rng.uniform(0.0, 1.0);
        pt.seconds = bench::time_best_of(3, [&] { op.apply_panel(xp, yp, m); });
        pt.per_vector_speedup = pt.seq_seconds / pt.seconds;
        row.panel.push_back(pt);
        cells.push_back(format_short(pt.seconds));
        speedups.push_back(format_short(pt.per_vector_speedup) + "x");
      }
      cells.insert(cells.end(), speedups.begin(), speedups.end());
      panel_table.add_row(cells);
    }

    // Autotune column: measured-candidate plan vs the fixed default at this nu.
    {
      const auto report =
          transforms::autotune_blocked_plan(nu, *serial_engine, 1, 2);
      row.autotune.tuned = report.best;
      row.autotune.default_seconds = report.timings.front().seconds;
      row.autotune.candidates = report.timings.size();
      row.autotune.tuned_seconds = row.autotune.default_seconds;
      // Match on the full plan identity — tile, chunk, AND the sv kernel
      // fields — or a stage-2 sv candidate sharing the best tile/chunk would
      // shadow the winner's measured time.
      for (const auto& t : report.timings) {
        if (t.plan.tile_log2 == report.best.tile_log2 &&
            t.plan.chunk_log2 == report.best.chunk_log2 &&
            t.plan.sv_kernel == report.best.sv_kernel &&
            t.plan.sv_max_radix == report.best.sv_max_radix) {
          row.autotune.tuned_seconds = t.seconds;
        }
      }
      tune_table.add_row(
          {std::to_string(nu), format_short(row.autotune.default_seconds),
           format_short(row.autotune.tuned_seconds),
           "(" + std::to_string(report.best.tile_log2) + "," +
               std::to_string(report.best.chunk_log2) + "," +
               transforms::resolved_sv_kernel_name(report.best.sv_kernel) +
               "/r" + std::to_string(report.best.sv_max_radix) + ")",
           format_short(row.autotune.default_seconds /
                        row.autotune.tuned_seconds) +
               "x",
           std::to_string(report.timings.size())});
    }

    table.add_row({std::to_string(nu), std::to_string(n),
                   format_short(row.xmvp_full_s) +
                       (row.xmvp_full_extrapolated ? "*" : ""),
                   format_short(row.xmvp1_s), format_short(row.fmmp_s),
                   format_short(row.omp_level_s), format_short(row.omp_blocked_s),
                   format_short(row.pool_level_s), format_short(row.pool_blocked_s),
                   format_short(row.xmvp_full_s / row.fmmp_s)});
    csv.row().cell(std::size_t{nu}).cell(row.xmvp_full_s)
        .cell(std::string(row.xmvp_full_extrapolated ? "1" : "0"))
        .cell(row.xmvp1_s).cell(row.fmmp_s).cell(row.omp_level_s)
        .cell(row.omp_blocked_s).cell(row.pool_level_s).cell(row.pool_blocked_s);
    csv.end_row();
    rows.push_back(std::move(row));
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n(* = extrapolated from the measured Theta(N^2) slope, as in "
               "the paper for nu >= 22)\n"
            << "expected shape: Fmmp fastest at every nu, faster than Xmvp(1) "
               "despite being exact, and the blocked (blk) engine columns "
               "strictly under the per-level (lvl) ones at nu >= 20.\n\n";
  panel_table.print(std::cout);
  std::cout << "\nexpected shape: per-vector speedup grows with nu as the "
               "product turns memory-bound; >= 1.3x at nu = 22, m = 8 on at "
               "least one backend (the sequential baseline runs the sv "
               "microkernels too, so the gap is narrower than the pre-sv "
               "~2x), and the full-width wide widths (m = 16, 32) hold "
               "per-vector cost within ~1.1-1.7x of the m = 8 sweet spot, "
               "ahead of the sequential fallback in the memory-bound regime "
               "(m = 8 remains the preferred batch width).\n\n";
  tune_table.print(std::cout);
  std::cout << "\nexpected shape: tuned <= default at every nu (the default "
               "plan is always among the measured candidates and wins ties).\n";

  write_json(json_path, p, max_nu, rows);
  return 0;
}
