// Figure 2 reproduction: runtimes of the implicit matrix-vector products
// W x = (Q F) x on a single CPU core, extended with the engine-backed Fmmp
// columns (per-level Algorithm 2 vs the cache-blocked banded kernel).
//
// Series (as in the paper): Xmvp(nu) — fully accurate sparsified XOR
// product, cost Theta(N^2), equivalent to Smvp up to constants; Xmvp(1) —
// the coarsest sparsification, Theta(N (nu+1)); Fmmp — the paper's exact
// fast product, Theta(N log2 N).  The paper's expectation: Fmmp undercuts
// even Xmvp(1) already for small nu while being exact.
//
// Engine columns: per-level launches one kernel per butterfly level (nu
// sweeps + 2 scaling sweeps per matvec); blocked launches one kernel per
// level *band* with the diagonal F-scalings fused into the first/last band
// (~nu/B sweeps).  Expected: blocked strictly faster at nu >= 20 on both
// the openmp and thread_pool backends.
//
// Size caps (defaults; override with QS_BENCH_MAX_NU): Fmmp/Xmvp(1) to
// nu = 22, the quadratic Xmvp(nu) to nu = 14 — beyond that its cost is
// extrapolated from the measured slope, exactly as the paper extrapolates
// its reference beyond nu = 21.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/fmmp.hpp"
#include "core/xmvp.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  const unsigned max_nu = bench::env_unsigned("QS_BENCH_MAX_NU", 22);
  const unsigned max_quadratic_nu = std::min(14u, max_nu);
  const double p = 0.01;

  const auto omp_engine = parallel::make_engine(parallel::Backend::openmp);
  const auto pool_engine = parallel::make_engine(parallel::Backend::thread_pool);

  std::cout << "# Figure 2: single mat-vec runtimes, p = " << p
            << "\n# series: Xmvp(nu) ~ Theta(N^2), Xmvp(1) ~ Theta(N nu), "
               "Fmmp ~ Theta(N log2 N)\n# engine columns: omp = '"
            << omp_engine->name() << "' x" << omp_engine->concurrency()
            << ", pool = '" << pool_engine->name() << "' x"
            << pool_engine->concurrency()
            << "; lvl = per-level Algorithm 2, blk = banded blocked kernel\n\n";

  TextTable table({"nu", "N", "Xmvp(nu) [s]", "Xmvp(1) [s]", "Fmmp [s]",
                   "omp lvl [s]", "omp blk [s]", "pool lvl [s]", "pool blk [s]",
                   "Fmmp speedup vs Xmvp(nu)"});
  CsvWriter csv(std::cout);
  csv.header({"nu", "xmvp_full_s", "xmvp_full_extrapolated", "xmvp1_s", "fmmp_s",
              "fmmp_omp_level_s", "fmmp_omp_blocked_s", "fmmp_pool_level_s",
              "fmmp_pool_blocked_s"});

  std::vector<double> quad_nus, quad_times;
  for (unsigned nu = 10; nu <= max_nu; ++nu) {
    const std::size_t n = std::size_t{1} << nu;
    const auto model = core::MutationModel::uniform(nu, p);
    const auto landscape = core::Landscape::random(nu, 5.0, 1.0, nu);
    std::vector<double> x(n), y(n);
    Xoshiro256 rng(nu);
    for (double& v : x) v = rng.uniform(0.0, 1.0);

    const core::FmmpOperator fmmp(model, landscape);
    const double t_fmmp = bench::time_best_of(3, [&] { fmmp.apply(x, y); });

    auto time_engine = [&](const parallel::Engine* engine, core::EngineKernel kernel) {
      const core::FmmpOperator op(model, landscape, core::Formulation::right, engine,
                                  transforms::LevelOrder::ascending, kernel);
      return bench::time_best_of(3, [&] { op.apply(x, y); });
    };
    const double t_omp_level = time_engine(omp_engine.get(), core::EngineKernel::per_level);
    const double t_omp_blocked = time_engine(omp_engine.get(), core::EngineKernel::blocked);
    const double t_pool_level = time_engine(pool_engine.get(), core::EngineKernel::per_level);
    const double t_pool_blocked = time_engine(pool_engine.get(), core::EngineKernel::blocked);

    const core::XmvpOperator xmvp1(model, landscape, 1);
    const double t_xmvp1 = bench::time_best_of(3, [&] { xmvp1.apply(x, y); });

    double t_full = 0.0;
    bool extrapolated = false;
    if (nu <= max_quadratic_nu) {
      const core::XmvpOperator xmvp_full(model, landscape, nu);
      t_full = bench::time_best_of(2, [&] { xmvp_full.apply(x, y); });
      quad_nus.push_back(nu);
      quad_times.push_back(t_full);
    } else {
      t_full = bench::fit_log2(quad_nus, quad_times).evaluate(nu);
      extrapolated = true;
    }

    table.add_row({std::to_string(nu), std::to_string(n),
                   format_short(t_full) + (extrapolated ? "*" : ""),
                   format_short(t_xmvp1), format_short(t_fmmp),
                   format_short(t_omp_level), format_short(t_omp_blocked),
                   format_short(t_pool_level), format_short(t_pool_blocked),
                   format_short(t_full / t_fmmp)});
    csv.row().cell(std::size_t{nu}).cell(t_full).cell(std::string(extrapolated ? "1" : "0"))
        .cell(t_xmvp1).cell(t_fmmp).cell(t_omp_level).cell(t_omp_blocked)
        .cell(t_pool_level).cell(t_pool_blocked);
    csv.end_row();
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n(* = extrapolated from the measured Theta(N^2) slope, as in "
               "the paper for nu >= 22)\n"
            << "expected shape: Fmmp fastest at every nu, faster than Xmvp(1) "
               "despite being exact, and the blocked (blk) engine columns "
               "strictly under the per-level (lvl) ones at nu >= 20.\n";
  return 0;
}
