// Figure 1 reproduction: the error threshold phenomenon.
//
// Left panel: nu = 20, single-peak landscape f_0 = 2, f_i = 1 — cumulative
// class concentrations [Gamma_k] vs error rate p show an ordered phase up
// to p_max ~ 0.035 and a sudden collapse to the uniform distribution above.
// Right panel: the linear landscape f_i = f0 - (f0 - fnu) d_H(i,0)/nu with
// f0 = 2, fnu = 1 — a smooth transition, no threshold.
//
// Output: one CSV block per panel (columns p, G0..G20, eigenvalue) plus the
// detected p_max and kink statistics.
#include <cmath>
#include <iostream>

#include "analysis/sweep.hpp"
#include "analysis/threshold.hpp"
#include "core/landscape.hpp"
#include "support/timer.hpp"

namespace {

void run_panel(const char* title, const qs::core::ErrorClassLandscape& landscape) {
  const auto grid = qs::analysis::error_rate_grid(0.0005, 0.09, 90);
  qs::Timer timer;
  const auto sweep = qs::analysis::sweep_error_rates(landscape, grid);
  const double elapsed = timer.seconds();

  std::cout << "## " << title << " (nu = " << landscape.nu()
            << ", exact reduced solver, " << elapsed << " s for " << grid.size()
            << " grid points)\n";
  qs::analysis::write_sweep_csv(sweep, std::cout);

  const auto pmax = qs::analysis::find_error_threshold(landscape);
  if (pmax.has_value()) {
    std::cout << "# detected error threshold p_max = " << *pmax << "\n";
  } else {
    std::cout << "# no error threshold detected in the bracket\n";
  }
  std::cout << "# transition kink strength = "
            << qs::analysis::transition_kink(landscape, 0.005, 0.09) << "\n\n";
}

}  // namespace

int main() {
  std::cout << "# Figure 1: error threshold phenomenon, nu = 20\n"
            << "# paper expectation: single peak -> sharp threshold at p_max ~ "
               "0.035; linear -> smooth transition, no threshold\n\n";
  const unsigned nu = 20;
  run_panel("Figure 1 left: single peak f0 = 2, rest = 1",
            qs::core::ErrorClassLandscape::single_peak(nu, 2.0, 1.0));
  run_panel("Figure 1 right: linear f0 = 2, fnu = 1",
            qs::core::ErrorClassLandscape::linear(nu, 2.0, 1.0));
  return 0;
}
