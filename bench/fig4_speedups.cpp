// Figure 4 reproduction: speedup factors for solving the quasispecies model,
// algorithm x platform combinations over the serial Pi(Xmvp(nu)) reference.
//
// The paper's series: GPU-Pi(Fmmp), CPU-Pi(Fmmp), GPU-Pi(Xmvp(5)),
// CPU-Pi(Xmvp(5)), GPU-Pi(Xmvp(nu)), against CPU-Pi(Xmvp(nu)) = 1, with the
// N^2/(N log2 N) guide line.  Here "CPU" = serial backend and "GPU" = the
// parallel engine (DESIGN.md, Substitutions); on a single-core host the
// engine curves coincide with the serial ones (the hardware shift
// collapses), but the *algorithmic* slopes — the paper's main point — are
// hardware independent and reproduce.
//
// The reference Pi(Xmvp(nu)) is measured up to nu = 12 and extrapolated
// beyond from its fitted slope (the paper extrapolates it for nu >= 22).
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "core/xmvp.hpp"
#include "solvers/power_iteration.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  const unsigned max_nu = bench::env_unsigned("QS_BENCH_MAX_NU", 20);
  const unsigned max_ref_nu = std::min(12u, max_nu);
  const unsigned max_x5_nu = std::min(14u, max_nu);
  const double p = 0.01;
  const parallel::Engine& gpu = parallel::parallel_engine();

  std::cout << "# Figure 4: speedups over serial Pi(Xmvp(nu)); engine '"
            << gpu.name() << "' (" << gpu.concurrency()
            << " lanes) substitutes the paper's GPU\n\n";

  TextTable table({"nu", "N2/(NlogN)", "eng-Fmmp", "ser-Fmmp", "eng-Xmvp(5)",
                   "ser-Xmvp(5)", "eng-Xmvp(nu)"});
  CsvWriter csv(std::cout);
  csv.header({"nu", "guide_n2_over_nlogn", "speedup_engine_fmmp",
              "speedup_serial_fmmp", "speedup_engine_xmvp5",
              "speedup_serial_xmvp5", "speedup_engine_xmvp_full",
              "reference_extrapolated"});

  std::vector<double> ref_nus, ref_times;
  for (unsigned nu = 10; nu <= max_nu; ++nu) {
    const auto model = core::MutationModel::uniform(nu, p);
    const auto landscape = core::Landscape::random(nu, 5.0, 1.0, nu);
    const auto start = solvers::landscape_start(landscape);
    const double shift = core::conservative_shift(model, landscape);

    auto run = [&](const core::LinearOperator& op, double tol,
                   const parallel::Engine* engine) {
      solvers::PowerOptions opts;
      opts.tolerance = tol;
      opts.shift = shift;
      opts.engine = engine;
      Timer t;
      (void)solvers::power_iteration(op, start, opts);
      return t.seconds();
    };

    // Reference: serial Pi(Xmvp(nu)) — measured small, extrapolated large.
    double t_ref = 0.0;
    bool ref_extrapolated = false;
    if (nu <= max_ref_nu) {
      const core::XmvpOperator ref_op(model, landscape, nu);
      t_ref = run(ref_op, 1e-13, nullptr);
      ref_nus.push_back(nu);
      ref_times.push_back(t_ref);
    } else {
      t_ref = bench::fit_log2(ref_nus, ref_times).evaluate(nu);
      ref_extrapolated = true;
    }

    const core::FmmpOperator fmmp_eng(model, landscape, core::Formulation::right, &gpu);
    const double t_fmmp_eng = run(fmmp_eng, 1e-13, &gpu);
    const core::FmmpOperator fmmp_ser(model, landscape);
    const double t_fmmp_ser = run(fmmp_ser, 1e-13, nullptr);

    double t_x5_eng = 0.0, t_x5_ser = 0.0;
    if (nu <= max_x5_nu) {
      const core::XmvpOperator x5_eng(model, landscape, 5,
                                      core::Formulation::right, &gpu);
      t_x5_eng = run(x5_eng, 1e-10, &gpu);
      const core::XmvpOperator x5_ser(model, landscape, 5);
      t_x5_ser = run(x5_ser, 1e-10, nullptr);
    }

    double t_full_eng = 0.0;
    if (nu <= max_ref_nu) {
      const core::XmvpOperator full_eng(model, landscape, nu,
                                        core::Formulation::right, &gpu);
      t_full_eng = run(full_eng, 1e-13, &gpu);
    }

    const double n = std::ldexp(1.0, static_cast<int>(nu));
    const double guide = n / static_cast<double>(nu);  // N^2 / (N log2 N)

    auto speedup = [&](double t) { return t > 0.0 ? t_ref / t : 0.0; };
    auto cell = [&](double t) {
      return t > 0.0 ? format_short(speedup(t)) : std::string("-");
    };
    table.add_row({std::to_string(nu) + (ref_extrapolated ? "*" : ""),
                   format_short(guide), cell(t_fmmp_eng), cell(t_fmmp_ser),
                   cell(t_x5_eng), cell(t_x5_ser), cell(t_full_eng)});
    csv.row().cell(std::size_t{nu}).cell(guide).cell(speedup(t_fmmp_eng))
        .cell(speedup(t_fmmp_ser)).cell(speedup(t_x5_eng)).cell(speedup(t_x5_ser))
        .cell(speedup(t_full_eng))
        .cell(std::string(ref_extrapolated ? "1" : "0"));
    csv.end_row();
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout
      << "\n(* = reference time extrapolated; '-' = combination not measured "
         "at this size)\n"
      << "expected shape: Fmmp speedup grows ~ N/log2 N (same slope as the "
         "guide), Xmvp(5) grows with a flatter slope, Xmvp(nu) on the engine "
         "stays O(1)-ish; on multi-lane hardware the engine curves shift up "
         "by a constant factor without changing slope.\n";
  return 0;
}
