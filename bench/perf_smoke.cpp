// Tiny performance smoke test, registered with ctest under the `perf-smoke`
// label (ctest -L perf-smoke).  It is deliberately coarse: the only failures
// it hunts are catastrophic regressions (an accidental O(N^2) path, a
// de-vectorised microkernel, a panel layout that stopped amortising memory
// traffic), so the thresholds carry a 2x safety margin over the worst ratio
// ever observed and survive noisy CI machines.
//
// Checks, at nu = 16 on the serial engine:
//   1. panel m = 8 per-vector time <= 2x one single-vector blocked matvec
//      (healthy builds sit at or below ~1x);
//   2. the blocked banded kernel <= 3x the classic serial Fmmp (they are the
//      same algorithm; banded is normally the faster one);
//   3. one autotune report at nu = 12 measures the default plan first and
//      returns candidates (plumbing check, not a timing check);
//   4. in a QS_ENABLE_TRACING build, the runtime-disabled span sites cost
//      under 2% of a blocked matvec (per-site probe x measured site count),
//      and a per-phase span breakdown of one matvec + one panel product is
//      printed.  In a default build the check is structurally free (the
//      macros compile to nothing) and only a note is printed;
//   5. a panel-batched replica-ensemble generation's mutation phase (R = 8)
//      is no slower than 1.3x the sequential per-replica products — healthy
//      builds sit near 0.5x (i.e. ~2x faster), so this catches the batching
//      having silently degenerated to the one-vector path;
//   6. a histogram record (the always-compiled telemetry the service layer
//      runs on) costs under 1% of a blocked matvec even at ~8 records per
//      solve iteration — pins the hot-path budget of the latency plane;
//   7. the single-vector SIMD microkernels beat the forced-autovec banded
//      apply by >= 1.15x (measured: ~1.7x on an AVX-512 host at nu = 16 and
//      22) — catches the sv dispatch silently falling back to the plain
//      loops.  Skipped gracefully on hosts where no SIMD table is available
//      (best_sv_kernels() == nullptr): there autovec IS the best kernel.
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/fmmp.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stochastic/ensemble.hpp"
#include "support/rng.hpp"
#include "transforms/blocked_butterfly.hpp"
#include "transforms/panel_butterfly.hpp"
#include "transforms/panel_microkernel.hpp"
#include "transforms/sv_microkernel.hpp"
#include "transforms/plan_autotune.hpp"

int main() {
  using namespace qs;
  const unsigned nu = bench::env_unsigned("QS_PERF_SMOKE_NU", 16);
  const std::size_t n = std::size_t{1} << nu;
  const std::size_t m = 8;
  const unsigned reps = 7;
  int failures = 0;

  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 3);
  const auto& engine = parallel::serial_engine();
  const core::FmmpOperator op(model, landscape, core::Formulation::right,
                              &engine, transforms::LevelOrder::ascending,
                              core::EngineKernel::blocked);
  const core::FmmpOperator classic(model, landscape);

  std::vector<double> x(n), y(n), xp(n * m), yp(n * m);
  Xoshiro256 rng(42);
  for (double& v : x) v = rng.uniform(0.0, 1.0);
  for (double& v : xp) v = rng.uniform(0.0, 1.0);

  const double t_single = bench::time_best_of(reps, [&] { op.apply(x, y); });
  const double t_classic = bench::time_best_of(reps, [&] { classic.apply(x, y); });
  const double t_panel =
      bench::time_best_of(reps, [&] { op.apply_panel(xp, yp, m); });
  const double per_vector = t_panel / static_cast<double>(m);

  std::cout << "perf-smoke @ nu=" << nu << ", kernels="
            << transforms::panel_kernels().name << "\n"
            << "  classic Fmmp        : " << t_classic << " s\n"
            << "  blocked matvec (x1) : " << t_single << " s\n"
            << "  panel matvec (m=8)  : " << t_panel << " s ("
            << per_vector << " s/vector, "
            << t_single / per_vector << "x per-vector speedup)\n";

  if (per_vector > 2.0 * t_single) {
    std::cerr << "FAIL: panel m=8 per-vector time " << per_vector
              << " s exceeds 2x the single blocked matvec (" << t_single
              << " s) — panel path regressed\n";
    ++failures;
  }
  if (t_single > 3.0 * t_classic) {
    std::cerr << "FAIL: blocked banded matvec " << t_single
              << " s exceeds 3x the classic serial Fmmp (" << t_classic
              << " s) — banded kernel regressed\n";
    ++failures;
  }

  const auto report = transforms::autotune_blocked_plan(12, engine, 1, 1);
  const transforms::BlockedPlan def{};
  if (report.timings.empty() ||
      report.timings.front().plan.tile_log2 != def.tile_log2 ||
      report.timings.front().plan.chunk_log2 != def.chunk_log2) {
    std::cerr << "FAIL: autotune report does not measure the default plan "
                 "first\n";
    ++failures;
  } else {
    std::cout << "  autotune @ nu=12    : " << report.timings.size()
              << " candidates, best (" << report.best.tile_log2 << ","
              << report.best.chunk_log2 << ")\n";
  }

  if (qs::obs::compiled_in()) {
    // Structured breakdown: one instrumented matvec + one panel product,
    // aggregated per span name from the obs rings.
    qs::obs::set_enabled(true);
    qs::obs::reset();
    op.apply(x, y);
    op.apply_panel(xp, yp, m);
    const std::size_t sites_per_matvec = qs::obs::snapshot_spans().size();
    const auto snap = qs::obs::metrics().snapshot();
    std::cout << "  span breakdown (1 matvec + 1 panel product):\n";
    for (const auto& phase : snap.phases) {
      std::cout << "    " << phase.name << " [" << phase.category
                << "]: count=" << phase.count << ", wall="
                << phase.wall_seconds << " s, cpu=" << phase.cpu_seconds
                << " s\n";
    }

    // Disabled-site overhead: with tracing compiled in but runtime-disabled
    // (the state every timing above ran in) a span site is one relaxed
    // atomic load + branch.  Probe that cost directly with a tight loop of
    // disabled sites, scale by the site count one matvec actually executes
    // (counted from the enabled run above — panel sites included, so the
    // bound is conservative), and require < 2% of the matvec time.
    qs::obs::set_enabled(false);
    qs::obs::reset();
    constexpr std::size_t kProbe = std::size_t{1} << 20;
    const double t_probe = bench::time_best_of(3, [&] {
      for (std::size_t i = 0; i < kProbe; ++i) {
        QS_TRACE_SPAN("perf.disabled_site", kernel);
      }
    });
    const double per_site = t_probe / static_cast<double>(kProbe);
    const double overhead =
        static_cast<double>(sites_per_matvec) * per_site / t_single;
    std::cout << "  disabled span site : " << per_site * 1e9 << " ns ("
              << sites_per_matvec << " sites/matvec => "
              << overhead * 100.0 << "% of one blocked matvec)\n";
    if (overhead > 0.02) {
      std::cerr << "FAIL: runtime-disabled instrumentation costs "
                << overhead * 100.0
                << "% of a blocked matvec (budget: 2%)\n";
      ++failures;
    }
  } else {
    std::cout << "  tracing compiled out: disabled-site overhead is "
                 "identically zero (macros expand to nothing)\n";
  }

  {
    // Check 5: the ensemble's panel-batched mutation phase must actually
    // batch.  Same operator config as the ensemble engine uses internally;
    // compute_expected is idempotent on the populations, so best-of timing
    // is sound.
    stochastic::EnsembleOptions options;
    options.replicas = 8;
    options.population_size = 1000;
    stochastic::ReplicaEnsemble ensemble(model, landscape, options, &engine);
    ensemble.compute_expected(true);  // warm-up
    const double t_batched =
        bench::time_best_of(reps, [&] { ensemble.compute_expected(true); });
    const double t_sequential =
        bench::time_best_of(reps, [&] { ensemble.compute_expected(false); });
    std::cout << "  ensemble expected (R=8): batched " << t_batched
              << " s, sequential " << t_sequential << " s ("
              << t_sequential / t_batched << "x)\n";
    if (t_batched > 1.3 * t_sequential) {
      std::cerr << "FAIL: panel-batched ensemble mutation phase " << t_batched
                << " s exceeds 1.3x the sequential per-replica products ("
                << t_sequential << " s) — replica batching regressed\n";
      ++failures;
    }
  }

  {
    // Check 6: histogram records are always compiled (no tracing gate), so
    // their cost is a standing tax on every instrumented path.  Budget: a
    // solve iteration records a handful of durations/ratios (queue wait,
    // cache lookup, exchange segments, residual decay — call it 8); that
    // many records must stay under 1% of one blocked matvec.
    qs::obs::Histogram& probe_hist = qs::obs::histogram("perf.record_probe");
    constexpr std::size_t kProbe = std::size_t{1} << 20;
    volatile double sample = 1.25e-3;  // defeat constant-folding the bin index
    const double t_probe = bench::time_best_of(3, [&] {
      for (std::size_t i = 0; i < kProbe; ++i) probe_hist.record(sample);
    });
    const double per_record = t_probe / static_cast<double>(kProbe);
    constexpr double kRecordsPerMatvec = 8.0;
    const double overhead = kRecordsPerMatvec * per_record / t_single;
    std::cout << "  histogram record    : " << per_record * 1e9 << " ns ("
              << kRecordsPerMatvec << " records/matvec => "
              << overhead * 100.0 << "% of one blocked matvec)\n";
    if (overhead > 0.01) {
      std::cerr << "FAIL: histogram recording costs " << overhead * 100.0
                << "% of a blocked matvec at " << kRecordsPerMatvec
                << " records/matvec (budget: 1%)\n";
      ++failures;
    }
    qs::obs::reset_histograms();
  }

  if (transforms::best_sv_kernels() == nullptr) {
    std::cout << "  sv microkernels     : no SIMD table on this build/CPU — "
                 "autovec is the best kernel, check 7 skipped\n";
  } else {
    // Check 7: the single-vector microkernel path must actually beat the
    // forced-autovec loops on the bare banded apply.  The threshold is
    // deliberately tolerant (measured ~1.7x on AVX-512; required 1.15x) so
    // only a dispatch regression — not machine noise — can trip it.
    transforms::BlockedPlan autovec_plan;
    autovec_plan.sv_kernel = transforms::SvKernel::autovec;
    transforms::BlockedPlan sv_plan;  // automatic: widest available tier
    const auto factors = model.site_factors();
    const double t_autovec = bench::time_best_of(
        reps, [&] { transforms::apply_blocked_butterfly(x, factors, engine,
                                                        autovec_plan); });
    const double t_sv = bench::time_best_of(
        reps, [&] { transforms::apply_blocked_butterfly(x, factors, engine,
                                                        sv_plan); });
    const double speedup = t_autovec / t_sv;
    std::cout << "  sv microkernels     : autovec " << t_autovec << " s, "
              << transforms::resolved_sv_kernel_name(sv_plan.sv_kernel) << " "
              << t_sv << " s (" << speedup << "x)\n";
    if (speedup < 1.15) {
      std::cerr << "FAIL: single-vector microkernel apply " << t_sv
                << " s is less than 1.15x faster than the autovec loops ("
                << t_autovec << " s, " << speedup
                << "x) — sv dispatch regressed\n";
      ++failures;
    }
  }

  if (failures == 0) {
    std::cout << "perf-smoke PASS\n";
    return EXIT_SUCCESS;
  }
  std::cerr << "perf-smoke FAIL (" << failures << " check(s))\n";
  return EXIT_FAILURE;
}
