// Replica-ensemble throughput: panel-batched vs sequential expected-offspring
// products (extension bench; no counterpart figure in the paper).
//
// One Wright-Fisher generation of R replicas spends its flops in R banded
// mutation products.  Run sequentially, each product streams the whole 2^nu
// vector from DRAM; batched through the panel Fmmp path, m replicas share
// every sweep.  This bench drives qs::stochastic::ReplicaEnsemble both ways
// on every backend and reports the per-replica-generation time of the
// mutation phase — the phase the batching accelerates — plus one full
// generation (mutation + multinomial resampling) for context at a smaller
// size, where sampling does not drown the signal.
//
// Size caps (defaults; override with QS_BENCH_MAX_NU): the throughput
// section runs at nu = 22 with R = 8 replicas (QS_BENCH_ENSEMBLE_REPLICAS),
// ~0.8 GB of working set; the full-generation context runs at
// min(nu, 16).
//
// Besides the human-readable table + CSV, the measurement set is written as
// machine-readable JSON to BENCH_ensemble.json (override the path with
// QS_BENCH_ENSEMBLE_JSON).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "parallel/engine.hpp"
#include "stochastic/ensemble.hpp"
#include "support/table.hpp"

namespace {

struct BackendRow {
  std::string name;
  unsigned concurrency = 0;
  double batched_s = 0.0;     // expected phase, all R replicas, panel path
  double sequential_s = 0.0;  // expected phase, all R replicas, single-vector
  double speedup = 0.0;       // sequential_s / batched_s
  double step_s = 0.0;        // one full batched generation at the context size
};

void write_json(const std::string& path, unsigned nu, unsigned context_nu,
                const qs::stochastic::EnsembleOptions& options,
                const std::vector<BackendRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: could not open " << path << " for writing\n";
    return;
  }
  out.precision(9);
  out << "{\n  \"bench\": \"ensemble\",\n  \"nu\": " << nu
      << ",\n  \"context_nu\": " << context_nu
      << ",\n  \"replicas\": " << options.replicas
      << ",\n  \"panel_width\": " << options.panel_width
      << ",\n  \"population\": " << options.population_size
      << ",\n  \"backends\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BackendRow& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"concurrency\": "
        << r.concurrency << ", \"expected_batched_s\": " << r.batched_s
        << ", \"expected_sequential_s\": " << r.sequential_s
        << ", \"speedup\": " << r.speedup
        << ", \"replica_generation_batched_s\": "
        << r.batched_s / static_cast<double>(options.replicas)
        << ", \"replica_generation_sequential_s\": "
        << r.sequential_s / static_cast<double>(options.replicas)
        << ", \"full_step_s\": " << r.step_s << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace

int main() {
  using namespace qs;
  const unsigned nu = bench::env_unsigned("QS_BENCH_MAX_NU", 22);
  const unsigned context_nu = std::min(nu, 16u);
  const unsigned reps = 3;
  const char* json_env = std::getenv("QS_BENCH_ENSEMBLE_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_ensemble.json";

  stochastic::EnsembleOptions options;
  options.replicas = bench::env_unsigned("QS_BENCH_ENSEMBLE_REPLICAS", 8);
  options.population_size = 10000;
  options.panel_width = 8;
  options.seed = 1;

  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::single_peak(nu, 2.0, 1.0);
  const auto context_model = core::MutationModel::uniform(context_nu, 0.01);
  const auto context_landscape = core::Landscape::single_peak(context_nu, 2.0, 1.0);

  const auto serial = parallel::make_engine(parallel::Backend::serial);
  const auto openmp = parallel::make_engine(parallel::Backend::openmp);
  const auto pool = parallel::make_engine(parallel::Backend::thread_pool);
  const std::vector<std::pair<const char*, const parallel::Engine*>> backends = {
      {"serial", serial.get()}, {"openmp", openmp.get()}, {"thread-pool", pool.get()}};

  std::cout << "ensemble throughput: nu = " << nu << ", R = " << options.replicas
            << " replicas, m = " << options.panel_width
            << " panel columns, N_pop = " << options.population_size
            << " (expected phase = all R mutation products of one generation)\n\n";

  std::vector<BackendRow> rows;
  for (const auto& [name, engine] : backends) {
    BackendRow row;
    row.name = name;
    row.concurrency = engine->concurrency();
    {
      // One ensemble per backend: at nu = 22 the counts + expected + panel
      // working set is ~0.8 GB, so scope it to the measurement.
      stochastic::ReplicaEnsemble ensemble(model, landscape, options, engine);
      ensemble.compute_expected(true);  // warm-up: faults pages, primes plan
      row.batched_s =
          bench::time_best_of(reps, [&] { ensemble.compute_expected(true); });
      row.sequential_s =
          bench::time_best_of(reps, [&] { ensemble.compute_expected(false); });
      row.speedup = row.sequential_s / row.batched_s;
    }
    {
      stochastic::ReplicaEnsemble context(context_model, context_landscape,
                                          options, engine);
      context.step();  // warm-up
      row.step_s = bench::time_best_of(reps, [&] { context.step(); });
    }
    rows.push_back(row);
    std::cout << "  " << name << ": batched " << row.batched_s
              << " s, sequential " << row.sequential_s << " s ("
              << row.speedup << "x)\n";
  }

  std::cout << "\n";
  TextTable table({"backend", "lanes", "batched [s]", "sequential [s]",
                   "speedup", "s/replica-gen", "full step @nu=" +
                   std::to_string(context_nu) + " [s]"});
  for (const BackendRow& r : rows) {
    table.add_row_numeric(
        r.name, {static_cast<double>(r.concurrency), r.batched_s,
                 r.sequential_s, r.speedup,
                 r.batched_s / static_cast<double>(options.replicas), r.step_s});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: batched >= 1.5x the sequential expected "
               "phase per replica-generation at nu = 22, R >= 8 (the panel "
               "path amortises DRAM traffic m-fold).\n";

  std::cout << "\nCSV\nbackend,lanes,expected_batched_s,expected_sequential_s,"
               "speedup,full_step_s\n";
  for (const BackendRow& r : rows) {
    std::cout << r.name << ',' << r.concurrency << ',' << r.batched_s << ','
              << r.sequential_s << ',' << r.speedup << ',' << r.step_s << "\n";
  }

  write_json(json_path, nu, context_nu, options, rows);
  return 0;
}
