// Scaling study: the distributed-memory decomposition (the paper's stated
// future work).
//
// Runs the simulated distributed power iteration over 1..32 ranks on a
// fixed problem and reports the communication profile: messages and doubles
// moved per W-product grow as log2(P) pairwise block exchanges, while the
// per-rank memory footprint shrinks as N/P — the numbers an MPI port of the
// solver would need to budget.
#include <iostream>

#include "bench_common.hpp"
#include "core/spectral.hpp"
#include "distributed/distributed_solver.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  const unsigned nu = std::min(18u, bench::env_unsigned("QS_BENCH_MAX_NU", 18));
  const double p = 0.01;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 3);

  std::cout << "# Distributed decomposition scaling, nu = " << nu
            << " (N = " << sequence_count(nu) << "), p = " << p << "\n\n";

  TextTable table({"ranks", "block size", "time [s]", "iterations",
                   "messages/product", "MB moved/product", "lambda_0"});
  CsvWriter csv(std::cout);
  csv.header({"ranks", "block_size", "time_s", "iterations", "messages_per_product",
              "mb_per_product", "lambda"});

  for (unsigned ranks : {1u, 2u, 4u, 8u, 16u, 32u}) {
    distributed::DistributedPowerOptions opts;
    opts.shift = core::conservative_shift(model, landscape);
    Timer t;
    const auto r = distributed::distributed_power_iteration(model, landscape, ranks,
                                                            opts);
    const double seconds = t.seconds();
    if (!r.converged) {
      std::cout << "ranks=" << ranks << ": did not converge\n";
      continue;
    }
    const double products = static_cast<double>(r.iterations);
    const double messages_per =
        static_cast<double>(r.traffic.messages) / products;
    const double mb_per = static_cast<double>(r.traffic.doubles_moved) * 8.0 /
                          (1024.0 * 1024.0) / products;
    const std::size_t block = sequence_count(nu) / ranks;

    table.add_row({std::to_string(ranks), std::to_string(block),
                   format_short(seconds), std::to_string(r.iterations),
                   format_short(messages_per), format_short(mb_per),
                   format_short(r.eigenvalue)});
    csv.row().cell(std::size_t{ranks}).cell(block).cell(seconds)
        .cell(std::size_t{r.iterations}).cell(messages_per).cell(mb_per)
        .cell(r.eigenvalue);
    csv.end_row();
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nexpected shape: identical lambda_0 and iteration count at "
               "every rank count (the decomposition is exact); messages per "
               "product = P * log2(P); data volume per product = "
               "2 N log2(P) doubles; per-rank memory = N/P.\n";
  return 0;
}
