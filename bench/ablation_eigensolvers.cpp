// Ablation (Section 3): eigensolver choice.
//
// The paper selects the power iteration for its minimal storage and rejects
// Lanczos/Arnoldi (more vectors) and randomised methods (accuracy).  With
// the shift-and-invert machinery built (the paper's "current work"), this
// bench quantifies the whole trade-off space on one random-landscape
// problem family:
//
//   Pi            plain power iteration on Fmmp
//   Pi+shift      with the conservative shift mu = (1-2p)^nu f_min
//   Lanczos(30)   restarted Lanczos, 30-vector basis
//   Lanczos(8)    small-memory Lanczos
//   RQI           Rayleigh quotient iteration (MINRES inner solves)
//
// Reported: wall time, W-products, and extra storage in vectors of length N.
#include <iostream>

#include "bench_common.hpp"
#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "solvers/lanczos.hpp"
#include "solvers/power_iteration.hpp"
#include "solvers/shift_invert.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  const unsigned max_nu = std::min(18u, bench::env_unsigned("QS_BENCH_MAX_NU", 18));
  const double p = 0.01;

  std::cout << "# Ablation: eigensolver trade-offs on random landscapes "
               "(Eq. 13, c = 5, sigma = 1, p = "
            << p << ")\n\n";

  TextTable table({"nu", "solver", "time [s]", "W-products", "extra vectors",
                   "lambda_0"});
  CsvWriter csv(std::cout);
  csv.header({"nu", "solver", "time_s", "products", "extra_vectors", "lambda"});

  for (unsigned nu = 12; nu <= max_nu; nu += 3) {
    const auto model = core::MutationModel::uniform(nu, p);
    const auto landscape = core::Landscape::random(nu, 5.0, 1.0, nu);
    const core::FmmpOperator op(model, landscape);
    const auto start = solvers::landscape_start(landscape);

    auto emit = [&](const char* name, double seconds, std::size_t products,
                    std::size_t vectors, double lambda) {
      table.add_row({std::to_string(nu), name, format_short(seconds),
                     std::to_string(products), std::to_string(vectors),
                     format_short(lambda)});
      csv.row().cell(std::size_t{nu}).cell(std::string(name)).cell(seconds)
          .cell(products).cell(vectors).cell(lambda);
      csv.end_row();
    };

    {
      Timer t;
      const auto r = solvers::power_iteration(op, start);
      emit("Pi", t.seconds(), r.iterations, 2, r.eigenvalue);
    }
    {
      solvers::PowerOptions opts;
      opts.shift = core::conservative_shift(model, landscape);
      Timer t;
      const auto r = solvers::power_iteration(op, start, opts);
      emit("Pi+shift", t.seconds(), r.iterations, 2, r.eigenvalue);
    }
    {
      solvers::LanczosOptions opts;
      opts.basis_size = 30;
      Timer t;
      const auto r = solvers::lanczos_dominant_w(model, landscape, {}, opts);
      emit("Lanczos(30)", t.seconds(), r.matvec_count, 30 + 2, r.eigenvalue);
    }
    {
      solvers::LanczosOptions opts;
      opts.basis_size = 8;
      Timer t;
      const auto r = solvers::lanczos_dominant_w(model, landscape, {}, opts);
      emit("Lanczos(8)", t.seconds(), r.matvec_count, 8 + 2, r.eigenvalue);
    }
    {
      solvers::ShiftInvertOptions opts;
      Timer t;
      const auto r = solvers::rayleigh_quotient_iteration_w(model, landscape, {}, opts);
      emit("RQI", t.seconds(),
           r.inner_iterations_total + r.outer_iterations + 20, 5, r.eigenvalue);
    }
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nexpected shape: all solvers agree on lambda_0; Lanczos needs "
               "the fewest products at the highest storage; the shift trims "
               "~10% off Pi; RQI trades outer convergence speed for Krylov "
               "inner products.  The paper's choice (Pi+shift) is the "
               "storage-optimal column.\n";
  return 0;
}
