// Distributed-transport scaling study (supersedes scaling_distributed).
//
// Runs the distributed power iteration over a ranks x nu grid on the
// lockstep transport plus real multi-process rows, with a FIXED iteration
// count per cell so the timings measure the transport, not the convergence
// trajectory.  Reports per-cell wall time, bytes exchanged, allreduce count,
// and the pipeline overlap ratio (combine time hidden behind the wire /
// total exchange time).
//
// The final row is the capacity configuration the decomposition exists for:
// a multi-process solve at nu >= 24 where each of the >= 4 ranks holds only
// its own 2^nu/R block (gather_eigenvector = false; no rank ever
// materialises the full 2^nu vector).  Cap the grid with QS_BENCH_MAX_NU.
//
// Results are written as machine-readable JSON to BENCH_dist.json (override
// the path with QS_BENCH_JSON); timing keys end in _s so tools/bench_diff
// pins them.  Rows are identified by (backend, R, nu).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/spectral.hpp"
#include "distributed/distributed_solver.hpp"
#include "support/table.hpp"

namespace {

struct DistRow {
  std::string backend;
  unsigned ranks = 0;
  unsigned nu = 0;
  unsigned iterations = 0;
  double solve_s = 0.0;
  double per_iteration_s = 0.0;
  double lambda = 0.0;
  qs::distributed::TrafficStats traffic;
  unsigned local_levels = 0;
  std::size_t block_doubles = 0;
};

DistRow run_cell(qs::distributed::ExchangeKind exchange, unsigned ranks,
                 unsigned nu, unsigned iterations, bool gather) {
  using namespace qs;
  const auto model = core::MutationModel::uniform(nu, 0.01);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 3);

  distributed::DistributedPowerOptions opts;
  opts.shift = core::conservative_shift(model, landscape);
  opts.exchange = exchange;
  opts.gather_eigenvector = gather;
  opts.tolerance = 0.0;        // never converge early:
  opts.stall_window = 0;       // every cell runs exactly `iterations`
  opts.max_iterations = iterations;
  opts.residual_check_every = 1;

  Timer t;
  const auto r = distributed::distributed_power_iteration(model, landscape,
                                                          ranks, opts);
  DistRow row;
  row.backend =
      exchange == distributed::ExchangeKind::lockstep ? "lockstep" : "process";
  row.ranks = ranks;
  row.nu = nu;
  row.iterations = r.iterations;
  row.solve_s = t.seconds();
  row.per_iteration_s = row.solve_s / static_cast<double>(r.iterations);
  row.lambda = r.eigenvalue;
  row.traffic = r.traffic;
  row.local_levels = r.local_levels;
  row.block_doubles = (std::size_t{1} << nu) / ranks;
  return row;
}

void write_json(const std::string& path, const std::vector<DistRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: could not open " << path << " for writing\n";
    return;
  }
  out.precision(9);
  out << "{\n  \"figure\": \"dist\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const DistRow& r = rows[i];
    out << "    {\"backend\": \"" << r.backend << "\", \"R\": " << r.ranks
        << ", \"nu\": " << r.nu << ", \"block_doubles\": " << r.block_doubles
        << ", \"local_levels\": " << r.local_levels
        << ", \"iterations\": " << r.iterations
        << ", \"solve_s\": " << r.solve_s
        << ", \"per_iteration_s\": " << r.per_iteration_s
        << ", \"messages\": " << r.traffic.messages
        << ", \"bytes_moved\": " << r.traffic.bytes_moved()
        << ", \"allreduces\": " << r.traffic.allreduce_calls
        << ", \"overlap_ratio\": " << r.traffic.overlap_ratio()
        << ", \"lambda\": " << r.lambda << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace

int main() {
  using namespace qs;
  const unsigned max_nu = bench::env_unsigned("QS_BENCH_MAX_NU", 24);
  const char* json_env = std::getenv("QS_BENCH_JSON");
  const std::string json_path = json_env != nullptr ? json_env : "BENCH_dist.json";

  std::cout << "# Distributed transport scaling (fixed-iteration solves)\n\n";
  TextTable table({"backend", "ranks", "nu", "block [doubles]", "time [s]",
                   "s/iteration", "MB moved", "overlap"});
  std::vector<DistRow> rows;
  auto add = [&](DistRow row) {
    table.add_row({row.backend, std::to_string(row.ranks),
                   std::to_string(row.nu), std::to_string(row.block_doubles),
                   format_short(row.solve_s), format_short(row.per_iteration_s),
                   format_short(static_cast<double>(row.traffic.bytes_moved()) /
                                (1024.0 * 1024.0)),
                   format_short(row.traffic.overlap_ratio())});
    rows.push_back(std::move(row));
  };

  // Lockstep grid: how the communication volume scales with R and nu.
  for (unsigned nu : {14u, 16u, 18u}) {
    if (nu > max_nu) continue;
    for (unsigned ranks : {1u, 2u, 4u, 8u}) {
      add(run_cell(distributed::ExchangeKind::lockstep, ranks, nu, 12, true));
    }
  }

  // Real multi-process rows: the same cell over forked ranks and AF_UNIX
  // socketpairs, where the overlap ratio means actual hidden wire time.
  if (16 <= max_nu) {
    add(run_cell(distributed::ExchangeKind::process, 4, 16, 12, true));
  }

  // Capacity row: nu >= 24 with >= 4 real processes, no gather — per-rank
  // resident vector is 2^nu/R doubles and nothing larger ever exists.
  if (24 <= max_nu) {
    add(run_cell(distributed::ExchangeKind::process, 4, 24, 2, false));
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nexpected shape: identical lambda estimates at every rank "
               "count and transport (the decomposition is exact); bytes per "
               "product = 2 N log2(R) doubles; per-rank memory = N/R; the "
               "process rows additionally overlap cross-rank combine work "
               "against the wire (overlap > 0).\n";
  write_json(json_path, rows);
  return 0;
}
