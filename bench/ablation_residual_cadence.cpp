// Ablation: residual-check cadence in the power iteration.
//
// The product W x is reused for the update, so a residual check costs only
// reductions (a few O(N) passes) — but on memory-bound hardware those
// passes are not free.  Checking every k-th iteration skips them at the
// price of overshooting convergence by up to k-1 products.  This bench
// measures the trade on one problem family.
#include <iostream>

#include "bench_common.hpp"
#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "solvers/power_iteration.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  const unsigned nu = std::min(18u, bench::env_unsigned("QS_BENCH_MAX_NU", 18));
  const double p = 0.01;
  const auto model = core::MutationModel::uniform(nu, p);
  const auto landscape = core::Landscape::random(nu, 5.0, 1.0, 9);
  const core::FmmpOperator op(model, landscape);
  const auto start = solvers::landscape_start(landscape);
  const double shift = core::conservative_shift(model, landscape);

  std::cout << "# Ablation: residual-check cadence (random landscape, nu = "
            << nu << ")\n\n";

  TextTable table({"check every", "iterations", "time [s]", "final residual"});
  CsvWriter csv(std::cout);
  csv.header({"cadence", "iterations", "time_s", "residual"});

  for (unsigned cadence : {1u, 2u, 4u, 8u, 16u, 32u}) {
    solvers::PowerOptions opts;
    opts.shift = shift;
    opts.residual_check_every = cadence;
    Timer t;
    const auto r = solvers::power_iteration(op, start, opts);
    const double seconds = t.seconds();
    if (!r.converged) {
      std::cout << "cadence " << cadence << ": did not converge\n";
      continue;
    }
    table.add_row({std::to_string(cadence), std::to_string(r.iterations),
                   format_short(seconds), format_short(r.residual)});
    csv.row().cell(std::size_t{cadence}).cell(std::size_t{r.iterations})
        .cell(seconds).cell(r.residual);
    csv.end_row();
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nexpected shape: sparser checks overshoot by at most "
               "(cadence - 1) products; the reduction savings per iteration "
               "make the mid-range cadences slightly fastest on memory-bound "
               "hardware.\n";
  return 0;
}
