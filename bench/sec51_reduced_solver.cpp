// Section 5.1 reproduction: exact (nu+1) x (nu+1) reduction for
// Hamming-distance (error-class) landscapes.
//
// The paper's claim: for f_i = phi(d_H(i, 0)) the full N x N problem reduces
// *exactly* to (nu+1) x (nu+1) — no approximation needed — so the reduced
// solve must match the full Pi(Fmmp) solve to solver accuracy while being
// orders of magnitude cheaper.  This bench times both paths, reports the
// agreement, and then pushes the reduced solver to chain lengths (nu up to
// 1000) that no 2^nu method could ever touch.
#include <cmath>
#include <iostream>

#include "analysis/error_classes.hpp"
#include "bench_common.hpp"
#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "solvers/power_iteration.hpp"
#include "solvers/reduced_solver.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  const unsigned max_full_nu = std::min(18u, bench::env_unsigned("QS_BENCH_MAX_NU", 18));
  const double p = 0.02;

  std::cout << "# Section 5.1: exact reduction to (nu+1) x (nu+1) for "
               "error-class landscapes (single peak f0 = 2, rest 1, p = "
            << p << ")\n\n";

  TextTable table({"nu", "reduced [s]", "full Pi(Fmmp) [s]", "speedup",
                   "max |[Gk] diff|", "lambda diff"});
  CsvWriter csv(std::cout);
  csv.header({"nu", "reduced_s", "full_s", "speedup", "class_diff", "lambda_diff"});

  for (unsigned nu = 10; nu <= max_full_nu; nu += 2) {
    const auto ecl = core::ErrorClassLandscape::single_peak(nu, 2.0, 1.0);

    Timer t_red;
    const auto reduced = solvers::solve_reduced(p, ecl);
    const double reduced_s = t_red.seconds();

    const auto model = core::MutationModel::uniform(nu, p);
    const auto full_landscape = ecl.expand();
    const core::FmmpOperator op(model, full_landscape);
    solvers::PowerOptions opts;
    opts.shift = core::conservative_shift(model, full_landscape);
    Timer t_full;
    const auto full =
        solvers::power_iteration(op, solvers::landscape_start(full_landscape), opts);
    const double full_s = t_full.seconds();

    const auto full_classes = analysis::class_concentrations(nu, full.eigenvector);
    double class_diff = 0.0;
    for (unsigned k = 0; k <= nu; ++k) {
      class_diff = std::max(class_diff,
                            std::abs(full_classes[k] - reduced.class_concentrations[k]));
    }
    const double lambda_diff = std::abs(full.eigenvalue - reduced.eigenvalue);

    table.add_row({std::to_string(nu), format_short(reduced_s), format_short(full_s),
                   format_short(full_s / reduced_s), format_short(class_diff),
                   format_short(lambda_diff)});
    csv.row().cell(std::size_t{nu}).cell(reduced_s).cell(full_s)
        .cell(full_s / reduced_s).cell(class_diff).cell(lambda_diff);
    csv.end_row();
  }

  std::cout << "\n";
  table.print(std::cout);

  // Beyond any full method: biologically interesting chain lengths.
  std::cout << "\n# reduced solver beyond the reach of any 2^nu method:\n";
  TextTable big({"nu", "p", "time [s]", "lambda", "[G0]", "[G1]"});
  for (unsigned nu : {50u, 100u, 250u, 500u, 1000u}) {
    const auto ecl = core::ErrorClassLandscape::single_peak(nu, 5.0, 1.0);
    const double big_p = 0.5 / nu;  // constant expected mutations per copy
    Timer t;
    // The power backend skips the O(nu^3) Jacobi sweep; class totals come
    // from the positive class-total iteration either way.
    const auto r = solvers::solve_reduced(big_p, ecl, solvers::ReducedMethod::power);
    big.add_row({std::to_string(nu), format_short(big_p), format_short(t.seconds()),
                 format_short(r.eigenvalue), format_short(r.class_concentrations[0]),
                 format_short(r.class_concentrations[1])});
  }
  big.print(std::cout);
  std::cout << "\nexpected shape: agreement at solver accuracy (~1e-9), "
               "reduced path faster by a factor growing like 2^nu / (nu+1)^2; "
               "at fixed nu*p the large-nu rows approach the infinite-chain "
               "limit [G0] -> (sigma e^{-nu p} - 1)/(sigma - 1) ~ 0.51.\n";
  return 0;
}
