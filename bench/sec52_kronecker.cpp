// Section 5.2 reproduction: Kronecker-landscape decoupling.
//
// A Kronecker landscape F = (x)_i F_i decouples W = Q F into g independent
// subproblems of size 2^{nu/g}: the multiplicative cost 2^nu becomes the
// additive cost g * 2^{nu/g}.  This bench solves one problem with
// increasing group counts g and compares against the full Pi(Fmmp) solve,
// then demonstrates the paper's motivating scenario: a chain length far
// beyond storage (nu = 100 as Kronecker subproblems), including the
// per-error-class min/max concentrations extracted from the implicit
// eigenvector.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "linalg/vector_ops.hpp"
#include "solvers/kronecker_solver.hpp"
#include "solvers/power_iteration.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

qs::core::KroneckerLandscape make_landscape(unsigned nu, unsigned groups,
                                            std::uint64_t seed) {
  // Per-group analogue of the paper's random landscape (Eq. 13): an
  // isolated master motif per group over random background fitness.  (An
  // isolated peak keeps the spectral gap healthy; iid fitness values with
  // no peak cluster the top of the spectrum and no power-type method — the
  // paper's included — converges in reasonable time.)
  qs::Xoshiro256 rng(seed);
  const unsigned bits = nu / groups;
  std::vector<std::vector<double>> factors;
  for (unsigned g = 0; g < groups; ++g) {
    std::vector<double> f(std::size_t{1} << bits);
    for (double& v : f) v = rng.uniform(0.5, 1.5);
    f[0] = 3.0;
    factors.push_back(std::move(f));
  }
  return qs::core::KroneckerLandscape(std::move(factors));
}

}  // namespace

int main() {
  using namespace qs;
  const unsigned nu = std::min(20u, bench::env_unsigned("QS_BENCH_MAX_NU", 20));
  const double p = 0.01;

  std::cout << "# Section 5.2: Kronecker landscape decoupling, nu = " << nu
            << ", p = " << p << "\n\n";

  TextTable table({"groups g", "subproblem size", "kron solve [s]",
                   "full Pi(Fmmp) [s]", "speedup", "lambda rel diff",
                   "max |x diff|"});
  CsvWriter csv(std::cout);
  csv.header({"groups", "sub_dim", "kron_s", "full_s", "speedup", "lambda_diff",
              "vector_diff"});

  const auto model = core::MutationModel::uniform(nu, p);
  for (unsigned g : {1u, 2u, 4u, 5u}) {
    if (nu % g != 0) continue;
    const auto landscape = make_landscape(nu, g, 7);

    Timer t_kron;
    const auto kron = solvers::solve_kronecker(model, landscape);
    const double kron_s = t_kron.seconds();

    const auto full_landscape = landscape.expand();
    const core::FmmpOperator op(model, full_landscape);
    solvers::PowerOptions opts;
    opts.shift = core::conservative_shift(model, full_landscape);
    Timer t_full;
    const auto full =
        solvers::power_iteration(op, solvers::landscape_start(full_landscape), opts);
    const double full_s = t_full.seconds();

    const double lambda_diff =
        std::abs(kron.eigenvalue() - full.eigenvalue) / full.eigenvalue;
    const double vec_diff = linalg::max_abs_diff(kron.expand(), full.eigenvector);

    table.add_row({std::to_string(g), "2^" + std::to_string(nu / g),
                   format_short(kron_s), format_short(full_s),
                   format_short(full_s / kron_s), format_short(lambda_diff),
                   format_short(vec_diff)});
    csv.row().cell(std::size_t{g}).cell(std::size_t{1} << (nu / g)).cell(kron_s)
        .cell(full_s).cell(full_s / kron_s).cell(lambda_diff).cell(vec_diff);
    csv.end_row();
  }

  std::cout << "\n";
  table.print(std::cout);

  // The paper's flagship example: nu = 100 via g = 4 subproblems of 2^25
  // would take minutes; g = 10 of 2^10 is instant and equally implicit.
  std::cout << "\n# chain length nu = 100 (2^100 states — no full method can "
               "exist), g = 10 subproblems of 2^10:\n";
  const unsigned big_nu = 100;
  const auto big_model = core::MutationModel::uniform(big_nu, 0.005);
  const auto big_landscape = make_landscape(big_nu, 10, 99);
  Timer t_big;
  const auto big = solvers::solve_kronecker(big_model, big_landscape);
  const double big_s = t_big.seconds();
  std::cout << "solved in " << big_s << " s, lambda = " << big.eigenvalue() << "\n";
  const auto classes = big.class_concentrations();
  const auto min_max = big.class_min_max();
  TextTable big_table({"class k", "[Gk]", "min x_i in Gk", "max x_i in Gk"});
  for (unsigned k : {0u, 1u, 2u, 5u, 10u, 25u, 50u}) {
    big_table.add_row({std::to_string(k), format_short(classes[k]),
                       format_short(min_max[k].first),
                       format_short(min_max[k].second)});
  }
  big_table.print(std::cout);
  std::cout << "\nexpected shape: identical answers for every g, solve time "
               "collapsing with g (additive instead of multiplicative cost); "
               "the nu = 100 solve finishes in milliseconds with full "
               "per-class information from the implicit eigenvector.\n";
  return 0;
}
