// Extension bench: the error threshold at finite population size
// (the paper's reference [11], Nowak & Schuster 1989).
//
// The deterministic threshold assumes an infinite population; with finite
// N_pop, random drift destroys the ordered phase *before* the deterministic
// p_max — the effective threshold moves down as N_pop shrinks.  This bench
// sweeps the error rate for several population sizes and prints the
// master-class concentration curves; the crossing of a 10 % "ordered"
// criterion estimates the effective threshold per N_pop.
#include <iostream>

#include "analysis/error_classes.hpp"
#include "bench_common.hpp"
#include "solvers/quasispecies_solver.hpp"
#include "stochastic/wright_fisher.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

int main() {
  using namespace qs;
  const unsigned nu = std::min(10u, bench::env_unsigned("QS_BENCH_MAX_NU", 10));
  const double sigma = 2.0;
  const auto landscape = core::Landscape::single_peak(nu, sigma, 1.0);

  std::cout << "# Finite-population error threshold (single peak, nu = " << nu
            << ", sigma = " << sigma << ")\n"
            << "# deterministic p_max ~ ln(sigma)/nu = " << std::log(sigma) / nu
            << "\n\n";

  const std::vector<double> p_grid{0.01, 0.03, 0.05, 0.07, 0.09, 0.11};
  const std::vector<std::uint64_t> populations{100, 1000, 10000};

  TextTable table({"p", "deterministic [G0]", "N=100", "N=1000", "N=10000"});
  CsvWriter csv(std::cout);
  csv.header({"p", "deterministic_g0", "g0_n100", "g0_n1000", "g0_n10000"});

  for (double p : p_grid) {
    const auto model = core::MutationModel::uniform(nu, p);
    const auto deterministic = solvers::solve(model, landscape);
    std::vector<double> row{deterministic.class_concentrations[0]};

    for (std::uint64_t n_pop : populations) {
      stochastic::WrightFisher wf(model, landscape,
                                  static_cast<std::uint64_t>(p * 1e6) + n_pop);
      auto pop = stochastic::Population::monomorphic(nu, n_pop);
      const auto average = wf.run(pop, 600, 400);
      row.push_back(analysis::class_concentrations(nu, average)[0]);
    }

    table.add_row_numeric(format_short(p), row);
    csv.row().cell(p);
    for (double v : row) csv.cell(v);
    csv.end_row();
  }

  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\nexpected shape: large populations track the deterministic "
               "curve; small populations lose the master class at error "
               "rates well below the deterministic p_max (drift-induced "
               "threshold shift, Nowak & Schuster).\n";
  return 0;
}
