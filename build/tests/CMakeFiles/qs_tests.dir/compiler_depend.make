# Empty compiler generated dependencies file for qs_tests.
# This may be replaced when dependencies are built.
