
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_marginals_test.cpp" "tests/CMakeFiles/qs_tests.dir/analysis_marginals_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/analysis_marginals_test.cpp.o.d"
  "/root/repo/tests/analysis_statistics_test.cpp" "tests/CMakeFiles/qs_tests.dir/analysis_statistics_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/analysis_statistics_test.cpp.o.d"
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/qs_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/core_landscape_library_test.cpp" "tests/CMakeFiles/qs_tests.dir/core_landscape_library_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/core_landscape_library_test.cpp.o.d"
  "/root/repo/tests/core_landscape_test.cpp" "tests/CMakeFiles/qs_tests.dir/core_landscape_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/core_landscape_test.cpp.o.d"
  "/root/repo/tests/core_mutation_model_test.cpp" "tests/CMakeFiles/qs_tests.dir/core_mutation_model_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/core_mutation_model_test.cpp.o.d"
  "/root/repo/tests/core_operators_test.cpp" "tests/CMakeFiles/qs_tests.dir/core_operators_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/core_operators_test.cpp.o.d"
  "/root/repo/tests/core_spectral_test.cpp" "tests/CMakeFiles/qs_tests.dir/core_spectral_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/core_spectral_test.cpp.o.d"
  "/root/repo/tests/distributed_test.cpp" "tests/CMakeFiles/qs_tests.dir/distributed_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/distributed_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/qs_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/qs_tests.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/io_test.cpp.o.d"
  "/root/repo/tests/linalg_dense_matrix_test.cpp" "tests/CMakeFiles/qs_tests.dir/linalg_dense_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/linalg_dense_matrix_test.cpp.o.d"
  "/root/repo/tests/linalg_eigen_test.cpp" "tests/CMakeFiles/qs_tests.dir/linalg_eigen_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/linalg_eigen_test.cpp.o.d"
  "/root/repo/tests/linalg_krylov_test.cpp" "tests/CMakeFiles/qs_tests.dir/linalg_krylov_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/linalg_krylov_test.cpp.o.d"
  "/root/repo/tests/linalg_vector_ops_test.cpp" "tests/CMakeFiles/qs_tests.dir/linalg_vector_ops_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/linalg_vector_ops_test.cpp.o.d"
  "/root/repo/tests/ode_test.cpp" "tests/CMakeFiles/qs_tests.dir/ode_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/ode_test.cpp.o.d"
  "/root/repo/tests/ode_time_varying_test.cpp" "tests/CMakeFiles/qs_tests.dir/ode_time_varying_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/ode_time_varying_test.cpp.o.d"
  "/root/repo/tests/paper_claims_test.cpp" "tests/CMakeFiles/qs_tests.dir/paper_claims_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/paper_claims_test.cpp.o.d"
  "/root/repo/tests/parallel_engine_test.cpp" "tests/CMakeFiles/qs_tests.dir/parallel_engine_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/parallel_engine_test.cpp.o.d"
  "/root/repo/tests/property_extensions_test.cpp" "tests/CMakeFiles/qs_tests.dir/property_extensions_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/property_extensions_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/qs_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/rna_test.cpp" "tests/CMakeFiles/qs_tests.dir/rna_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/rna_test.cpp.o.d"
  "/root/repo/tests/solvers_arnoldi_test.cpp" "tests/CMakeFiles/qs_tests.dir/solvers_arnoldi_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/solvers_arnoldi_test.cpp.o.d"
  "/root/repo/tests/solvers_deflation_test.cpp" "tests/CMakeFiles/qs_tests.dir/solvers_deflation_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/solvers_deflation_test.cpp.o.d"
  "/root/repo/tests/solvers_facade_test.cpp" "tests/CMakeFiles/qs_tests.dir/solvers_facade_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/solvers_facade_test.cpp.o.d"
  "/root/repo/tests/solvers_kronecker_test.cpp" "tests/CMakeFiles/qs_tests.dir/solvers_kronecker_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/solvers_kronecker_test.cpp.o.d"
  "/root/repo/tests/solvers_power_iteration_test.cpp" "tests/CMakeFiles/qs_tests.dir/solvers_power_iteration_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/solvers_power_iteration_test.cpp.o.d"
  "/root/repo/tests/solvers_reduced_alphabet_test.cpp" "tests/CMakeFiles/qs_tests.dir/solvers_reduced_alphabet_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/solvers_reduced_alphabet_test.cpp.o.d"
  "/root/repo/tests/solvers_reduced_test.cpp" "tests/CMakeFiles/qs_tests.dir/solvers_reduced_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/solvers_reduced_test.cpp.o.d"
  "/root/repo/tests/solvers_shift_invert_test.cpp" "tests/CMakeFiles/qs_tests.dir/solvers_shift_invert_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/solvers_shift_invert_test.cpp.o.d"
  "/root/repo/tests/solvers_spectral_test.cpp" "tests/CMakeFiles/qs_tests.dir/solvers_spectral_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/solvers_spectral_test.cpp.o.d"
  "/root/repo/tests/solvers_stall_test.cpp" "tests/CMakeFiles/qs_tests.dir/solvers_stall_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/solvers_stall_test.cpp.o.d"
  "/root/repo/tests/sparse_test.cpp" "tests/CMakeFiles/qs_tests.dir/sparse_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/sparse_test.cpp.o.d"
  "/root/repo/tests/stochastic_test.cpp" "tests/CMakeFiles/qs_tests.dir/stochastic_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/stochastic_test.cpp.o.d"
  "/root/repo/tests/support_args_test.cpp" "tests/CMakeFiles/qs_tests.dir/support_args_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/support_args_test.cpp.o.d"
  "/root/repo/tests/support_binomial_test.cpp" "tests/CMakeFiles/qs_tests.dir/support_binomial_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/support_binomial_test.cpp.o.d"
  "/root/repo/tests/support_bits_test.cpp" "tests/CMakeFiles/qs_tests.dir/support_bits_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/support_bits_test.cpp.o.d"
  "/root/repo/tests/support_io_test.cpp" "tests/CMakeFiles/qs_tests.dir/support_io_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/support_io_test.cpp.o.d"
  "/root/repo/tests/support_rng_test.cpp" "tests/CMakeFiles/qs_tests.dir/support_rng_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/support_rng_test.cpp.o.d"
  "/root/repo/tests/transforms_butterfly_test.cpp" "tests/CMakeFiles/qs_tests.dir/transforms_butterfly_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/transforms_butterfly_test.cpp.o.d"
  "/root/repo/tests/transforms_fwht_test.cpp" "tests/CMakeFiles/qs_tests.dir/transforms_fwht_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/transforms_fwht_test.cpp.o.d"
  "/root/repo/tests/transforms_kronecker_test.cpp" "tests/CMakeFiles/qs_tests.dir/transforms_kronecker_test.cpp.o" "gcc" "tests/CMakeFiles/qs_tests.dir/transforms_kronecker_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/quasispecies.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
