# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_qs_solve_help "/root/repo/build/tools/qs_solve" "--help")
set_tests_properties(cli_qs_solve_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qs_solve_power "/root/repo/build/tools/qs_solve" "--nu" "8" "--p" "0.02" "--landscape" "single-peak")
set_tests_properties(cli_qs_solve_power PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qs_solve_reduced "/root/repo/build/tools/qs_solve" "--nu" "100" "--p" "0.003" "--landscape" "single-peak" "--reduced")
set_tests_properties(cli_qs_solve_reduced PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qs_solve_lanczos "/root/repo/build/tools/qs_solve" "--nu" "8" "--p" "0.02" "--landscape" "random" "--solver" "lanczos")
set_tests_properties(cli_qs_solve_lanczos PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qs_solve_rqi "/root/repo/build/tools/qs_solve" "--nu" "8" "--p" "0.02" "--landscape" "random" "--solver" "rqi")
set_tests_properties(cli_qs_solve_rqi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qs_solve_rejects_bad_input "/root/repo/build/tools/qs_solve" "--nu" "8")
set_tests_properties(cli_qs_solve_rejects_bad_input PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qs_sweep_reduced "/root/repo/build/tools/qs_sweep" "--nu" "20" "--landscape" "single-peak" "--points" "5" "--threshold")
set_tests_properties(cli_qs_sweep_reduced PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qs_sweep_full "/root/repo/build/tools/qs_sweep" "--nu" "8" "--landscape" "random" "--from" "0.01" "--to" "0.03" "--points" "3")
set_tests_properties(cli_qs_sweep_full PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qs_simulate_wf "/root/repo/build/tools/qs_simulate" "--nu" "6" "--p" "0.03" "--pop" "500" "--generations" "50")
set_tests_properties(cli_qs_simulate_wf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qs_simulate_moran "/root/repo/build/tools/qs_simulate" "--nu" "5" "--p" "0.05" "--pop" "200" "--generations" "20" "--process" "moran")
set_tests_properties(cli_qs_simulate_moran PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qs_phase "/root/repo/build/tools/qs_phase" "--nu" "30" "--sigma-from" "1.5" "--sigma-to" "5" "--sigma-points" "4")
set_tests_properties(cli_qs_phase PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;38;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qs_solve_arnoldi "/root/repo/build/tools/qs_solve" "--nu" "8" "--p" "0.02" "--landscape" "random" "--solver" "arnoldi")
set_tests_properties(cli_qs_solve_arnoldi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;43;add_test;/root/repo/tools/CMakeLists.txt;0;")
