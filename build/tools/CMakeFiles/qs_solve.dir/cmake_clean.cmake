file(REMOVE_RECURSE
  "CMakeFiles/qs_solve.dir/qs_solve.cpp.o"
  "CMakeFiles/qs_solve.dir/qs_solve.cpp.o.d"
  "qs_solve"
  "qs_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
