# Empty compiler generated dependencies file for qs_solve.
# This may be replaced when dependencies are built.
