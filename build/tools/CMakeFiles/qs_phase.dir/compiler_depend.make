# Empty compiler generated dependencies file for qs_phase.
# This may be replaced when dependencies are built.
