file(REMOVE_RECURSE
  "CMakeFiles/qs_phase.dir/qs_phase.cpp.o"
  "CMakeFiles/qs_phase.dir/qs_phase.cpp.o.d"
  "qs_phase"
  "qs_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
