# Empty compiler generated dependencies file for qs_sweep.
# This may be replaced when dependencies are built.
