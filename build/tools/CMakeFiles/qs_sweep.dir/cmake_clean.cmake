file(REMOVE_RECURSE
  "CMakeFiles/qs_sweep.dir/qs_sweep.cpp.o"
  "CMakeFiles/qs_sweep.dir/qs_sweep.cpp.o.d"
  "qs_sweep"
  "qs_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
