# Empty dependencies file for qs_simulate.
# This may be replaced when dependencies are built.
