file(REMOVE_RECURSE
  "CMakeFiles/qs_simulate.dir/qs_simulate.cpp.o"
  "CMakeFiles/qs_simulate.dir/qs_simulate.cpp.o.d"
  "qs_simulate"
  "qs_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
