# Empty dependencies file for finite_population.
# This may be replaced when dependencies are built.
