file(REMOVE_RECURSE
  "CMakeFiles/finite_population.dir/finite_population.cpp.o"
  "CMakeFiles/finite_population.dir/finite_population.cpp.o.d"
  "finite_population"
  "finite_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finite_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
