# Empty dependencies file for antiviral_strategy.
# This may be replaced when dependencies are built.
