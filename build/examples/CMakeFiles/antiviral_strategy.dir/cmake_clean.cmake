file(REMOVE_RECURSE
  "CMakeFiles/antiviral_strategy.dir/antiviral_strategy.cpp.o"
  "CMakeFiles/antiviral_strategy.dir/antiviral_strategy.cpp.o.d"
  "antiviral_strategy"
  "antiviral_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/antiviral_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
