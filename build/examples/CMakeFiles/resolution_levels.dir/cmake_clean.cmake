file(REMOVE_RECURSE
  "CMakeFiles/resolution_levels.dir/resolution_levels.cpp.o"
  "CMakeFiles/resolution_levels.dir/resolution_levels.cpp.o.d"
  "resolution_levels"
  "resolution_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolution_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
