# Empty dependencies file for resolution_levels.
# This may be replaced when dependencies are built.
