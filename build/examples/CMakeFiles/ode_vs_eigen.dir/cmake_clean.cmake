file(REMOVE_RECURSE
  "CMakeFiles/ode_vs_eigen.dir/ode_vs_eigen.cpp.o"
  "CMakeFiles/ode_vs_eigen.dir/ode_vs_eigen.cpp.o.d"
  "ode_vs_eigen"
  "ode_vs_eigen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_vs_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
