# Empty compiler generated dependencies file for ode_vs_eigen.
# This may be replaced when dependencies are built.
