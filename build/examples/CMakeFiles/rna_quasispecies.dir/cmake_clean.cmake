file(REMOVE_RECURSE
  "CMakeFiles/rna_quasispecies.dir/rna_quasispecies.cpp.o"
  "CMakeFiles/rna_quasispecies.dir/rna_quasispecies.cpp.o.d"
  "rna_quasispecies"
  "rna_quasispecies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rna_quasispecies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
