# Empty compiler generated dependencies file for rna_quasispecies.
# This may be replaced when dependencies are built.
