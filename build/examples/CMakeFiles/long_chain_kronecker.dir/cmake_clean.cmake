file(REMOVE_RECURSE
  "CMakeFiles/long_chain_kronecker.dir/long_chain_kronecker.cpp.o"
  "CMakeFiles/long_chain_kronecker.dir/long_chain_kronecker.cpp.o.d"
  "long_chain_kronecker"
  "long_chain_kronecker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/long_chain_kronecker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
