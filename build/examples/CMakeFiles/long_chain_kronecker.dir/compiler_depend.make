# Empty compiler generated dependencies file for long_chain_kronecker.
# This may be replaced when dependencies are built.
