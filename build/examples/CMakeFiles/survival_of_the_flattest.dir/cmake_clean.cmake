file(REMOVE_RECURSE
  "CMakeFiles/survival_of_the_flattest.dir/survival_of_the_flattest.cpp.o"
  "CMakeFiles/survival_of_the_flattest.dir/survival_of_the_flattest.cpp.o.d"
  "survival_of_the_flattest"
  "survival_of_the_flattest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survival_of_the_flattest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
