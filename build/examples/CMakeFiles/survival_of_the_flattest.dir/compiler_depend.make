# Empty compiler generated dependencies file for survival_of_the_flattest.
# This may be replaced when dependencies are built.
