# Empty compiler generated dependencies file for random_landscape_solvers.
# This may be replaced when dependencies are built.
