file(REMOVE_RECURSE
  "CMakeFiles/random_landscape_solvers.dir/random_landscape_solvers.cpp.o"
  "CMakeFiles/random_landscape_solvers.dir/random_landscape_solvers.cpp.o.d"
  "random_landscape_solvers"
  "random_landscape_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_landscape_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
