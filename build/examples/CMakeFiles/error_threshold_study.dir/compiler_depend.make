# Empty compiler generated dependencies file for error_threshold_study.
# This may be replaced when dependencies are built.
