file(REMOVE_RECURSE
  "CMakeFiles/error_threshold_study.dir/error_threshold_study.cpp.o"
  "CMakeFiles/error_threshold_study.dir/error_threshold_study.cpp.o.d"
  "error_threshold_study"
  "error_threshold_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_threshold_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
