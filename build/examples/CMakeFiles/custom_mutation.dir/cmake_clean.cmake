file(REMOVE_RECURSE
  "CMakeFiles/custom_mutation.dir/custom_mutation.cpp.o"
  "CMakeFiles/custom_mutation.dir/custom_mutation.cpp.o.d"
  "custom_mutation"
  "custom_mutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_mutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
