# Empty compiler generated dependencies file for custom_mutation.
# This may be replaced when dependencies are built.
