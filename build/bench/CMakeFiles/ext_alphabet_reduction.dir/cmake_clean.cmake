file(REMOVE_RECURSE
  "CMakeFiles/ext_alphabet_reduction.dir/ext_alphabet_reduction.cpp.o"
  "CMakeFiles/ext_alphabet_reduction.dir/ext_alphabet_reduction.cpp.o.d"
  "ext_alphabet_reduction"
  "ext_alphabet_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_alphabet_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
