# Empty dependencies file for ext_alphabet_reduction.
# This may be replaced when dependencies are built.
