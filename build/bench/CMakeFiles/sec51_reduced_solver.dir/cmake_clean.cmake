file(REMOVE_RECURSE
  "CMakeFiles/sec51_reduced_solver.dir/sec51_reduced_solver.cpp.o"
  "CMakeFiles/sec51_reduced_solver.dir/sec51_reduced_solver.cpp.o.d"
  "sec51_reduced_solver"
  "sec51_reduced_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec51_reduced_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
