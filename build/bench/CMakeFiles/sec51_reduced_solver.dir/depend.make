# Empty dependencies file for sec51_reduced_solver.
# This may be replaced when dependencies are built.
