# Empty dependencies file for ablation_shift.
# This may be replaced when dependencies are built.
