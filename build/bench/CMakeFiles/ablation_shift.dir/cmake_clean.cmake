file(REMOVE_RECURSE
  "CMakeFiles/ablation_shift.dir/ablation_shift.cpp.o"
  "CMakeFiles/ablation_shift.dir/ablation_shift.cpp.o.d"
  "ablation_shift"
  "ablation_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
