file(REMOVE_RECURSE
  "CMakeFiles/ablation_general_mutation.dir/ablation_general_mutation.cpp.o"
  "CMakeFiles/ablation_general_mutation.dir/ablation_general_mutation.cpp.o.d"
  "ablation_general_mutation"
  "ablation_general_mutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_general_mutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
