# Empty dependencies file for ablation_general_mutation.
# This may be replaced when dependencies are built.
