file(REMOVE_RECURSE
  "CMakeFiles/ext_finite_population.dir/ext_finite_population.cpp.o"
  "CMakeFiles/ext_finite_population.dir/ext_finite_population.cpp.o.d"
  "ext_finite_population"
  "ext_finite_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_finite_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
