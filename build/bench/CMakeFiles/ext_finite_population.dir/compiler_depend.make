# Empty compiler generated dependencies file for ext_finite_population.
# This may be replaced when dependencies are built.
