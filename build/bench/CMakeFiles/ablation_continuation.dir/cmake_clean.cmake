file(REMOVE_RECURSE
  "CMakeFiles/ablation_continuation.dir/ablation_continuation.cpp.o"
  "CMakeFiles/ablation_continuation.dir/ablation_continuation.cpp.o.d"
  "ablation_continuation"
  "ablation_continuation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_continuation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
