# Empty dependencies file for ablation_continuation.
# This may be replaced when dependencies are built.
