# Empty compiler generated dependencies file for fig2_matvec_runtimes.
# This may be replaced when dependencies are built.
