file(REMOVE_RECURSE
  "CMakeFiles/fig2_matvec_runtimes.dir/fig2_matvec_runtimes.cpp.o"
  "CMakeFiles/fig2_matvec_runtimes.dir/fig2_matvec_runtimes.cpp.o.d"
  "fig2_matvec_runtimes"
  "fig2_matvec_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_matvec_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
