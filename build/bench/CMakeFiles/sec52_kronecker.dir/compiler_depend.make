# Empty compiler generated dependencies file for sec52_kronecker.
# This may be replaced when dependencies are built.
