file(REMOVE_RECURSE
  "CMakeFiles/sec52_kronecker.dir/sec52_kronecker.cpp.o"
  "CMakeFiles/sec52_kronecker.dir/sec52_kronecker.cpp.o.d"
  "sec52_kronecker"
  "sec52_kronecker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_kronecker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
