file(REMOVE_RECURSE
  "CMakeFiles/ablation_sparse_storage.dir/ablation_sparse_storage.cpp.o"
  "CMakeFiles/ablation_sparse_storage.dir/ablation_sparse_storage.cpp.o.d"
  "ablation_sparse_storage"
  "ablation_sparse_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sparse_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
