# Empty compiler generated dependencies file for ablation_sparse_storage.
# This may be replaced when dependencies are built.
