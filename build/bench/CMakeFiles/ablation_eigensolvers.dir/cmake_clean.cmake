file(REMOVE_RECURSE
  "CMakeFiles/ablation_eigensolvers.dir/ablation_eigensolvers.cpp.o"
  "CMakeFiles/ablation_eigensolvers.dir/ablation_eigensolvers.cpp.o.d"
  "ablation_eigensolvers"
  "ablation_eigensolvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eigensolvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
