# Empty dependencies file for ablation_eigensolvers.
# This may be replaced when dependencies are built.
