file(REMOVE_RECURSE
  "CMakeFiles/fig1_error_threshold.dir/fig1_error_threshold.cpp.o"
  "CMakeFiles/fig1_error_threshold.dir/fig1_error_threshold.cpp.o.d"
  "fig1_error_threshold"
  "fig1_error_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_error_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
