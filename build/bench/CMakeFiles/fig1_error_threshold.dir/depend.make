# Empty dependencies file for fig1_error_threshold.
# This may be replaced when dependencies are built.
