# Empty dependencies file for fig4_speedups.
# This may be replaced when dependencies are built.
