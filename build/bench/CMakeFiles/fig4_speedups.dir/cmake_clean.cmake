file(REMOVE_RECURSE
  "CMakeFiles/fig4_speedups.dir/fig4_speedups.cpp.o"
  "CMakeFiles/fig4_speedups.dir/fig4_speedups.cpp.o.d"
  "fig4_speedups"
  "fig4_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
