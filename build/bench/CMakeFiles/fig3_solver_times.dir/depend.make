# Empty dependencies file for fig3_solver_times.
# This may be replaced when dependencies are built.
