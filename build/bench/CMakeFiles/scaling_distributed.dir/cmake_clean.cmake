file(REMOVE_RECURSE
  "CMakeFiles/scaling_distributed.dir/scaling_distributed.cpp.o"
  "CMakeFiles/scaling_distributed.dir/scaling_distributed.cpp.o.d"
  "scaling_distributed"
  "scaling_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
