# Empty compiler generated dependencies file for scaling_distributed.
# This may be replaced when dependencies are built.
