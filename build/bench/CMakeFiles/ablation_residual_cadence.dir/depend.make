# Empty dependencies file for ablation_residual_cadence.
# This may be replaced when dependencies are built.
