file(REMOVE_RECURSE
  "CMakeFiles/ablation_residual_cadence.dir/ablation_residual_cadence.cpp.o"
  "CMakeFiles/ablation_residual_cadence.dir/ablation_residual_cadence.cpp.o.d"
  "ablation_residual_cadence"
  "ablation_residual_cadence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_residual_cadence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
