file(REMOVE_RECURSE
  "libquasispecies.a"
)
