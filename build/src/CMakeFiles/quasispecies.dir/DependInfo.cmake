
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/error_classes.cpp" "src/CMakeFiles/quasispecies.dir/analysis/error_classes.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/analysis/error_classes.cpp.o.d"
  "/root/repo/src/analysis/marginals.cpp" "src/CMakeFiles/quasispecies.dir/analysis/marginals.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/analysis/marginals.cpp.o.d"
  "/root/repo/src/analysis/statistics.cpp" "src/CMakeFiles/quasispecies.dir/analysis/statistics.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/analysis/statistics.cpp.o.d"
  "/root/repo/src/analysis/sweep.cpp" "src/CMakeFiles/quasispecies.dir/analysis/sweep.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/analysis/sweep.cpp.o.d"
  "/root/repo/src/analysis/threshold.cpp" "src/CMakeFiles/quasispecies.dir/analysis/threshold.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/analysis/threshold.cpp.o.d"
  "/root/repo/src/core/explicit_q.cpp" "src/CMakeFiles/quasispecies.dir/core/explicit_q.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/core/explicit_q.cpp.o.d"
  "/root/repo/src/core/fmmp.cpp" "src/CMakeFiles/quasispecies.dir/core/fmmp.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/core/fmmp.cpp.o.d"
  "/root/repo/src/core/landscape.cpp" "src/CMakeFiles/quasispecies.dir/core/landscape.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/core/landscape.cpp.o.d"
  "/root/repo/src/core/landscape_library.cpp" "src/CMakeFiles/quasispecies.dir/core/landscape_library.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/core/landscape_library.cpp.o.d"
  "/root/repo/src/core/mutation_model.cpp" "src/CMakeFiles/quasispecies.dir/core/mutation_model.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/core/mutation_model.cpp.o.d"
  "/root/repo/src/core/operators.cpp" "src/CMakeFiles/quasispecies.dir/core/operators.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/core/operators.cpp.o.d"
  "/root/repo/src/core/site_process.cpp" "src/CMakeFiles/quasispecies.dir/core/site_process.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/core/site_process.cpp.o.d"
  "/root/repo/src/core/smvp.cpp" "src/CMakeFiles/quasispecies.dir/core/smvp.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/core/smvp.cpp.o.d"
  "/root/repo/src/core/spectral.cpp" "src/CMakeFiles/quasispecies.dir/core/spectral.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/core/spectral.cpp.o.d"
  "/root/repo/src/core/xmvp.cpp" "src/CMakeFiles/quasispecies.dir/core/xmvp.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/core/xmvp.cpp.o.d"
  "/root/repo/src/distributed/block_layout.cpp" "src/CMakeFiles/quasispecies.dir/distributed/block_layout.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/distributed/block_layout.cpp.o.d"
  "/root/repo/src/distributed/distributed_solver.cpp" "src/CMakeFiles/quasispecies.dir/distributed/distributed_solver.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/distributed/distributed_solver.cpp.o.d"
  "/root/repo/src/io/binary_io.cpp" "src/CMakeFiles/quasispecies.dir/io/binary_io.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/io/binary_io.cpp.o.d"
  "/root/repo/src/linalg/dense_matrix.cpp" "src/CMakeFiles/quasispecies.dir/linalg/dense_matrix.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/linalg/dense_matrix.cpp.o.d"
  "/root/repo/src/linalg/hessenberg_qr.cpp" "src/CMakeFiles/quasispecies.dir/linalg/hessenberg_qr.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/linalg/hessenberg_qr.cpp.o.d"
  "/root/repo/src/linalg/jacobi_eigen.cpp" "src/CMakeFiles/quasispecies.dir/linalg/jacobi_eigen.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/linalg/jacobi_eigen.cpp.o.d"
  "/root/repo/src/linalg/krylov.cpp" "src/CMakeFiles/quasispecies.dir/linalg/krylov.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/linalg/krylov.cpp.o.d"
  "/root/repo/src/linalg/small_power.cpp" "src/CMakeFiles/quasispecies.dir/linalg/small_power.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/linalg/small_power.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/CMakeFiles/quasispecies.dir/linalg/vector_ops.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/linalg/vector_ops.cpp.o.d"
  "/root/repo/src/ode/integrators.cpp" "src/CMakeFiles/quasispecies.dir/ode/integrators.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/ode/integrators.cpp.o.d"
  "/root/repo/src/ode/replicator.cpp" "src/CMakeFiles/quasispecies.dir/ode/replicator.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/ode/replicator.cpp.o.d"
  "/root/repo/src/ode/time_varying.cpp" "src/CMakeFiles/quasispecies.dir/ode/time_varying.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/ode/time_varying.cpp.o.d"
  "/root/repo/src/parallel/engine.cpp" "src/CMakeFiles/quasispecies.dir/parallel/engine.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/parallel/engine.cpp.o.d"
  "/root/repo/src/parallel/openmp_backend.cpp" "src/CMakeFiles/quasispecies.dir/parallel/openmp_backend.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/parallel/openmp_backend.cpp.o.d"
  "/root/repo/src/parallel/serial_backend.cpp" "src/CMakeFiles/quasispecies.dir/parallel/serial_backend.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/parallel/serial_backend.cpp.o.d"
  "/root/repo/src/parallel/thread_pool_backend.cpp" "src/CMakeFiles/quasispecies.dir/parallel/thread_pool_backend.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/parallel/thread_pool_backend.cpp.o.d"
  "/root/repo/src/rna/alphabet.cpp" "src/CMakeFiles/quasispecies.dir/rna/alphabet.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/rna/alphabet.cpp.o.d"
  "/root/repo/src/rna/rna_model.cpp" "src/CMakeFiles/quasispecies.dir/rna/rna_model.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/rna/rna_model.cpp.o.d"
  "/root/repo/src/solvers/arnoldi.cpp" "src/CMakeFiles/quasispecies.dir/solvers/arnoldi.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/solvers/arnoldi.cpp.o.d"
  "/root/repo/src/solvers/deflation.cpp" "src/CMakeFiles/quasispecies.dir/solvers/deflation.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/solvers/deflation.cpp.o.d"
  "/root/repo/src/solvers/kronecker_solver.cpp" "src/CMakeFiles/quasispecies.dir/solvers/kronecker_solver.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/solvers/kronecker_solver.cpp.o.d"
  "/root/repo/src/solvers/lanczos.cpp" "src/CMakeFiles/quasispecies.dir/solvers/lanczos.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/solvers/lanczos.cpp.o.d"
  "/root/repo/src/solvers/power_iteration.cpp" "src/CMakeFiles/quasispecies.dir/solvers/power_iteration.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/solvers/power_iteration.cpp.o.d"
  "/root/repo/src/solvers/quasispecies_solver.cpp" "src/CMakeFiles/quasispecies.dir/solvers/quasispecies_solver.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/solvers/quasispecies_solver.cpp.o.d"
  "/root/repo/src/solvers/reduced_alphabet.cpp" "src/CMakeFiles/quasispecies.dir/solvers/reduced_alphabet.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/solvers/reduced_alphabet.cpp.o.d"
  "/root/repo/src/solvers/reduced_solver.cpp" "src/CMakeFiles/quasispecies.dir/solvers/reduced_solver.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/solvers/reduced_solver.cpp.o.d"
  "/root/repo/src/solvers/shift_invert.cpp" "src/CMakeFiles/quasispecies.dir/solvers/shift_invert.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/solvers/shift_invert.cpp.o.d"
  "/root/repo/src/solvers/spectral_solvers.cpp" "src/CMakeFiles/quasispecies.dir/solvers/spectral_solvers.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/solvers/spectral_solvers.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/CMakeFiles/quasispecies.dir/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/sparse_w.cpp" "src/CMakeFiles/quasispecies.dir/sparse/sparse_w.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/sparse/sparse_w.cpp.o.d"
  "/root/repo/src/stochastic/moran.cpp" "src/CMakeFiles/quasispecies.dir/stochastic/moran.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/stochastic/moran.cpp.o.d"
  "/root/repo/src/stochastic/population.cpp" "src/CMakeFiles/quasispecies.dir/stochastic/population.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/stochastic/population.cpp.o.d"
  "/root/repo/src/stochastic/sampling.cpp" "src/CMakeFiles/quasispecies.dir/stochastic/sampling.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/stochastic/sampling.cpp.o.d"
  "/root/repo/src/stochastic/wright_fisher.cpp" "src/CMakeFiles/quasispecies.dir/stochastic/wright_fisher.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/stochastic/wright_fisher.cpp.o.d"
  "/root/repo/src/support/args.cpp" "src/CMakeFiles/quasispecies.dir/support/args.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/support/args.cpp.o.d"
  "/root/repo/src/support/binomial.cpp" "src/CMakeFiles/quasispecies.dir/support/binomial.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/support/binomial.cpp.o.d"
  "/root/repo/src/support/csv.cpp" "src/CMakeFiles/quasispecies.dir/support/csv.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/support/csv.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/quasispecies.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/support/table.cpp.o.d"
  "/root/repo/src/transforms/butterfly.cpp" "src/CMakeFiles/quasispecies.dir/transforms/butterfly.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/transforms/butterfly.cpp.o.d"
  "/root/repo/src/transforms/fwht.cpp" "src/CMakeFiles/quasispecies.dir/transforms/fwht.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/transforms/fwht.cpp.o.d"
  "/root/repo/src/transforms/kronecker.cpp" "src/CMakeFiles/quasispecies.dir/transforms/kronecker.cpp.o" "gcc" "src/CMakeFiles/quasispecies.dir/transforms/kronecker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
