# Empty dependencies file for quasispecies.
# This may be replaced when dependencies are built.
