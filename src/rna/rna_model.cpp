#include "rna/rna_model.hpp"

#include "core/site_process.hpp"
#include "support/contracts.hpp"

namespace qs::rna {

core::MutationModel uniform_rna_model(unsigned bases,
                                      const linalg::DenseMatrix& substitution) {
  require(bases >= 1 && bases <= 31, "uniform_rna_model: bases must be 1..31");
  core::validate_group(substitution);
  require(substitution.rows() == 4, "uniform_rna_model: substitution must be 4x4");
  std::vector<linalg::DenseMatrix> groups(bases, substitution);
  return core::MutationModel::grouped(std::move(groups));
}

core::MutationModel per_base_rna_model(
    const std::vector<linalg::DenseMatrix>& substitutions) {
  require(!substitutions.empty() && substitutions.size() <= 31,
          "per_base_rna_model: need 1..31 substitution matrices");
  for (const auto& s : substitutions) {
    core::validate_group(s);
    require(s.rows() == 4, "per_base_rna_model: substitution matrices must be 4x4");
  }
  return core::MutationModel::grouped(substitutions);
}

core::Landscape rna_single_peak(std::string_view master, double peak, double rest) {
  require(peak > 0.0 && rest > 0.0, "rna_single_peak: fitness values must be positive");
  const unsigned bases = static_cast<unsigned>(master.size());
  require(bases >= 1 && bases <= 12,
          "rna_single_peak: explicit landscapes limited to 12 bases (2^24 states)");
  const seq_t master_index = encode(master);
  const unsigned nu = 2 * bases;
  std::vector<double> values(sequence_count(nu), rest);
  values[master_index] = peak;
  return core::Landscape::from_values(nu, std::move(values));
}

core::Landscape rna_base_class_landscape(std::string_view master,
                                         const std::vector<double>& phi) {
  const unsigned bases = static_cast<unsigned>(master.size());
  require(bases >= 1 && bases <= 12,
          "rna_base_class_landscape: explicit landscapes limited to 12 bases");
  require(phi.size() == bases + 1,
          "rna_base_class_landscape: phi needs bases + 1 values");
  for (double v : phi) require(v > 0.0, "fitness values must be positive");
  const seq_t master_index = encode(master);
  const unsigned nu = 2 * bases;
  std::vector<double> values(sequence_count(nu));
  for (seq_t s = 0; s < values.size(); ++s) {
    values[s] = phi[base_hamming_distance(s, master_index, bases)];
  }
  return core::Landscape::from_values(nu, std::move(values));
}

std::vector<double> base_class_concentrations(unsigned bases,
                                              std::span<const double> x,
                                              seq_t master) {
  require(bases >= 1 && bases <= 31, "base_class_concentrations: bases must be 1..31");
  require(x.size() == sequence_count(2 * bases),
          "base_class_concentrations: size must be 4^bases");
  std::vector<double> out(bases + 1, 0.0);
  for (seq_t s = 0; s < x.size(); ++s) {
    out[base_hamming_distance(s, master, bases)] += x[s];
  }
  return out;
}

}  // namespace qs::rna
