// Quasispecies models over the four-letter RNA alphabet.
//
// Bundles the 2-bit-per-base encoding with the grouped Kronecker mutation
// machinery: an RNA model of L bases is a grouped MutationModel with L
// four-state factors, and RNA fitness landscapes address species by base
// distance instead of bit distance.  All solvers of the binary library
// apply unchanged; this module supplies the construction and the
// base-resolution analysis.
#pragma once

#include <string_view>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "rna/alphabet.hpp"

namespace qs::rna {

/// Mutation model with the same 4x4 substitution matrix at every base.
/// Requires 1 <= bases <= 31 and a column-stochastic 4x4 `substitution`.
core::MutationModel uniform_rna_model(unsigned bases,
                                      const linalg::DenseMatrix& substitution);

/// Mutation model with per-base substitution matrices (hotspots etc.).
core::MutationModel per_base_rna_model(
    const std::vector<linalg::DenseMatrix>& substitutions);

/// Single-peak RNA landscape: the given master sequence has fitness `peak`,
/// every other sequence `rest`.
core::Landscape rna_single_peak(std::string_view master, double peak, double rest);

/// Base-distance landscape f_s = phi(d_base(s, master)): the RNA analogue
/// of the error-class landscape. Requires phi.size() == bases + 1.
core::Landscape rna_base_class_landscape(std::string_view master,
                                         const std::vector<double>& phi);

/// Cumulative concentrations per base-Hamming class relative to `master`:
/// out[k] = sum of x_s over sequences s with d_base(s, master) = k.
std::vector<double> base_class_concentrations(unsigned bases,
                                              std::span<const double> x,
                                              seq_t master = 0);

}  // namespace qs::rna
