// The four-letter RNA alphabet on top of the binary sequence space.
//
// Section 5.2 of the paper notes that "for Kronecker product-based
// landscapes it is relatively easy to extend the quasispecies model beyond
// a binary alphabet to the full four element RNA alphabet" — this module is
// that extension.  A nucleotide is two bits (A=00, C=01, G=10, U=11), so an
// RNA sequence of length L is a chain of nu = 2L bits and a per-position
// 4x4 column-stochastic substitution matrix becomes one 2-bit group factor
// of the grouped Kronecker mutation model (Eq. (11)); every solver in the
// library then applies unchanged.
#pragma once

#include <string>
#include <string_view>

#include "linalg/dense_matrix.hpp"
#include "support/bits.hpp"

namespace qs::rna {

/// The four nucleotides; the numeric values are the 2-bit encodings.
enum class Nucleotide : unsigned {
  A = 0,
  C = 1,
  G = 2,
  U = 3,
};

/// Character for a nucleotide code.
char to_char(Nucleotide n);

/// Nucleotide for a character (case insensitive; 'T' is accepted as 'U').
/// Throws precondition_error for anything else.
Nucleotide from_char(char c);

/// Encodes an RNA string into a sequence index: base i of the string
/// occupies bits [2i, 2i+2). Requires length <= 31 bases (62 bits).
seq_t encode(std::string_view sequence);

/// Decodes `bases` nucleotides from a sequence index.
std::string decode(seq_t index, unsigned bases);

/// Nucleotide at position `base` of the encoded sequence.
Nucleotide base_at(seq_t index, unsigned base);

/// Hamming distance in *bases* (not bits): the number of positions where
/// the two sequences carry different nucleotides.
unsigned base_hamming_distance(seq_t a, seq_t b, unsigned bases);

/// Jukes-Cantor substitution matrix: every base mutates to each of the
/// three others with probability mu/3 per replication (total error rate
/// mu). Requires 0 < mu < 3/4 (mu = 3/4 is random replication).
linalg::DenseMatrix jukes_cantor(double mu);

/// Kimura two-parameter substitution matrix: transitions (A<->G, C<->U)
/// with probability alpha, each of the two possible transversions with
/// probability beta. Requires alpha, beta >= 0, alpha + 2 beta < 1, and
/// alpha + 2 beta > 0. Transitions are biochemically more frequent
/// (alpha > beta) in real RNA viruses.
linalg::DenseMatrix kimura(double alpha, double beta);

}  // namespace qs::rna
