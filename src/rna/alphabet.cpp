#include "rna/alphabet.hpp"

#include "support/contracts.hpp"

namespace qs::rna {

char to_char(Nucleotide n) {
  switch (n) {
    case Nucleotide::A: return 'A';
    case Nucleotide::C: return 'C';
    case Nucleotide::G: return 'G';
    case Nucleotide::U: return 'U';
  }
  throw precondition_error("to_char: invalid nucleotide code");
}

Nucleotide from_char(char c) {
  switch (c) {
    case 'A': case 'a': return Nucleotide::A;
    case 'C': case 'c': return Nucleotide::C;
    case 'G': case 'g': return Nucleotide::G;
    case 'U': case 'u': case 'T': case 't': return Nucleotide::U;
    default:
      throw precondition_error("from_char: invalid nucleotide character");
  }
}

seq_t encode(std::string_view sequence) {
  require(!sequence.empty() && sequence.size() <= 31,
          "encode: RNA length must be 1..31 bases");
  seq_t index = 0;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    index |= static_cast<seq_t>(from_char(sequence[i])) << (2 * i);
  }
  return index;
}

std::string decode(seq_t index, unsigned bases) {
  require(bases >= 1 && bases <= 31, "decode: RNA length must be 1..31 bases");
  std::string out(bases, 'A');
  for (unsigned i = 0; i < bases; ++i) {
    out[i] = to_char(static_cast<Nucleotide>((index >> (2 * i)) & 3));
  }
  return out;
}

Nucleotide base_at(seq_t index, unsigned base) {
  return static_cast<Nucleotide>((index >> (2 * base)) & 3);
}

unsigned base_hamming_distance(seq_t a, seq_t b, unsigned bases) {
  unsigned d = 0;
  for (unsigned i = 0; i < bases; ++i) {
    d += (((a ^ b) >> (2 * i)) & 3) != 0 ? 1 : 0;
  }
  return d;
}

linalg::DenseMatrix jukes_cantor(double mu) {
  require(mu > 0.0 && mu < 0.75, "jukes_cantor: need 0 < mu < 3/4");
  linalg::DenseMatrix m(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      m(r, c) = (r == c) ? 1.0 - mu : mu / 3.0;
    }
  }
  return m;
}

linalg::DenseMatrix kimura(double alpha, double beta) {
  require(alpha >= 0.0 && beta >= 0.0, "kimura: rates must be nonnegative");
  require(alpha + 2.0 * beta > 0.0 && alpha + 2.0 * beta < 1.0,
          "kimura: need 0 < alpha + 2 beta < 1");
  // Encoding A=0, C=1, G=2, U=3: transitions are A<->G and C<->U (within
  // the purine / pyrimidine classes), everything else a transversion.
  linalg::DenseMatrix m(4, 4);
  auto transition_partner = [](std::size_t b) { return b ^ 2u; };  // A<->G, C<->U
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t r = 0; r < 4; ++r) {
      if (r == c) {
        m(r, c) = 1.0 - alpha - 2.0 * beta;
      } else if (r == transition_partner(c)) {
        m(r, c) = alpha;
      } else {
        m(r, c) = beta;
      }
    }
  }
  return m;
}

}  // namespace qs::rna
