#include "solvers/kronecker_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/fmmp.hpp"
#include "core/spectral.hpp"
#include "support/bits.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {

KroneckerResult::KroneckerResult(double eigenvalue,
                                 std::vector<std::vector<double>> factors,
                                 std::vector<unsigned> factor_bits)
    : eigenvalue_(eigenvalue),
      factors_(std::move(factors)),
      factor_bits_(std::move(factor_bits)) {
  require(factors_.size() == factor_bits_.size(),
          "KroneckerResult: factor/bit-width count mismatch");
  for (unsigned b : factor_bits_) total_bits_ += b;
}

double KroneckerResult::concentration(seq_t i) const {
  // For nu >= 64 a 64-bit index addresses the low positions and implies
  // zeros (the master motif) in all higher ones — the natural query
  // semantics for chain lengths beyond integer indexing.
  if (total_bits_ < 64) {
    require(i < (seq_t{1} << total_bits_),
            "concentration: sequence index out of range");
  }
  double prod = 1.0;
  unsigned lo = 0;
  for (std::size_t m = 0; m < factors_.size(); ++m) {
    const seq_t mask = (seq_t{1} << factor_bits_[m]) - 1;
    const seq_t chunk = (lo < 64) ? ((i >> lo) & mask) : 0;
    prod *= factors_[m][static_cast<std::size_t>(chunk)];
    lo += factor_bits_[m];
  }
  return prod;
}

std::vector<double> KroneckerResult::expand() const {
  require(total_bits_ <= 30, "expand: nu too large to materialise");
  const seq_t n = sequence_count(total_bits_);
  std::vector<double> x(n);
  for (seq_t i = 0; i < n; ++i) x[i] = concentration(i);
  return x;
}

std::vector<double> KroneckerResult::class_concentrations() const {
  // Per-factor class sums S_m(k) = sum_{j in Gamma_k of factor m} x^(m)_j,
  // then the full-problem class totals are their convolution over the
  // composition k = sum_m k_m.
  std::vector<double> acc{1.0};
  unsigned acc_bits = 0;
  for (std::size_t m = 0; m < factors_.size(); ++m) {
    const unsigned bits = factor_bits_[m];
    std::vector<double> s(bits + 1, 0.0);
    for (std::size_t j = 0; j < factors_[m].size(); ++j) {
      s[hamming_weight(j)] += factors_[m][j];
    }
    std::vector<double> next(acc_bits + bits + 1, 0.0);
    for (std::size_t a = 0; a < acc.size(); ++a) {
      for (std::size_t b = 0; b < s.size(); ++b) {
        next[a + b] += acc[a] * s[b];
      }
    }
    acc = std::move(next);
    acc_bits += bits;
  }
  return acc;
}

std::vector<std::pair<double, double>> KroneckerResult::class_min_max() const {
  // Same dynamic program in the (min, max)-product semiring: all factor
  // entries are positive (Perron), so extremes of a product over a
  // composition are products of per-part extremes.
  std::vector<std::pair<double, double>> acc{{1.0, 1.0}};
  unsigned acc_bits = 0;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t m = 0; m < factors_.size(); ++m) {
    const unsigned bits = factor_bits_[m];
    std::vector<std::pair<double, double>> s(bits + 1, {kInf, -kInf});
    for (std::size_t j = 0; j < factors_[m].size(); ++j) {
      auto& [lo, hi] = s[hamming_weight(j)];
      lo = std::min(lo, factors_[m][j]);
      hi = std::max(hi, factors_[m][j]);
    }
    std::vector<std::pair<double, double>> next(acc_bits + bits + 1, {kInf, -kInf});
    for (std::size_t a = 0; a < acc.size(); ++a) {
      for (std::size_t b = 0; b < s.size(); ++b) {
        auto& [lo, hi] = next[a + b];
        lo = std::min(lo, acc[a].first * s[b].first);
        hi = std::max(hi, acc[a].second * s[b].second);
      }
    }
    acc = std::move(next);
    acc_bits += bits;
  }
  return acc;
}

std::vector<double> KroneckerResult::marginal_distribution(seq_t mask) const {
  require(mask != 0, "marginal_distribution: mask must select at least one bit");
  require(total_bits_ >= 64 || mask < (seq_t{1} << total_bits_),
          "marginal_distribution: mask exceeds the chain length");
  require(hamming_weight(mask) <= 24,
          "marginal_distribution: mask selects too many positions");

  // Factor independence: the joint over the selected bits is the outer
  // product of per-factor marginals, in ascending packed-bit order.
  std::vector<double> acc{1.0};
  unsigned lo = 0;
  for (std::size_t m = 0; m < factors_.size() && lo < 64; ++m) {
    const unsigned bits = factor_bits_[m];
    const seq_t local_mask = (mask >> lo) & ((seq_t{1} << bits) - 1);
    lo += bits;
    if (local_mask == 0) continue;  // factor fully marginalised: sums to 1

    // Local marginal of this factor over its selected bits.
    const unsigned local_bits = hamming_weight(local_mask);
    std::vector<double> local(std::size_t{1} << local_bits, 0.0);
    for (std::size_t j = 0; j < factors_[m].size(); ++j) {
      // Pack the selected bits of j (ascending) into a local configuration.
      seq_t packed = 0;
      unsigned out_bit = 0;
      seq_t rest = local_mask;
      while (rest != 0) {
        const seq_t low_bit = rest & (~rest + 1);
        if (j & low_bit) packed |= (seq_t{1} << out_bit);
        ++out_bit;
        rest &= rest - 1;
      }
      local[static_cast<std::size_t>(packed)] += factors_[m][j];
    }

    // Outer product: this factor's configurations occupy the next packed
    // bits above everything accumulated so far.
    std::vector<double> next(acc.size() * local.size());
    for (std::size_t h = 0; h < local.size(); ++h) {
      for (std::size_t l = 0; l < acc.size(); ++l) {
        next[h * acc.size() + l] = acc[l] * local[h];
      }
    }
    acc = std::move(next);
  }
  return acc;
}

namespace {

/// Extracts the sub-model of `model` acting on the bit range [lo, lo+bits).
core::MutationModel slice_model(const core::MutationModel& model, unsigned lo,
                                unsigned bits, std::size_t group_index) {
  switch (model.kind()) {
    case core::MutationKind::uniform:
      return core::MutationModel::uniform(bits, model.error_rate());
    case core::MutationKind::per_site: {
      const auto& sites = model.site_factors();
      std::vector<transforms::Factor2> sub(sites.begin() + lo,
                                           sites.begin() + lo + bits);
      return core::MutationModel::per_site(std::move(sub));
    }
    case core::MutationKind::grouped: {
      const auto& kp = model.group_product();
      require(group_index < kp.group_count() &&
                  kp.group_bits(group_index) == bits,
              "solve_kronecker: grouped model partition must match the "
              "landscape partition");
      return core::MutationModel::grouped({kp.factors()[group_index]});
    }
  }
  throw precondition_error("solve_kronecker: unknown mutation kind");
}

}  // namespace

KroneckerResult solve_kronecker(const core::MutationModel& model,
                                const core::KroneckerLandscape& landscape,
                                const PowerOptions& options) {
  require(model.nu() == landscape.nu(),
          "solve_kronecker: model and landscape chain lengths differ");
  if (model.kind() == core::MutationKind::grouped) {
    require(model.group_product().group_count() == landscape.group_count(),
            "solve_kronecker: grouped model partition must match the landscape");
  }

  double eigenvalue = 1.0;
  std::vector<std::vector<double>> vectors;
  std::vector<unsigned> bits_list;
  unsigned lo = 0;
  for (std::size_t g = 0; g < landscape.group_count(); ++g) {
    const unsigned bits = landscape.group_bits(g);
    core::MutationModel sub_model = slice_model(model, lo, bits, g);
    core::Landscape sub_landscape =
        core::Landscape::from_values(bits, landscape.factors()[g]);

    PowerOptions sub_options = options;
    if (sub_options.shift == 0.0 && sub_model.symmetric() &&
        sub_model.kind() != core::MutationKind::grouped) {
      sub_options.shift = core::conservative_shift(sub_model, sub_landscape);
    }
    const core::FmmpOperator op(sub_model, sub_landscape, core::Formulation::right,
                                options.engine);
    PowerResult r =
        power_iteration(op, landscape_start(sub_landscape), sub_options);
    require(r.converged, "solve_kronecker: subproblem power iteration failed");
    eigenvalue *= r.eigenvalue;
    vectors.push_back(std::move(r.eigenvector));
    bits_list.push_back(bits);
    lo += bits;
  }
  return KroneckerResult(eigenvalue, std::move(vectors), std::move(bits_list));
}

}  // namespace qs::solvers
