// Exact (nu+1) x (nu+1) reduction for Hamming-distance-based landscapes
// (Section 5.1 of the paper).
//
// When the landscape is an error-class landscape f_i = phi(d_H(i, 0)),
// Lemma 2 shows the dominant eigenvector of W = Q F is an error-class
// vector, so the power iteration can track one representative per class:
//
//   vbar_Gamma_d = sum_k Q_Gamma(d, k) * phi(k) * v_Gamma_k,
//
// with the reduced mutation matrix (Eq. (14); note the paper's exponent on
// (1-p) carries a sign typo — the number of mutations is m = k + d - 2j and
// the probability is p^m (1-p)^(nu-m)):
//
//   Q_Gamma(d, k) = sum_{j = max(0, k+d-nu)}^{min(k, d)}
//                     C(nu-d, k-j) C(d, j) p^{k+d-2j} (1-p)^{nu-(k+d-2j)}.
//
// The reduced eigenvector holds *representative* concentrations, not class
// totals; class totals follow from the rescaling
//   [Gamma_k] = C(nu,k) v_Gamma_k / sum_j C(nu,j) v_Gamma_j.
//
// The reduced matrix M = Q_Gamma diag(phi) is similar to a symmetric matrix
// via the diagonal scaling X = diag(sqrt(phi_d * C(nu,d))), so a Jacobi
// eigensolver delivers the full-accuracy dominant pair; power iteration and
// QR + inverse iteration back ends are provided as cross-checks.
#pragma once

#include <vector>

#include "core/landscape.hpp"
#include "linalg/dense_matrix.hpp"

namespace qs::solvers {

/// Backend used to solve the reduced dense eigenproblem.
enum class ReducedMethod {
  jacobi,          ///< symmetrise + Jacobi (default; full accuracy)
  power,           ///< power iteration on the reduced matrix
  qr_inverse,      ///< QR eigenvalues + inverse iteration refinement
};

/// Result of the reduced solve.
struct ReducedResult {
  double eigenvalue = 0.0;

  /// v_Gamma: concentration of one *representative* sequence per error
  /// class, normalised so the full 2^nu-dimensional eigenvector has unit
  /// 1-norm, i.e. sum_k C(nu,k) v_Gamma_k = 1.
  std::vector<double> representatives;

  /// [Gamma_k]: cumulative concentration of each error class (sums to 1).
  std::vector<double> class_concentrations;
};

/// The reduced mutation matrix Q_Gamma of Eq. (14), size (nu+1) x (nu+1).
/// Row d, column k: probability that a fixed sequence of class Gamma_d
/// mutates into *any* sequence of class Gamma_k; rows sum to 1.
/// Requires 0 < p <= 1/2; works for any nu <= 1000 (log-space evaluation
/// avoids overflow of the binomials for nu > 61).
linalg::DenseMatrix reduced_mutation_matrix(unsigned nu, double p);

/// Solves the reduced problem for the uniform mutation model with error
/// rate p on the given error-class landscape.
ReducedResult solve_reduced(double p, const core::ErrorClassLandscape& landscape,
                            ReducedMethod method = ReducedMethod::jacobi);

/// Expands the representative vector to the full 2^nu eigenvector
/// x_i = v_Gamma(d_H(i,0)) (for cross-validation; requires small nu).
std::vector<double> expand_representatives(unsigned nu,
                                           std::span<const double> representatives);

}  // namespace qs::solvers
