// Kronecker-landscape decoupling (Section 5.2 of the paper).
//
// When F = F_{G_{g-1}} (x) ... (x) F_{G_0} shares its group partition with
// Q = Q_{G_{g-1}} (x) ... (x) Q_{G_0}, the mixed product formula gives
//   W = Q F = (Q_{G_{g-1}} F_{G_{g-1}}) (x) ... (x) (Q_{G_0} F_{G_0}),
// so the dominant eigenpair of W is the Kronecker product of the dominant
// eigenpairs of the g independent subproblems: lambda = prod lambda_i and
// x = x_{g-1} (x) ... (x) x_0.  A chain of length nu decouples into g
// problems of size 2^{g_i} — chain lengths far beyond direct storage (the
// paper's example: nu = 100 as four subproblems of dimension 2^25).
//
// The eigenvector is kept *implicit* (only the factors are stored); queries
// are answered from the factors: single concentrations, full class totals
// [Gamma_k], and per-class min/max concentrations (the paper's suggested
// probe for the error threshold at huge nu), each via a small dynamic
// program over the factors.
#pragma once

#include <utility>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "solvers/power_iteration.hpp"

namespace qs::solvers {

/// Dominant eigenpair of W = Q F in implicit Kronecker form.
class KroneckerResult {
 public:
  KroneckerResult(double eigenvalue, std::vector<std::vector<double>> factors,
                  std::vector<unsigned> factor_bits);

  /// Dominant eigenvalue of the full W (product of subproblem eigenvalues).
  double eigenvalue() const { return eigenvalue_; }

  /// Total chain length nu.
  unsigned nu() const { return total_bits_; }

  /// Subproblem eigenvectors; factor 0 acts on the least significant bits.
  /// Each factor is 1-norm normalised, so the implicit full vector is too.
  const std::vector<std::vector<double>>& factors() const { return factors_; }

  /// Concentration of a single sequence, x_i = prod_m x^{(m)}_{i_m}.
  /// O(g) per query — usable at any nu.
  double concentration(seq_t i) const;

  /// Materialises the full eigenvector (cross-validation; requires nu small
  /// enough to allocate).
  std::vector<double> expand() const;

  /// Cumulative error-class concentrations [Gamma_0..Gamma_nu] of the full
  /// problem, computed exactly by convolving the per-factor class sums.
  /// O(sum_i 2^{g_i} + nu^2) — no 2^nu term.
  std::vector<double> class_concentrations() const;

  /// Minimum and maximum single-sequence concentration within each error
  /// class Gamma_k of the full problem (the paper's implicit-eigenvector
  /// probe). Same complexity as class_concentrations().
  std::vector<std::pair<double, double>> class_min_max() const;

  /// Marginal distribution over the positions set in `mask`, computed
  /// factor by factor — never touching 2^nu states (the "resolution
  /// levels" query of the paper's conclusion, exact for Kronecker
  /// landscapes at any nu).  Configuration indexing matches
  /// analysis::marginal_distribution (mask bits packed ascending).
  /// Requires mask != 0 within the low 64 bits and popcount(mask) <= 24.
  std::vector<double> marginal_distribution(seq_t mask) const;

 private:
  double eigenvalue_;
  std::vector<std::vector<double>> factors_;
  std::vector<unsigned> factor_bits_;
  unsigned total_bits_ = 0;
};

/// Solves the quasispecies problem for a Kronecker landscape by decoupling
/// into per-group subproblems, each solved with the shifted power iteration
/// on Fmmp.
///
/// Admissible models: uniform (any partition works — Q(nu) restricted to a
/// g_i-bit group is Q(g_i) with the same p), per-site (sites are sliced by
/// group), and grouped with *exactly* the landscape's partition.
KroneckerResult solve_kronecker(const core::MutationModel& model,
                                const core::KroneckerLandscape& landscape,
                                const PowerOptions& options = {});

}  // namespace qs::solvers
