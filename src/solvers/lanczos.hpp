// Restarted Lanczos iteration for the dominant eigenpair of W.
//
// Section 3 of the paper weighs Lanczos/Arnoldi against the power iteration
// and picks the latter for its minimal storage: Lanczos must keep a basis
// of m vectors (m * 2^nu doubles), which is exactly the trade-off this
// module makes explicit.  For moderate nu the faster convergence (Krylov
// subspace vs single-vector) wins wall-clock; for the largest instances
// memory forces small m or the plain power iteration.  Operates on the
// symmetric formulation W_S = F^{1/2} Q F^{1/2} with full
// reorthogonalisation inside each restart cycle (simple and robust for the
// modest basis sizes that fit in memory).
#pragma once

#include <span>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "solvers/solver_failure.hpp"

namespace qs::solvers {

/// Options for the restarted Lanczos solver.
struct LanczosOptions {
  double tolerance = 1e-12;   ///< Relative eigenpair residual target.
  unsigned basis_size = 30;   ///< Krylov basis per cycle (memory: basis_size
                              ///< vectors of length 2^nu).
  unsigned max_restarts = 100;
};

/// Result of a Lanczos solve.
struct LanczosResult {
  double eigenvalue = 0.0;
  std::vector<double> concentrations;  ///< x_R, 1-norm normalised.
  unsigned matvec_count = 0;           ///< Products with W performed.
  unsigned restarts = 0;
  double residual = 0.0;
  bool converged = false;
  SolverFailure failure = SolverFailure::none;  ///< Set when the basis or
                                    ///< Ritz pair went NaN/Inf (fail-fast).
};

/// Computes the dominant eigenpair of W = Q F by restarted Lanczos on the
/// symmetric formulation. Requires a symmetric 2x2-factor mutation model.
/// `start` is in concentration scale; empty selects the landscape start.
LanczosResult lanczos_dominant_w(const core::MutationModel& model,
                                 const core::Landscape& landscape,
                                 std::span<const double> start = {},
                                 const LanczosOptions& options = {});

}  // namespace qs::solvers
