// Restarted Lanczos iteration for the dominant eigenpair of W.
//
// Section 3 of the paper weighs Lanczos/Arnoldi against the power iteration
// and picks the latter for its minimal storage: Lanczos must keep a basis
// of m vectors (m * 2^nu doubles), which is exactly the trade-off this
// module makes explicit.  For moderate nu the faster convergence (Krylov
// subspace vs single-vector) wins wall-clock; for the largest instances
// memory forces small m or the plain power iteration.  Operates on the
// symmetric formulation W_S = F^{1/2} Q F^{1/2} with full
// reorthogonalisation inside each restart cycle (simple and robust for the
// modest basis sizes that fit in memory).
//
// Resilience: the restart loop runs through solvers/iteration_driver — one
// driver iteration per restart cycle — so the solver supports periodic
// checkpoint/resume (each cycle is a deterministic function of its restart
// vector, so a resumed run reproduces the original residual trajectory bit
// for bit on the serial backend), stall windows, and the NaN/Inf health
// guards with structured SolverFailure reporting.
#pragma once

#include <span>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "solvers/iteration_driver.hpp"

namespace qs::solvers {

/// Options for the restarted Lanczos solver: the shared iteration block
/// (tolerance, stall window, checkpointing, engine, workspace — one driver
/// iteration is one restart cycle) plus the Krylov knobs.  The stall window
/// is disabled by default (per-cycle residuals fall fast; enable it to stop
/// runs whose landscape floors above the tolerance).  `max_iterations` and
/// `residual_check_every` are ignored: the cycle cap is `max_restarts` and
/// every cycle extracts a Ritz pair (the restart needs it anyway).
struct LanczosOptions : IterationOptions {
  LanczosOptions() {
    tolerance = 1e-12;
    stall_window = 0;
  }

  unsigned basis_size = 30;   ///< Krylov basis per cycle (memory: basis_size
                              ///< vectors of length 2^nu).
  unsigned max_restarts = 100;
};

/// Result of a Lanczos solve: the shared outcome fields (eigenvalue,
/// residual, converged/stalled/failure, checkpoint statistics; `iterations`
/// counts completed restart cycles) plus the Lanczos-specific statistics.
struct LanczosResult : IterationResult {
  std::vector<double> concentrations;  ///< x_R, 1-norm normalised.
  unsigned matvec_count = 0;           ///< Products with W performed.
  unsigned restarts = 0;
};

/// Computes the dominant eigenpair of W = Q F by restarted Lanczos on the
/// symmetric formulation. Requires a symmetric 2x2-factor mutation model.
/// `start` is in concentration scale; empty selects the landscape start.
LanczosResult lanczos_dominant_w(const core::MutationModel& model,
                                 const core::Landscape& landscape,
                                 std::span<const double> start = {},
                                 const LanczosOptions& options = {});

/// Resumes a Lanczos solve from a checkpoint written by a previous run with
/// the same model, landscape, and options.  The checkpointed restart vector
/// (symmetric scale) is taken verbatim, so on the serial backend the
/// per-cycle residual trajectory from the checkpoint cycle onward is
/// bit-identical to the uninterrupted run.  Refuses checkpoints written by
/// a different solver kind.
LanczosResult resume_lanczos_dominant_w(const core::MutationModel& model,
                                        const core::Landscape& landscape,
                                        const io::SolverCheckpoint& checkpoint,
                                        const LanczosOptions& options = {});

}  // namespace qs::solvers
