#include "solvers/reduced_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/hessenberg_qr.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/small_power.hpp"
#include "linalg/vector_ops.hpp"
#include "support/binomial.hpp"
#include "support/bits.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

/// log C(n, k) via lgamma.
double log_binomial(unsigned n, unsigned k) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

}  // namespace

linalg::DenseMatrix reduced_mutation_matrix(unsigned nu, double p) {
  require(nu >= 1 && nu <= 1000, "reduced_mutation_matrix: nu out of range");
  require(p > 0.0 && p <= 0.5, "error rate p must satisfy 0 < p <= 1/2");

  const double log_p = std::log(p);
  const double log_1mp = std::log1p(-p);
  // Cached log-factorials: the triple loop below evaluates O(nu^3) binomial
  // terms, so table lookups instead of lgamma calls matter at nu ~ 1000.
  std::vector<double> log_fact(nu + 2);
  log_fact[0] = 0.0;
  for (unsigned i = 1; i <= nu + 1; ++i) {
    log_fact[i] = log_fact[i - 1] + std::log(static_cast<double>(i));
  }
  auto log_choose = [&](unsigned n_arg, unsigned k_arg) {
    return log_fact[n_arg] - log_fact[k_arg] - log_fact[n_arg - k_arg];
  };

  linalg::DenseMatrix q(nu + 1, nu + 1);
  for (unsigned d = 0; d <= nu; ++d) {
    for (unsigned k = 0; k <= nu; ++k) {
      // j counts back-mutations within the d already-mutated positions;
      // m = k + d - 2j positions change in total.
      const unsigned j_lo = (k + d > nu) ? (k + d - nu) : 0;
      const unsigned j_hi = std::min(k, d);
      double acc = 0.0;
      for (unsigned j = j_lo; j <= j_hi; ++j) {
        const unsigned m = k + d - 2 * j;
        const double log_term = log_choose(nu - d, k - j) + log_choose(d, j) +
                                static_cast<double>(m) * log_p +
                                static_cast<double>(nu - m) * log_1mp;
        acc += std::exp(log_term);
      }
      q(d, k) = acc;
    }
  }
  return q;
}

ReducedResult solve_reduced(double p, const core::ErrorClassLandscape& landscape,
                            ReducedMethod method) {
  const unsigned nu = landscape.nu();
  const std::size_t n = nu + 1;
  const linalg::DenseMatrix q_gamma = reduced_mutation_matrix(nu, p);

  // Reduced iteration matrix M = Q_Gamma * diag(phi).
  linalg::DenseMatrix m(n, n);
  for (std::size_t d = 0; d < n; ++d) {
    for (std::size_t k = 0; k < n; ++k) {
      m(d, k) = q_gamma(d, k) * landscape.value(static_cast<unsigned>(k));
    }
  }

  // Log-space class weights log C(nu, d): exact below 61 bits, lgamma above.
  std::vector<double> log_c(n);
  for (std::size_t d = 0; d < n; ++d) {
    log_c[d] = log_binomial(nu, static_cast<unsigned>(d));
  }

  ReducedResult out;
  std::vector<double> v(n);  // unnormalised representatives

  switch (method) {
    case ReducedMethod::jacobi: {
      // Similarity to a symmetric matrix: with T_{d,k} = C(nu,d) QG_{d,k}
      // symmetric (total inter-class probability flow) and
      // A = diag(sqrt(phi_d / C(nu,d))), the matrix S = A T A is symmetric
      // and similar to M via X = diag(sqrt(phi_d C(nu,d))): v = X^{-1} s.
      linalg::DenseMatrix s(n, n);
      for (std::size_t d = 0; d < n; ++d) {
        for (std::size_t k = 0; k < n; ++k) {
          // S_{d,k} = A_d C(nu,d) QG_{d,k} A_k; evaluate the weight in log
          // space so large-nu binomials cannot overflow.
          const double log_weight =
              0.5 * (std::log(landscape.value(static_cast<unsigned>(d))) - log_c[d]) +
              log_c[d] +
              0.5 * (std::log(landscape.value(static_cast<unsigned>(k))) - log_c[k]);
          s(d, k) = q_gamma(d, k) * std::exp(log_weight);
        }
      }
      // Symmetrise the rounding noise so Jacobi's precondition holds exactly.
      for (std::size_t d = 0; d < n; ++d) {
        for (std::size_t k = d + 1; k < n; ++k) {
          const double avg = 0.5 * (s(d, k) + s(k, d));
          s(d, k) = avg;
          s(k, d) = avg;
        }
      }
      const auto eigen = linalg::jacobi_eigen(s);
      out.eigenvalue = eigen.values[0];
      for (std::size_t d = 0; d < n; ++d) {
        const double log_x =
            0.5 * (std::log(landscape.value(static_cast<unsigned>(d))) + log_c[d]);
        v[d] = eigen.vectors(d, 0) / std::exp(log_x);
      }
      break;
    }
    case ReducedMethod::power: {
      const auto pair = linalg::power_iteration(m);
      out.eigenvalue = pair.value;
      v = pair.vector;
      break;
    }
    case ReducedMethod::qr_inverse: {
      const double lambda = linalg::dominant_real_eigenvalue(m);
      const auto pair = linalg::inverse_iteration(m, lambda);
      out.eigenvalue = pair.value;
      v = pair.vector;
      break;
    }
  }

  // Perron orientation (v is only used as the backend's eigenvalue witness;
  // see below for why class totals are recomputed from scratch).
  double sum = 0.0;
  for (double x : v) sum += x;
  if (sum < 0.0) {
    for (double& x : v) x = -x;
  }

  // Class totals are recovered by a dedicated positive power iteration in
  // the class-total basis u_k = C(nu,k) v_k rather than by rescaling the
  // backend's eigenvector: the rescaling multiplies component k by
  // sqrt(C(nu,k)) (up to e^172 at nu = 500), which amplifies the dense
  // eigensolver's O(eps) noise on the exponentially small components until
  // it swamps the master class entirely.  In the u basis the iteration
  //   u_d <- sum_k Q_Gamma(k, d) phi_k u_k
  // (the transpose identity C_d QG(d,k)/C_k = QG(k,d) follows from the
  // symmetry of the total-flow matrix) involves only positive terms, so
  // every component converges with componentwise *relative* accuracy and
  // genuinely negligible classes simply underflow to zero.
  // Materialise the iteration matrix B(d, k) = Q_Gamma(k, d) * phi_k once,
  // row-major in the traversal order, so the inner loop streams memory
  // (iterating the transposed Q_Gamma in place costs a cache miss per term
  // and dominated the solve at nu ~ 1000).
  linalg::DenseMatrix b(n, n);
  for (std::size_t d = 0; d < n; ++d) {
    for (std::size_t k = 0; k < n; ++k) {
      b(d, k) = q_gamma(k, d) * landscape.value(static_cast<unsigned>(k));
    }
  }

  // Start from the uniform population's class totals C(nu,k)/2^nu.  (The
  // backend's eigenvector is NOT a usable seed: multiplying its noisy tail
  // by C(nu,k) re-amplifies exactly the noise this iteration exists to
  // avoid.)
  std::vector<double> u(n), u_next(n);
  double start_max = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    u[k] = std::exp(log_c[k] - static_cast<double>(nu) * std::log(2.0));
    start_max = std::max(start_max, u[k]);
  }
  // Seed every class strictly positive: extreme classes' uniform shares can
  // underflow (C(nu,0)/2^nu ~ 1e-301 at nu = 1000) and a hard zero at the
  // dominant class could never surface through the underflowing reversion
  // chain from the bulk.
  for (double& x : u) x = std::max(x, 1e-270 * start_max);

  const unsigned max_refine = 500000;
  double lambda_u = 0.0;
  for (unsigned it = 0; it < max_refine; ++it) {
    b.multiply(u, u_next);
    double growth = 0.0;
    for (double x : u_next) growth += x;
    lambda_u = growth;  // u has unit 1-norm, so the growth is lambda_0

    // Two-part convergence test.
    //
    // (1) The growth factor must match the backend's eigenvalue.  This is
    //     what detects a dominant class that has not *numerically surfaced*
    //     yet: from a uniform start at nu = 1000 the master class sits at
    //     C_0/2^nu ~ 1e-301 and needs ~650 iterations of relative growth
    //     before any componentwise test could see it — but until it
    //     arrives, the growth factor sticks at the bulk's eigenvalue,
    //     visibly different from lambda_0.
    //
    // (2) Componentwise relative settling to 1e-13, demanded only down to
    //     1e-60 of the leading class: deeper classes hold physically
    //     meaningless mass (and near the underflow boundary their denormal
    //     precision could never satisfy a relative criterion anyway); they
    //     are reported as computed.
    const bool lambda_settled =
        std::abs(lambda_u - out.eigenvalue) <=
        1e-12 * std::max(std::abs(out.eigenvalue), 1e-300);
    double u_max = 0.0;
    for (double x : u_next) u_max = std::max(u_max, x);
    const double floor = 1e-60 * u_max / growth;
    double worst_rel_change = 0.0;
    for (std::size_t d = 0; d < n; ++d) {
      u_next[d] /= growth;
      if (u[d] >= floor || u_next[d] >= floor) {
        worst_rel_change = std::max(
            worst_rel_change, std::abs(u_next[d] - u[d]) / std::max(u[d], floor));
      }
    }
    u.swap(u_next);
    if (lambda_settled && worst_rel_change < 1e-13) break;
  }
  // Cross-check: the u-iteration growth factor must agree with the backend.
  require(std::abs(lambda_u - out.eigenvalue) <=
              1e-8 * std::max(std::abs(out.eigenvalue), 1.0),
          "solve_reduced: class-total iteration disagrees with the backend "
          "eigenvalue");

  out.class_concentrations = u;

  // Representatives v_k = [Gamma_k] / C(nu,k), evaluated in log space so nu
  // in the hundreds cannot overflow the binomials.
  out.representatives.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    out.representatives[k] =
        (u[k] > 0.0) ? std::exp(std::log(u[k]) - log_c[k]) : 0.0;
  }
  return out;
}

std::vector<double> expand_representatives(unsigned nu,
                                           std::span<const double> representatives) {
  require(representatives.size() == nu + 1,
          "expand_representatives: need nu + 1 values");
  require(nu <= 30, "expand_representatives: nu too large to materialise");
  const seq_t n = sequence_count(nu);
  std::vector<double> x(n);
  for (seq_t i = 0; i < n; ++i) x[i] = representatives[hamming_weight(i)];
  return x;
}

}  // namespace qs::solvers
