#include "solvers/block_power.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <utility>

#include "core/workspace.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

/// Smallest SIMD-friendly panel width >= k: 2, 4, 8, then multiples of 8.
std::size_t default_block(unsigned k) {
  if (k <= 2) return 2;
  if (k <= 4) return 4;
  return ((static_cast<std::size_t>(k) + 7) / 8) * 8;
}

/// G = P1^T P2 over two interleaved n x m panels; each lane accumulates a
/// local m x m block, merged under a mutex (m is tiny, the merge is noise).
linalg::DenseMatrix panel_gram(const double* p1, const double* p2,
                               std::size_t n, std::size_t m,
                               const parallel::Engine& engine) {
  linalg::DenseMatrix g(m, m);
  std::mutex merge;
  engine.dispatch(n, [&](std::size_t begin, std::size_t end) {
    std::vector<double> local(m * m, 0.0);
    for (std::size_t i = begin; i < end; ++i) {
      const double* r1 = p1 + i * m;
      const double* r2 = p2 + i * m;
      for (std::size_t a = 0; a < m; ++a) {
        const double v = r1[a];
        for (std::size_t b = 0; b < m; ++b) local[a * m + b] += v * r2[b];
      }
    }
    const std::lock_guard<std::mutex> lock(merge);
    auto gd = g.data();
    for (std::size_t i = 0; i < local.size(); ++i) gd[i] += local[i];
  });
  return g;
}

/// In-place panel rotation P <- P R with R m x m (row-wise small mat-vec).
void panel_rotate(double* p, std::size_t n, std::size_t m,
                  const linalg::DenseMatrix& r, const parallel::Engine& engine) {
  engine.dispatch(n, [&, p](std::size_t begin, std::size_t end) {
    std::vector<double> tmp(m);
    for (std::size_t i = begin; i < end; ++i) {
      double* row = p + i * m;
      for (std::size_t b = 0; b < m; ++b) {
        double acc = 0.0;
        for (std::size_t a = 0; a < m; ++a) acc += row[a] * r(a, b);
        tmp[b] = acc;
      }
      std::memcpy(row, tmp.data(), m * sizeof(double));
    }
  });
}

/// Orthonormalises the panel's columns by the symmetric inverse square root
/// of its Gram matrix: P <- P U diag(1/sqrt(s)) with G = U diag(s) U^T.
/// The jacobi eigenvalues come out descending, so the leading directions of
/// the panel stay in the leading columns.
void panel_orthonormalize(double* p, std::size_t n, std::size_t m,
                          const parallel::Engine& engine) {
  const linalg::DenseMatrix g = panel_gram(p, p, n, m, engine);
  const linalg::SymmetricEigen eig = linalg::jacobi_eigen(g);
  const double smax = std::max(eig.values.front(), 1e-300);
  linalg::DenseMatrix r(m, m);
  for (std::size_t b = 0; b < m; ++b) {
    // Columns with numerically collapsed directions get zeroed rather than
    // amplified; the next product re-fills them from the operator's range.
    const double s = eig.values[b];
    const double inv = s > 1e-28 * smax ? 1.0 / std::sqrt(s) : 0.0;
    for (std::size_t a = 0; a < m; ++a) r(a, b) = eig.vectors(a, b) * inv;
  }
  panel_rotate(p, n, m, r, engine);
}

/// Per-column relative Ritz residuals ||ry_j - theta_j rx_j|| /
/// (|theta_j| ||rx_j||), accumulated in one pass over both panels.
std::vector<double> panel_residuals(const double* rx, const double* ry,
                                    const std::vector<double>& theta,
                                    std::size_t n, std::size_t m,
                                    const parallel::Engine& engine) {
  std::vector<double> acc(2 * m, 0.0);  // [num_0..num_{m-1}, den_0..den_{m-1}]
  std::mutex merge;
  const double* th = theta.data();
  engine.dispatch(n, [&](std::size_t begin, std::size_t end) {
    std::vector<double> local(2 * m, 0.0);
    for (std::size_t i = begin; i < end; ++i) {
      const double* x = rx + i * m;
      const double* y = ry + i * m;
      for (std::size_t j = 0; j < m; ++j) {
        const double d = y[j] - th[j] * x[j];
        local[j] += d * d;
        local[m + j] += x[j] * x[j];
      }
    }
    const std::lock_guard<std::mutex> lock(merge);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += local[i];
  });
  std::vector<double> res(m, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    const double scale = std::abs(theta[j]) * std::sqrt(acc[m + j]);
    res[j] = scale > 0.0 ? std::sqrt(acc[j]) / scale
                         : std::sqrt(acc[j]);
  }
  return res;
}

/// Deterministic pseudo-random fill for the guard columns (splitmix64).
double hash_unit(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x = x ^ (x >> 31);
  return static_cast<double>(x >> 11) * 0x1.0p-53 - 0.5;
}

/// Resolved panel width for (options, n): the explicit block or the default
/// SIMD-friendly width, clamped to the dimension.
std::size_t resolve_block(const BlockPowerOptions& options, std::size_t n) {
  std::size_t m = options.block != 0 ? options.block : default_block(options.k);
  require(m >= options.k, "block power: block width must be >= k");
  return std::min(m, n);
}

void validate(const core::FmmpOperator& op, const BlockPowerOptions& options) {
  require(options.k >= 1, "block power: need k >= 1 eigenpairs");
  require(op.formulation() == core::Formulation::symmetric,
          "block power: operator must use the symmetric formulation");
  require(options.ritz_every >= 1, "block power: ritz_every must be >= 1");
  require(options.max_iterations >= 1, "block power: need at least one iteration");
  require(options.k <= op.dimension(), "block power: k exceeds the operator dimension");
}

/// The subspace loop, shared by cold starts and resumes.  On entry `x`
/// holds the orthonormalised starting panel (interleaved n x m); a resume
/// passes the checkpointed panel verbatim, which is exactly the state the
/// uninterrupted run had at the bottom of the corresponding round.
BlockPowerResult run_block_loop(const core::FmmpOperator& op,
                                const BlockPowerOptions& options,
                                IterationDriver driver, std::span<double> x,
                                std::span<double> y, std::size_t m,
                                unsigned start_iterations) {
  const std::size_t n = op.dimension();
  const parallel::Engine& engine = options.engine != nullptr
                                       ? *options.engine
                                       : parallel::serial_engine();

  BlockPowerResult result;
  result.iterations = start_iterations;
  std::vector<double> theta;
  std::vector<double> residuals;
  while (result.iterations < options.max_iterations) {
    // Advance the subspace ritz_every products, re-orthonormalising between
    // products so the columns do not all collapse onto the dominant pair.
    for (unsigned s = 0; s < options.ritz_every; ++s) {
      if (s > 0) {
        std::memcpy(x.data(), y.data(), y.size() * sizeof(double));
        panel_orthonormalize(x.data(), n, m, engine);
      }
      op.apply_panel(x, y, m);
      ++result.iterations;
      if (result.iterations >= options.max_iterations) break;
    }

    // Rayleigh-Ritz on span(X): A = X^T W X, rotate both panels onto the
    // Ritz basis, and read off the per-pair residuals.
    linalg::DenseMatrix a = panel_gram(x.data(), y.data(), n, m, engine);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i + 1; j < m; ++j) {
        const double sym = 0.5 * (a(i, j) + a(j, i));
        a(i, j) = sym;
        a(j, i) = sym;
      }
    }
    const linalg::SymmetricEigen eig = linalg::jacobi_eigen(a);
    theta = eig.values;
    panel_rotate(x.data(), n, m, eig.vectors, engine);
    panel_rotate(y.data(), n, m, eig.vectors, engine);
    residuals = panel_residuals(x.data(), y.data(), theta, n, m, engine);

    // Health guard over the k wanted pairs: a poisoned panel (NaN product,
    // overflowed Gram matrix) is reported structurally instead of silently
    // returning converged = false.
    if (!driver.guard(std::span<const double>(theta.data(), options.k), result) ||
        !driver.guard(std::span<const double>(residuals.data(), options.k),
                      result)) {
      break;
    }
    result.eigenvalue = theta.front();
    double worst = 0.0;
    for (unsigned j = 0; j < options.k; ++j) worst = std::max(worst, residuals[j]);
    result.residual = worst;
    // One driver iteration per extraction, observed on the worst wanted
    // residual: "all k pairs within tolerance" is exactly "worst <=
    // tolerance", so the driver's convergence test matches the historical
    // per-pair check bit for bit.
    const IterationDriver::Verdict verdict =
        driver.observe(result.iterations, result.residual, result);
    if (verdict == IterationDriver::Verdict::cancelled &&
        driver.checkpointing()) {
      // Cancellation flushes the same orthonormalised next-subspace panel
      // the periodic checkpoint would persist, so an interrupted run
      // resumes at this extraction.
      std::memcpy(x.data(), y.data(), y.size() * sizeof(double));
      panel_orthonormalize(x.data(), n, m, engine);
      driver.write_checkpoint(result.iterations, result, x, result.iterations,
                              static_cast<double>(m));
      break;
    }
    if (verdict != IterationDriver::Verdict::proceed) break;

    // Next subspace: the images in Ritz order, orthonormalised.  This panel
    // is the resume point: checkpointing it (rather than the Ritz vectors)
    // lets a resumed run re-enter the advance loop with bit-identical state.
    std::memcpy(x.data(), y.data(), y.size() * sizeof(double));
    panel_orthonormalize(x.data(), n, m, engine);
    driver.maybe_checkpoint(result.iterations, result, x, result.iterations,
                            static_cast<double>(m));
  }

  // Extract the k leading Ritz pairs from the last extraction (X holds the
  // Ritz vectors of the final Rayleigh-Ritz step).
  const unsigned k = options.k;
  if (theta.size() >= k) {
    result.eigenvalues.assign(theta.begin(), theta.begin() + k);
    result.residuals.assign(residuals.begin(), residuals.begin() + k);
    result.eigenvectors.resize(k);
    for (unsigned j = 0; j < k; ++j) {
      std::vector<double>& v = result.eigenvectors[j];
      v.resize(n);
      double norm2 = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = x[i * m + j];
        norm2 += v[i] * v[i];
      }
      const double inv = norm2 > 0.0 ? 1.0 / std::sqrt(norm2) : 0.0;
      for (std::size_t i = 0; i < n; ++i) v[i] *= inv;
    }
  }
  return result;
}

/// Converts the symmetric-formulation Ritz vectors to concentration vectors
/// of the right formulation: x_i = v_i / sqrt(f_i), 1-norm normalised, sign
/// fixed so the largest-magnitude entry is positive.
void to_concentrations(BlockPowerResult& result, const core::Landscape& landscape) {
  const auto f = landscape.values();
  for (std::vector<double>& v : result.eigenvectors) {
    double amax = 0.0;
    double at_amax = 0.0;
    double abs_sum = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = f[i] > 0.0 ? v[i] / std::sqrt(f[i]) : 0.0;
      abs_sum += std::abs(v[i]);
      if (std::abs(v[i]) > amax) {
        amax = std::abs(v[i]);
        at_amax = v[i];
      }
    }
    const double scale =
        abs_sum > 0.0 ? (at_amax < 0.0 ? -1.0 : 1.0) / abs_sum : 0.0;
    for (double& e : v) e *= scale;
  }
}

}  // namespace

BlockPowerResult block_power_iteration(const core::FmmpOperator& op,
                                       const BlockPowerOptions& options) {
  validate(op, options);
  const std::size_t n = op.dimension();
  const std::size_t m = resolve_block(options, n);

  const parallel::Engine& engine = options.engine != nullptr
                                       ? *options.engine
                                       : parallel::serial_engine();
  IterationDriver driver(options, io::SolverKind::block_power);

  core::Workspace local_workspace;
  core::Workspace& workspace =
      options.workspace != nullptr ? *options.workspace : local_workspace;
  std::span<double> x = workspace.take(core::Workspace::Slot::panel, n * m);
  std::span<double> y = workspace.take(core::Workspace::Slot::panel_image, n * m);

  // Starting panel: column 0 is the landscape start mapped to the symmetric
  // formulation (v_sym = sqrt(f) .* x_R, with x_R = f the paper's start),
  // guard columns a fixed pseudo-random basis.
  const auto f = op.landscape().values();
  for (std::size_t i = 0; i < n; ++i) {
    x[i * m] = std::sqrt(f[i]) * f[i];
    for (std::size_t j = 1; j < m; ++j) {
      x[i * m + j] = hash_unit(i * 0x100000001b3ull + j);
    }
  }
  panel_orthonormalize(x.data(), n, m, engine);
  return run_block_loop(op, options, std::move(driver), x, y, m, 0);
}

BlockPowerResult resume_block_power_iteration(const core::FmmpOperator& op,
                                              const io::SolverCheckpoint& checkpoint,
                                              const BlockPowerOptions& options) {
  validate(op, options);
  const std::size_t n = op.dimension();
  const std::size_t m = resolve_block(options, n);
  require(checkpoint.eigenvector.size() == n * m,
          "resume block power: checkpoint panel does not match n x m");

  IterationDriver driver(options, io::SolverKind::block_power);
  IterationTrace trace;
  BlockPowerResult out;
  if (!restore_trace(checkpoint, io::SolverKind::block_power, trace, out)) {
    out.eigenvalue = trace.eigenvalue;
    out.residual = trace.residual;
    out.iterations = trace.start_iteration;
    return out;
  }
  require(static_cast<std::size_t>(trace.aux) == m,
          "resume block power: checkpoint panel width does not match options");
  driver.restore(checkpoint);

  core::Workspace local_workspace;
  core::Workspace& workspace =
      options.workspace != nullptr ? *options.workspace : local_workspace;
  std::span<double> x = workspace.take(core::Workspace::Slot::panel, n * m);
  std::span<double> y = workspace.take(core::Workspace::Slot::panel_image, n * m);
  std::memcpy(x.data(), trace.iterate.data(), n * m * sizeof(double));
  return run_block_loop(op, options, std::move(driver), x, y, m,
                        trace.start_iteration);
}

BlockPowerResult top_k_spectrum(const core::MutationModel& model,
                                const core::Landscape& landscape,
                                const BlockPowerOptions& options) {
  const core::FmmpOperator op(model, landscape, core::Formulation::symmetric,
                              options.engine,
                              transforms::LevelOrder::ascending,
                              core::EngineKernel::blocked, options.plan);
  BlockPowerResult result = block_power_iteration(op, options);
  to_concentrations(result, landscape);
  return result;
}

BlockPowerResult resume_top_k_spectrum(const core::MutationModel& model,
                                       const core::Landscape& landscape,
                                       const io::SolverCheckpoint& checkpoint,
                                       const BlockPowerOptions& options) {
  const core::FmmpOperator op(model, landscape, core::Formulation::symmetric,
                              options.engine,
                              transforms::LevelOrder::ascending,
                              core::EngineKernel::blocked, options.plan);
  BlockPowerResult result = resume_block_power_iteration(op, checkpoint, options);
  to_concentrations(result, landscape);
  return result;
}

}  // namespace qs::solvers
