#include "solvers/lanczos.hpp"

#include <cmath>
#include <utility>

#include "core/fmmp.hpp"
#include "core/workspace.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/trace.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

/// The restart loop, shared by cold starts and resumes.  `q0` is the
/// restart vector in the symmetric scale, used verbatim (cold starts
/// normalise before calling; resumes must not re-normalise or the resumed
/// trajectory would diverge from the original run in the last bits).
LanczosResult run_lanczos_loop(const core::MutationModel& model,
                               const core::Landscape& landscape,
                               std::vector<double> q0, unsigned start_cycle,
                               IterationTrace trace, IterationDriver driver,
                               const LanczosOptions& options) {
  const std::size_t n = static_cast<std::size_t>(model.dimension());
  const core::FmmpOperator op(model, landscape, core::Formulation::symmetric,
                              options.engine);
  const auto f = landscape.values();

  LanczosResult out;
  out.eigenvalue = trace.eigenvalue;
  out.residual = trace.residual;
  out.iterations = start_cycle;
  out.matvec_count = static_cast<unsigned>(trace.matvec_count);

  const unsigned m = options.basis_size;
  core::Workspace local_workspace;
  core::Workspace& workspace =
      options.workspace != nullptr ? *options.workspace : local_workspace;
  std::span<double> w = workspace.take(core::Workspace::Slot::recurrence, n);

  // The basis pool is reused across cycles (and across solves through a
  // shared workspace-less pool local to this call): cleared counts, not
  // freed buffers.
  std::vector<std::vector<double>> basis(m);
  std::vector<double> alpha(m), beta(m);  // T diagonal / subdiagonal
  // Ritz-vector buffer hoisted out of the cycle loop: assign() reuses the
  // capacity, so steady-state cycles add no allocations for it (the
  // alloc-guard test pins this down).
  std::vector<double> ritz(n, 0.0);

  for (unsigned cycle = start_cycle; cycle <= options.max_restarts; ++cycle) {
    QS_TRACE_SPAN_ARG("lanczos.cycle", solver, cycle);
    out.restarts = cycle;
    out.iterations = cycle + 1;
    basis[0].assign(q0.begin(), q0.end());

    unsigned built = 0;  // number of completed Lanczos steps this cycle
    for (unsigned j = 0; j < m; ++j) {
      op.apply(basis[j], w);
      ++out.matvec_count;
      alpha[j] = linalg::dot(basis[j], w);
      // Three-term recurrence ...
      linalg::axpy(-alpha[j], basis[j], w);
      if (j > 0) linalg::axpy(-beta[j - 1], basis[j - 1], w);
      // ... plus full reorthogonalisation: at these basis sizes the cost is
      // negligible next to the mat-vec and it removes ghost eigenvalues.
      for (unsigned i = 0; i <= j; ++i) {
        linalg::axpy(-linalg::dot(basis[i], w), basis[i], w);
      }
      built = j + 1;
      const double norm = linalg::norm2(w);
      beta[j] = norm;
      // Health guard at the per-step cadence: a poisoned product makes the
      // recurrence norm NaN/Inf; fail fast instead of feeding garbage to
      // the tridiagonal eigensolver cycle after cycle.
      if (!driver.guard({norm, alpha[j]}, out)) break;
      if (norm <= 1e-14 || j + 1 == m) break;  // invariant subspace or full
      basis[j + 1].assign(w.begin(), w.end());
      linalg::scale(basis[j + 1], 1.0 / norm);
    }

    if (out.failure != SolverFailure::none) break;

    // Dominant Ritz pair of the tridiagonal section T(0..built-1).
    linalg::DenseMatrix t(built, built);
    for (unsigned j = 0; j < built; ++j) {
      t(j, j) = alpha[j];
      if (j + 1 < built) {
        t(j, j + 1) = beta[j];
        t(j + 1, j) = beta[j];
      }
    }
    const auto eigen = linalg::jacobi_eigen(t);
    out.eigenvalue = eigen.values[0];

    // Ritz vector y = V s, and the classic residual bound |beta_m * s_last|.
    ritz.assign(n, 0.0);
    for (unsigned j = 0; j < built; ++j) {
      linalg::axpy(eigen.vectors(j, 0), basis[j], ritz);
    }
    linalg::normalize2(ritz);
    out.residual = std::abs(beta[built - 1] * eigen.vectors(built - 1, 0)) /
                   std::max(std::abs(out.eigenvalue), 1e-300);
    if (!driver.guard({out.eigenvalue, out.residual}, out)) break;
    q0.assign(ritz.begin(), ritz.end());
    const IterationDriver::Verdict verdict =
        driver.observe(cycle + 1, out.residual, out);
    if (verdict != IterationDriver::Verdict::proceed) {
      // Cancellation flushes the restart vector (the same state the periodic
      // checkpoint persists) so an interrupted run resumes at this cycle.
      if (verdict == IterationDriver::Verdict::cancelled &&
          driver.checkpointing()) {
        driver.write_checkpoint(cycle + 1, out, q0, out.matvec_count);
      }
      break;
    }
    // Periodic checkpoint of the next cycle's restart vector, written only
    // after the health guard passed: the last checkpoint on disk is always
    // a finite, resumable state.
    driver.maybe_checkpoint(cycle + 1, out, q0, out.matvec_count);
  }

  if (out.failure != SolverFailure::none) {
    // Garbage basis: report the raw iterate without the concentration
    // conversion (normalising NaNs would only disguise the failure).
    out.converged = false;
    out.concentrations.assign(q0.begin(), q0.end());
    return out;
  }

  // Convert the symmetric-form Ritz vector to concentrations.
  out.concentrations.assign(q0.begin(), q0.end());
  for (std::size_t i = 0; i < n; ++i) out.concentrations[i] /= std::sqrt(f[i]);
  double s = 0.0;
  for (double v : out.concentrations) s += v;
  if (s < 0.0) linalg::scale(out.concentrations, -1.0);
  linalg::normalize1(out.concentrations);
  return out;
}

void validate(const core::MutationModel& model, const LanczosOptions& options) {
  require(model.symmetric() && model.kind() != core::MutationKind::grouped,
          "lanczos_dominant_w requires a symmetric 2x2-factor mutation model");
  require(options.basis_size >= 2, "lanczos_dominant_w: basis_size must be >= 2");
}

}  // namespace

LanczosResult lanczos_dominant_w(const core::MutationModel& model,
                                 const core::Landscape& landscape,
                                 std::span<const double> start,
                                 const LanczosOptions& options) {
  validate(model, options);
  const std::size_t n = static_cast<std::size_t>(model.dimension());
  require(start.empty() || start.size() == n,
          "lanczos_dominant_w: starting vector has wrong dimension");

  IterationDriver driver(options, io::SolverKind::lanczos);
  const auto f = landscape.values();

  // Start vector in symmetric scale: F^{1/2} * (given or landscape start).
  std::vector<double> q0(n);
  double q0_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double base = start.empty() ? f[i] : start[i];
    q0[i] = base * std::sqrt(f[i]);
    q0_sq += q0[i] * q0[i];
  }
  // Refuse to iterate on a poisoned start (NaN/Inf entries, or a norm that
  // overflowed): report the structured failure instead of tripping the
  // normalisation's zero-vector precondition on NaN.
  LanczosResult bad;
  if (!driver.guard({q0_sq}, bad)) return bad;
  linalg::normalize2(q0);
  return run_lanczos_loop(model, landscape, std::move(q0), 0, IterationTrace{},
                          std::move(driver), options);
}

LanczosResult resume_lanczos_dominant_w(const core::MutationModel& model,
                                        const core::Landscape& landscape,
                                        const io::SolverCheckpoint& checkpoint,
                                        const LanczosOptions& options) {
  validate(model, options);
  const std::size_t n = static_cast<std::size_t>(model.dimension());
  require(checkpoint.eigenvector.size() == n,
          "resume_lanczos_dominant_w: checkpoint dimension does not match model");

  IterationDriver driver(options, io::SolverKind::lanczos);
  IterationTrace trace;
  LanczosResult out;
  if (!restore_trace(checkpoint, io::SolverKind::lanczos, trace, out)) {
    out.concentrations = std::move(trace.iterate);
    out.eigenvalue = trace.eigenvalue;
    out.residual = trace.residual;
    out.iterations = trace.start_iteration;
    out.matvec_count = static_cast<unsigned>(trace.matvec_count);
    return out;
  }
  driver.restore(checkpoint);
  std::vector<double> q0 = std::move(trace.iterate);
  const unsigned start_cycle = trace.start_iteration;
  return run_lanczos_loop(model, landscape, std::move(q0), start_cycle,
                          std::move(trace), std::move(driver), options);
}

}  // namespace qs::solvers
