#include "solvers/lanczos.hpp"

#include <cmath>

#include "core/fmmp.hpp"
#include "linalg/jacobi_eigen.hpp"
#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {

LanczosResult lanczos_dominant_w(const core::MutationModel& model,
                                 const core::Landscape& landscape,
                                 std::span<const double> start,
                                 const LanczosOptions& options) {
  require(model.symmetric() && model.kind() != core::MutationKind::grouped,
          "lanczos_dominant_w requires a symmetric 2x2-factor mutation model");
  require(options.basis_size >= 2, "lanczos_dominant_w: basis_size must be >= 2");
  const std::size_t n = static_cast<std::size_t>(model.dimension());
  require(start.empty() || start.size() == n,
          "lanczos_dominant_w: starting vector has wrong dimension");

  const core::FmmpOperator op(model, landscape, core::Formulation::symmetric);
  const auto f = landscape.values();

  // Start vector in symmetric scale: F^{1/2} * (given or landscape start).
  std::vector<double> q0(n);
  double q0_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double base = start.empty() ? f[i] : start[i];
    q0[i] = base * std::sqrt(f[i]);
    q0_sq += q0[i] * q0[i];
  }
  LanczosResult out;
  // Refuse to iterate on a poisoned start (NaN/Inf entries, or a norm that
  // overflowed): report the structured failure instead of tripping the
  // normalisation's zero-vector precondition on NaN.
  if (!std::isfinite(q0_sq)) {
    out.failure = SolverFailure::non_finite;
    return out;
  }
  linalg::normalize2(q0);
  const unsigned m = options.basis_size;
  std::vector<std::vector<double>> basis;  // q_0 .. q_{m-1}
  std::vector<double> alpha(m), beta(m);   // T diagonal / subdiagonal
  std::vector<double> w(n);

  for (unsigned cycle = 0; cycle <= options.max_restarts; ++cycle) {
    out.restarts = cycle;
    basis.clear();
    basis.push_back(q0);

    unsigned built = 0;  // number of completed Lanczos steps this cycle
    for (unsigned j = 0; j < m; ++j) {
      op.apply(basis[j], w);
      ++out.matvec_count;
      alpha[j] = linalg::dot(basis[j], w);
      // Three-term recurrence ...
      linalg::axpy(-alpha[j], basis[j], w);
      if (j > 0) linalg::axpy(-beta[j - 1], basis[j - 1], w);
      // ... plus full reorthogonalisation: at these basis sizes the cost is
      // negligible next to the mat-vec and it removes ghost eigenvalues.
      for (const auto& q : basis) {
        linalg::axpy(-linalg::dot(q, w), q, w);
      }
      built = j + 1;
      const double norm = linalg::norm2(w);
      beta[j] = norm;
      // Health guard at the per-step cadence: a poisoned product makes the
      // recurrence norm NaN/Inf; fail fast instead of feeding garbage to
      // the tridiagonal eigensolver cycle after cycle.
      if (!std::isfinite(norm) || !std::isfinite(alpha[j])) {
        out.failure = SolverFailure::non_finite;
        break;
      }
      if (norm <= 1e-14 || j + 1 == m) break;  // invariant subspace or full
      std::vector<double> next(w.begin(), w.end());
      linalg::scale(next, 1.0 / norm);
      basis.push_back(std::move(next));
    }

    if (out.failure != SolverFailure::none) break;

    // Dominant Ritz pair of the tridiagonal section T(0..built-1).
    linalg::DenseMatrix t(built, built);
    for (unsigned j = 0; j < built; ++j) {
      t(j, j) = alpha[j];
      if (j + 1 < built) {
        t(j, j + 1) = beta[j];
        t(j + 1, j) = beta[j];
      }
    }
    const auto eigen = linalg::jacobi_eigen(t);
    out.eigenvalue = eigen.values[0];

    // Ritz vector y = V s, and the classic residual bound |beta_m * s_last|.
    std::vector<double> ritz(n, 0.0);
    for (unsigned j = 0; j < built; ++j) {
      linalg::axpy(eigen.vectors(j, 0), basis[j], ritz);
    }
    linalg::normalize2(ritz);
    out.residual = std::abs(beta[built - 1] * eigen.vectors(built - 1, 0)) /
                   std::max(std::abs(out.eigenvalue), 1e-300);
    if (!std::isfinite(out.eigenvalue) || !std::isfinite(out.residual)) {
      out.failure = SolverFailure::non_finite;
      break;
    }
    q0 = ritz;
    if (out.residual <= options.tolerance) {
      out.converged = true;
      break;
    }
  }

  if (out.failure != SolverFailure::none) {
    // Garbage basis: report the raw iterate without the concentration
    // conversion (normalising NaNs would only disguise the failure).
    out.converged = false;
    out.concentrations.assign(q0.begin(), q0.end());
    return out;
  }

  // Convert the symmetric-form Ritz vector to concentrations.
  out.concentrations.assign(q0.begin(), q0.end());
  for (std::size_t i = 0; i < n; ++i) out.concentrations[i] /= std::sqrt(f[i]);
  double s = 0.0;
  for (double v : out.concentrations) s += v;
  if (s < 0.0) linalg::scale(out.concentrations, -1.0);
  linalg::normalize1(out.concentrations);
  return out;
}

}  // namespace qs::solvers
