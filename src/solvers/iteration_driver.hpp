// Shared iteration scaffolding for every eigensolver in the library.
//
// All five eigensolvers (power, block power, Lanczos, Arnoldi, shift-invert
// RQI) are "apply W, update, check residual" loops; before this layer only
// the power iteration carried the full resilience kit (checkpoint/resume,
// stall windows, NaN/Inf health guards, fault-injection seams) while the
// others had partial copy-pasted guard code.  IterationDriver hoists that
// scaffolding into exactly one place:
//
//   * IterationOptions — the shared tuning block (tolerance, iteration cap,
//     residual cadence, stall window, engine, checkpointing, hooks) that
//     every solver's option struct now derives from;
//   * IterationResult — the shared outcome fields every solver's result
//     struct now derives from (converged/stalled/failure/checkpoint stats);
//   * IterationTrace — the resumable accounting state a checkpoint is a
//     serialised snapshot of;
//   * IterationDriver — the stall accounting, SolverFailure raising, and
//     checkpoint writing, consumed by the solver loops through four calls
//     (guard / observe / maybe_checkpoint / restore).
//
// Bit-compatibility contract: `observe` implements the power iteration's
// original stall-window algorithm operation for operation, and `restore`
// takes checkpointed state verbatim, so a resumed run reproduces the
// original residual trajectory bit for bit on the serial backend — for
// every solver, not just the power iteration.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <initializer_list>
#include <span>
#include <vector>

#include "io/binary_io.hpp"
#include "parallel/engine.hpp"
#include "solvers/solver_failure.hpp"

namespace qs::core {
class Workspace;
}  // namespace qs::core

namespace qs::solvers {

/// Tuning knobs shared by every iterative eigensolver.  Solver-specific
/// option structs derive from this block, so the same checkpoint/stall/
/// health configuration drives all of them.  The defaults match the power
/// iteration; the Krylov solvers adjust tolerance and disable the stall
/// window in their constructors (their per-cycle residuals drop fast enough
/// that the window would only fire on genuinely hopeless runs).
struct IterationOptions {
  /// Convergence threshold on the solver's relative residual.
  double tolerance = 1e-13;

  /// Iteration cap; exceeding it returns converged = false.  On a resumed
  /// run the cap counts total iterations including the checkpointed ones.
  /// The restarted Krylov solvers count restart cycles against their own
  /// `max_restarts` instead and ignore this field.
  unsigned max_iterations = 1000000;

  /// Compute the residual only every k-th iteration (ablation knob; for the
  /// solvers whose residual falls out of the iteration for free this only
  /// changes reduction counts, not products).
  unsigned residual_check_every = 1;

  /// Stagnation detection: if the best residual seen has not improved by at
  /// least 5 % across a window of this many residual checks, the iteration
  /// is either at its numerical floor or converging too slowly to ever
  /// finish, and stops.  0 disables.
  unsigned stall_window = 100;

  /// A stalled run still counts as converged when its floor residual is at
  /// most this value (set equal to `tolerance` to make stalling a failure).
  double stall_accept = 1e-9;

  /// Reduction backend; null means serial.
  const parallel::Engine* engine = nullptr;

  /// Preallocated scratch arena (see core/workspace.hpp); null makes each
  /// solve allocate its own temporaries.  Passing the same workspace across
  /// repeated solves (sweeps, recovery retries) reuses the buffers.
  core::Workspace* workspace = nullptr;

  /// Periodic checkpointing: every `checkpoint_every` iterations the current
  /// state is persisted to `checkpoint_path` (atomically; a crash mid-write
  /// never tears an existing checkpoint).  0 or an empty path disables.
  /// A checkpoint is only written while the iterate is finite, so the last
  /// checkpoint on disk is always a good restart point.
  std::filesystem::path checkpoint_path;
  unsigned checkpoint_every = 0;

  /// Wall-clock checkpoint cadence, unioned with the iteration cadence: a
  /// checkpoint is written when EITHER `checkpoint_every` iterations have
  /// passed OR this many seconds have elapsed since the last write (the
  /// clock is read only at residual-guarded checkpoint opportunities, so
  /// the actual period is quantised to iteration boundaries).  0 disables
  /// the time cadence.  Use this instead of guessing an iteration count
  /// when the per-iteration cost varies across hosts or problem sizes.
  double checkpoint_every_seconds = 0.0;

  /// Testing/observability seam: when set, checkpoints go through this sink
  /// instead of binary_io (checkpoint_path is then ignored).  A sink that
  /// throws models checkpoint I/O failure; the solve records the failure in
  /// IterationResult::checkpoint_failures and keeps iterating — durability
  /// degrades, the solve does not die.
  std::function<void(const io::SolverCheckpoint&)> checkpoint_sink;

  /// Observability hook invoked at every residual check with the iteration
  /// number and the relative residual (used by the resume tests to prove
  /// bitwise-equal trajectories, and handy for progress reporting).
  std::function<void(unsigned iteration, double residual)> on_residual;

  /// Cooperative cancellation: polled at every residual check, AFTER the
  /// tolerance test (a solve that converged on the same iteration its
  /// deadline expired still reports success).  Returning true aborts the
  /// solve at the next iteration boundary with failure = cancelled and a
  /// final checkpoint flush (when checkpointing is configured) — a deadline
  /// or client disconnect ends the solve cleanly instead of wedging it.
  /// The hook must be cheap and thread-safe (typically an atomic load).
  std::function<bool()> should_stop;
};

/// Outcome fields shared by every solver's result struct.
struct IterationResult {
  double eigenvalue = 0.0;          ///< Dominant eigenvalue estimate.
  unsigned iterations = 0;          ///< Driver iterations performed (total,
                                    ///< including checkpointed ones on resume).
  double residual = 0.0;            ///< Relative residual at exit.
  bool converged = false;
  bool stalled = false;             ///< Stopped at the numerical floor
                                    ///< above `tolerance` (see stall_window).
  SolverFailure failure = SolverFailure::none;  ///< Structured failure reason.
  unsigned checkpoint_failures = 0; ///< Checkpoint writes that threw (the
                                    ///< solve continues; durability degrades).
};

/// Everything the iteration loop needs to start or resume mid-run; a
/// checkpoint is exactly a serialised snapshot of this state.  `iterate` is
/// taken verbatim by the solvers (callers normalise cold starts; resumes
/// must not re-normalise or the trajectory would diverge from the original
/// run in the last bits).
struct IterationTrace {
  std::vector<double> iterate;      ///< Solver-native iterate (or panel).
  unsigned start_iteration = 0;     ///< Driver iterations already performed.
  double eigenvalue = 0.0;
  double residual = 0.0;
  std::uint64_t matvec_count = 0;   ///< Operator products already performed.
  double aux = 0.0;                 ///< Solver-specific scalar (shift, width).
};

/// The one place stall accounting, SolverFailure raising, and checkpoint
/// writing live.  One driver instance serves one solve.
class IterationDriver {
 public:
  /// `options` must outlive the driver; `kind` stamps every checkpoint so a
  /// resume can refuse state written by a different iteration scheme.
  IterationDriver(const IterationOptions& options, io::SolverKind kind);

  /// Restores the stall-window accounting from a checkpoint, verbatim.
  void restore(const io::SolverCheckpoint& checkpoint);

  /// True when periodic checkpointing is configured.
  bool checkpointing() const { return checkpointing_; }

  /// Residual-check cadence: true on every residual_check_every-th
  /// iteration and on the final one.
  bool should_check(unsigned iteration, unsigned last_iteration) const {
    return (iteration % options_.residual_check_every == 0) ||
           (iteration == last_iteration);
  }

  /// Numerical-health guard: returns true when every value is finite.
  /// Otherwise stamps failure = non_finite / converged = false into `out`
  /// and returns false — the caller breaks its loop.
  bool guard(std::initializer_list<double> values, IterationResult& out) const;

  /// Guard over a whole iterate (used to refuse poisoned starts/resumes).
  bool guard(std::span<const double> iterate, IterationResult& out) const;

  /// What `observe` decided the loop should do.
  enum class Verdict {
    proceed,    ///< Keep iterating.
    converged,  ///< Residual at or below tolerance; out.converged set.
    stalled,    ///< Stall window fired; out.stalled (and maybe converged) set.
    cancelled,  ///< should_stop() returned true; out.failure = cancelled.
  };

  /// One residual observation: fires the on_residual hook, tests the
  /// tolerance, and advances the stall-window accounting (operation for
  /// operation the power iteration's original algorithm).  The caller
  /// stamps out.eigenvalue / out.residual before calling.
  Verdict observe(unsigned iteration, double residual, IterationResult& out);

  /// Periodic checkpoint: persists the current state when the cadence says
  /// so.  Call only after the health guards passed, so the last checkpoint
  /// on disk is always a finite, resumable state.  A failing write degrades
  /// durability (counted in out.checkpoint_failures) but must not kill a
  /// long solve.
  void maybe_checkpoint(unsigned iteration, IterationResult& out,
                        std::span<const double> iterate,
                        std::uint64_t matvec_count = 0, double aux = 0.0);

  /// Unconditional checkpoint write (same failure semantics); used by
  /// solvers that persist state at irregular boundaries.
  void write_checkpoint(unsigned iteration, IterationResult& out,
                        std::span<const double> iterate,
                        std::uint64_t matvec_count = 0, double aux = 0.0);

 private:
  const IterationOptions& options_;
  io::SolverKind kind_;
  bool checkpointing_ = false;
  double best_residual_;
  double window_start_best_;
  double last_residual_ = 0.0;  ///< Previous observation (decay telemetry).
  unsigned checks_without_progress_ = 0;
  std::uint64_t last_checkpoint_ns_ = 0;  ///< monotonic_ns at construction /
                                          ///< last write (time cadence).
};

/// Builds an IterationTrace from a checkpoint, taking the iterate verbatim.
/// `expected` is the solver kind doing the resume; a checkpoint written by a
/// different solver is refused (precondition error with a clear message) —
/// v2 checkpoints carry no kind and are accepted by the power iteration
/// only.  Returns false (with failure = non_finite stamped into `out`) when
/// the checkpointed iterate is poisoned; the caller must not iterate on it.
bool restore_trace(const io::SolverCheckpoint& checkpoint, io::SolverKind expected,
                   IterationTrace& trace, IterationResult& out);

}  // namespace qs::solvers
