// Block power (subspace) iteration with Rayleigh-Ritz extraction.
//
// The deflated power iteration of solvers/deflation computes eigenpairs one
// at a time: each additional pair costs a full new power-iteration run, and
// every product streams one vector through the banded Fmmp kernel.  Block
// subspace iteration advances an m-column panel X through Y = W X instead —
// one banded *panel* product (core/fmmp.hpp apply_panel) amortises the
// memory traffic of the butterfly across all m columns — and extracts all k
// leading eigenpairs at once from the Rayleigh-Ritz projection
//
//   A = X^T W X  (m x m, symmetric),    A = V diag(theta) V^T,
//
// whose Ritz values theta approximate the leading eigenvalues and whose
// Ritz vectors X V approximate the eigenvectors.  Convergence of pair j is
// governed by lambda_m / lambda_j (the *block* gap), which for clustered
// leading eigenvalues is far better than the lambda_1/lambda_0 of the plain
// power iteration.
//
// Requires the symmetric formulation (Eq. (4)): the projection is then a
// genuine symmetric eigenproblem and the Ritz residuals are backward-error
// bounds.  The small m x m eigenproblems go through linalg/jacobi_eigen.
//
// Resilience: the subspace loop runs through solvers/iteration_driver — one
// driver iteration per Rayleigh-Ritz extraction, observed on the worst of
// the k wanted residuals — so the solver supports periodic
// checkpoint/resume (the checkpoint stores the full interleaved n x m
// panel, aux = m), stall windows, and NaN/Inf health guards with structured
// SolverFailure reporting.
#pragma once

#include <vector>

#include "core/fmmp.hpp"
#include "parallel/engine.hpp"
#include "solvers/iteration_driver.hpp"
#include "transforms/blocked_butterfly.hpp"

namespace qs::solvers {

/// Tuning knobs for the block power iteration: the shared iteration block
/// (`iterations` counts panel products; `residual_check_every` is ignored —
/// the extraction cadence is `ritz_every`) plus the subspace knobs.
struct BlockPowerOptions : IterationOptions {
  BlockPowerOptions() {
    tolerance = 1e-10;
    max_iterations = 100000;
    stall_window = 0;
  }

  /// Number of eigenpairs wanted (k >= 1).  The convergence threshold
  /// (`tolerance`) applies to the per-pair relative Ritz residual
  /// ||W u - theta u||_2 / |theta| for each of the k wanted pairs.
  unsigned k = 2;

  /// Panel width m >= k; 0 picks the smallest SIMD-friendly width >= k
  /// (2, 4, 8, then multiples of 8).  Extra guard columns beyond k improve
  /// the convergence of the k-th pair (the block gap becomes
  /// lambda_m / lambda_{k-1}).
  std::size_t block = 0;

  /// Rayleigh-Ritz extraction (and residual check) cadence; between
  /// extractions the panel advances with plain re-orthonormalised products.
  unsigned ritz_every = 1;

  /// Tiling plan for the banded kernels (see transforms/plan_autotune).
  transforms::BlockedPlan plan;
};

/// Outcome of a block power run: the shared outcome fields (`eigenvalue`
/// and `residual` mirror the leading pair / the worst wanted pair;
/// `iterations` counts panel products with W) plus the per-pair spectrum.
struct BlockPowerResult : IterationResult {
  /// The k Ritz values, descending (approximating lambda_0 >= ... >=
  /// lambda_{k-1} of W).
  std::vector<double> eigenvalues;

  /// The k Ritz vectors in the operator's (symmetric) formulation, 2-norm
  /// normalised, column j belonging to eigenvalues[j].  The concentration
  /// vector of the right formulation is x_i proportional to v_i / sqrt(f_i).
  std::vector<std::vector<double>> eigenvectors;

  /// Relative Ritz residuals at exit, one per returned pair.
  std::vector<double> residuals;
};

/// Runs block subspace iteration on `op` (which must use the symmetric
/// formulation) and returns its k leading eigenpairs.  The starting panel is
/// deterministic: column 0 is the paper's landscape start mapped to the
/// symmetric formulation, the guard columns a fixed pseudo-random basis.
/// Requires options.k >= 1 and, when set, options.block >= options.k.
BlockPowerResult block_power_iteration(const core::FmmpOperator& op,
                                       const BlockPowerOptions& options = {});

/// Resumes a block power run from a checkpoint written by a previous run
/// with the same operator and options.  The checkpointed panel (interleaved
/// n x m, symmetric scale; the checkpoint's aux field records m) is taken
/// verbatim, so on the serial backend the per-extraction residual
/// trajectory from the checkpoint onward is bit-identical to the
/// uninterrupted run.  Refuses checkpoints written by a different solver
/// kind or with a mismatched panel width.
BlockPowerResult resume_block_power_iteration(
    const core::FmmpOperator& op, const io::SolverCheckpoint& checkpoint,
    const BlockPowerOptions& options = {});

/// Convenience wrapper: builds the symmetric-formulation Fmmp operator for
/// (model, landscape) and returns the k leading eigenpairs of W = Q F with
/// the eigenvectors converted to concentration vectors of the right
/// formulation (1-norm normalised, dominant vector nonnegative).  Requires a
/// symmetric mutation model.
BlockPowerResult top_k_spectrum(const core::MutationModel& model,
                                const core::Landscape& landscape,
                                const BlockPowerOptions& options = {});

/// Checkpoint-resuming variant of top_k_spectrum.
BlockPowerResult resume_top_k_spectrum(const core::MutationModel& model,
                                       const core::Landscape& landscape,
                                       const io::SolverCheckpoint& checkpoint,
                                       const BlockPowerOptions& options = {});

}  // namespace qs::solvers
