// Exact (L+1) x (L+1) reduction for A-letter alphabets.
//
// The Section 5.1 reduction generalises beyond the binary alphabet: for a
// Jukes-Cantor-type mutation process over an alphabet of size A (per
// position: stay w.p. 1-mu, move to each of the A-1 other letters w.p.
// mu/(A-1)) and a fitness landscape depending only on the *base* Hamming
// distance to the master, the symmetry group (position permutations x
// relabelings of the wrong letters) makes the dominant eigenvector constant
// on base-distance classes.  The class transition matrix is binomial in the
// number of newly-wrong and reverted positions:
//
//   Q_Gamma(d, k) = sum_j C(d, j) r^j (1-r)^{d-j}
//                          C(L-d, k-d+j) mu^{k-d+j} (1-mu)^{L-k-j},
//   r = mu / (A-1)   (probability a wrong position reverts to the master),
//
// with class cardinalities |Gamma_k| = C(L, k) (A-1)^k.  A = 2 recovers the
// binary reduction exactly; A = 4 covers the RNA alphabet of Section 5.2's
// closing remark.
#pragma once

#include <span>
#include <vector>

#include "core/landscape.hpp"
#include "linalg/dense_matrix.hpp"

namespace qs::solvers {

/// Result of the alphabet-reduced solve (mirrors ReducedResult).
struct AlphabetReducedResult {
  double eigenvalue = 0.0;

  /// Concentration of one representative sequence per base-distance class,
  /// scaled so the full A^L eigenvector has unit 1-norm.
  std::vector<double> representatives;

  /// [Gamma_k]: cumulative concentration per base-distance class (sums to 1).
  std::vector<double> class_concentrations;
};

/// The reduced class-transition matrix for chain length L over an alphabet
/// of size A with per-position error rate mu.  Rows sum to 1.
/// Requires 2 <= A <= 64, 1 <= L <= 1000, 0 < mu <= (A-1)/A (mu = (A-1)/A is
/// random replication).
linalg::DenseMatrix reduced_alphabet_mutation_matrix(unsigned length,
                                                     unsigned alphabet, double mu);

/// Solves the reduced problem: base-class fitness phi(0..L) (an
/// ErrorClassLandscape with nu = L interpreted over base classes), alphabet
/// size A, error rate mu.
AlphabetReducedResult solve_reduced_alphabet(double mu, unsigned alphabet,
                                             const core::ErrorClassLandscape& phi);

}  // namespace qs::solvers
