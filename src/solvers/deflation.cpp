#include "solvers/deflation.hpp"

#include <cmath>

#include "core/fmmp.hpp"
#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::solvers {

double SpectralGap::predicted_iterations(double ratio, double decades) {
  require(ratio > 0.0 && ratio < 1.0,
          "predicted_iterations: ratio must be in (0, 1)");
  require(decades > 0.0, "predicted_iterations: decades must be positive");
  return decades * std::log(10.0) / -std::log(ratio);
}

SpectralGap spectral_gap(const core::MutationModel& model,
                         const core::Landscape& landscape,
                         const GapOptions& options) {
  require(model.symmetric() && model.kind() != core::MutationKind::grouped,
          "spectral_gap: requires a symmetric 2x2-factor mutation model");
  const core::FmmpOperator op(model, landscape, core::Formulation::symmetric);
  const std::size_t n = static_cast<std::size_t>(op.dimension());

  // Dominant pair in the symmetric formulation.
  PowerOptions popts;
  popts.tolerance = options.tolerance;
  popts.max_iterations = options.max_iterations;
  const auto dominant = power_iteration(op, landscape_start(landscape), popts);
  require(dominant.converged, "spectral_gap: dominant power iteration failed");

  // Orthonormalise the dominant eigenvector (power_iteration returns it
  // 1-norm normalised).
  std::vector<double> x0(dominant.eigenvector);
  linalg::normalize2(x0);

  // Deflated power iteration: project x0 out after every product.  The
  // projector is exact in the symmetric formulation because eigenvectors of
  // the symmetric W are orthogonal.
  std::vector<double> x1(n), y(n);
  Xoshiro256 rng(0xdef1a7edULL);
  for (double& v : x1) v = rng.uniform(-1.0, 1.0);
  linalg::axpy(-linalg::dot(x0, x1), x0, x1);
  linalg::normalize2(x1);

  SpectralGap gap;
  gap.lambda0 = dominant.eigenvalue;
  for (unsigned it = 1; it <= options.max_iterations; ++it) {
    op.apply(x1, y);
    linalg::axpy(-linalg::dot(x0, y), x0, y);  // deflate drift back to x0
    const double lambda = linalg::dot(x1, y);
    double res2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = y[i] - lambda * x1[i];
      res2 += r * r;
    }
    gap.lambda1 = lambda;
    const double rel = std::sqrt(res2) / std::max(std::abs(lambda), 1e-300);
    linalg::copy(y, x1);
    linalg::normalize2(x1);
    if (rel <= options.tolerance) break;
  }
  require(gap.lambda1 < gap.lambda0,
          "spectral_gap: deflation failed to separate the eigenvalues");
  return gap;
}

}  // namespace qs::solvers
