#include "solvers/arnoldi.hpp"

#include <cmath>
#include <complex>
#include <utility>

#include "core/fmmp.hpp"
#include "core/workspace.hpp"
#include "linalg/hessenberg_qr.hpp"
#include "linalg/small_power.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/trace.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

/// The restart loop, shared by cold starts and resumes.  `q0` is the
/// restart vector in the right (concentration) scale, 2-norm normalised,
/// used verbatim (resumes must not re-normalise or the resumed trajectory
/// would diverge from the original run in the last bits).
ArnoldiResult run_arnoldi_loop(const core::MutationModel& model,
                               const core::Landscape& landscape,
                               std::vector<double> q0, unsigned start_cycle,
                               IterationTrace trace, IterationDriver driver,
                               const ArnoldiOptions& options) {
  const std::size_t n = static_cast<std::size_t>(model.dimension());
  // Right formulation: eigenvector = concentrations directly; works for
  // any (possibly nonsymmetric) model.
  const core::FmmpOperator op(model, landscape, core::Formulation::right,
                              options.engine);

  ArnoldiResult out;
  out.eigenvalue = trace.eigenvalue;
  out.residual = trace.residual;
  out.iterations = start_cycle;
  out.matvec_count = static_cast<unsigned>(trace.matvec_count);

  const unsigned m = options.basis_size;
  core::Workspace local_workspace;
  core::Workspace& workspace =
      options.workspace != nullptr ? *options.workspace : local_workspace;
  std::span<double> w = workspace.take(core::Workspace::Slot::recurrence, n);

  // Basis pool reused across cycles: cleared counts, not freed buffers.
  std::vector<std::vector<double>> basis(m);
  linalg::DenseMatrix h(m + 1, m);  // Hessenberg projection
  // Ritz-vector buffer hoisted out of the cycle loop: assign() reuses the
  // capacity, so steady-state cycles add no allocations for it.
  std::vector<double> ritz(n, 0.0);

  for (unsigned cycle = start_cycle; cycle <= options.max_restarts; ++cycle) {
    QS_TRACE_SPAN_ARG("arnoldi.cycle", solver, cycle);
    out.restarts = cycle;
    out.iterations = cycle + 1;
    basis[0].assign(q0.begin(), q0.end());
    for (std::size_t r = 0; r <= m; ++r) {
      for (std::size_t c = 0; c < m; ++c) h(r, c) = 0.0;
    }

    unsigned built = 0;
    for (unsigned j = 0; j < m; ++j) {
      op.apply(basis[j], w);
      ++out.matvec_count;
      // Modified Gram-Schmidt with one reorthogonalisation pass (enough to
      // keep the basis orthonormal to working precision at these sizes);
      // the Hessenberg coefficient accumulates the projections of both
      // passes.
      for (int pass = 0; pass < 2; ++pass) {
        for (unsigned i = 0; i <= j; ++i) {
          const double proj = linalg::dot(basis[i], w);
          h(i, j) += proj;
          linalg::axpy(-proj, basis[i], w);
        }
      }
      built = j + 1;
      const double norm = linalg::norm2(w);
      h(j + 1, j) = norm;
      // Health guard at the per-step cadence: a poisoned product poisons the
      // Gram-Schmidt norms; fail fast before the Hessenberg eigensolver.
      if (!driver.guard({norm}, out)) break;
      if (norm <= 1e-14 || j + 1 == m) break;
      basis[j + 1].assign(w.begin(), w.end());
      linalg::scale(basis[j + 1], 1.0 / norm);
    }

    if (out.failure != SolverFailure::none) break;

    // Dominant Ritz pair of the square Hessenberg section.
    linalg::DenseMatrix h_square(built, built);
    for (unsigned r = 0; r < built; ++r) {
      for (unsigned c = 0; c < built; ++c) h_square(r, c) = h(r, c);
    }
    const auto ritz_values = linalg::eigenvalues(h_square);
    // Perron: the dominant eigenvalue of W is real positive; pick the Ritz
    // value of largest real part (its imaginary part must be negligible).
    std::complex<double> best = ritz_values.front();
    for (const auto& z : ritz_values) {
      if (z.real() > best.real()) best = z;
    }
    if (!driver.guard({best.real(), best.imag()}, out)) break;
    require(std::abs(best.imag()) <= 1e-6 * std::max(std::abs(best.real()), 1.0),
            "arnoldi_dominant_w: dominant Ritz value unexpectedly complex");
    out.eigenvalue = best.real();

    // Ritz vector: eigenvector of H for the dominant value via inverse
    // iteration, lifted through the basis.
    const auto h_pair = linalg::inverse_iteration(h_square, out.eigenvalue);
    ritz.assign(n, 0.0);
    for (unsigned j = 0; j < built; ++j) {
      linalg::axpy(h_pair.vector[j], basis[j], ritz);
    }
    linalg::normalize2(ritz);

    // Residual from the Arnoldi relation: ||W y - theta y|| =
    // |h(built, built-1) * s_last| for the normalised H-eigenvector s.
    double s_norm2 = 0.0;
    for (unsigned j = 0; j < built; ++j) s_norm2 += h_pair.vector[j] * h_pair.vector[j];
    const double s_last = h_pair.vector[built - 1] / std::sqrt(s_norm2);
    out.residual = std::abs(h(built, built - 1) * s_last) /
                   std::max(std::abs(out.eigenvalue), 1e-300);
    if (!driver.guard({out.residual}, out)) break;
    q0.assign(ritz.begin(), ritz.end());
    const IterationDriver::Verdict verdict =
        driver.observe(cycle + 1, out.residual, out);
    if (verdict != IterationDriver::Verdict::proceed) {
      // Cancellation flushes the restart vector (the same state the periodic
      // checkpoint persists) so an interrupted run resumes at this cycle.
      if (verdict == IterationDriver::Verdict::cancelled &&
          driver.checkpointing()) {
        driver.write_checkpoint(cycle + 1, out, q0, out.matvec_count);
      }
      break;
    }
    // Periodic checkpoint of the next cycle's restart vector, written only
    // after the health guard passed.
    driver.maybe_checkpoint(cycle + 1, out, q0, out.matvec_count);
  }

  if (out.failure != SolverFailure::none) {
    out.converged = false;
    out.concentrations.assign(q0.begin(), q0.end());
    return out;
  }

  out.concentrations.assign(q0.begin(), q0.end());
  double s = 0.0;
  for (double v : out.concentrations) s += v;
  if (s < 0.0) linalg::scale(out.concentrations, -1.0);
  linalg::normalize1(out.concentrations);
  return out;
}

}  // namespace

ArnoldiResult arnoldi_dominant_w(const core::MutationModel& model,
                                 const core::Landscape& landscape,
                                 std::span<const double> start,
                                 const ArnoldiOptions& options) {
  require(options.basis_size >= 2, "arnoldi_dominant_w: basis_size must be >= 2");
  const std::size_t n = static_cast<std::size_t>(model.dimension());
  require(start.empty() || start.size() == n,
          "arnoldi_dominant_w: starting vector has wrong dimension");

  IterationDriver driver(options, io::SolverKind::arnoldi);
  std::vector<double> q0(n);
  {
    const auto f = landscape.values();
    double q0_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      q0[i] = start.empty() ? f[i] : start[i];
      q0_sq += q0[i] * q0[i];
    }
    // Poisoned start: fail structurally rather than tripping the
    // normalisation's zero-vector precondition on NaN.
    ArnoldiResult bad;
    if (!driver.guard({q0_sq}, bad)) return bad;
    linalg::normalize2(q0);
  }
  return run_arnoldi_loop(model, landscape, std::move(q0), 0, IterationTrace{},
                          std::move(driver), options);
}

ArnoldiResult resume_arnoldi_dominant_w(const core::MutationModel& model,
                                        const core::Landscape& landscape,
                                        const io::SolverCheckpoint& checkpoint,
                                        const ArnoldiOptions& options) {
  require(options.basis_size >= 2,
          "resume_arnoldi_dominant_w: basis_size must be >= 2");
  const std::size_t n = static_cast<std::size_t>(model.dimension());
  require(checkpoint.eigenvector.size() == n,
          "resume_arnoldi_dominant_w: checkpoint dimension does not match model");

  IterationDriver driver(options, io::SolverKind::arnoldi);
  IterationTrace trace;
  ArnoldiResult out;
  if (!restore_trace(checkpoint, io::SolverKind::arnoldi, trace, out)) {
    out.concentrations = std::move(trace.iterate);
    out.eigenvalue = trace.eigenvalue;
    out.residual = trace.residual;
    out.iterations = trace.start_iteration;
    out.matvec_count = static_cast<unsigned>(trace.matvec_count);
    return out;
  }
  driver.restore(checkpoint);
  std::vector<double> q0 = std::move(trace.iterate);
  const unsigned start_cycle = trace.start_iteration;
  return run_arnoldi_loop(model, landscape, std::move(q0), start_cycle,
                          std::move(trace), std::move(driver), options);
}

}  // namespace qs::solvers
