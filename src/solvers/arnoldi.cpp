#include "solvers/arnoldi.hpp"

#include <cmath>
#include <complex>

#include "core/fmmp.hpp"
#include "linalg/hessenberg_qr.hpp"
#include "linalg/small_power.hpp"
#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {

ArnoldiResult arnoldi_dominant_w(const core::MutationModel& model,
                                 const core::Landscape& landscape,
                                 std::span<const double> start,
                                 const ArnoldiOptions& options) {
  require(options.basis_size >= 2, "arnoldi_dominant_w: basis_size must be >= 2");
  const std::size_t n = static_cast<std::size_t>(model.dimension());
  require(start.empty() || start.size() == n,
          "arnoldi_dominant_w: starting vector has wrong dimension");

  // Right formulation: eigenvector = concentrations directly; works for
  // any (possibly nonsymmetric) model.
  const core::FmmpOperator op(model, landscape, core::Formulation::right);

  ArnoldiResult out;
  std::vector<double> q0(n);
  {
    const auto f = landscape.values();
    double q0_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      q0[i] = start.empty() ? f[i] : start[i];
      q0_sq += q0[i] * q0[i];
    }
    // Poisoned start: fail structurally rather than tripping the
    // normalisation's zero-vector precondition on NaN.
    if (!std::isfinite(q0_sq)) {
      out.failure = SolverFailure::non_finite;
      return out;
    }
    linalg::normalize2(q0);
  }
  const unsigned m = options.basis_size;
  std::vector<std::vector<double>> basis;
  linalg::DenseMatrix h(m + 1, m);  // Hessenberg projection
  std::vector<double> w(n);

  for (unsigned cycle = 0; cycle <= options.max_restarts; ++cycle) {
    out.restarts = cycle;
    basis.clear();
    basis.push_back(q0);
    for (std::size_t r = 0; r <= m; ++r) {
      for (std::size_t c = 0; c < m; ++c) h(r, c) = 0.0;
    }

    unsigned built = 0;
    for (unsigned j = 0; j < m; ++j) {
      op.apply(basis[j], w);
      ++out.matvec_count;
      // Modified Gram-Schmidt with one reorthogonalisation pass (enough to
      // keep the basis orthonormal to working precision at these sizes);
      // the Hessenberg coefficient accumulates the projections of both
      // passes.
      for (int pass = 0; pass < 2; ++pass) {
        for (unsigned i = 0; i <= j; ++i) {
          const double proj = linalg::dot(basis[i], w);
          h(i, j) += proj;
          linalg::axpy(-proj, basis[i], w);
        }
      }
      built = j + 1;
      const double norm = linalg::norm2(w);
      h(j + 1, j) = norm;
      // Health guard at the per-step cadence: a poisoned product poisons the
      // Gram-Schmidt norms; fail fast before the Hessenberg eigensolver.
      if (!std::isfinite(norm)) {
        out.failure = SolverFailure::non_finite;
        break;
      }
      if (norm <= 1e-14 || j + 1 == m) break;
      std::vector<double> next(w.begin(), w.end());
      linalg::scale(next, 1.0 / norm);
      basis.push_back(std::move(next));
    }

    if (out.failure != SolverFailure::none) break;

    // Dominant Ritz pair of the square Hessenberg section.
    linalg::DenseMatrix h_square(built, built);
    for (unsigned r = 0; r < built; ++r) {
      for (unsigned c = 0; c < built; ++c) h_square(r, c) = h(r, c);
    }
    const auto ritz_values = linalg::eigenvalues(h_square);
    // Perron: the dominant eigenvalue of W is real positive; pick the Ritz
    // value of largest real part (its imaginary part must be negligible).
    std::complex<double> best = ritz_values.front();
    for (const auto& z : ritz_values) {
      if (z.real() > best.real()) best = z;
    }
    if (!std::isfinite(best.real()) || !std::isfinite(best.imag())) {
      out.failure = SolverFailure::non_finite;
      break;
    }
    require(std::abs(best.imag()) <= 1e-6 * std::max(std::abs(best.real()), 1.0),
            "arnoldi_dominant_w: dominant Ritz value unexpectedly complex");
    out.eigenvalue = best.real();

    // Ritz vector: eigenvector of H for the dominant value via inverse
    // iteration, lifted through the basis.
    const auto h_pair = linalg::inverse_iteration(h_square, out.eigenvalue);
    std::vector<double> ritz(n, 0.0);
    for (unsigned j = 0; j < built; ++j) {
      linalg::axpy(h_pair.vector[j], basis[j], ritz);
    }
    linalg::normalize2(ritz);

    // Residual from the Arnoldi relation: ||W y - theta y|| =
    // |h(built, built-1) * s_last| for the normalised H-eigenvector s.
    double s_norm2 = 0.0;
    for (unsigned j = 0; j < built; ++j) s_norm2 += h_pair.vector[j] * h_pair.vector[j];
    const double s_last = h_pair.vector[built - 1] / std::sqrt(s_norm2);
    out.residual = std::abs(h(built, built - 1) * s_last) /
                   std::max(std::abs(out.eigenvalue), 1e-300);
    if (!std::isfinite(out.residual)) {
      out.failure = SolverFailure::non_finite;
      break;
    }
    q0 = ritz;
    if (out.residual <= options.tolerance) {
      out.converged = true;
      break;
    }
  }

  if (out.failure != SolverFailure::none) {
    out.converged = false;
    out.concentrations.assign(q0.begin(), q0.end());
    return out;
  }

  out.concentrations.assign(q0.begin(), q0.end());
  double s = 0.0;
  for (double v : out.concentrations) s += v;
  if (s < 0.0) linalg::scale(out.concentrations, -1.0);
  linalg::normalize1(out.concentrations);
  return out;
}

}  // namespace qs::solvers
