#include "solvers/reduced_alphabet.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/small_power.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {

linalg::DenseMatrix reduced_alphabet_mutation_matrix(unsigned length,
                                                     unsigned alphabet, double mu) {
  require(length >= 1 && length <= 1000,
          "reduced_alphabet_mutation_matrix: length out of range");
  require(alphabet >= 2 && alphabet <= 64,
          "reduced_alphabet_mutation_matrix: alphabet size out of range");
  const double random_replication =
      static_cast<double>(alphabet - 1) / static_cast<double>(alphabet);
  require(mu > 0.0 && mu <= random_replication,
          "reduced_alphabet_mutation_matrix: need 0 < mu <= (A-1)/A");

  const double revert = mu / static_cast<double>(alphabet - 1);
  const double log_mu = std::log(mu);
  const double log_1mmu = std::log1p(-mu);
  const double log_r = std::log(revert);
  const double log_1mr = std::log1p(-revert);

  std::vector<double> log_fact(length + 2);
  log_fact[0] = 0.0;
  for (unsigned i = 1; i <= length + 1; ++i) {
    log_fact[i] = log_fact[i - 1] + std::log(static_cast<double>(i));
  }
  auto log_choose = [&](unsigned n_arg, unsigned k_arg) {
    return log_fact[n_arg] - log_fact[k_arg] - log_fact[n_arg - k_arg];
  };

  linalg::DenseMatrix q(length + 1, length + 1);
  for (unsigned d = 0; d <= length; ++d) {
    for (unsigned k = 0; k <= length; ++k) {
      // j positions revert among the d wrong ones; k - d + j of the L - d
      // correct ones become wrong (so j <= L - k keeps that count feasible).
      const unsigned j_lo = (d > k) ? (d - k) : 0;
      const unsigned j_hi = std::min(d, length - k);
      double acc = 0.0;
      for (unsigned j = j_lo; j <= j_hi; ++j) {
        const unsigned fresh = k - d + j;  // newly wrong positions
        const double log_term = log_choose(d, j) +
                                static_cast<double>(j) * log_r +
                                static_cast<double>(d - j) * log_1mr +
                                log_choose(length - d, fresh) +
                                static_cast<double>(fresh) * log_mu +
                                static_cast<double>(length - d - fresh) * log_1mmu;
        acc += std::exp(log_term);
      }
      q(d, k) = acc;
    }
  }
  return q;
}

AlphabetReducedResult solve_reduced_alphabet(double mu, unsigned alphabet,
                                             const core::ErrorClassLandscape& phi) {
  const unsigned length = phi.nu();
  const std::size_t n = length + 1;
  const auto q_gamma = reduced_alphabet_mutation_matrix(length, alphabet, mu);

  // Backend: power iteration on the reduced M = Q_Gamma * diag(phi).
  linalg::DenseMatrix m(n, n);
  for (std::size_t d = 0; d < n; ++d) {
    for (std::size_t k = 0; k < n; ++k) {
      m(d, k) = q_gamma(d, k) * phi.value(static_cast<unsigned>(k));
    }
  }
  const auto backend = linalg::power_iteration(m);
  require(backend.converged,
          "solve_reduced_alphabet: backend power iteration failed");

  AlphabetReducedResult out;
  out.eigenvalue = backend.value;

  // Log class cardinalities |Gamma_k| = C(L, k) (A-1)^k.
  std::vector<double> log_card(n);
  {
    std::vector<double> log_fact(length + 2);
    log_fact[0] = 0.0;
    for (unsigned i = 1; i <= length + 1; ++i) {
      log_fact[i] = log_fact[i - 1] + std::log(static_cast<double>(i));
    }
    const double log_am1 = std::log(static_cast<double>(alphabet - 1));
    for (std::size_t k = 0; k < n; ++k) {
      log_card[k] = log_fact[length] - log_fact[k] - log_fact[length - k] +
                    static_cast<double>(k) * log_am1;
    }
  }

  // Class totals via the positive iteration in the total basis
  // u_d <- sum_k Q_Gamma(k, d) phi_k u_k (transpose identity from the
  // symmetry of the total-flow matrix), exactly as in the binary reduction.
  linalg::DenseMatrix b(n, n);
  for (std::size_t d = 0; d < n; ++d) {
    for (std::size_t k = 0; k < n; ++k) {
      b(d, k) = q_gamma(k, d) * phi.value(static_cast<unsigned>(k));
    }
  }
  // Start from the uniform population's class totals, with every class
  // seeded at a positive floor: at large L * log(A) the extreme classes'
  // exact shares underflow to zero, and a hard zero could never surface
  // (the reversion chain from the bulk underflows too) — the dominant class
  // would silently be lost.
  std::vector<double> u(n), u_next(n);
  const double log_total = static_cast<double>(length) *
                           std::log(static_cast<double>(alphabet));
  double start_max = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    u[k] = std::exp(std::max(log_card[k] - log_total, -650.0));
    start_max = std::max(start_max, u[k]);
  }
  for (double& x : u) x = std::max(x, 1e-270 * start_max);

  double lambda_u = 0.0;
  for (unsigned it = 0; it < 500000; ++it) {
    b.multiply(u, u_next);
    double growth = 0.0;
    for (double x : u_next) growth += x;
    lambda_u = growth;
    const bool lambda_settled =
        std::abs(lambda_u - out.eigenvalue) <=
        1e-12 * std::max(std::abs(out.eigenvalue), 1e-300);
    double u_max = 0.0;
    for (double x : u_next) u_max = std::max(u_max, x);
    const double floor = 1e-60 * u_max / growth;
    double worst_rel_change = 0.0;
    for (std::size_t d = 0; d < n; ++d) {
      u_next[d] /= growth;
      if (u[d] >= floor || u_next[d] >= floor) {
        worst_rel_change = std::max(
            worst_rel_change, std::abs(u_next[d] - u[d]) / std::max(u[d], floor));
      }
    }
    u.swap(u_next);
    if (lambda_settled && worst_rel_change < 1e-13) break;
  }
  require(std::abs(lambda_u - out.eigenvalue) <=
              1e-8 * std::max(std::abs(out.eigenvalue), 1.0),
          "solve_reduced_alphabet: class-total iteration disagrees with the "
          "backend eigenvalue");

  out.class_concentrations = u;
  out.representatives.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    out.representatives[k] =
        (u[k] > 0.0) ? std::exp(std::log(u[k]) - log_card[k]) : 0.0;
  }
  return out;
}

}  // namespace qs::solvers
