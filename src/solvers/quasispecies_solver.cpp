#include "solvers/quasispecies_solver.hpp"

#include <memory>

#include "analysis/error_classes.hpp"
#include "core/fmmp.hpp"
#include "core/smvp.hpp"
#include "core/spectral.hpp"
#include "core/xmvp.hpp"
#include "sparse/sparse_w.hpp"
#include "solvers/power_iteration.hpp"
#include "solvers/reduced_solver.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {

QuasispeciesResult solve(const core::MutationModel& model,
                         const core::Landscape& landscape,
                         const SolveOptions& options) {
  require(model.dimension() == landscape.dimension(),
          "solve: model and landscape dimensions differ");

  std::unique_ptr<core::LinearOperator> op;
  switch (options.matvec) {
    case MatvecKind::fmmp:
      op = std::make_unique<core::FmmpOperator>(model, landscape, options.formulation,
                                                options.engine, options.level_order);
      break;
    case MatvecKind::xmvp:
      op = std::make_unique<core::XmvpOperator>(model, landscape, options.xmvp_d_max,
                                                options.formulation, options.engine);
      break;
    case MatvecKind::smvp:
      op = std::make_unique<core::SmvpOperator>(model, landscape, options.formulation,
                                                options.engine);
      break;
    case MatvecKind::sparse:
      require(options.formulation == core::Formulation::right,
              "solve: the sparse matvec kind materialises the right "
              "formulation only");
      op = std::make_unique<sparse::SparseWOperator>(model, landscape,
                                                     options.xmvp_d_max,
                                                     options.engine);
      break;
  }

  PowerOptions popts;
  popts.tolerance = options.tolerance;
  popts.max_iterations = options.max_iterations;
  popts.engine = options.engine;
  if (options.use_shift && model.symmetric() &&
      model.kind() != core::MutationKind::grouped) {
    popts.shift = core::conservative_shift(model, landscape);
  }

  PowerResult r = power_iteration(*op, landscape_start(landscape), popts);

  QuasispeciesResult out;
  out.eigenvalue = r.eigenvalue;
  out.iterations = r.iterations;
  out.residual = r.residual;
  out.converged = r.converged;
  out.concentrations = std::move(r.eigenvector);
  if (options.formulation != core::Formulation::right) {
    core::convert_eigenvector(options.formulation, core::Formulation::right,
                              landscape, out.concentrations);
  }
  out.class_concentrations =
      analysis::class_concentrations(model.nu(), out.concentrations);
  return out;
}

QuasispeciesResult solve(double p, const core::ErrorClassLandscape& landscape) {
  const ReducedResult reduced = solve_reduced(p, landscape);
  QuasispeciesResult out;
  out.eigenvalue = reduced.eigenvalue;
  out.class_concentrations = reduced.class_concentrations;
  out.converged = true;
  out.iterations = 0;  // direct solve
  out.residual = 0.0;
  if (landscape.nu() <= 24) {
    out.concentrations =
        expand_representatives(landscape.nu(), reduced.representatives);
  }
  return out;
}

}  // namespace qs::solvers
