#include "solvers/quasispecies_solver.hpp"

#include <filesystem>
#include <memory>
#include <utility>

#include "analysis/error_classes.hpp"
#include "core/fmmp.hpp"
#include "core/planned_operator.hpp"
#include "core/smvp.hpp"
#include "core/spectral.hpp"
#include "core/xmvp.hpp"
#include "obs/trace.hpp"
#include "sparse/sparse_w.hpp"
#include "solvers/power_iteration.hpp"
#include "solvers/reduced_solver.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

/// A run needs the degradation rule when the iterate went non-finite or the
/// stall detector stopped it above the acceptance floor — both cases where
/// a restart from clean state can still produce the eigenpair.
bool needs_recovery(const PowerResult& r) {
  return r.failure == SolverFailure::non_finite || (r.stalled && !r.converged);
}

}  // namespace

QuasispeciesResult solve(const core::MutationModel& model,
                         const core::Landscape& landscape,
                         const SolveOptions& options) {
  require(model.dimension() == landscape.dimension(),
          "solve: model and landscape dimensions differ");

  std::unique_ptr<core::LinearOperator> op;
  core::PlannedOperator* planned = nullptr;
  switch (options.matvec) {
    case MatvecKind::fmmp: {
      // The facade's fast path goes through the planned operator: it owns
      // the (possibly autotuned) banded plan and the scratch workspace the
      // solver loop below borrows, so repeated applies allocate nothing.
      core::PlannedOperatorConfig config;
      config.formulation = options.formulation;
      config.engine = options.engine;
      config.order = options.level_order;
      config.kernel = core::EngineKernel::blocked;
      config.plan = options.plan;
      config.autotune = options.autotune;
      auto owned = std::make_unique<core::PlannedOperator>(model, landscape, config);
      planned = owned.get();
      op = std::move(owned);
      break;
    }
    case MatvecKind::xmvp:
      op = std::make_unique<core::XmvpOperator>(model, landscape, options.xmvp_d_max,
                                                options.formulation, options.engine);
      break;
    case MatvecKind::smvp:
      op = std::make_unique<core::SmvpOperator>(model, landscape, options.formulation,
                                                options.engine);
      break;
    case MatvecKind::sparse:
      require(options.formulation == core::Formulation::right,
              "solve: the sparse matvec kind materialises the right "
              "formulation only");
      op = std::make_unique<sparse::SparseWOperator>(model, landscape,
                                                     options.xmvp_d_max,
                                                     options.engine);
      break;
  }
  if (options.wrap_operator) op = options.wrap_operator(std::move(op));

  PowerOptions popts;
  // The whole shared iteration block — tolerance, caps, stall window,
  // engine, workspace, checkpointing, hooks — forwards in one assignment.
  static_cast<IterationOptions&>(popts) = options;
  if (popts.workspace == nullptr && planned != nullptr) {
    popts.workspace = &planned->workspace();
  }
  if (options.use_shift && model.symmetric() &&
      model.kind() != core::MutationKind::grouped) {
    popts.shift = core::conservative_shift(model, landscape);
  }

  PowerResult r = options.resume != nullptr
                      ? resume_power_iteration(*op, *options.resume, popts)
                      : power_iteration(*op, landscape_start(landscape), popts);

  // Graceful degradation, one restart at most: prefer the last good
  // checkpoint (periodic checkpoints are only written with a finite
  // iterate, so it is a safe restart point even after a NaN); without one,
  // fall back from the shifted to the unshifted iteration — numerically the
  // plainest configuration that still converges to the same eigenpair.
  unsigned recovery_attempts = 0;
  unsigned checkpoint_failures = r.checkpoint_failures;
  if (options.recover && needs_recovery(r)) {
    bool resumed = false;
    // A checkpoint restart only helps the non-finite case (a transient
    // fault struck after the last good snapshot); a stalled run restored
    // with its stall-window state would deterministically stall again, so
    // stalls go straight to the shift fallback.
    if (r.failure == SolverFailure::non_finite && popts.checkpoint_every > 0 &&
        !popts.checkpoint_path.empty() &&
        std::filesystem::exists(popts.checkpoint_path)) {
      try {
        const io::SolverCheckpoint last_good =
            io::load_checkpoint(popts.checkpoint_path);
        ++recovery_attempts;
        QS_TRACE_INSTANT_ARG("facade.recover.checkpoint_restart", facade,
                             last_good.residual,
                             static_cast<std::int64_t>(last_good.iteration));
        r = resume_power_iteration(*op, last_good, popts);
        checkpoint_failures += r.checkpoint_failures;
        resumed = true;
      } catch (const std::runtime_error&) {
        // Torn or unrelated file: fall through to the shift fallback.
      }
    }
    if (!resumed && popts.shift != 0.0) {
      ++recovery_attempts;
      QS_TRACE_INSTANT_ARG("facade.recover.shift_fallback", facade, r.residual,
                           static_cast<std::int64_t>(r.iterations));
      popts.shift = 0.0;
      r = power_iteration(*op, landscape_start(landscape), popts);
      checkpoint_failures += r.checkpoint_failures;
    }
  }

  QuasispeciesResult out;
  static_cast<IterationResult&>(out) = r;
  out.recovery_attempts = recovery_attempts;
  out.checkpoint_failures = checkpoint_failures;
  out.concentrations = std::move(r.eigenvector);
  if (out.failure != SolverFailure::none) {
    // Garbage iterate: skip the formulation conversion and class analysis
    // (both would only push NaNs through more arithmetic).
    return out;
  }
  if (options.formulation != core::Formulation::right) {
    core::convert_eigenvector(options.formulation, core::Formulation::right,
                              landscape, out.concentrations);
  }
  out.class_concentrations =
      analysis::class_concentrations(model.nu(), out.concentrations);
  return out;
}

QuasispeciesResult solve(double p, const core::ErrorClassLandscape& landscape) {
  const ReducedResult reduced = solve_reduced(p, landscape);
  QuasispeciesResult out;
  out.eigenvalue = reduced.eigenvalue;
  out.class_concentrations = reduced.class_concentrations;
  out.converged = true;
  out.iterations = 0;  // direct solve
  out.residual = 0.0;
  if (landscape.nu() <= 24) {
    out.concentrations =
        expand_representatives(landscape.nu(), reduced.representatives);
  }
  return out;
}

}  // namespace qs::solvers
