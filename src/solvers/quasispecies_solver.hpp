// High-level quasispecies solver facade.
//
// Bundles model + landscape + strategy selection into one call: general
// landscapes run the shifted power iteration on the fast mutation matrix
// product (the paper's Pi(Fmmp)); error-class landscapes use the exact
// (nu+1) x (nu+1) reduction of Section 5.1; Kronecker landscapes decouple
// per Section 5.2 (see solve_kronecker for the implicit-result API).
// Results are always reported in the `right` formulation, i.e. as relative
// concentrations.
//
// Resilience: with a checkpoint path configured the solve periodically
// persists its state and can resume after a crash; on a detected non-finite
// iterate (or a stall above the acceptance floor) it restarts once from the
// last good checkpoint — or falls back from the shifted to the unshifted
// iteration — before reporting a structured failure.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "core/operators.hpp"
#include "io/binary_io.hpp"
#include "solvers/iteration_driver.hpp"
#include "transforms/blocked_butterfly.hpp"
#include "transforms/butterfly.hpp"

namespace qs::solvers {

/// Which mat-vec drives the power iteration for general landscapes.
enum class MatvecKind {
  fmmp,    ///< fast mutation matrix product, Theta(N log2 N), exact
  xmvp,    ///< XOR-based sparsified product Xmvp(d), approximate for d < nu
  smvp,    ///< dense standard product, Theta(N^2), small nu only
  sparse,  ///< CSR-materialised truncated product (same math as xmvp,
           ///< explicit storage; uses xmvp_d_max)
};

/// Options for the facade: the shared iteration block (tolerance, iteration
/// cap, stall window, engine/workspace, periodic checkpointing and the
/// checkpoint/residual hooks — all forwarded to the underlying power
/// iteration through solvers/iteration_driver) plus the facade's strategy
/// selection.
struct SolveOptions : IterationOptions {
  core::Formulation formulation = core::Formulation::right;
  MatvecKind matvec = MatvecKind::fmmp;
  unsigned xmvp_d_max = 5;        ///< Truncation radius when matvec == xmvp.
  bool use_shift = true;          ///< Apply mu = (1-2p)^nu f_min when possible.
  transforms::LevelOrder level_order = transforms::LevelOrder::ascending;

  /// Tiling plan for the banded Fmmp kernel (see transforms/plan_autotune;
  /// the defaults are the hand-tuned fixed plan).  Other matvec kinds
  /// ignore it.
  transforms::BlockedPlan plan;

  /// Autotune the banded Fmmp plan for this machine before the solve
  /// (matvec == fmmp only): the facade's core::PlannedOperator then owns the
  /// winning plan and its report.  `plan` seeds the candidate set.
  bool autotune = false;

  /// Resume a previous run: start from this checkpoint instead of the
  /// landscape start (the caller keeps ownership; see io::load_checkpoint).
  const io::SolverCheckpoint* resume = nullptr;

  /// Graceful degradation: when the power iteration reports a non-finite
  /// iterate or stalls above its acceptance floor, retry once — from the
  /// last good checkpoint when one exists, otherwise by dropping the
  /// spectral shift (the shifted and unshifted iterations converge to the
  /// same eigenpair; the unshifted one is slower but numerically plainer).
  /// Set false to fail immediately.
  bool recover = true;

  /// Testing seam: when set, the constructed mat-vec operator is passed
  /// through this wrapper before the solve (e.g. to interpose
  /// testing::FaultInjectingOperator).  The wrapper owns the inner operator.
  std::function<std::unique_ptr<core::LinearOperator>(
      std::unique_ptr<core::LinearOperator>)>
      wrap_operator;
};

/// Solution of the quasispecies problem in concentration form: the shared
/// outcome fields (eigenvalue, iterations, residual, converged, stalled,
/// structured failure after all recovery attempts, checkpoint statistics)
/// plus the concentration vectors and the recovery count.
struct QuasispeciesResult : IterationResult {
  std::vector<double> concentrations; ///< x_R, 1-norm normalised, length 2^nu.
  std::vector<double> class_concentrations;  ///< [Gamma_0..Gamma_nu].
  unsigned recovery_attempts = 0;     ///< Restarts the degradation rule used.
};

/// Solves for a general landscape (power iteration on the selected product).
QuasispeciesResult solve(const core::MutationModel& model,
                         const core::Landscape& landscape,
                         const SolveOptions& options = {});

/// Solves for an error-class landscape through the exact reduction; the
/// uniform mutation model with error rate p is implied. `options` is unused
/// beyond validation (the reduced solve is direct) and exists for signature
/// symmetry.
QuasispeciesResult solve(double p, const core::ErrorClassLandscape& landscape);

}  // namespace qs::solvers
