// High-level quasispecies solver facade.
//
// Bundles model + landscape + strategy selection into one call: general
// landscapes run the shifted power iteration on the fast mutation matrix
// product (the paper's Pi(Fmmp)); error-class landscapes use the exact
// (nu+1) x (nu+1) reduction of Section 5.1; Kronecker landscapes decouple
// per Section 5.2 (see solve_kronecker for the implicit-result API).
// Results are always reported in the `right` formulation, i.e. as relative
// concentrations.
#pragma once

#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "core/operators.hpp"
#include "parallel/engine.hpp"
#include "transforms/butterfly.hpp"

namespace qs::solvers {

/// Which mat-vec drives the power iteration for general landscapes.
enum class MatvecKind {
  fmmp,    ///< fast mutation matrix product, Theta(N log2 N), exact
  xmvp,    ///< XOR-based sparsified product Xmvp(d), approximate for d < nu
  smvp,    ///< dense standard product, Theta(N^2), small nu only
  sparse,  ///< CSR-materialised truncated product (same math as xmvp,
           ///< explicit storage; uses xmvp_d_max)
};

/// Options for the facade.
struct SolveOptions {
  core::Formulation formulation = core::Formulation::right;
  MatvecKind matvec = MatvecKind::fmmp;
  unsigned xmvp_d_max = 5;        ///< Truncation radius when matvec == xmvp.
  double tolerance = 1e-13;       ///< Relative residual target.
  unsigned max_iterations = 1000000;
  bool use_shift = true;          ///< Apply mu = (1-2p)^nu f_min when possible.
  const parallel::Engine* engine = nullptr;  ///< null = serial.
  transforms::LevelOrder level_order = transforms::LevelOrder::ascending;
};

/// Solution of the quasispecies problem in concentration form.
struct QuasispeciesResult {
  double eigenvalue = 0.0;            ///< Dominant eigenvalue of W = Q F.
  std::vector<double> concentrations; ///< x_R, 1-norm normalised, length 2^nu.
  std::vector<double> class_concentrations;  ///< [Gamma_0..Gamma_nu].
  unsigned iterations = 0;
  double residual = 0.0;
  bool converged = false;
};

/// Solves for a general landscape (power iteration on the selected product).
QuasispeciesResult solve(const core::MutationModel& model,
                         const core::Landscape& landscape,
                         const SolveOptions& options = {});

/// Solves for an error-class landscape through the exact reduction; the
/// uniform mutation model with error rate p is implied. `options` is unused
/// beyond validation (the reduced solve is direct) and exists for signature
/// symmetry.
QuasispeciesResult solve(double p, const core::ErrorClassLandscape& landscape);

}  // namespace qs::solvers
