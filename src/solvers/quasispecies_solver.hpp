// High-level quasispecies solver facade.
//
// Bundles model + landscape + strategy selection into one call: general
// landscapes run the shifted power iteration on the fast mutation matrix
// product (the paper's Pi(Fmmp)); error-class landscapes use the exact
// (nu+1) x (nu+1) reduction of Section 5.1; Kronecker landscapes decouple
// per Section 5.2 (see solve_kronecker for the implicit-result API).
// Results are always reported in the `right` formulation, i.e. as relative
// concentrations.
//
// Resilience: with a checkpoint path configured the solve periodically
// persists its state and can resume after a crash; on a detected non-finite
// iterate (or a stall above the acceptance floor) it restarts once from the
// last good checkpoint — or falls back from the shifted to the unshifted
// iteration — before reporting a structured failure.
#pragma once

#include <filesystem>
#include <functional>
#include <memory>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "core/operators.hpp"
#include "io/binary_io.hpp"
#include "parallel/engine.hpp"
#include "solvers/solver_failure.hpp"
#include "transforms/blocked_butterfly.hpp"
#include "transforms/butterfly.hpp"

namespace qs::solvers {

/// Which mat-vec drives the power iteration for general landscapes.
enum class MatvecKind {
  fmmp,    ///< fast mutation matrix product, Theta(N log2 N), exact
  xmvp,    ///< XOR-based sparsified product Xmvp(d), approximate for d < nu
  smvp,    ///< dense standard product, Theta(N^2), small nu only
  sparse,  ///< CSR-materialised truncated product (same math as xmvp,
           ///< explicit storage; uses xmvp_d_max)
};

/// Options for the facade.
struct SolveOptions {
  core::Formulation formulation = core::Formulation::right;
  MatvecKind matvec = MatvecKind::fmmp;
  unsigned xmvp_d_max = 5;        ///< Truncation radius when matvec == xmvp.
  double tolerance = 1e-13;       ///< Relative residual target.
  unsigned max_iterations = 1000000;
  bool use_shift = true;          ///< Apply mu = (1-2p)^nu f_min when possible.
  const parallel::Engine* engine = nullptr;  ///< null = serial.
  transforms::LevelOrder level_order = transforms::LevelOrder::ascending;

  /// Tiling plan for the banded Fmmp kernel (see transforms/plan_autotune;
  /// the defaults are the hand-tuned fixed plan).  Other matvec kinds
  /// ignore it.
  transforms::BlockedPlan plan;

  /// Periodic checkpointing: every `checkpoint_every` iterations the power
  /// iteration's state is persisted atomically to `checkpoint_path`.
  /// 0 or an empty path disables.  The checkpoint doubles as the restart
  /// point for the graceful-degradation rule below.
  std::filesystem::path checkpoint_path;
  unsigned checkpoint_every = 0;

  /// Resume a previous run: start from this checkpoint instead of the
  /// landscape start (the caller keeps ownership; see io::load_checkpoint).
  const io::SolverCheckpoint* resume = nullptr;

  /// Graceful degradation: when the power iteration reports a non-finite
  /// iterate or stalls above its acceptance floor, retry once — from the
  /// last good checkpoint when one exists, otherwise by dropping the
  /// spectral shift (the shifted and unshifted iterations converge to the
  /// same eigenpair; the unshifted one is slower but numerically plainer).
  /// Set false to fail immediately.
  bool recover = true;

  /// Testing seam: when set, the constructed mat-vec operator is passed
  /// through this wrapper before the solve (e.g. to interpose
  /// testing::FaultInjectingOperator).  The wrapper owns the inner operator.
  std::function<std::unique_ptr<core::LinearOperator>(
      std::unique_ptr<core::LinearOperator>)>
      wrap_operator;
};

/// Solution of the quasispecies problem in concentration form.
struct QuasispeciesResult {
  double eigenvalue = 0.0;            ///< Dominant eigenvalue of W = Q F.
  std::vector<double> concentrations; ///< x_R, 1-norm normalised, length 2^nu.
  std::vector<double> class_concentrations;  ///< [Gamma_0..Gamma_nu].
  unsigned iterations = 0;
  double residual = 0.0;
  bool converged = false;
  bool stalled = false;               ///< Accepted (or failed) at the
                                      ///< numerical floor, see PowerResult.
  SolverFailure failure = SolverFailure::none;  ///< Structured failure after
                                      ///< all recovery attempts.
  unsigned recovery_attempts = 0;     ///< Restarts the degradation rule used.
  unsigned checkpoint_failures = 0;   ///< Checkpoint writes that threw.
};

/// Solves for a general landscape (power iteration on the selected product).
QuasispeciesResult solve(const core::MutationModel& model,
                         const core::Landscape& landscape,
                         const SolveOptions& options = {});

/// Solves for an error-class landscape through the exact reduction; the
/// uniform mutation model with error rate p is implied. `options` is unused
/// beyond validation (the reduced solve is direct) and exists for signature
/// symmetry.
QuasispeciesResult solve(double p, const core::ErrorClassLandscape& landscape);

}  // namespace qs::solvers
