// Shift-and-invert eigensolvers on the mutation matrix Q (Section 3,
// "Towards a Shift-and-Invert Method").
//
// For Q alone, (Q - mu I)^{-1} v costs Theta(N log2 N) through the FWHT
// diagonalisation, which makes inverse iteration and Rayleigh quotient
// iteration practical: they converge to the eigenvector whose eigenvalue is
// nearest the shift, in a handful of products.  (The analogous solver for
// W = Q F - mu I with arbitrary diagonal F is the paper's "current work";
// this repo provides it as an extension via a matrix-free Krylov solve, see
// solvers/quasispecies_solver.hpp.)
#pragma once

#include <vector>

#include "core/mutation_model.hpp"
#include "solvers/power_iteration.hpp"

namespace qs::solvers {

/// Result of a spectral (inverse / RQI) solve on Q.
struct SpectralResult {
  double eigenvalue = 0.0;          ///< Eigenvalue of Q nearest the shift.
  std::vector<double> eigenvector;  ///< 2-norm normalised.
  unsigned iterations = 0;
  double residual = 0.0;            ///< Relative residual against Q.
  bool converged = false;
};

/// Options for the spectral solvers.
struct SpectralOptions {
  double tolerance = 1e-13;
  unsigned max_iterations = 200;
};

/// Inverse iteration with fixed shift mu: converges to the eigenpair of Q
/// with eigenvalue closest to mu. Requires a symmetric 2x2-factor model and
/// mu not exactly an eigenvalue. `start` empty selects a deterministic
/// pseudo-random start (which has overlap with every eigenvector).
SpectralResult inverse_iteration_q(const core::MutationModel& model, double mu,
                                   std::span<const double> start = {},
                                   const SpectralOptions& options = {});

/// Rayleigh quotient iteration: cubically convergent onto the eigenpair the
/// start vector leans towards. Requires a symmetric 2x2-factor model.
SpectralResult rayleigh_quotient_iteration_q(const core::MutationModel& model,
                                             std::span<const double> start,
                                             const SpectralOptions& options = {});

}  // namespace qs::solvers
