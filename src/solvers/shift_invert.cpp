#include "solvers/shift_invert.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "core/fmmp.hpp"
#include "core/operators.hpp"
#include "core/spectral.hpp"
#include "core/workspace.hpp"
#include "linalg/vector_ops.hpp"
#include "solvers/power_iteration.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

/// Bundles the symmetric operator, the shift machinery, and the scratch
/// vectors the outer iterations share.
class SymmetricWContext {
 public:
  SymmetricWContext(const core::MutationModel& model, const core::Landscape& landscape,
                    const parallel::Engine* engine = nullptr)
      : model_(model),
        landscape_(landscape),
        engine_(engine),
        op_(model, landscape, core::Formulation::symmetric, engine),
        n_(static_cast<std::size_t>(model.dimension())),
        sqrt_f_(n_) {
    require(model.symmetric() && model.kind() != core::MutationKind::grouped,
            "shift-invert solvers require a symmetric 2x2-factor mutation model");
    const auto f = landscape.values();
    for (std::size_t i = 0; i < n_; ++i) sqrt_f_[i] = std::sqrt(f[i]);
  }

  std::size_t dimension() const { return n_; }
  const core::FmmpOperator& op() const { return op_; }

  /// Shifted symmetric apply: y = (W_S - mu I) x.
  linalg::ApplyFn shifted_apply(double mu) const {
    return [this, mu](std::span<const double> x, std::span<double> y) {
      op_.apply(x, y);
      const double* xp = x.data();
      double* yp = y.data();
      if (engine_ != nullptr) {
        engine_->dispatch(n_, [xp, yp, mu](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) yp[i] -= mu * xp[i];
        });
      } else {
        for (std::size_t i = 0; i < n_; ++i) yp[i] -= mu * xp[i];
      }
    };
  }

  /// Exact mutation-part preconditioner M^{-1} = F^{-1/2} Q^{-1} F^{-1/2}
  /// (SPD; Q^{-1} via the FWHT diagonalisation).
  linalg::ApplyFn q_preconditioner() const {
    return [this](std::span<const double> x, std::span<double> y) {
      for (std::size_t i = 0; i < n_; ++i) y[i] = x[i] / sqrt_f_[i];
      core::apply_q_shift_invert(model_, 0.0, y);
      for (std::size_t i = 0; i < n_; ++i) y[i] /= sqrt_f_[i];
    };
  }

  /// True iff (W_S - mu I) is provably positive definite.
  bool shift_below_spectrum(double mu) const {
    return mu < core::conservative_shift(model_, landscape_);
  }

  /// Rayleigh quotient and relative residual of the normalised x.
  std::pair<double, double> eigen_residual(std::span<const double> x,
                                           std::span<double> scratch) const {
    op_.apply(x, scratch);
    const double* xp = x.data();
    const double* sp = scratch.data();
    double rq = 0.0;
    double res2 = 0.0;
    if (engine_ != nullptr) {
      rq = engine_->reduce_dot(x, scratch);
      res2 = engine_->reduce_partials(n_, [xp, sp, rq](std::size_t begin, std::size_t end) {
        double acc = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          const double r = sp[i] - rq * xp[i];
          acc += r * r;
        }
        return acc;
      });
    } else {
      rq = linalg::dot(x, scratch);
      for (std::size_t i = 0; i < n_; ++i) {
        const double r = sp[i] - rq * xp[i];
        res2 += r * r;
      }
    }
    return {rq, std::sqrt(res2) / std::max(std::abs(rq), 1e-300)};
  }

  /// Converts a symmetric-form eigenvector into concentrations in place.
  void to_concentrations(std::vector<double>& x) const {
    for (std::size_t i = 0; i < n_; ++i) x[i] /= sqrt_f_[i];
    double s = 0.0;
    for (double v : x) s += v;
    if (s < 0.0) linalg::scale(x, -1.0);
    linalg::normalize1(x);
  }

  /// Starting vector in the symmetric scale from a concentration-scale
  /// start (or the landscape default), 2-norm normalised.
  std::vector<double> symmetric_start(std::span<const double> start) const {
    std::vector<double> x(n_);
    if (start.empty()) {
      const auto f = landscape_.values();
      for (std::size_t i = 0; i < n_; ++i) x[i] = f[i] * sqrt_f_[i];  // F^{1/2} f
    } else {
      require(start.size() == n_, "shift-invert: starting vector has wrong dimension");
      for (std::size_t i = 0; i < n_; ++i) x[i] = start[i] * sqrt_f_[i];
    }
    linalg::normalize2(x);
    return x;
  }

 private:
  const core::MutationModel& model_;
  const core::Landscape& landscape_;
  const parallel::Engine* engine_;
  core::FmmpOperator op_;
  std::size_t n_;
  std::vector<double> sqrt_f_;
};

/// The shared outer loop: inverse iteration around `mu`, optionally
/// switching to Rayleigh-quotient shift updates once the residual drops
/// below `rayleigh_after_residual` (set it to +inf for immediate updates,
/// 0 to keep the shift fixed).  `x` is the starting (or resumed) iterate in
/// the symmetric scale, 2-norm normalised, used verbatim.  One driver
/// iteration is one outer step; the checkpoint records the iterate plus the
/// *next* step's shift in aux, so a resume re-enters the loop with exactly
/// the state the uninterrupted run would have had.
WEigenResult run_shifted_outer(const SymmetricWContext& ctx, std::vector<double> x,
                               const ShiftInvertOptions& options,
                               IterationDriver driver, double initial_mu,
                               double rayleigh_after_residual,
                               unsigned start_iteration = 0,
                               std::size_t inner_start = 0) {
  WEigenResult out;
  out.outer_iterations = start_iteration;
  out.iterations = start_iteration;
  out.inner_iterations_total = inner_start;

  core::Workspace local_workspace;
  core::Workspace& workspace =
      options.workspace != nullptr ? *options.workspace : local_workspace;
  std::span<double> rhs = workspace.take(core::Workspace::Slot::rhs, ctx.dimension());
  std::span<double> scratch =
      workspace.take(core::Workspace::Slot::scratch, ctx.dimension());

  // Inner solves share the outer workspace (distinct krylov* slots) unless
  // the caller routed them elsewhere explicitly.
  linalg::KrylovOptions inner_options = options.inner;
  if (inner_options.workspace == nullptr) inner_options.workspace = &workspace;

  double mu = initial_mu;
  // Recomputing the eigen-residual of the (verbatim) iterate is
  // deterministic, so on a resume this reproduces the checkpointed values
  // exactly — no separate restore path needed.
  std::tie(out.eigenvalue, out.residual) = ctx.eigen_residual(x, scratch);

  // The eigen-residual is recomputed after every outer step, so a NaN/Inf
  // iterate (e.g. a poisoned product inside the inner Krylov solve) is
  // caught at that cadence and reported structurally instead of letting the
  // outer loop spin on garbage.
  if (driver.guard({out.eigenvalue, out.residual}, out)) {
    for (unsigned it = start_iteration + 1; it <= options.max_outer_iterations;
         ++it) {
      out.outer_iterations = it;
      out.iterations = it;
      if (out.residual <= options.tolerance) {
        out.converged = true;
        break;
      }
      // Solve (W_S - mu I) y = x; y (in x) is the next iterate.
      linalg::copy(x, rhs);
      linalg::KrylovResult inner;
      if (ctx.shift_below_spectrum(mu)) {
        inner = linalg::conjugate_gradient(
            ctx.shifted_apply(mu), rhs, x, inner_options,
            options.use_q_preconditioner ? ctx.q_preconditioner() : linalg::ApplyFn{});
      } else {
        inner = linalg::minres(ctx.shifted_apply(mu), rhs, x, inner_options);
      }
      out.inner_iterations_total += inner.iterations;
      linalg::normalize2(x);
      std::tie(out.eigenvalue, out.residual) = ctx.eigen_residual(x, scratch);
      if (!driver.guard({out.eigenvalue, out.residual}, out)) break;
      // Stall accounting and the residual hook run through the driver.  A
      // converged verdict is deliberately *not* acted on here: the tolerance
      // test at the top of the next step ends the loop, which keeps the
      // historical outer_iterations count bit-compatible.
      const IterationDriver::Verdict verdict =
          driver.observe(it, out.residual, out);
      if (verdict == IterationDriver::Verdict::stalled) {
        break;
      }
      if (verdict == IterationDriver::Verdict::cancelled) {
        // Cancellation flushes the current iterate and shift (the periodic
        // checkpoint's state) so an interrupted run resumes at this step.
        if (driver.checkpointing()) {
          driver.write_checkpoint(it, out, x, out.inner_iterations_total, mu);
        }
        break;
      }
      if (out.residual < rayleigh_after_residual) {
        mu = out.eigenvalue;
      }
      driver.maybe_checkpoint(it, out, x, out.inner_iterations_total, mu);
    }
    if (out.failure == SolverFailure::none && out.residual <= options.tolerance) {
      out.converged = true;
    }
  }

  if (out.failure != SolverFailure::none) {
    // Garbage iterate: report it raw; the concentration conversion would
    // only launder NaNs through a normalisation.
    out.concentrations = std::move(x);
    return out;
  }
  ctx.to_concentrations(x);
  out.concentrations = std::move(x);
  return out;
}

}  // namespace

linalg::KrylovResult solve_shifted_symmetric_w(const core::MutationModel& model,
                                               const core::Landscape& landscape,
                                               double mu, std::span<const double> b,
                                               std::span<double> x,
                                               const linalg::KrylovOptions& options,
                                               bool use_q_preconditioner) {
  const SymmetricWContext ctx(model, landscape);
  require(b.size() == ctx.dimension() && x.size() == ctx.dimension(),
          "solve_shifted_symmetric_w: dimension mismatch");
  if (ctx.shift_below_spectrum(mu)) {
    return linalg::conjugate_gradient(
        ctx.shifted_apply(mu), b, x, options,
        use_q_preconditioner ? ctx.q_preconditioner() : linalg::ApplyFn{});
  }
  return linalg::minres(ctx.shifted_apply(mu), b, x, options);
}

namespace {

/// Refusing a poisoned caller-supplied start vector up front keeps the
/// failure structured: letting it through would trip the normalisation's
/// zero-vector precondition on NaN instead of reporting non_finite.
bool poisoned_start(std::span<const double> start, WEigenResult& out) {
  for (double v : start) {
    if (!std::isfinite(v)) {
      out.failure = SolverFailure::non_finite;
      return true;
    }
  }
  return false;
}

/// Shared resume plumbing: validates the checkpoint against the model,
/// restores the driver's stall/best-residual state, and hands back the
/// trace.  Returns false (with `out` filled) when the checkpointed iterate
/// is poisoned and the resume must fail structurally.
bool restore_shift_invert(const SymmetricWContext& ctx,
                          const io::SolverCheckpoint& checkpoint,
                          IterationDriver& driver, IterationTrace& trace,
                          WEigenResult& out) {
  require(checkpoint.eigenvector.size() == ctx.dimension(),
          "shift-invert resume: checkpoint dimension does not match model");
  if (!restore_trace(checkpoint, io::SolverKind::shift_invert, trace, out)) {
    out.concentrations = std::move(trace.iterate);
    out.eigenvalue = trace.eigenvalue;
    out.residual = trace.residual;
    out.outer_iterations = trace.start_iteration;
    out.iterations = trace.start_iteration;
    out.inner_iterations_total = static_cast<std::size_t>(trace.matvec_count);
    return false;
  }
  driver.restore(checkpoint);
  return true;
}

}  // namespace

WEigenResult inverse_iteration_w(const core::MutationModel& model,
                                 const core::Landscape& landscape, double mu,
                                 std::span<const double> start,
                                 const ShiftInvertOptions& options) {
  WEigenResult bad;
  if (poisoned_start(start, bad)) return bad;
  const SymmetricWContext ctx(model, landscape, options.engine);
  IterationDriver driver(options, io::SolverKind::shift_invert);
  return run_shifted_outer(ctx, ctx.symmetric_start(start), options,
                           std::move(driver), mu,
                           /*rayleigh_after_residual=*/0.0);
}

WEigenResult resume_inverse_iteration_w(const core::MutationModel& model,
                                        const core::Landscape& landscape,
                                        const io::SolverCheckpoint& checkpoint,
                                        const ShiftInvertOptions& options) {
  const SymmetricWContext ctx(model, landscape, options.engine);
  IterationDriver driver(options, io::SolverKind::shift_invert);
  IterationTrace trace;
  WEigenResult out;
  if (!restore_shift_invert(ctx, checkpoint, driver, trace, out)) return out;
  return run_shifted_outer(ctx, std::move(trace.iterate), options,
                           std::move(driver), /*initial_mu=*/trace.aux,
                           /*rayleigh_after_residual=*/0.0,
                           trace.start_iteration,
                           static_cast<std::size_t>(trace.matvec_count));
}

WEigenResult rayleigh_quotient_iteration_w(const core::MutationModel& model,
                                           const core::Landscape& landscape,
                                           std::span<const double> start,
                                           const ShiftInvertOptions& options) {
  WEigenResult bad;
  if (poisoned_start(start, bad)) return bad;
  const SymmetricWContext ctx(model, landscape, options.engine);
  IterationDriver driver(options, io::SolverKind::shift_invert);
  // A generic start has an *interior* Rayleigh quotient, and pure RQI
  // converges to whatever eigenvalue is nearest — not necessarily the
  // dominant one.  A short power-iteration warm-up (cheap Fmmp products)
  // pulls the iterate towards the dominant eigenvector first, so the
  // subsequent cubically convergent RQI locks onto the right pair.
  std::vector<double> x = ctx.symmetric_start(start);
  std::vector<double> y(ctx.dimension());
  for (unsigned warm = 0; warm < 20; ++warm) {
    ctx.op().apply(x, y);
    linalg::copy(y, x);
    linalg::normalize2(x);
  }
  const double rq0 = ctx.eigen_residual(x, y).first;
  return run_shifted_outer(ctx, std::move(x), options, std::move(driver), rq0,
                           /*rayleigh_after_residual=*/
                           std::numeric_limits<double>::infinity());
}

WEigenResult resume_rayleigh_quotient_iteration_w(
    const core::MutationModel& model, const core::Landscape& landscape,
    const io::SolverCheckpoint& checkpoint, const ShiftInvertOptions& options) {
  const SymmetricWContext ctx(model, landscape, options.engine);
  IterationDriver driver(options, io::SolverKind::shift_invert);
  IterationTrace trace;
  WEigenResult out;
  if (!restore_shift_invert(ctx, checkpoint, driver, trace, out)) return out;
  // The checkpoint's aux holds the Rayleigh shift for the *next* step, so
  // the warm-up is skipped and the loop re-enters mid-flight.
  return run_shifted_outer(ctx, std::move(trace.iterate), options,
                           std::move(driver), /*initial_mu=*/trace.aux,
                           /*rayleigh_after_residual=*/
                           std::numeric_limits<double>::infinity(),
                           trace.start_iteration,
                           static_cast<std::size_t>(trace.matvec_count));
}

WEigenResult smallest_eigenpair_w(const core::MutationModel& model,
                                  const core::Landscape& landscape,
                                  const ShiftInvertOptions& options) {
  const SymmetricWContext ctx(model, landscape, options.engine);
  IterationDriver driver(options, io::SolverKind::shift_invert);
  // Shift just below the paper's lower bound (1-2p)^nu f_min <= lambda_min:
  // the nearest eigenvalue to mu is then *guaranteed* to be lambda_min, the
  // system stays positive definite (CG path), and once the iterate has
  // locked on (residual < 1e-4) Rayleigh updates finish the job cubically.
  const double mu = 0.999 * core::conservative_shift(model, landscape);
  std::vector<double> uniform(ctx.dimension(), 1.0);
  linalg::normalize2(uniform);
  return run_shifted_outer(ctx, std::move(uniform), options, std::move(driver),
                           mu,
                           /*rayleigh_after_residual=*/1e-4);
}

}  // namespace qs::solvers
