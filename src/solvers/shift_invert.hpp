// Shift-and-invert eigensolvers for the full problem matrix W = Q F
// (the "current work" the paper announces at the end of Section 3).
//
// The symmetric formulation W_S = F^{1/2} Q F^{1/2} makes (W_S - mu I) x = b
// a symmetric linear system solvable matrix-free with Krylov methods at
// Theta(N log2 N) per inner iteration (the operator is one Fmmp product):
//
//   * mu below the spectrum (e.g. mu <= (1-2p)^nu f_min, the paper's
//     conservative bound) keeps W_S - mu I positive definite -> conjugate
//     gradients, optionally preconditioned with the *exact* inverse of the
//     mutation part, M^{-1} = F^{-1/2} Q^{-1} F^{-1/2}, available in closed
//     form through the FWHT diagonalisation of Section 2;
//   * mu inside the spectrum (inverse iteration towards interior or
//     dominant eigenpairs) makes the system indefinite -> MINRES.
//
// On top of the solve, this module provides inverse iteration (eigenpair
// nearest a fixed shift) and Rayleigh quotient iteration (cubically
// convergent refinement) for W, plus the smallest eigenpair — which
// validates the paper's lower bound lambda_min >= (1-2p)^nu f_min.
//
// All methods require a symmetric mutation model (uniform or symmetric
// per-site); results are reported as concentrations (right formulation).
#pragma once

#include <span>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "linalg/krylov.hpp"
#include "parallel/engine.hpp"
#include "solvers/solver_failure.hpp"

namespace qs::solvers {

/// Options for the shift-and-invert eigensolvers.
struct ShiftInvertOptions {
  double tolerance = 1e-12;         ///< Relative eigenpair residual target.
  unsigned max_outer_iterations = 60;
  linalg::KrylovOptions inner;      ///< Inner linear-solve control.
  bool use_q_preconditioner = true; ///< Precondition CG with F^{-1/2}Q^{-1}F^{-1/2}.
  const parallel::Engine* engine = nullptr;  ///< Matvec/reduction backend; null = serial.
};

/// Eigenpair of W with solver statistics.
struct WEigenResult {
  double eigenvalue = 0.0;
  std::vector<double> concentrations;  ///< x_R, 1-norm normalised.
  unsigned outer_iterations = 0;
  std::size_t inner_iterations_total = 0;
  double residual = 0.0;               ///< Relative symmetric-form residual.
  bool converged = false;
  SolverFailure failure = SolverFailure::none;  ///< Set when the outer
                                    ///< iterate went NaN/Inf (fail-fast).
};

/// Solves (W_S - mu I) x = b matrix-free.  Selects CG when mu is provably
/// below the spectrum (mu < (1-2p)^nu f_min) and MINRES otherwise; the Q
/// preconditioner applies to the CG path only.  x holds the initial guess
/// on entry and the solution on exit.
linalg::KrylovResult solve_shifted_symmetric_w(const core::MutationModel& model,
                                               const core::Landscape& landscape,
                                               double mu, std::span<const double> b,
                                               std::span<double> x,
                                               const linalg::KrylovOptions& options = {},
                                               bool use_q_preconditioner = true);

/// Inverse iteration: converges to the eigenpair of W whose eigenvalue is
/// nearest the fixed shift mu. `start` (concentration scale) may be empty.
WEigenResult inverse_iteration_w(const core::MutationModel& model,
                                 const core::Landscape& landscape, double mu,
                                 std::span<const double> start = {},
                                 const ShiftInvertOptions& options = {});

/// Rayleigh quotient iteration from `start` (concentration scale; empty
/// selects the landscape start, which leans towards the dominant pair).
/// Cubically convergent; typically 3-5 outer iterations.
WEigenResult rayleigh_quotient_iteration_w(const core::MutationModel& model,
                                           const core::Landscape& landscape,
                                           std::span<const double> start = {},
                                           const ShiftInvertOptions& options = {});

/// The *smallest* eigenpair of W via inverse iteration with mu = 0
/// (W_S is positive definite, so plain CG applies).  Validates the paper's
/// bound lambda_min >= (1-2p)^nu f_min.
WEigenResult smallest_eigenpair_w(const core::MutationModel& model,
                                  const core::Landscape& landscape,
                                  const ShiftInvertOptions& options = {});

}  // namespace qs::solvers
