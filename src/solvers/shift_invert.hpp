// Shift-and-invert eigensolvers for the full problem matrix W = Q F
// (the "current work" the paper announces at the end of Section 3).
//
// The symmetric formulation W_S = F^{1/2} Q F^{1/2} makes (W_S - mu I) x = b
// a symmetric linear system solvable matrix-free with Krylov methods at
// Theta(N log2 N) per inner iteration (the operator is one Fmmp product):
//
//   * mu below the spectrum (e.g. mu <= (1-2p)^nu f_min, the paper's
//     conservative bound) keeps W_S - mu I positive definite -> conjugate
//     gradients, optionally preconditioned with the *exact* inverse of the
//     mutation part, M^{-1} = F^{-1/2} Q^{-1} F^{-1/2}, available in closed
//     form through the FWHT diagonalisation of Section 2;
//   * mu inside the spectrum (inverse iteration towards interior or
//     dominant eigenpairs) makes the system indefinite -> MINRES.
//
// On top of the solve, this module provides inverse iteration (eigenpair
// nearest a fixed shift) and Rayleigh quotient iteration (cubically
// convergent refinement) for W, plus the smallest eigenpair — which
// validates the paper's lower bound lambda_min >= (1-2p)^nu f_min.
//
// Resilience: the outer loop runs through solvers/iteration_driver — one
// driver iteration per outer step — so inverse iteration and RQI support
// periodic checkpoint/resume (the outer iterate plus the current shift,
// stored in the checkpoint's aux field, determine the rest of the run),
// stall windows, and the NaN/Inf health guards with structured
// SolverFailure reporting.
//
// All methods require a symmetric mutation model (uniform or symmetric
// per-site); results are reported as concentrations (right formulation).
#pragma once

#include <span>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "linalg/krylov.hpp"
#include "solvers/iteration_driver.hpp"

namespace qs::solvers {

/// Options for the shift-and-invert eigensolvers: the shared iteration
/// block (one driver iteration = one outer step; stall window disabled by
/// default, `max_iterations`/`residual_check_every` ignored — the cap is
/// `max_outer_iterations` and the eigen-residual is recomputed every outer
/// step anyway) plus the inner linear-solve control.
struct ShiftInvertOptions : IterationOptions {
  ShiftInvertOptions() {
    tolerance = 1e-12;
    stall_window = 0;
  }

  unsigned max_outer_iterations = 60;
  linalg::KrylovOptions inner;      ///< Inner linear-solve control.
  bool use_q_preconditioner = true; ///< Precondition CG with F^{-1/2}Q^{-1}F^{-1/2}.
};

/// Eigenpair of W with solver statistics: the shared outcome fields
/// (`iterations` mirrors `outer_iterations`) plus the shift-invert
/// statistics.
struct WEigenResult : IterationResult {
  std::vector<double> concentrations;  ///< x_R, 1-norm normalised.
  unsigned outer_iterations = 0;
  std::size_t inner_iterations_total = 0;
};

/// Solves (W_S - mu I) x = b matrix-free.  Selects CG when mu is provably
/// below the spectrum (mu < (1-2p)^nu f_min) and MINRES otherwise; the Q
/// preconditioner applies to the CG path only.  x holds the initial guess
/// on entry and the solution on exit.
linalg::KrylovResult solve_shifted_symmetric_w(const core::MutationModel& model,
                                               const core::Landscape& landscape,
                                               double mu, std::span<const double> b,
                                               std::span<double> x,
                                               const linalg::KrylovOptions& options = {},
                                               bool use_q_preconditioner = true);

/// Inverse iteration: converges to the eigenpair of W whose eigenvalue is
/// nearest the fixed shift mu. `start` (concentration scale) may be empty.
WEigenResult inverse_iteration_w(const core::MutationModel& model,
                                 const core::Landscape& landscape, double mu,
                                 std::span<const double> start = {},
                                 const ShiftInvertOptions& options = {});

/// Resumes an inverse iteration from a checkpoint written by a previous
/// run with the same model, landscape, and options.  The fixed shift mu is
/// restored from the checkpoint (aux field); the iterate (symmetric scale)
/// is taken verbatim, so on the serial backend the outer residual
/// trajectory from the checkpoint step onward is bit-identical to the
/// uninterrupted run.  Refuses checkpoints written by a different solver.
WEigenResult resume_inverse_iteration_w(const core::MutationModel& model,
                                        const core::Landscape& landscape,
                                        const io::SolverCheckpoint& checkpoint,
                                        const ShiftInvertOptions& options = {});

/// Rayleigh quotient iteration from `start` (concentration scale; empty
/// selects the landscape start, which leans towards the dominant pair).
/// Cubically convergent; typically 3-5 outer iterations.
WEigenResult rayleigh_quotient_iteration_w(const core::MutationModel& model,
                                           const core::Landscape& landscape,
                                           std::span<const double> start = {},
                                           const ShiftInvertOptions& options = {});

/// Resumes a Rayleigh quotient iteration from a checkpoint.  The power
/// warm-up is skipped (the checkpointed iterate already sits near the
/// dominant pair) and the current Rayleigh shift is restored from the
/// checkpoint's aux field.
WEigenResult resume_rayleigh_quotient_iteration_w(
    const core::MutationModel& model, const core::Landscape& landscape,
    const io::SolverCheckpoint& checkpoint,
    const ShiftInvertOptions& options = {});

/// The *smallest* eigenpair of W via inverse iteration with mu = 0
/// (W_S is positive definite, so plain CG applies).  Validates the paper's
/// bound lambda_min >= (1-2p)^nu f_min.
WEigenResult smallest_eigenpair_w(const core::MutationModel& model,
                                  const core::Landscape& landscape,
                                  const ShiftInvertOptions& options = {});

}  // namespace qs::solvers
