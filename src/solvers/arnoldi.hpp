// Restarted Arnoldi iteration for the dominant eigenpair of W with
// *nonsymmetric* mutation models.
//
// Section 2.2 generalises the mutation process to asymmetric per-site rates
// (0->1 != 1->0), which breaks the symmetry every other accelerated solver
// here relies on: Lanczos, shift-invert/MINRES, and the symmetric
// formulation all require Q = Q^T, leaving only the plain power iteration.
// Arnoldi (named alongside Lanczos in Section 3) fills that gap: a short
// orthonormal Krylov basis, the Hessenberg projection's dominant Ritz pair
// (real and positive by Perron-Frobenius), restart on the Ritz vector.
//
// Resilience: the restart loop runs through solvers/iteration_driver — one
// driver iteration per restart cycle — so the solver supports periodic
// checkpoint/resume (bit-identical resumed trajectories on the serial
// backend), stall windows, and the NaN/Inf health guards with structured
// SolverFailure reporting.
#pragma once

#include <span>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "solvers/iteration_driver.hpp"

namespace qs::solvers {

/// Options for the restarted Arnoldi solver: the shared iteration block
/// (one driver iteration = one restart cycle; stall window disabled by
/// default, `max_iterations`/`residual_check_every` ignored — the cycle cap
/// is `max_restarts` and every cycle extracts a Ritz pair) plus the Krylov
/// knobs.
struct ArnoldiOptions : IterationOptions {
  ArnoldiOptions() {
    tolerance = 1e-12;
    stall_window = 0;
  }

  unsigned basis_size = 20;   ///< Krylov basis per cycle.
  unsigned max_restarts = 200;
};

/// Result of an Arnoldi solve: the shared outcome fields (`iterations`
/// counts completed restart cycles) plus the Arnoldi-specific statistics.
struct ArnoldiResult : IterationResult {
  std::vector<double> concentrations;  ///< x_R, 1-norm normalised.
  unsigned matvec_count = 0;
  unsigned restarts = 0;
};

/// Computes the dominant eigenpair of W = Q F (right formulation) for any
/// 2x2-factor or grouped mutation model, symmetric or not.  `start` is in
/// concentration scale; empty selects the landscape start.
ArnoldiResult arnoldi_dominant_w(const core::MutationModel& model,
                                 const core::Landscape& landscape,
                                 std::span<const double> start = {},
                                 const ArnoldiOptions& options = {});

/// Resumes an Arnoldi solve from a checkpoint written by a previous run
/// with the same model, landscape, and options.  The checkpointed restart
/// vector (right/concentration scale, 2-norm normalised) is taken verbatim,
/// so on the serial backend the per-cycle residual trajectory from the
/// checkpoint cycle onward is bit-identical to the uninterrupted run.
/// Refuses checkpoints written by a different solver kind.
ArnoldiResult resume_arnoldi_dominant_w(const core::MutationModel& model,
                                        const core::Landscape& landscape,
                                        const io::SolverCheckpoint& checkpoint,
                                        const ArnoldiOptions& options = {});

}  // namespace qs::solvers
