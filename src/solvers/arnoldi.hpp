// Restarted Arnoldi iteration for the dominant eigenpair of W with
// *nonsymmetric* mutation models.
//
// Section 2.2 generalises the mutation process to asymmetric per-site rates
// (0->1 != 1->0), which breaks the symmetry every other accelerated solver
// here relies on: Lanczos, shift-invert/MINRES, and the symmetric
// formulation all require Q = Q^T, leaving only the plain power iteration.
// Arnoldi (named alongside Lanczos in Section 3) fills that gap: a short
// orthonormal Krylov basis, the Hessenberg projection's dominant Ritz pair
// (real and positive by Perron-Frobenius), restart on the Ritz vector.
#pragma once

#include <span>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "solvers/solver_failure.hpp"

namespace qs::solvers {

/// Options for the restarted Arnoldi solver.
struct ArnoldiOptions {
  double tolerance = 1e-12;   ///< Relative eigenpair residual target.
  unsigned basis_size = 20;   ///< Krylov basis per cycle.
  unsigned max_restarts = 200;
};

/// Result of an Arnoldi solve.
struct ArnoldiResult {
  double eigenvalue = 0.0;
  std::vector<double> concentrations;  ///< x_R, 1-norm normalised.
  unsigned matvec_count = 0;
  unsigned restarts = 0;
  double residual = 0.0;
  bool converged = false;
  SolverFailure failure = SolverFailure::none;  ///< Set when the basis or
                                    ///< Ritz pair went NaN/Inf (fail-fast).
};

/// Computes the dominant eigenpair of W = Q F (right formulation) for any
/// 2x2-factor or grouped mutation model, symmetric or not.  `start` is in
/// concentration scale; empty selects the landscape start.
ArnoldiResult arnoldi_dominant_w(const core::MutationModel& model,
                                 const core::Landscape& landscape,
                                 std::span<const double> start = {},
                                 const ArnoldiOptions& options = {});

}  // namespace qs::solvers
