#include "solvers/spectral_solvers.hpp"

#include <cmath>

#include "core/spectral.hpp"
#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::solvers {
namespace {

std::vector<double> default_start(std::size_t n) {
  // Deterministic pseudo-random start: nonzero overlap with every
  // eigenvector with probability one, unlike structured starts which can be
  // exactly orthogonal to the target eigenspace.
  std::vector<double> s(n);
  Xoshiro256 rng(0x5eed5eed5eed5eedULL);
  for (double& v : s) v = rng.uniform(-1.0, 1.0);
  linalg::normalize2(s);
  return s;
}

/// Rayleigh quotient and relative residual of (model, x); x must be 2-norm
/// normalised. Returns {rq, residual}.
std::pair<double, double> q_residual(const core::MutationModel& model,
                                     std::span<const double> x,
                                     std::vector<double>& scratch) {
  scratch.assign(x.begin(), x.end());
  model.apply(scratch);  // scratch = Q x
  const double rq = linalg::dot(x, scratch);
  double res2 = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = scratch[i] - rq * x[i];
    res2 += r * r;
  }
  return {rq, std::sqrt(res2) / std::max(std::abs(rq), 1e-300)};
}

}  // namespace

SpectralResult inverse_iteration_q(const core::MutationModel& model, double mu,
                                   std::span<const double> start,
                                   const SpectralOptions& options) {
  const std::size_t n = static_cast<std::size_t>(model.dimension());
  require(start.empty() || start.size() == n,
          "inverse_iteration_q: starting vector has wrong dimension");

  SpectralResult out;
  out.eigenvector = start.empty() ? default_start(n)
                                  : std::vector<double>(start.begin(), start.end());
  linalg::normalize2(out.eigenvector);

  std::vector<double> scratch;
  for (unsigned it = 1; it <= options.max_iterations; ++it) {
    core::apply_q_shift_invert(model, mu, out.eigenvector);
    linalg::normalize2(out.eigenvector);
    const auto [rq, res] = q_residual(model, out.eigenvector, scratch);
    out.eigenvalue = rq;
    out.residual = res;
    out.iterations = it;
    if (res <= options.tolerance) {
      out.converged = true;
      break;
    }
  }
  return out;
}

SpectralResult rayleigh_quotient_iteration_q(const core::MutationModel& model,
                                             std::span<const double> start,
                                             const SpectralOptions& options) {
  const std::size_t n = static_cast<std::size_t>(model.dimension());
  require(start.size() == n, "rayleigh_quotient_iteration_q: start vector required");

  SpectralResult out;
  out.eigenvector.assign(start.begin(), start.end());
  linalg::normalize2(out.eigenvector);

  std::vector<double> scratch;
  auto [rq, res] = q_residual(model, out.eigenvector, scratch);
  out.eigenvalue = rq;
  out.residual = res;

  for (unsigned it = 1; it <= options.max_iterations; ++it) {
    out.iterations = it;
    if (out.residual <= options.tolerance) {
      out.converged = true;
      break;
    }
    // Guard the shift away from exact eigenvalues: the FWHT-based solve
    // rejects singular shifts, so nudge by a relative epsilon.
    double mu = out.eigenvalue;
    const double nudge = 1e-14 * std::max(std::abs(mu), 1.0);
    mu += nudge;
    core::apply_q_shift_invert(model, mu, out.eigenvector);
    linalg::normalize2(out.eigenvector);
    std::tie(out.eigenvalue, out.residual) =
        q_residual(model, out.eigenvector, scratch);
  }
  if (out.residual <= options.tolerance) out.converged = true;
  return out;
}

}  // namespace qs::solvers
