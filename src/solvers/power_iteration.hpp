// Power iteration for the dominant eigenpair of an implicit operator
// (Section 3 of the paper).
//
// The paper selects the power iteration over Lanczos/Arnoldi (fewer stored
// vectors) and over randomised sketching (accuracy): with W positive
// definite and Perron-Frobenius applicable, lambda_0 > lambda_1 >= ... > 0
// guarantees convergence.  The spectral shift mu (W - mu I) improves the
// convergence ratio from lambda_1/lambda_0 to (lambda_1-mu)/(lambda_0-mu);
// the conservative choice mu = (1-2p)^nu f_min from core/spectral.hpp is
// always admissible.
//
// Resilience: the loop runs through solvers/iteration_driver, which owns the
// periodic checkpointing (write-to-temp-then-rename, checksummed), the stall
// window, and the NaN/Inf health guards; a resumed run continues the
// original residual trajectory bit for bit on the serial backend, and a
// non-finite iterate is detected at residual-check cadence and reported as
// a structured SolverFailure instead of spinning max_iterations on garbage.
#pragma once

#include <span>
#include <vector>

#include "core/operators.hpp"
#include "io/binary_io.hpp"
#include "solvers/iteration_driver.hpp"

namespace qs::solvers {

/// Tuning knobs for the power iteration: the shared iteration block (see
/// solvers/iteration_driver.hpp for tolerance, max_iterations, residual
/// cadence, stall window, engine, workspace, and checkpointing) plus the
/// spectral shift.
struct PowerOptions : IterationOptions {
  /// Spectral shift mu: iterates with (W - mu I). Must keep lambda_0 - mu
  /// the dominant eigenvalue (any mu <= lambda_min(W) qualifies).
  double shift = 0.0;
};

/// Outcome of a power iteration run: the shared outcome fields (eigenvalue,
/// iterations, residual, converged/stalled/failure, checkpoint statistics)
/// plus the eigenvector.
struct PowerResult : IterationResult {
  std::vector<double> eigenvector;  ///< 1-norm normalised, nonnegative.
};

/// Runs the (shifted) power iteration on `op` starting from `start`
/// (1-norm normalised internally; empty selects the uniform vector).
///
/// The paper's recommended start is the landscape itself,
/// s = diag(F)/||diag(F)||_1, since the dominant eigenvector of W = Q F
/// resembles F (the dominant eigenvector of Q alone is the uniform vector).
PowerResult power_iteration(const core::LinearOperator& op,
                            std::span<const double> start = {},
                            const PowerOptions& options = {});

/// Resumes a power iteration from a checkpoint written by a previous run
/// with the same operator and options.  The iterate is taken verbatim (no
/// re-normalisation) and the stall-window state is restored, so on the
/// serial backend the residual trajectory from the checkpoint iteration
/// onward is bit-identical to the uninterrupted run.
PowerResult resume_power_iteration(const core::LinearOperator& op,
                                   const io::SolverCheckpoint& checkpoint,
                                   const PowerOptions& options = {});

/// The paper's starting vector for a given landscape.
std::vector<double> landscape_start(const core::Landscape& landscape);

}  // namespace qs::solvers
