// Power iteration for the dominant eigenpair of an implicit operator
// (Section 3 of the paper).
//
// The paper selects the power iteration over Lanczos/Arnoldi (fewer stored
// vectors) and over randomised sketching (accuracy): with W positive
// definite and Perron-Frobenius applicable, lambda_0 > lambda_1 >= ... > 0
// guarantees convergence.  The spectral shift mu (W - mu I) improves the
// convergence ratio from lambda_1/lambda_0 to (lambda_1-mu)/(lambda_0-mu);
// the conservative choice mu = (1-2p)^nu f_min from core/spectral.hpp is
// always admissible.
//
// Resilience: the loop can periodically persist its state through
// io::SolverCheckpoint (write-to-temp-then-rename, checksummed), a resumed
// run continues the original residual trajectory bit for bit on the serial
// backend, and a non-finite iterate is detected at residual-check cadence
// and reported as a structured SolverFailure instead of spinning
// max_iterations on garbage.
#pragma once

#include <filesystem>
#include <functional>
#include <span>
#include <vector>

#include "core/operators.hpp"
#include "io/binary_io.hpp"
#include "parallel/engine.hpp"
#include "solvers/solver_failure.hpp"

namespace qs::solvers {

/// Tuning knobs for the power iteration.
struct PowerOptions {
  /// Convergence threshold on the relative residual
  /// ||W x - lambda x||_2 / (|lambda| ||x||_2).  The attainable floor is a
  /// small multiple of nu * eps (~1e-15 at nu = 25); the default leaves a
  /// safety margin above it.
  double tolerance = 1e-13;

  /// Iteration cap; exceeding it returns converged = false.  On a resumed
  /// run the cap counts total iterations including the checkpointed ones.
  unsigned max_iterations = 1000000;

  /// Spectral shift mu: iterates with (W - mu I). Must keep lambda_0 - mu
  /// the dominant eigenvalue (any mu <= lambda_min(W) qualifies).
  double shift = 0.0;

  /// Compute the residual only every k-th iteration (ablation knob; the
  /// residual costs reductions, not an extra product, since W x is reused).
  unsigned residual_check_every = 1;

  /// Stagnation detection: if the best residual seen has not improved by at
  /// least 5 % across a window of this many residual checks, the iteration
  /// is either at its numerical floor or converging too slowly to ever
  /// finish, and stops.  The floor depends on the spectrum (clustered
  /// subdominant eigenvalues amplify rounding): random landscapes floor
  /// near 1e-15 while single-peak landscapes at nu = 20 floor near 1e-11,
  /// so a fixed tolerance cannot serve both.  0 disables.
  unsigned stall_window = 100;

  /// A stalled run still counts as converged when its floor residual is at
  /// most this value (set equal to `tolerance` to make stalling a failure).
  double stall_accept = 1e-9;

  /// Reduction backend; null means serial.
  const parallel::Engine* engine = nullptr;

  /// Periodic checkpointing: every `checkpoint_every` iterations the current
  /// state is persisted to `checkpoint_path` (atomically; a crash mid-write
  /// never tears an existing checkpoint).  0 or an empty path disables.
  /// A checkpoint is only written while the iterate is finite, so the last
  /// checkpoint on disk is always a good restart point.
  std::filesystem::path checkpoint_path;
  unsigned checkpoint_every = 0;

  /// Testing/observability seam: when set, checkpoints go through this sink
  /// instead of binary_io (checkpoint_path is then ignored).  A sink that
  /// throws models checkpoint I/O failure; the solve records the failure in
  /// PowerResult::checkpoint_failures and keeps iterating — durability
  /// degrades, the solve does not die.
  std::function<void(const io::SolverCheckpoint&)> checkpoint_sink;

  /// Observability hook invoked at every residual check with the iteration
  /// number and the relative residual (used by the resume tests to prove
  /// bitwise-equal trajectories, and handy for progress reporting).
  std::function<void(unsigned iteration, double residual)> on_residual;
};

/// Outcome of a power iteration run.
struct PowerResult {
  double eigenvalue = 0.0;          ///< Dominant eigenvalue of W (unshifted).
  std::vector<double> eigenvector;  ///< 1-norm normalised, nonnegative.
  unsigned iterations = 0;          ///< Products with W performed (total,
                                    ///< including checkpointed ones on resume).
  double residual = 0.0;            ///< Relative residual at exit.
  bool converged = false;
  bool stalled = false;             ///< Stopped at the numerical floor
                                    ///< above `tolerance` (see stall_window).
  SolverFailure failure = SolverFailure::none;  ///< Structured failure reason.
  unsigned checkpoint_failures = 0; ///< Checkpoint writes that threw (the
                                    ///< solve continues; durability degrades).
};

/// Runs the (shifted) power iteration on `op` starting from `start`
/// (1-norm normalised internally; empty selects the uniform vector).
///
/// The paper's recommended start is the landscape itself,
/// s = diag(F)/||diag(F)||_1, since the dominant eigenvector of W = Q F
/// resembles F (the dominant eigenvector of Q alone is the uniform vector).
PowerResult power_iteration(const core::LinearOperator& op,
                            std::span<const double> start = {},
                            const PowerOptions& options = {});

/// Resumes a power iteration from a checkpoint written by a previous run
/// with the same operator and options.  The iterate is taken verbatim (no
/// re-normalisation) and the stall-window state is restored, so on the
/// serial backend the residual trajectory from the checkpoint iteration
/// onward is bit-identical to the uninterrupted run.
PowerResult resume_power_iteration(const core::LinearOperator& op,
                                   const io::SolverCheckpoint& checkpoint,
                                   const PowerOptions& options = {});

/// The paper's starting vector for a given landscape.
std::vector<double> landscape_start(const core::Landscape& landscape);

}  // namespace qs::solvers
