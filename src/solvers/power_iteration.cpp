#include "solvers/power_iteration.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

double reduce_dot(const parallel::Engine* engine, std::span<const double> a,
                  std::span<const double> b) {
  return engine != nullptr ? engine->reduce_dot(a, b) : linalg::dot(a, b);
}

double reduce_abs_sum(const parallel::Engine* engine, std::span<const double> v) {
  return engine != nullptr ? engine->reduce_abs_sum(v) : linalg::norm1(v);
}

double reduce_partials(const parallel::Engine* engine, std::size_t n,
                       const parallel::PartialKernel& kernel) {
  return engine != nullptr ? engine->reduce_partials(n, kernel)
                           : (n == 0 ? 0.0 : kernel(0, n));
}

void dispatch(const parallel::Engine* engine, std::size_t n,
              const parallel::RangeKernel& kernel) {
  if (engine != nullptr) {
    engine->dispatch(n, kernel);
  } else if (n != 0) {
    kernel(0, n);
  }
}

/// Everything the iteration loop needs to start or resume mid-run; a
/// checkpoint is exactly a serialised snapshot of this state.
struct IterationState {
  std::vector<double> x;            ///< 1-norm normalised iterate.
  unsigned start_iteration = 0;     ///< Products already performed.
  double eigenvalue = 0.0;
  double residual = 0.0;
  double best_residual = std::numeric_limits<double>::infinity();
  double window_start_best = std::numeric_limits<double>::infinity();
  unsigned checks_without_progress = 0;
};

/// The core loop, shared by cold starts and resumes.  The iterate in
/// `state.x` is used verbatim (callers normalise cold starts; resumes must
/// not re-normalise or the trajectory would diverge from the original run
/// in the last bits).
PowerResult run_power_loop(const core::LinearOperator& op, IterationState state,
                           const PowerOptions& options) {
  const std::size_t n = static_cast<std::size_t>(op.dimension());
  require(options.residual_check_every >= 1,
          "power_iteration: residual_check_every must be >= 1");

  PowerResult out;
  out.eigenvector = std::move(state.x);
  out.eigenvalue = state.eigenvalue;
  out.residual = state.residual;
  out.iterations = state.start_iteration;

  const bool checkpointing =
      options.checkpoint_every > 0 &&
      (options.checkpoint_sink || !options.checkpoint_path.empty());

  std::vector<double> y(n);
  std::span<double> x_span(out.eigenvector);
  const double mu = options.shift;

  double best_residual = state.best_residual;
  double window_start_best = state.window_start_best;
  unsigned checks_without_progress = state.checks_without_progress;

  for (unsigned it = state.start_iteration + 1; it <= options.max_iterations; ++it) {
    op.apply(out.eigenvector, y);  // y = W x (unshifted product)
    out.iterations = it;

    const bool check = (it % options.residual_check_every == 0) ||
                       (it == options.max_iterations);
    if (check) {
      // Rayleigh quotient from the product already in hand.
      const double xx = reduce_dot(options.engine, x_span, x_span);
      const double xy = reduce_dot(options.engine, x_span, y);
      const double lambda = xy / xx;
      // Residual ||y - lambda x||_2 formed explicitly.  (The algebraically
      // equivalent sqrt(yy - xy^2/xx) cancels catastrophically: its noise
      // floor is sqrt(eps) ~ 1e-8 in eigenvector error, far above the
      // tolerances this solver targets.)
      const double* yp = y.data();
      const double* xp = out.eigenvector.data();
      const double res2 = reduce_partials(
          options.engine, n, [yp, xp, lambda](std::size_t begin, std::size_t end) {
            double acc = 0.0;
            for (std::size_t i = begin; i < end; ++i) {
              const double r = yp[i] - lambda * xp[i];
              acc += r * r;
            }
            return acc;
          });
      // Numerical-health guard: a NaN/Inf iterate makes both the Rayleigh
      // quotient and the residual non-finite.  Fail fast with a structured
      // reason instead of spinning max_iterations on garbage.
      if (!std::isfinite(lambda) || !std::isfinite(res2)) {
        out.failure = SolverFailure::non_finite;
        out.converged = false;
        break;
      }
      out.eigenvalue = lambda;
      out.residual =
          std::sqrt(res2) / std::max(std::abs(lambda) * std::sqrt(xx), 1e-300);
      if (options.on_residual) options.on_residual(it, out.residual);
      if (out.residual <= options.tolerance) {
        out.converged = true;
        break;
      }
      // Stagnation: the residual has hit its numerical floor or the
      // spectrum is so clustered that progress per window is negligible.
      // The test is window-based (best-vs-best across a whole window of
      // checks) so that jitter around the floor cannot keep resetting it.
      best_residual = std::min(best_residual, out.residual);
      if (options.stall_window > 0 &&
          ++checks_without_progress >= options.stall_window) {
        if (best_residual >= window_start_best * 0.95) {
          out.stalled = true;
          out.converged = out.residual <= options.stall_accept;
          break;
        }
        window_start_best = best_residual;
        checks_without_progress = 0;
      }
    }

    // Shifted update x <- (W - mu I) x, then 1-norm normalisation; every
    // element-wise pass goes through the engine so a parallel backend covers
    // the whole iteration, not just the reductions.
    if (mu != 0.0) {
      double* yp = y.data();
      const double* xp = out.eigenvector.data();
      dispatch(options.engine, n, [yp, xp, mu](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) yp[i] -= mu * xp[i];
      });
    }
    const double norm = reduce_abs_sum(options.engine, y);
    // The 1-norm is computed every iteration anyway, so checking it for
    // NaN/Inf costs one compare and catches a poisoned product at the
    // earliest possible iteration — before it can reach a checkpoint.
    if (!std::isfinite(norm)) {
      out.failure = SolverFailure::non_finite;
      out.converged = false;
      break;
    }
    require(norm > 0.0, "power_iteration: iterate collapsed to zero");
    const double inv = 1.0 / norm;
    const double* yp = y.data();
    double* xp = out.eigenvector.data();
    dispatch(options.engine, n, [yp, xp, inv](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) xp[i] = yp[i] * inv;
    });

    // Periodic checkpoint, written only after the health guard above passed:
    // the last checkpoint on disk is always a finite, resumable state.  A
    // failing write degrades durability but must not kill a long solve.
    if (checkpointing && it % options.checkpoint_every == 0) {
      io::SolverCheckpoint ck;
      ck.iteration = it;
      ck.eigenvalue = out.eigenvalue;
      ck.residual = out.residual;
      ck.best_residual = best_residual;
      ck.window_start_best = window_start_best;
      ck.checks_without_progress = checks_without_progress;
      ck.eigenvector = out.eigenvector;
      try {
        if (options.checkpoint_sink) {
          options.checkpoint_sink(ck);
        } else {
          io::save_checkpoint(options.checkpoint_path, ck);
        }
      } catch (...) {
        ++out.checkpoint_failures;
      }
    }
  }

  // A non-finite exit leaves the garbage iterate in place for post-mortem
  // inspection but skips the orientation fix (flipping NaNs is meaningless).
  if (out.failure != SolverFailure::none) return out;

  // Perron orientation: the dominant eigenvector is nonnegative; flip if the
  // iteration settled on the negative representative.
  const double s = options.engine != nullptr
                       ? options.engine->reduce_sum(out.eigenvector)
                       : linalg::sum(out.eigenvector);
  if (s < 0.0) linalg::scale(out.eigenvector, -1.0);
  linalg::normalize1(out.eigenvector);
  return out;
}

}  // namespace

std::vector<double> landscape_start(const core::Landscape& landscape) {
  std::vector<double> s(landscape.values().begin(), landscape.values().end());
  linalg::normalize1(s);
  return s;
}

PowerResult power_iteration(const core::LinearOperator& op,
                            std::span<const double> start,
                            const PowerOptions& options) {
  const std::size_t n = static_cast<std::size_t>(op.dimension());
  require(n > 0, "power_iteration: empty operator");
  require(start.empty() || start.size() == n,
          "power_iteration: starting vector has wrong dimension");

  IterationState state;
  state.x.assign(n, 1.0 / static_cast<double>(n));
  if (!start.empty()) {
    linalg::copy(start, state.x);
    linalg::normalize1(state.x);
  }
  return run_power_loop(op, std::move(state), options);
}

PowerResult resume_power_iteration(const core::LinearOperator& op,
                                   const io::SolverCheckpoint& checkpoint,
                                   const PowerOptions& options) {
  const std::size_t n = static_cast<std::size_t>(op.dimension());
  require(n > 0, "resume_power_iteration: empty operator");
  require(checkpoint.eigenvector.size() == n,
          "resume_power_iteration: checkpoint dimension does not match operator");

  IterationState state;
  state.x = checkpoint.eigenvector;
  state.start_iteration = static_cast<unsigned>(checkpoint.iteration);
  state.eigenvalue = checkpoint.eigenvalue;
  state.residual = checkpoint.residual;
  state.best_residual = checkpoint.best_residual;
  state.window_start_best = checkpoint.window_start_best;
  state.checks_without_progress =
      static_cast<unsigned>(checkpoint.checks_without_progress);

  // A checkpoint is only ever written with a finite iterate, but the file
  // may come from anywhere; refuse to iterate on a poisoned start.
  for (double v : state.x) {
    if (!std::isfinite(v)) {
      PowerResult out;
      out.eigenvector = std::move(state.x);
      out.eigenvalue = state.eigenvalue;
      out.residual = state.residual;
      out.iterations = state.start_iteration;
      out.failure = SolverFailure::non_finite;
      return out;
    }
  }
  return run_power_loop(op, std::move(state), options);
}

}  // namespace qs::solvers
