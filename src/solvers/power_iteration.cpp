#include "solvers/power_iteration.hpp"

#include <cmath>
#include <utility>

#include "core/workspace.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/trace.hpp"
#include "support/contracts.hpp"

namespace qs::solvers {
namespace {

// The serial fallbacks are templated on the kernel type so that when no
// engine is configured the lambda is invoked directly and inlined.  (The
// engine path is allocation-free too: parallel::RangeKernel/PartialKernel
// are non-owning FunctionRefs, not std::functions — see
// tests/alloc_guard_test.cpp for the zero-allocation hot-path guard.)

double reduce_dot(const parallel::Engine* engine, std::span<const double> a,
                  std::span<const double> b) {
  return engine != nullptr ? engine->reduce_dot(a, b) : linalg::dot(a, b);
}

double reduce_abs_sum(const parallel::Engine* engine, std::span<const double> v) {
  return engine != nullptr ? engine->reduce_abs_sum(v) : linalg::norm1(v);
}

template <typename Kernel>
double reduce_partials(const parallel::Engine* engine, std::size_t n,
                       const Kernel& kernel) {
  return engine != nullptr ? engine->reduce_partials(n, kernel)
                           : (n == 0 ? 0.0 : kernel(0, n));
}

template <typename Kernel>
void dispatch(const parallel::Engine* engine, std::size_t n, const Kernel& kernel) {
  if (engine != nullptr) {
    engine->dispatch(n, kernel);
  } else if (n != 0) {
    kernel(0, n);
  }
}

/// The core loop, shared by cold starts and resumes.  The iterate in
/// `trace.iterate` is used verbatim (callers normalise cold starts; resumes
/// must not re-normalise or the trajectory would diverge from the original
/// run in the last bits); `driver` carries the (possibly restored)
/// stall-window accounting.
PowerResult run_power_loop(const core::LinearOperator& op, IterationTrace trace,
                           IterationDriver driver, const PowerOptions& options) {
  const std::size_t n = static_cast<std::size_t>(op.dimension());

  PowerResult out;
  out.eigenvector = std::move(trace.iterate);
  out.eigenvalue = trace.eigenvalue;
  out.residual = trace.residual;
  out.iterations = trace.start_iteration;

  // The product buffer comes from the shared workspace when one is
  // configured, so repeated solves (sweeps, recovery retries) reuse it.
  core::Workspace local_workspace;
  core::Workspace& workspace =
      options.workspace != nullptr ? *options.workspace : local_workspace;
  std::span<double> y = workspace.take(core::Workspace::Slot::product, n);

  std::span<double> x_span(out.eigenvector);
  const double mu = options.shift;

  for (unsigned it = trace.start_iteration + 1; it <= options.max_iterations; ++it) {
    QS_TRACE_SPAN_ARG("power.iteration", solver, it);
    op.apply(out.eigenvector, y);  // y = W x (unshifted product)
    out.iterations = it;

    if (driver.should_check(it, options.max_iterations)) {
      // Rayleigh quotient from the product already in hand.
      const double xx = reduce_dot(options.engine, x_span, x_span);
      const double xy = reduce_dot(options.engine, x_span, y);
      const double lambda = xy / xx;
      // Residual ||y - lambda x||_2 formed explicitly.  (The algebraically
      // equivalent sqrt(yy - xy^2/xx) cancels catastrophically: its noise
      // floor is sqrt(eps) ~ 1e-8 in eigenvector error, far above the
      // tolerances this solver targets.)
      const double* yp = y.data();
      const double* xp = out.eigenvector.data();
      const double res2 = reduce_partials(
          options.engine, n, [yp, xp, lambda](std::size_t begin, std::size_t end) {
            double acc = 0.0;
            for (std::size_t i = begin; i < end; ++i) {
              const double r = yp[i] - lambda * xp[i];
              acc += r * r;
            }
            return acc;
          });
      // Numerical-health guard: a NaN/Inf iterate makes both the Rayleigh
      // quotient and the residual non-finite.  Fail fast with a structured
      // reason instead of spinning max_iterations on garbage.
      if (!driver.guard({lambda, res2}, out)) break;
      out.eigenvalue = lambda;
      out.residual =
          std::sqrt(res2) / std::max(std::abs(lambda) * std::sqrt(xx), 1e-300);
      const IterationDriver::Verdict verdict =
          driver.observe(it, out.residual, out);
      if (verdict != IterationDriver::Verdict::proceed) {
        // A cancelled solve (deadline, disconnect, SIGTERM) flushes its
        // finite pre-update iterate — the result of iteration it-1 — so a
        // restart resumes exactly this aborted iteration.
        if (verdict == IterationDriver::Verdict::cancelled &&
            driver.checkpointing()) {
          driver.write_checkpoint(it - 1, out, out.eigenvector, it - 1);
        }
        break;
      }
    }

    // Shifted update x <- (W - mu I) x, then 1-norm normalisation; every
    // element-wise pass goes through the engine so a parallel backend covers
    // the whole iteration, not just the reductions.
    if (mu != 0.0) {
      double* yp = y.data();
      const double* xp = out.eigenvector.data();
      dispatch(options.engine, n, [yp, xp, mu](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) yp[i] -= mu * xp[i];
      });
    }
    const double norm = reduce_abs_sum(options.engine, y);
    // The 1-norm is computed every iteration anyway, so checking it for
    // NaN/Inf costs one compare and catches a poisoned product at the
    // earliest possible iteration — before it can reach a checkpoint.
    if (!driver.guard({norm}, out)) break;
    require(norm > 0.0, "power_iteration: iterate collapsed to zero");
    const double inv = 1.0 / norm;
    const double* yp = y.data();
    double* xp = out.eigenvector.data();
    dispatch(options.engine, n, [yp, xp, inv](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) xp[i] = yp[i] * inv;
    });

    // Periodic checkpoint, written only after the health guard above passed:
    // the last checkpoint on disk is always a finite, resumable state.
    driver.maybe_checkpoint(it, out, out.eigenvector, it);
  }

  // A non-finite exit leaves the garbage iterate in place for post-mortem
  // inspection but skips the orientation fix (flipping NaNs is meaningless).
  if (out.failure != SolverFailure::none) return out;

  // Perron orientation: the dominant eigenvector is nonnegative; flip if the
  // iteration settled on the negative representative.
  const double s = options.engine != nullptr
                       ? options.engine->reduce_sum(out.eigenvector)
                       : linalg::sum(out.eigenvector);
  if (s < 0.0) linalg::scale(out.eigenvector, -1.0);
  linalg::normalize1(out.eigenvector);
  return out;
}

}  // namespace

std::vector<double> landscape_start(const core::Landscape& landscape) {
  std::vector<double> s(landscape.values().begin(), landscape.values().end());
  linalg::normalize1(s);
  return s;
}

PowerResult power_iteration(const core::LinearOperator& op,
                            std::span<const double> start,
                            const PowerOptions& options) {
  const std::size_t n = static_cast<std::size_t>(op.dimension());
  require(n > 0, "power_iteration: empty operator");
  require(start.empty() || start.size() == n,
          "power_iteration: starting vector has wrong dimension");

  IterationTrace trace;
  trace.iterate.assign(n, 1.0 / static_cast<double>(n));
  if (!start.empty()) {
    linalg::copy(start, trace.iterate);
    linalg::normalize1(trace.iterate);
  }
  return run_power_loop(op, std::move(trace),
                        IterationDriver(options, io::SolverKind::power), options);
}

PowerResult resume_power_iteration(const core::LinearOperator& op,
                                   const io::SolverCheckpoint& checkpoint,
                                   const PowerOptions& options) {
  const std::size_t n = static_cast<std::size_t>(op.dimension());
  require(n > 0, "resume_power_iteration: empty operator");
  require(checkpoint.eigenvector.size() == n,
          "resume_power_iteration: checkpoint dimension does not match operator");

  IterationDriver driver(options, io::SolverKind::power);
  IterationTrace trace;
  PowerResult out;
  if (!restore_trace(checkpoint, io::SolverKind::power, trace, out)) {
    out.eigenvector = std::move(trace.iterate);
    out.eigenvalue = trace.eigenvalue;
    out.residual = trace.residual;
    out.iterations = trace.start_iteration;
    return out;
  }
  driver.restore(checkpoint);
  return run_power_loop(op, std::move(trace), std::move(driver), options);
}

}  // namespace qs::solvers
