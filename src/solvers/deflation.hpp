// Deflated power iteration: the second eigenpair and convergence
// diagnostics.
//
// Section 3 ties the power iteration's convergence rate to lambda_1 /
// lambda_0 (or (lambda_1 - mu)/(lambda_0 - mu) with the shift).  Computing
// lambda_1 itself — by power iteration on the complement of the dominant
// eigenvector — turns that statement into a *predictor*: given a target
// residual, how many iterations will a solve need, and how much does the
// conservative shift buy?  Requires the symmetric formulation so the
// deflation projector is orthogonal.
#pragma once

#include <span>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "solvers/power_iteration.hpp"

namespace qs::solvers {

/// The two leading eigenvalues and derived convergence predictions.
struct SpectralGap {
  double lambda0 = 0.0;
  double lambda1 = 0.0;

  /// Convergence ratio of the plain power iteration.
  double ratio() const { return lambda1 / lambda0; }

  /// Convergence ratio with shift mu.
  double shifted_ratio(double mu) const { return (lambda1 - mu) / (lambda0 - mu); }

  /// Iterations predicted to reduce the eigenvector error by `decades`
  /// orders of magnitude at the given ratio.
  static double predicted_iterations(double ratio, double decades);
};

/// Options for the gap computation.
struct GapOptions {
  double tolerance = 1e-11;
  unsigned max_iterations = 1000000;
};

/// Computes lambda_0 and lambda_1 of W = Q F by power iteration plus
/// deflated power iteration on the symmetric formulation.  Requires a
/// symmetric 2x2-factor mutation model.
SpectralGap spectral_gap(const core::MutationModel& model,
                         const core::Landscape& landscape,
                         const GapOptions& options = {});

}  // namespace qs::solvers
