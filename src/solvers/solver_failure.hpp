// Structured failure classification for the iterative eigensolvers.
//
// Long-running solves must not spin max_iterations on garbage: every solver
// loop checks its iterate/residual for NaN/Inf at residual-check cadence and
// fails fast with a machine-readable reason instead of returning a result
// that merely "did not converge".  The facade's graceful-degradation rule
// (solvers/quasispecies_solver) keys off this classification to decide
// whether a restart from the last good checkpoint or a shifted-to-unshifted
// fallback is worth attempting.
#pragma once

#include <string_view>

namespace qs::solvers {

/// Why a solver run ended without a usable eigenpair (or `none` if it is
/// healthy).  `stalled` convergence at the numerical floor is *not* a
/// failure — it keeps its own flag on the result structs.
enum class SolverFailure {
  none,        ///< Healthy run (converged, stalled-but-accepted, or ran out
               ///< of iterations with finite numbers).
  non_finite,  ///< NaN/Inf detected in the iterate, eigenvalue estimate, or
               ///< residual; the returned eigenpair is garbage.
  cancelled,   ///< Cooperative cancellation (IterationOptions::should_stop):
               ///< a deadline passed, a client disconnected, or the process
               ///< received a shutdown signal.  The iterate is finite but
               ///< unconverged; with checkpointing configured the final
               ///< state was flushed before the solver returned.
  unsupported, ///< The requested backend cannot run this problem class
               ///< (e.g. the distributed layer was handed a grouped mutation
               ///< model, which has no 2x2 per-site factorisation to shard).
               ///< The input is structurally valid but routed to the wrong
               ///< solver; nothing was computed.
};

/// Stable identifier for logs and CLI output.
constexpr std::string_view to_string(SolverFailure failure) {
  switch (failure) {
    case SolverFailure::non_finite:
      return "non-finite";
    case SolverFailure::cancelled:
      return "cancelled";
    case SolverFailure::unsupported:
      return "unsupported";
    case SolverFailure::none:
      break;
  }
  return "none";
}

}  // namespace qs::solvers
