#include "solvers/iteration_driver.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/contracts.hpp"
#include "support/timer.hpp"

namespace qs::solvers {
namespace {

const char* kind_name(io::SolverKind kind) {
  switch (kind) {
    case io::SolverKind::unspecified: return "power";
    case io::SolverKind::lanczos: return "lanczos";
    case io::SolverKind::arnoldi: return "arnoldi";
    case io::SolverKind::block_power: return "block_power";
    case io::SolverKind::shift_invert: return "shift_invert";
  }
  return "unknown";
}

}  // namespace

IterationDriver::IterationDriver(const IterationOptions& options,
                                 io::SolverKind kind)
    : options_(options),
      kind_(kind),
      checkpointing_((options.checkpoint_every > 0 ||
                      options.checkpoint_every_seconds > 0.0) &&
                     (options.checkpoint_sink || !options.checkpoint_path.empty())),
      best_residual_(std::numeric_limits<double>::infinity()),
      window_start_best_(std::numeric_limits<double>::infinity()),
      last_checkpoint_ns_(monotonic_ns()) {
  require(options.residual_check_every >= 1,
          "iteration driver: residual_check_every must be >= 1");
  require(options.checkpoint_every_seconds >= 0.0,
          "iteration driver: checkpoint_every_seconds must be >= 0");
}

void IterationDriver::restore(const io::SolverCheckpoint& checkpoint) {
  best_residual_ = checkpoint.best_residual;
  window_start_best_ = checkpoint.window_start_best;
  checks_without_progress_ =
      static_cast<unsigned>(checkpoint.checks_without_progress);
  // Seed the decay telemetry so a resumed run's first ratio is measured
  // against the checkpointed residual, not recorded as a cold start.
  last_residual_ = std::isfinite(checkpoint.residual) ? checkpoint.residual : 0.0;
}

bool IterationDriver::guard(std::initializer_list<double> values,
                            IterationResult& out) const {
  for (double v : values) {
    if (!std::isfinite(v)) {
      QS_TRACE_INSTANT("solver.health_guard", solver, v);
      out.failure = SolverFailure::non_finite;
      out.converged = false;
      return false;
    }
  }
  return true;
}

bool IterationDriver::guard(std::span<const double> iterate,
                            IterationResult& out) const {
  for (double v : iterate) {
    if (!std::isfinite(v)) {
      QS_TRACE_INSTANT("solver.health_guard", solver, v);
      out.failure = SolverFailure::non_finite;
      out.converged = false;
      return false;
    }
  }
  return true;
}

IterationDriver::Verdict IterationDriver::observe(unsigned iteration,
                                                  double residual,
                                                  IterationResult& out) {
  if (options_.on_residual) options_.on_residual(iteration, residual);
  obs::metrics().record_residual(residual);
  QS_TRACE_INSTANT_ARG("solver.residual", solver, residual, iteration);
  // Per-check decay ratio r_k / r_{k-1}: the distribution's p50 is the
  // observed contraction factor, and mass near/above 1.0 flags stagnation
  // before the stall window fires.  Unitless, so STATS exposes it under
  // qs_ratio rather than qs_latency_seconds.
  if (last_residual_ > 0.0 && std::isfinite(residual) && residual > 0.0) {
    static obs::Histogram& decay_hist = obs::histogram("solver.residual_decay");
    decay_hist.record(residual / last_residual_);
  }
  last_residual_ = std::isfinite(residual) ? residual : 0.0;
  if (residual <= options_.tolerance) {
    QS_TRACE_INSTANT_ARG("solver.converged", solver, residual, iteration);
    out.converged = true;
    return Verdict::converged;
  }
  // Cooperative cancellation sits after the tolerance test: a solve that
  // converged on the same check its deadline expired still reports success.
  if (options_.should_stop && options_.should_stop()) {
    QS_TRACE_INSTANT_ARG("solver.cancelled", solver, residual, iteration);
    out.converged = false;
    out.failure = SolverFailure::cancelled;
    return Verdict::cancelled;
  }
  // Stagnation: the residual has hit its numerical floor or the spectrum is
  // so clustered that progress per window is negligible.  The test is
  // window-based (best-vs-best across a whole window of checks) so that
  // jitter around the floor cannot keep resetting it.
  best_residual_ = std::min(best_residual_, residual);
  if (options_.stall_window > 0 &&
      ++checks_without_progress_ >= options_.stall_window) {
    if (best_residual_ >= window_start_best_ * 0.95) {
      QS_TRACE_INSTANT_ARG("solver.stalled", solver, best_residual_, iteration);
      out.stalled = true;
      out.converged = residual <= options_.stall_accept;
      return Verdict::stalled;
    }
    window_start_best_ = best_residual_;
    checks_without_progress_ = 0;
  }
  return Verdict::proceed;
}

void IterationDriver::maybe_checkpoint(unsigned iteration, IterationResult& out,
                                       std::span<const double> iterate,
                                       std::uint64_t matvec_count, double aux) {
  if (!checkpointing_) return;
  bool due = options_.checkpoint_every > 0 &&
             iteration % options_.checkpoint_every == 0;
  if (!due && options_.checkpoint_every_seconds > 0.0) {
    // Time cadence: read the clock only when configured, so iteration-only
    // checkpointing costs no clock call per iteration.
    const std::uint64_t now = monotonic_ns();
    due = static_cast<double>(now - last_checkpoint_ns_) * 1e-9 >=
          options_.checkpoint_every_seconds;
  }
  if (due) write_checkpoint(iteration, out, iterate, matvec_count, aux);
}

void IterationDriver::write_checkpoint(unsigned iteration, IterationResult& out,
                                       std::span<const double> iterate,
                                       std::uint64_t matvec_count, double aux) {
  QS_TRACE_SPAN_ARG("checkpoint.write", checkpoint, iteration);
  last_checkpoint_ns_ = monotonic_ns();
  io::SolverCheckpoint ck;
  ck.iteration = iteration;
  ck.eigenvalue = out.eigenvalue;
  ck.residual = out.residual;
  ck.best_residual = best_residual_;
  ck.window_start_best = window_start_best_;
  ck.checks_without_progress = checks_without_progress_;
  ck.solver_kind = kind_;
  ck.matvec_count = matvec_count;
  ck.aux = aux;
  ck.eigenvector.assign(iterate.begin(), iterate.end());
  try {
    if (options_.checkpoint_sink) {
      options_.checkpoint_sink(ck);
    } else {
      io::save_checkpoint(options_.checkpoint_path, ck);
    }
  } catch (...) {
    QS_TRACE_INSTANT_ARG("checkpoint.write_failed", checkpoint, 0.0, iteration);
    ++out.checkpoint_failures;
  }
}

bool restore_trace(const io::SolverCheckpoint& checkpoint, io::SolverKind expected,
                   IterationTrace& trace, IterationResult& out) {
  require(checkpoint.solver_kind == expected,
          std::string("resume: checkpoint was written by the '") +
              kind_name(checkpoint.solver_kind) + "' solver, not '" +
              kind_name(expected) + "'");
  trace.iterate = checkpoint.eigenvector;
  trace.start_iteration = static_cast<unsigned>(checkpoint.iteration);
  trace.eigenvalue = checkpoint.eigenvalue;
  trace.residual = checkpoint.residual;
  trace.matvec_count = checkpoint.matvec_count;
  trace.aux = checkpoint.aux;
  // A checkpoint is only ever written with a finite iterate, but the file
  // may come from anywhere; refuse to iterate on a poisoned start.
  for (double v : trace.iterate) {
    if (!std::isfinite(v)) {
      out.failure = SolverFailure::non_finite;
      out.converged = false;
      return false;
    }
  }
  return true;
}

}  // namespace qs::solvers
