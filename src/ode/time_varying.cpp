#include "ode/time_varying.hpp"

#include <vector>

#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"
#include "transforms/butterfly.hpp"

namespace qs::ode {

TimeVaryingReplicatorODE::TimeVaryingReplicatorODE(
    const core::Landscape& landscape, std::function<double(double)> rate)
    : landscape_(&landscape), rate_(std::move(rate)) {
  require(static_cast<bool>(rate_), "TimeVaryingReplicatorODE: rate callback required");
}

double TimeVaryingReplicatorODE::rate_at(double t) const {
  const double p = rate_(t);
  require(p > 0.0 && p <= 0.5,
          "TimeVaryingReplicatorODE: rate(t) must be in (0, 1/2]");
  return p;
}

double TimeVaryingReplicatorODE::derivative(double t, std::span<const double> x,
                                            std::span<double> dx) const {
  const std::size_t n = static_cast<std::size_t>(dimension());
  require(x.size() == n && dx.size() == n,
          "TimeVaryingReplicatorODE::derivative: size mismatch");
  require(x.data() != dx.data(),
          "TimeVaryingReplicatorODE::derivative: x and dx must not alias");

  const double p = rate_at(t);
  const auto f = landscape_->values();
  double phi = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    dx[i] = f[i] * x[i];
    phi += dx[i];
  }
  transforms::apply_uniform_butterfly(dx, p);  // dx = Q(p(t)) (f .* x)
  for (std::size_t i = 0; i < n; ++i) dx[i] -= phi * x[i];
  return phi;
}

void rk4_step(const TimeVaryingReplicatorODE& ode, double& t, std::span<double> x,
              double dt) {
  require(dt > 0.0, "rk4_step: step size must be positive");
  const std::size_t n = x.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);

  ode.derivative(t, x, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * dt * k1[i];
  ode.derivative(t + 0.5 * dt, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * dt * k2[i];
  ode.derivative(t + 0.5 * dt, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + dt * k3[i];
  ode.derivative(t + dt, tmp, k4);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    if (x[i] < 0.0) x[i] = 0.0;
  }
  linalg::normalize1(x);
  t += dt;
}

void integrate(const TimeVaryingReplicatorODE& ode, double& t, std::span<double> x,
               double dt, std::size_t steps) {
  for (std::size_t s = 0; s < steps; ++s) rk4_step(ode, t, x, dt);
}

}  // namespace qs::ode
