// Replicator-mutator dynamics with a time-dependent error rate.
//
// The paper's motivating application (Section 1.1) is mutagenic antiviral
// therapy: "an increase of p is possible by the use of pharmaceutical
// drugs".  A drug concentration changing over time makes p = p(t), turning
// Eq. (1) into a non-autonomous system.  The eigenvector machinery only
// covers fixed p; this integrator follows the full transient — drug ramp,
// washout, pulsed dosing — still at Theta(N log2 N) per right-hand side
// via the uniform butterfly.
#pragma once

#include <functional>
#include <span>

#include "core/landscape.hpp"

namespace qs::ode {

/// dx/dt = Q(p(t)) (f .* x) - Phi x with a caller-supplied rate schedule.
class TimeVaryingReplicatorODE {
 public:
  /// `rate(t)` must return an error rate in (0, 1/2] for every queried t.
  /// `landscape` is referenced and must outlive the ODE.
  TimeVaryingReplicatorODE(const core::Landscape& landscape,
                           std::function<double(double)> rate);

  seq_t dimension() const { return landscape_->dimension(); }
  const core::Landscape& landscape() const { return *landscape_; }

  /// The error rate at time t (validated).
  double rate_at(double t) const;

  /// dx at time t. Requires matching sizes; x and dx must not alias.
  /// Returns the mean fitness Phi.
  double derivative(double t, std::span<const double> x, std::span<double> dx) const;

 private:
  const core::Landscape* landscape_;
  std::function<double(double)> rate_;
};

/// One classic RK4 step of size dt for the non-autonomous system; advances
/// t and renormalises x onto the simplex.
void rk4_step(const TimeVaryingReplicatorODE& ode, double& t, std::span<double> x,
              double dt);

/// Fixed-step integration over [t, t + steps * dt]; t advances in place.
void integrate(const TimeVaryingReplicatorODE& ode, double& t, std::span<double> x,
               double dt, std::size_t steps);

}  // namespace qs::ode
