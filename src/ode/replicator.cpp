#include "ode/replicator.hpp"

#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"

namespace qs::ode {

ReplicatorODE::ReplicatorODE(core::MutationModel model,
                             const core::Landscape& landscape)
    : model_(std::move(model)), landscape_(&landscape) {
  require(model_.dimension() == landscape.dimension(),
          "ReplicatorODE: model and landscape dimensions differ");
}

double ReplicatorODE::derivative(std::span<const double> x,
                                 std::span<double> dx) const {
  const std::size_t n = static_cast<std::size_t>(dimension());
  require(x.size() == n && dx.size() == n, "ReplicatorODE::derivative: size mismatch");
  require(x.data() != dx.data(), "ReplicatorODE::derivative: x and dx must not alias");

  const auto f = landscape_->values();
  double phi = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    dx[i] = f[i] * x[i];
    phi += dx[i];
  }
  model_.apply(dx);  // dx = Q (f .* x)
  for (std::size_t i = 0; i < n; ++i) dx[i] -= phi * x[i];
  return phi;
}

std::vector<double> ReplicatorODE::master_start() const {
  std::vector<double> x(static_cast<std::size_t>(dimension()), 0.0);
  x[0] = 1.0;
  return x;
}

std::vector<double> ReplicatorODE::uniform_start() const {
  const std::size_t n = static_cast<std::size_t>(dimension());
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

}  // namespace qs::ode
