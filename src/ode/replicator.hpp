// Eigen's replicator-mutator ODE system (Eq. (1) of the paper).
//
//   dx_i/dt = sum_j f_j Q_{i,j} x_j - x_i Phi(t),  Phi = sum_j f_j x_j,
//
// with sum_j x_j = 1 conserved (Q is column stochastic).  The stationary
// distribution of this flow is the dominant eigenvector of W = Q F — the
// quasispecies — which makes direct time integration the independent
// ground truth the eigensolvers are validated against.  The right-hand side
// rides on the fast mutation matrix product, so even the ODE runs in
// Theta(N log2 N) per evaluation.
#pragma once

#include <span>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"

namespace qs::ode {

/// The replicator-mutator vector field.
class ReplicatorODE {
 public:
  /// `model` is copied; `landscape` is referenced and must outlive the ODE.
  ReplicatorODE(core::MutationModel model, const core::Landscape& landscape);

  seq_t dimension() const { return model_.dimension(); }
  const core::MutationModel& model() const { return model_; }
  const core::Landscape& landscape() const { return *landscape_; }

  /// dx = Q (f .* x) - Phi x with Phi = sum_j f_j x_j. Requires matching
  /// sizes; x and dx must not alias.  Returns Phi (the mean fitness).
  double derivative(std::span<const double> x, std::span<double> dx) const;

  /// The simplex-corner initial condition of the model: x_0 = 1 (only the
  /// master sequence present).
  std::vector<double> master_start() const;

  /// Uniform initial condition x_i = 1/N.
  std::vector<double> uniform_start() const;

 private:
  core::MutationModel model_;
  const core::Landscape* landscape_;
};

}  // namespace qs::ode
