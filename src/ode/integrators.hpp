// Time integrators for the replicator-mutator flow.
//
// Two integrators cover the validation needs: classic fixed-step RK4 (cheap
// and sufficient on the smooth, contracting quasispecies flow) and an
// adaptive embedded Runge-Kutta-Fehlberg 4(5) that picks its own steps.
// integrate_to_stationary drives either until ||dx/dt|| drops below a
// threshold — the resulting state is the quasispecies distribution.
#pragma once

#include <span>
#include <vector>

#include "ode/replicator.hpp"

namespace qs::ode {

/// One classic RK4 step of size dt, in place. Needs no persistent state.
/// Renormalises x to the probability simplex afterwards (the flow conserves
/// sum x_i exactly; renormalisation removes integration drift).
void rk4_step(const ReplicatorODE& ode, std::span<double> x, double dt);

/// Fixed-step RK4 over `steps` steps of size dt.
void integrate_fixed(const ReplicatorODE& ode, std::span<double> x, double dt,
                     std::size_t steps);

/// Options for adaptive integration.
struct AdaptiveOptions {
  double abs_tol = 1e-10;    ///< Per-step max-norm error target.
  double initial_dt = 1e-2;
  double min_dt = 1e-8;
  double max_dt = 10.0;
};

/// One adaptive RKF45 step: advances x by an accepted step, updates dt for
/// the next call, and returns the step size actually taken.
double rkf45_step(const ReplicatorODE& ode, std::span<double> x, double& dt,
                  const AdaptiveOptions& options = {});

/// Options and result for stationary-state integration.
struct StationaryOptions {
  double derivative_tol = 1e-12;  ///< ||dx/dt||_inf threshold.
  double max_time = 1e6;
  bool adaptive = true;           ///< RKF45 when true, RK4 otherwise.
  double dt = 1e-1;               ///< Fixed step (RK4) or initial step (RKF45).
};

struct StationaryResult {
  double time = 0.0;              ///< Integrated time at exit.
  std::size_t steps = 0;          ///< Accepted steps.
  double derivative_norm = 0.0;   ///< ||dx/dt||_inf at exit.
  double mean_fitness = 0.0;      ///< Phi at exit = dominant eigenvalue of W.
  bool converged = false;
};

/// Integrates x (modified in place) until the flow is stationary.  At the
/// fixed point, Phi equals the dominant eigenvalue lambda_0 of W and x is
/// the quasispecies distribution.
StationaryResult integrate_to_stationary(const ReplicatorODE& ode,
                                         std::span<double> x,
                                         const StationaryOptions& options = {});

}  // namespace qs::ode
