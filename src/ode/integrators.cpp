#include "ode/integrators.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"

namespace qs::ode {
namespace {

/// Projects x back onto the probability simplex (clamp tiny negatives from
/// rounding, renormalise the 1-norm).
void renormalize(std::span<double> x) {
  for (double& v : x) {
    if (v < 0.0) v = 0.0;
  }
  linalg::normalize1(x);
}

}  // namespace

void rk4_step(const ReplicatorODE& ode, std::span<double> x, double dt) {
  const std::size_t n = x.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);

  ode.derivative(x, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * dt * k1[i];
  ode.derivative(tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + 0.5 * dt * k2[i];
  ode.derivative(tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + dt * k3[i];
  ode.derivative(tmp, k4);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
  renormalize(x);
}

void integrate_fixed(const ReplicatorODE& ode, std::span<double> x, double dt,
                     std::size_t steps) {
  require(dt > 0.0, "integrate_fixed: step size must be positive");
  for (std::size_t s = 0; s < steps; ++s) rk4_step(ode, x, dt);
}

double rkf45_step(const ReplicatorODE& ode, std::span<double> x, double& dt,
                  const AdaptiveOptions& options) {
  require(dt > 0.0, "rkf45_step: step size must be positive");
  const std::size_t n = x.size();

  // Fehlberg 4(5) tableau.
  static constexpr double a2 = 1.0 / 4.0;
  static constexpr double b31 = 3.0 / 32.0, b32 = 9.0 / 32.0;
  static constexpr double b41 = 1932.0 / 2197.0, b42 = -7200.0 / 2197.0,
                          b43 = 7296.0 / 2197.0;
  static constexpr double b51 = 439.0 / 216.0, b52 = -8.0, b53 = 3680.0 / 513.0,
                          b54 = -845.0 / 4104.0;
  static constexpr double b61 = -8.0 / 27.0, b62 = 2.0, b63 = -3544.0 / 2565.0,
                          b64 = 1859.0 / 4104.0, b65 = -11.0 / 40.0;
  static constexpr double c41 = 25.0 / 216.0, c43 = 1408.0 / 2565.0,
                          c44 = 2197.0 / 4104.0, c45 = -1.0 / 5.0;
  static constexpr double c51 = 16.0 / 135.0, c53 = 6656.0 / 12825.0,
                          c54 = 28561.0 / 56430.0, c55 = -9.0 / 50.0,
                          c56 = 2.0 / 55.0;

  std::vector<double> k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), tmp(n);
  ode.derivative(x, k1);

  for (;;) {
    for (std::size_t i = 0; i < n; ++i) tmp[i] = x[i] + dt * a2 * k1[i];
    ode.derivative(tmp, k2);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = x[i] + dt * (b31 * k1[i] + b32 * k2[i]);
    }
    ode.derivative(tmp, k3);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = x[i] + dt * (b41 * k1[i] + b42 * k2[i] + b43 * k3[i]);
    }
    ode.derivative(tmp, k4);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = x[i] + dt * (b51 * k1[i] + b52 * k2[i] + b53 * k3[i] + b54 * k4[i]);
    }
    ode.derivative(tmp, k5);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = x[i] + dt * (b61 * k1[i] + b62 * k2[i] + b63 * k3[i] + b64 * k4[i] +
                            b65 * k5[i]);
    }
    ode.derivative(tmp, k6);

    // 4th-order solution and embedded 5th-order error estimate.
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double y4 = x[i] + dt * (c41 * k1[i] + c43 * k3[i] + c44 * k4[i] +
                                     c45 * k5[i]);
      const double y5 = x[i] + dt * (c51 * k1[i] + c53 * k3[i] + c54 * k4[i] +
                                     c55 * k5[i] + c56 * k6[i]);
      tmp[i] = y4;
      err = std::max(err, std::abs(y5 - y4));
    }

    if (err <= options.abs_tol || dt <= options.min_dt) {
      // Accept.
      const double taken = dt;
      for (std::size_t i = 0; i < n; ++i) x[i] = tmp[i];
      renormalize(x);
      // Step-size controller (safety factor 0.9, order-4 exponent).
      const double scale =
          (err > 0.0) ? 0.9 * std::pow(options.abs_tol / err, 0.25) : 2.0;
      dt = std::clamp(dt * std::clamp(scale, 0.2, 2.0), options.min_dt,
                      options.max_dt);
      return taken;
    }
    // Reject and retry with a smaller step.
    const double scale = 0.9 * std::pow(options.abs_tol / err, 0.25);
    dt = std::max(dt * std::clamp(scale, 0.1, 0.9), options.min_dt);
  }
}

StationaryResult integrate_to_stationary(const ReplicatorODE& ode,
                                         std::span<double> x,
                                         const StationaryOptions& options) {
  require(options.dt > 0.0, "integrate_to_stationary: step size must be positive");
  const std::size_t n = x.size();
  std::vector<double> dx(n);

  StationaryResult out;
  double dt = options.dt;
  AdaptiveOptions adaptive;
  adaptive.initial_dt = options.dt;
  // The state can only settle to within the integrator's per-step error of
  // the fixed point, so the step error target must sit safely below the
  // stationarity threshold or the iterate bounces around equilibrium at
  // amplitude ~abs_tol forever.
  adaptive.abs_tol = std::min(adaptive.abs_tol, 0.01 * options.derivative_tol);

  while (out.time < options.max_time) {
    out.mean_fitness = ode.derivative(x, dx);
    out.derivative_norm = linalg::norm_inf(dx);
    if (out.derivative_norm <= options.derivative_tol) {
      out.converged = true;
      return out;
    }
    if (options.adaptive) {
      out.time += rkf45_step(ode, x, dt, adaptive);
    } else {
      rk4_step(ode, x, options.dt);
      out.time += options.dt;
    }
    ++out.steps;
  }
  out.mean_fitness = ode.derivative(x, dx);
  out.derivative_norm = linalg::norm_inf(dx);
  out.converged = out.derivative_norm <= options.derivative_tol;
  return out;
}

}  // namespace qs::ode
