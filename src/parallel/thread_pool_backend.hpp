// Standard-library thread-pool backend.
//
// A dependency-free alternative to the OpenMP backend for toolchains built
// without OpenMP: persistent worker threads woken per dispatch, barrier
// semantics on return, contiguous chunk partitioning identical to the
// OpenMP backend's.  Reductions fan out per-thread partials and combine on
// the calling thread.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/engine.hpp"

namespace qs::parallel {

class ThreadPoolBackend final : public Engine {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency).
  explicit ThreadPoolBackend(unsigned threads = 0);
  ~ThreadPoolBackend() override;

  ThreadPoolBackend(const ThreadPoolBackend&) = delete;
  ThreadPoolBackend& operator=(const ThreadPoolBackend&) = delete;

  std::string_view name() const override { return "thread-pool"; }
  unsigned concurrency() const override;
  void dispatch(std::size_t n, const RangeKernel& kernel) const override;
  double reduce_sum(std::span<const double> v) const override;
  double reduce_abs_sum(std::span<const double> v) const override;
  double reduce_sum_squares(std::span<const double> v) const override;
  double reduce_dot(std::span<const double> a, std::span<const double> b) const override;
  double reduce_partials(std::size_t n, const PartialKernel& kernel) const override;

 private:
  /// One per-lane partial slot, padded to a cache line: the lanes' final
  /// stores land on distinct lines instead of ping-ponging one shared line
  /// between cores (false sharing).
  struct alignas(64) PaddedPartial {
    double value = 0.0;
  };
  /// Runs `task(worker_index)` on every worker plus the calling thread and
  /// waits for completion (one generation of the barrier protocol).
  void run_on_all(const std::function<void(unsigned)>& task) const;

  void worker_loop(unsigned index);

  unsigned worker_count_;  // workers excluding the calling thread
  mutable std::mutex mutex_;
  mutable std::condition_variable wake_;
  mutable std::condition_variable done_;
  mutable const std::function<void(unsigned)>* current_task_ = nullptr;
  mutable std::uint64_t generation_ = 0;
  mutable unsigned remaining_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace qs::parallel
