#include "parallel/openmp_backend.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <mutex>

#include "obs/trace.hpp"
#include "support/contracts.hpp"

#if defined(QS_HAVE_OPENMP)
#include <omp.h>
#endif

namespace qs::parallel {

#if defined(QS_HAVE_OPENMP)

namespace {

/// First-exception capture for kernel bodies running inside an OpenMP
/// region: an exception escaping a structured block is undefined behaviour
/// (in practice std::terminate), so each lane traps its own, the first one
/// wins, the region completes its barrier, and the dispatching thread
/// rethrows after the region.
class FirstException {
 public:
  void capture() noexcept {
    std::lock_guard lock(mutex_);
    if (!error_) error_ = std::current_exception();
  }
  void rethrow_if_set() const {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::mutex mutex_;
  std::exception_ptr error_;
};

}  // namespace

std::string_view OpenMPBackend::name() const { return "openmp"; }

unsigned OpenMPBackend::concurrency() const {
  return static_cast<unsigned>(omp_get_max_threads());
}

void OpenMPBackend::dispatch(std::size_t n, const RangeKernel& kernel) const {
  if (n == 0) return;
  QS_TRACE_COUNTER("engine.dispatch", 1);
  FirstException error;
  // One contiguous chunk per thread; contiguous partitions keep the
  // butterfly kernels' memory access streaming within each lane.
#pragma omp parallel
  {
    const std::size_t threads = static_cast<std::size_t>(omp_get_num_threads());
    const std::size_t tid = static_cast<std::size_t>(omp_get_thread_num());
    const std::size_t chunk = (n + threads - 1) / threads;
    const std::size_t begin = std::min(tid * chunk, n);
    const std::size_t end = std::min(begin + chunk, n);
    if (begin < end) {
      QS_TRACE_SPAN_ARG("engine.worker", engine, tid);
      try {
        kernel(begin, end);
      } catch (...) {
        error.capture();
      }
    }
  }
  error.rethrow_if_set();
}

double OpenMPBackend::reduce_sum(std::span<const double> v) const {
  double acc = 0.0;
  const double* data = v.data();
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(v.size());
#pragma omp parallel for reduction(+ : acc) schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) acc += data[i];
  return acc;
}

double OpenMPBackend::reduce_abs_sum(std::span<const double> v) const {
  double acc = 0.0;
  const double* data = v.data();
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(v.size());
#pragma omp parallel for reduction(+ : acc) schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) acc += std::abs(data[i]);
  return acc;
}

double OpenMPBackend::reduce_sum_squares(std::span<const double> v) const {
  double acc = 0.0;
  const double* data = v.data();
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(v.size());
#pragma omp parallel for reduction(+ : acc) schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) acc += data[i] * data[i];
  return acc;
}

double OpenMPBackend::reduce_dot(std::span<const double> a,
                                 std::span<const double> b) const {
  require(a.size() == b.size(), "reduce_dot: dimension mismatch");
  double acc = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(a.size());
#pragma omp parallel for reduction(+ : acc) schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) acc += pa[i] * pb[i];
  return acc;
}

double OpenMPBackend::reduce_partials(std::size_t n, const PartialKernel& kernel) const {
  if (n == 0) return 0.0;
  QS_TRACE_COUNTER("engine.reduce_partials", 1);
  double acc = 0.0;
  FirstException error;
  // Same contiguous per-thread chunking as dispatch(), partials combined by
  // the OpenMP reduction clause.
#pragma omp parallel reduction(+ : acc)
  {
    const std::size_t threads = static_cast<std::size_t>(omp_get_num_threads());
    const std::size_t tid = static_cast<std::size_t>(omp_get_thread_num());
    const std::size_t chunk = (n + threads - 1) / threads;
    const std::size_t begin = std::min(tid * chunk, n);
    const std::size_t end = std::min(begin + chunk, n);
    if (begin < end) {
      try {
        acc += kernel(begin, end);
      } catch (...) {
        error.capture();
      }
    }
  }
  error.rethrow_if_set();
  return acc;
}

#else  // !QS_HAVE_OPENMP — degrade gracefully to the serial implementation.

std::string_view OpenMPBackend::name() const { return "serial"; }

unsigned OpenMPBackend::concurrency() const { return 1; }

void OpenMPBackend::dispatch(std::size_t n, const RangeKernel& kernel) const {
  if (n == 0) return;
  kernel(0, n);
}

double OpenMPBackend::reduce_sum(std::span<const double> v) const {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

double OpenMPBackend::reduce_abs_sum(std::span<const double> v) const {
  double acc = 0.0;
  for (double x : v) acc += std::abs(x);
  return acc;
}

double OpenMPBackend::reduce_sum_squares(std::span<const double> v) const {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return acc;
}

double OpenMPBackend::reduce_dot(std::span<const double> a,
                                 std::span<const double> b) const {
  require(a.size() == b.size(), "reduce_dot: dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double OpenMPBackend::reduce_partials(std::size_t n, const PartialKernel& kernel) const {
  return n == 0 ? 0.0 : kernel(0, n);
}

#endif

}  // namespace qs::parallel
