// Kernel-dispatch execution engine: the repo's stand-in for the paper's
// OpenCL/GPU runtime.
//
// The paper's GPU implementation (Section 4) launches, per butterfly level,
// a kernel over N/2 independent work items and synchronises between levels;
// the host loop owns the level iteration.  This engine reproduces exactly
// that structure on the CPU: dispatch(n, kernel) runs a 1-D index space with
// barrier semantics (all work items complete before dispatch returns), and
// reductions cover the norm/residual computations the power iteration needs
// between products.  Backends: a serial one (the "single CPU core" reference
// of the paper's Figure 2) and an OpenMP one (the "parallel hardware" axis
// of Figure 4).  See DESIGN.md, "Substitutions".
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string_view>
#include <type_traits>

namespace qs::parallel {

/// Non-owning callable reference: a pointer to the callee plus a trampoline,
/// so binding a lambda never heap-allocates — unlike std::function, whose
/// small-buffer optimisation the capture lists of the banded kernels exceed,
/// which would put an allocation on every dispatch of the solver hot path
/// (see tests/alloc_guard_test.cpp).  Safe for the Engine interface because
/// dispatch/reduce_partials have barrier semantics: the kernel is only ever
/// invoked while the caller's callable is alive; backends must not retain it
/// past the call.
template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function — call sites pass lambdas directly.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              static_cast<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, static_cast<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

/// A chunk of a 1-D index space: the kernel body is invoked as
/// body(begin, end) and must process every index in [begin, end).
/// Passing ranges instead of single indices keeps dispatch overhead
/// negligible next to memory-bound kernel bodies.
using RangeKernel = FunctionRef<void(std::size_t begin, std::size_t end)>;

/// A partial reduction over a chunk of a 1-D index space: the body returns
/// the partial sum for [begin, end).  Lets callers run arbitrary fused
/// element-wise reductions (e.g. ||y - lambda x||^2) through the backend
/// without materialising a scratch vector.
using PartialKernel = FunctionRef<double(std::size_t begin, std::size_t end)>;

/// Abstract execution backend with kernel-launch semantics.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Human-readable backend name ("serial", "openmp").
  virtual std::string_view name() const = 0;

  /// Number of hardware lanes the backend will use.
  virtual unsigned concurrency() const = 0;

  /// Executes `kernel` over the index space [0, n) and returns when every
  /// index has been processed (barrier semantics, like clFinish after a
  /// kernel launch). Chunking is backend-defined; the kernel must be safe
  /// to run concurrently on disjoint ranges.
  ///
  /// Exception safety (all backends): if a kernel body throws on any lane,
  /// the first exception is captured, the barrier still completes (every
  /// other lane finishes its chunk), and the exception is rethrown on the
  /// dispatching thread.  The engine remains usable afterwards.  The same
  /// contract holds for reduce_partials; the partial sum is then discarded.
  virtual void dispatch(std::size_t n, const RangeKernel& kernel) const = 0;

  /// Parallel reduction: sum of entries.
  virtual double reduce_sum(std::span<const double> v) const = 0;

  /// Parallel reduction: sum of absolute values (1-norm).
  virtual double reduce_abs_sum(std::span<const double> v) const = 0;

  /// Parallel reduction: sum of squares (squared 2-norm).
  virtual double reduce_sum_squares(std::span<const double> v) const = 0;

  /// Parallel reduction: inner product. Requires equal lengths.
  virtual double reduce_dot(std::span<const double> a,
                            std::span<const double> b) const = 0;

  /// Generic parallel reduction: sums the per-chunk partials of `kernel`
  /// over the index space [0, n).  The kernel must be safe to run
  /// concurrently on disjoint ranges; the combination order of partials is
  /// backend-defined (like any floating-point parallel reduction).
  virtual double reduce_partials(std::size_t n, const PartialKernel& kernel) const = 0;
};

/// Available backend kinds.
enum class Backend {
  serial,
  openmp,
  thread_pool,
};

/// Creates a fresh engine of the given kind. The OpenMP kind degrades to a
/// serial engine (with name "serial") when the library was built without
/// OpenMP support; the thread-pool kind is always genuinely multi-threaded
/// (std::thread only).
std::unique_ptr<Engine> make_engine(Backend kind);

/// Process-lifetime serial engine (always available).
const Engine& serial_engine();

/// Process-lifetime parallel engine: OpenMP when available, otherwise the
/// serial engine.
const Engine& parallel_engine();

}  // namespace qs::parallel
