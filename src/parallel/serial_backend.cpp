#include "parallel/serial_backend.hpp"

#include <cmath>

#include "obs/trace.hpp"
#include "support/contracts.hpp"

namespace qs::parallel {

void SerialBackend::dispatch(std::size_t n, const RangeKernel& kernel) const {
  if (n == 0) return;
  QS_TRACE_COUNTER("engine.dispatch", 1);
  QS_TRACE_SPAN_ARG("engine.worker", engine, 0);
  // Single inline chunk: a throwing kernel body propagates directly to the
  // caller, which is exactly the Engine exception-safety contract.
  kernel(0, n);
}

double SerialBackend::reduce_sum(std::span<const double> v) const {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

double SerialBackend::reduce_abs_sum(std::span<const double> v) const {
  double acc = 0.0;
  for (double x : v) acc += std::abs(x);
  return acc;
}

double SerialBackend::reduce_sum_squares(std::span<const double> v) const {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return acc;
}

double SerialBackend::reduce_dot(std::span<const double> a,
                                 std::span<const double> b) const {
  require(a.size() == b.size(), "reduce_dot: dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double SerialBackend::reduce_partials(std::size_t n, const PartialKernel& kernel) const {
  if (n == 0) return 0.0;
  QS_TRACE_COUNTER("engine.reduce_partials", 1);
  return kernel(0, n);
}

}  // namespace qs::parallel
