// Serial reference backend: runs every kernel as one chunk on the calling
// thread. This is the "single CPU core" platform of the paper's Figure 2.
#pragma once

#include "parallel/engine.hpp"

namespace qs::parallel {

class SerialBackend final : public Engine {
 public:
  std::string_view name() const override { return "serial"; }
  unsigned concurrency() const override { return 1; }
  void dispatch(std::size_t n, const RangeKernel& kernel) const override;
  double reduce_sum(std::span<const double> v) const override;
  double reduce_abs_sum(std::span<const double> v) const override;
  double reduce_sum_squares(std::span<const double> v) const override;
  double reduce_dot(std::span<const double> a, std::span<const double> b) const override;
  double reduce_partials(std::size_t n, const PartialKernel& kernel) const override;
};

}  // namespace qs::parallel
