#include "parallel/engine.hpp"

#include "parallel/openmp_backend.hpp"
#include "parallel/serial_backend.hpp"
#include "parallel/thread_pool_backend.hpp"

namespace qs::parallel {

std::unique_ptr<Engine> make_engine(Backend kind) {
  switch (kind) {
    case Backend::openmp:
      return std::make_unique<OpenMPBackend>();
    case Backend::thread_pool:
      return std::make_unique<ThreadPoolBackend>();
    case Backend::serial:
    default:
      return std::make_unique<SerialBackend>();
  }
}

const Engine& serial_engine() {
  static const SerialBackend instance;
  return instance;
}

const Engine& parallel_engine() {
  static const OpenMPBackend instance;
  return instance;
}

}  // namespace qs::parallel
