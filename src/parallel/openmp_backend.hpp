// OpenMP shared-memory backend: the repo's stand-in for the paper's GPU
// (see DESIGN.md, "Substitutions").  dispatch() partitions the index space
// into per-thread chunks exactly as an OpenCL runtime partitions a 1-D
// NDRange into work groups; the implicit barrier at the end of the parallel
// region plays the role of the inter-kernel synchronisation between
// butterfly levels.
#pragma once

#include "parallel/engine.hpp"

namespace qs::parallel {

class OpenMPBackend final : public Engine {
 public:
  std::string_view name() const override;
  unsigned concurrency() const override;
  void dispatch(std::size_t n, const RangeKernel& kernel) const override;
  double reduce_sum(std::span<const double> v) const override;
  double reduce_abs_sum(std::span<const double> v) const override;
  double reduce_sum_squares(std::span<const double> v) const override;
  double reduce_dot(std::span<const double> a, std::span<const double> b) const override;
  double reduce_partials(std::size_t n, const PartialKernel& kernel) const override;
};

}  // namespace qs::parallel
