#include "parallel/thread_pool_backend.hpp"

#include <algorithm>
#include <cmath>
#include <exception>

#include "obs/trace.hpp"
#include "support/contracts.hpp"

namespace qs::parallel {

ThreadPoolBackend::ThreadPoolBackend(unsigned threads) {
  unsigned total = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (total == 0) total = 1;
  // The calling thread participates in every dispatch, so spawn one fewer.
  worker_count_ = total - 1;
  workers_.reserve(worker_count_);
  for (unsigned i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPoolBackend::~ThreadPoolBackend() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

unsigned ThreadPoolBackend::concurrency() const { return worker_count_ + 1; }

void ThreadPoolBackend::worker_loop(unsigned index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(unsigned)>* task = nullptr;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [&] {
        return shutting_down_ || generation_ != seen_generation;
      });
      if (shutting_down_) return;
      seen_generation = generation_;
      task = current_task_;
    }
    (*task)(index);
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) done_.notify_one();
    }
  }
}

void ThreadPoolBackend::run_on_all(const std::function<void(unsigned)>& task) const {
  // Exception safety: a kernel body that throws on any lane must not kill
  // the process (an exception escaping a worker's thread function would
  // std::terminate) and must not skip the barrier (the calling thread
  // throwing past the done_ wait would leave workers racing a dead task
  // pointer).  Each lane traps into a first-wins slot, the barrier always
  // completes, and the first exception is rethrown here, on the dispatching
  // thread.  The slot is local to this call: the barrier guarantees every
  // lane is done with it before run_on_all returns.
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::function<void(unsigned)> guarded = [&](unsigned lane) {
    QS_TRACE_SPAN_ARG("engine.worker", engine, lane);
    try {
      task(lane);
    } catch (...) {
      std::lock_guard lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  if (worker_count_ == 0) {
    guarded(0);
  } else {
    {
      std::lock_guard lock(mutex_);
      current_task_ = &guarded;
      remaining_ = worker_count_;
      ++generation_;
    }
    wake_.notify_all();
    guarded(worker_count_);  // the calling thread takes the last lane
    QS_TRACE_COUNTER_SCOPE_NS("engine.barrier_wait_ns");
    std::unique_lock lock(mutex_);
    done_.wait(lock, [&] { return remaining_ == 0; });
    current_task_ = nullptr;
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPoolBackend::dispatch(std::size_t n, const RangeKernel& kernel) const {
  if (n == 0) return;
  QS_TRACE_COUNTER("engine.dispatch", 1);
  const std::size_t lanes = concurrency();
  const std::size_t chunk = (n + lanes - 1) / lanes;
  run_on_all([&](unsigned lane) {
    const std::size_t begin = std::min<std::size_t>(lane * chunk, n);
    const std::size_t end = std::min<std::size_t>(begin + chunk, n);
    if (begin < end) kernel(begin, end);
  });
}

double ThreadPoolBackend::reduce_partials(std::size_t n, const PartialKernel& kernel) const {
  if (n == 0) return 0.0;
  QS_TRACE_COUNTER("engine.reduce_partials", 1);
  const std::size_t lanes = concurrency();
  std::vector<PaddedPartial> partial(lanes);
  const std::size_t chunk = (n + lanes - 1) / lanes;
  run_on_all([&](unsigned lane) {
    const std::size_t begin = std::min<std::size_t>(lane * chunk, n);
    const std::size_t end = std::min<std::size_t>(begin + chunk, n);
    if (begin < end) partial[lane].value = kernel(begin, end);
  });
  double total = 0.0;
  for (const PaddedPartial& p : partial) total += p.value;
  return total;
}

double ThreadPoolBackend::reduce_sum(std::span<const double> v) const {
  return reduce_partials(v.size(), [&v](std::size_t begin, std::size_t end) {
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += v[i];
    return acc;
  });
}

double ThreadPoolBackend::reduce_abs_sum(std::span<const double> v) const {
  return reduce_partials(v.size(), [&v](std::size_t begin, std::size_t end) {
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += std::abs(v[i]);
    return acc;
  });
}

double ThreadPoolBackend::reduce_sum_squares(std::span<const double> v) const {
  return reduce_partials(v.size(), [&v](std::size_t begin, std::size_t end) {
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += v[i] * v[i];
    return acc;
  });
}

double ThreadPoolBackend::reduce_dot(std::span<const double> a,
                                     std::span<const double> b) const {
  require(a.size() == b.size(), "reduce_dot: dimension mismatch");
  return reduce_partials(a.size(), [&a, &b](std::size_t begin, std::size_t end) {
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += a[i] * b[i];
    return acc;
  });
}

}  // namespace qs::parallel
