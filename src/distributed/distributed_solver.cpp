#include "distributed/distributed_solver.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "obs/trace.hpp"
#include "support/contracts.hpp"
#include "transforms/butterfly.hpp"

namespace qs::distributed {

DistributedVector::DistributedVector(const BlockLayout& layout)
    : layout_(&layout),
      blocks_(layout.rank_count(), std::vector<double>(layout.block_size(), 0.0)) {}

DistributedVector DistributedVector::scatter(const BlockLayout& layout,
                                             std::span<const double> global) {
  require(global.size() == layout.block_size() * layout.rank_count(),
          "DistributedVector::scatter: dimension mismatch");
  DistributedVector out(layout);
  for (unsigned rank = 0; rank < layout.rank_count(); ++rank) {
    const auto begin = global.begin() + static_cast<std::ptrdiff_t>(
                                            layout.block_begin(rank));
    std::copy(begin, begin + static_cast<std::ptrdiff_t>(layout.block_size()),
              out.blocks_[rank].begin());
  }
  return out;
}

std::vector<double> DistributedVector::gather() const {
  std::vector<double> global(layout_->block_size() * layout_->rank_count());
  for (unsigned rank = 0; rank < layout_->rank_count(); ++rank) {
    std::copy(blocks_[rank].begin(), blocks_[rank].end(),
              global.begin() +
                  static_cast<std::ptrdiff_t>(layout_->block_begin(rank)));
  }
  return global;
}

void distributed_apply_w(const core::MutationModel& model,
                         const core::Landscape& landscape, DistributedVector& v,
                         TrafficStats& stats) {
  const BlockLayout& layout = v.layout();
  require(model.nu() == layout.nu(), "distributed_apply_w: model nu mismatch");
  require(landscape.dimension() == sequence_count(layout.nu()),
          "distributed_apply_w: landscape dimension mismatch");
  require(model.kind() != core::MutationKind::grouped,
          "distributed_apply_w: 2x2-factor models only");

  const auto& sites = model.site_factors();
  const std::size_t block = layout.block_size();
  const unsigned ranks = layout.rank_count();
  const auto f = landscape.values();

  // Superstep 1 (fully local): diagonal fitness scaling, then every
  // butterfly level whose stride stays inside a block.
  QS_TRACE_SPAN("dist.local_levels", distributed);
  for (unsigned rank = 0; rank < ranks; ++rank) {
    auto mine = v.block(rank);
    const std::size_t begin = layout.block_begin(rank);
    for (std::size_t t = 0; t < block; ++t) mine[t] *= f[begin + t];
    for (unsigned k = 0; layout.level_is_local(std::size_t{1} << k); ++k) {
      transforms::apply_butterfly_level(mine, sites[k], k);
    }
  }

  // Supersteps 2..: one pairwise block exchange per cross-rank level.  The
  // lower rank of each pair holds the stride-offset "t1" entries, its
  // partner the "t2" entries, at identical offsets within their blocks.
  std::vector<double> partner_copy(block);
  for (unsigned k = layout.rank_bits() == 0 ? model.nu() : 0; k < model.nu(); ++k) {
    const std::size_t stride = std::size_t{1} << k;
    if (layout.level_is_local(stride)) continue;
    QS_TRACE_SPAN_ARG("dist.exchange_level", distributed, k);
    QS_TRACE_COUNTER("dist.exchange_messages", 2 * (ranks / 2));
    const transforms::Factor2& factor = sites[k];
    for (unsigned lo = 0; lo < ranks; ++lo) {
      const unsigned hi = layout.partner(lo, stride);
      if (hi < lo) continue;  // visit each pair once, from the lower rank
      auto low_block = v.block(lo);
      auto high_block = v.block(hi);
      // Simulated MPI_Sendrecv: both ranks ship their block to the partner.
      stats.messages += 2;
      stats.doubles_moved += 2 * block;
      std::copy(high_block.begin(), high_block.end(), partner_copy.begin());
      for (std::size_t t = 0; t < block; ++t) {
        const double t1 = low_block[t];
        const double t2 = partner_copy[t];
        low_block[t] = factor.m00 * t1 + factor.m01 * t2;
        high_block[t] = factor.m10 * t1 + factor.m11 * t2;
      }
    }
  }
}

DistributedPowerResult distributed_power_iteration(
    const core::MutationModel& model, const core::Landscape& landscape,
    unsigned rank_count, const DistributedPowerOptions& options) {
  const BlockLayout layout(model.nu(), rank_count);
  require(landscape.dimension() == model.dimension(),
          "distributed_power_iteration: dimension mismatch");

  DistributedPowerResult out;
  const unsigned ranks = layout.rank_count();
  const std::size_t block = layout.block_size();

  // Start: the landscape itself, 1-norm normalised (paper's choice).
  std::vector<double> start(landscape.values().begin(), landscape.values().end());
  linalg::normalize1(start);
  DistributedVector x = DistributedVector::scatter(layout, start);
  DistributedVector y(layout);

  // Simulated allreduce: per-rank partials summed across ranks.
  auto allreduce = [&](auto&& per_rank_partial) {
    QS_TRACE_COUNTER("dist.allreduce", 1);
    double total = 0.0;
    for (unsigned rank = 0; rank < ranks; ++rank) total += per_rank_partial(rank);
    ++out.traffic.allreduce_calls;
    return total;
  };

  for (unsigned it = 1; it <= options.max_iterations; ++it) {
    // y = W x.
    for (unsigned rank = 0; rank < ranks; ++rank) {
      std::copy(x.block(rank).begin(), x.block(rank).end(), y.block(rank).begin());
    }
    distributed_apply_w(model, landscape, y, out.traffic);
    out.iterations = it;

    const double xx = allreduce([&](unsigned rank) {
      return linalg::dot(x.block(rank), x.block(rank));
    });
    const double xy = allreduce([&](unsigned rank) {
      return linalg::dot(x.block(rank), y.block(rank));
    });
    const double lambda = xy / xx;
    const double res2 = allreduce([&](unsigned rank) {
      double acc = 0.0;
      const auto xb = x.block(rank);
      const auto yb = y.block(rank);
      for (std::size_t t = 0; t < block; ++t) {
        const double r = yb[t] - lambda * xb[t];
        acc += r * r;
      }
      return acc;
    });
    out.eigenvalue = lambda;
    out.residual =
        std::sqrt(std::max(res2, 0.0)) / std::max(std::abs(lambda) * std::sqrt(xx), 1e-300);
    if (out.residual <= options.tolerance) {
      out.converged = true;
      break;
    }

    // x <- (y - mu x) / ||.||_1, with the norm via allreduce.
    const double mu = options.shift;
    const double norm1 = allreduce([&](unsigned rank) {
      double acc = 0.0;
      const auto xb = x.block(rank);
      auto yb = y.block(rank);
      for (std::size_t t = 0; t < block; ++t) {
        yb[t] -= mu * xb[t];
        acc += std::abs(yb[t]);
      }
      return acc;
    });
    require(norm1 > 0.0, "distributed_power_iteration: iterate collapsed");
    const double inv = 1.0 / norm1;
    for (unsigned rank = 0; rank < ranks; ++rank) {
      auto xb = x.block(rank);
      const auto yb = y.block(rank);
      for (std::size_t t = 0; t < block; ++t) xb[t] = yb[t] * inv;
    }
  }

  out.eigenvector = x.gather();
  double s = 0.0;
  for (double v : out.eigenvector) s += v;
  if (s < 0.0) linalg::scale(out.eigenvector, -1.0);
  linalg::normalize1(out.eigenvector);
  return out;
}

}  // namespace qs::distributed
