#include "distributed/distributed_solver.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "distributed/reduction.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/span_wire.hpp"
#include "obs/trace.hpp"
#include "parallel/engine.hpp"
#include "support/timer.hpp"
#include "transforms/sv_microkernel.hpp"

namespace qs::distributed {
namespace {

// Collective tags.  The butterfly exchanges use the level index (0..nu-1)
// so a rank one level ahead of its partner fails with a named tag mismatch;
// the reduction/gather tags live above any level index.
constexpr unsigned kTagStartNorm = 100;
constexpr unsigned kTagXX = 101;
constexpr unsigned kTagXY = 102;
constexpr unsigned kTagRes2 = 103;
constexpr unsigned kTagControl = 104;
constexpr unsigned kTagNorm = 105;
constexpr unsigned kTagSign = 106;
constexpr unsigned kTagFinalNorm = 107;
constexpr unsigned kTagGather = 108;
constexpr unsigned kTagStats = 109;
constexpr unsigned kTagSpanLens = 110;  ///< Packed span-buffer lengths.
constexpr unsigned kTagSpanShip = 111;  ///< Span buffers gathered to root.

/// Bit 32 of the per-check control word carries rank 0's wall-clock
/// checkpoint cadence; bits below sum the ranks' cancellation votes.
constexpr double kControlTimeBit = 4294967296.0;  // 2^32

const char* kind_name(core::MutationKind kind) {
  switch (kind) {
    case core::MutationKind::uniform: return "uniform";
    case core::MutationKind::per_site: return "per_site";
    case core::MutationKind::grouped: return "grouped";
  }
  return "unknown";
}

/// Cross-rank butterfly combine on one segment: `mine` and `theirs` hold the
/// same offsets of the two pair blocks; the lower rank's block is the "lo"
/// operand.  Runs the plan's sv microkernel when one resolved (the kernel
/// writes both halves — the scratch half is discarded), else the plain
/// non-FMA expression; both are bit-identical to the serial butterfly.
void combine_cross_segment(double* mine, double* theirs, bool is_low,
                           std::size_t count, transforms::Factor2 f,
                           const transforms::SvKernels* sv) {
  double* lo = is_low ? mine : theirs;
  double* hi = is_low ? theirs : mine;
  if (sv != nullptr) {
    sv->butterfly_span(lo, hi, count, f);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const double t1 = lo[i];
    const double t2 = hi[i];
    lo[i] = f.m00 * t1 + f.m01 * t2;
    hi[i] = f.m10 * t1 + f.m11 * t2;
  }
}

/// One rank's y = W x: fitness scaling fused into the banded blocked
/// butterfly for the local levels, then one overlapped pairwise exchange
/// per cross-rank level.  `recv` is a block-sized scratch buffer.
void apply_w_rank(Exchange& exchange, const BlockLayout& layout,
                  std::span<const transforms::Factor2> sites,
                  std::span<const double> fitness_block,
                  const transforms::BlockedPlan& plan,
                  const transforms::SvKernels* sv, std::span<const double> x,
                  std::span<double> y, std::span<double> recv) {
  const unsigned rank = exchange.rank();
  const unsigned local_levels = log2_exact(layout.block_size());
  {
    // Bottom nu-k levels: the same cache-blocked banded kernel (and sv
    // microkernel tier) the serial blocked solver runs, on this rank's
    // block only.  Rank-local compute is serial by design — the
    // parallelism of a distributed solve is across ranks.
    QS_TRACE_SPAN_ARG("dist.local_band", distributed, rank);
    transforms::apply_blocked_butterfly_fused(x, y, sites.first(local_levels),
                                              fitness_block, {},
                                              parallel::serial_engine(), plan);
  }
  for (unsigned k = local_levels; k < layout.nu(); ++k) {
    const std::size_t stride = std::size_t{1} << k;
    const unsigned partner = layout.partner(rank, stride);
    const bool is_low = rank < partner;
    const transforms::Factor2 f = sites[k];
    QS_TRACE_SPAN_ARG("dist.exchange", distributed, k);
    QS_TRACE_COUNTER("dist.exchange_messages", 1);
    double* mine = y.data();
    double* theirs = recv.data();
    const std::uint64_t exchange_start = monotonic_ns();
    exchange.sendrecv_overlapped(
        partner, y, recv, k,
        [mine, theirs, is_low, f, sv](std::size_t begin, std::size_t end) {
          combine_cross_segment(mine + begin, theirs + begin, is_low,
                                end - begin, f, sv);
        });
    static obs::Histogram& exchange_hist = obs::histogram("dist.exchange");
    exchange_hist.record_ns(monotonic_ns() - exchange_start);
  }
}

/// Ships every rank's span buffer to rank 0 and merges them into its
/// snapshot, so one Chrome trace shows per-rank tracks with the request's
/// trace id.  Runs only over a transport whose ranks live in separate
/// address spaces (forked processes): in-process lockstep ranks already
/// share the span registry.  All ranks must call this together — it is a
/// collective rendezvous (one allreduce + one gather), and the decision to
/// run is replicated (compile gate, enabled flag, and transport kind are
/// identical on every rank).
void ship_spans_to_root(Exchange& exchange, std::uint64_t rank_start_ns) {
  if (!obs::compiled_in() || !obs::enabled()) return;
  if (exchange.shared_address_space()) return;
  const unsigned rank = exchange.rank();
  const unsigned ranks = exchange.rank_count();
  const bool root = rank == 0;

  std::vector<double> packed;
  if (!root) {
    // fork() duplicated rank 0's span rings into this child, so the
    // snapshot holds the parent's pre-fork spans too; ship only what this
    // rank recorded itself (started at or after its own entry), capped to
    // the most recent records to bound the gather.
    std::vector<obs::SpanRecord> spans = obs::snapshot_spans();
    std::erase_if(spans, [rank_start_ns](const obs::SpanRecord& s) {
      return s.start_ns < rank_start_ns;
    });
    constexpr std::size_t kMaxShippedSpans = 16384;
    if (spans.size() > kMaxShippedSpans) {
      spans.erase(spans.begin(),
                  spans.end() - static_cast<std::ptrdiff_t>(kMaxShippedSpans));
    }
    packed = obs::pack_spans(spans);
  }

  // The binomial gather needs equal block sizes: agree on the longest
  // packed buffer, pad everyone up to it, and slice exact lengths on root.
  std::vector<double> lens(ranks, 0.0);
  lens[rank] = static_cast<double>(packed.size());
  exchange.allreduce_sum(std::span<double>(lens), kTagSpanLens);
  std::size_t max_len = 0;
  for (double l : lens) max_len = std::max(max_len, static_cast<std::size_t>(l));
  if (max_len == 0) return;  // span-less run everywhere: skip the gather
  packed.resize(max_len, 0.0);

  std::vector<double> full;
  if (root) full.resize(max_len * ranks);
  exchange.gather_to_root(
      packed, root ? std::span<double>(full) : std::span<double>{}, kTagSpanShip);
  if (!root) return;

  std::vector<obs::SpanRecord> remote;
  for (unsigned r = 1; r < ranks; ++r) {
    remote.clear();
    const std::span<const double> slice(full.data() + r * max_len,
                                        static_cast<std::size_t>(lens[r]));
    if (obs::unpack_spans(slice, remote)) {
      obs::import_spans(remote, obs::kRankTidBase + r * obs::kRankTidStride);
    }
    // A malformed buffer (a rank died mid-pack) is dropped, not fatal:
    // telemetry must never fail a solve that already finished.
  }
}

}  // namespace

UnsupportedModelError::UnsupportedModelError(core::MutationKind kind)
    : precondition_error(
          std::string("distributed solver: unsupported mutation model kind '") +
          kind_name(kind) +
          "' (the distributed kernels require 2x2 site factors; run the "
          "serial solver for grouped models)"),
      kind_(kind) {}

const char* to_string(ExchangeKind kind) {
  switch (kind) {
    case ExchangeKind::lockstep: return "lockstep";
    case ExchangeKind::process: return "process";
  }
  return "unknown";
}

DistributedVector::DistributedVector(const BlockLayout& layout)
    : layout_(&layout),
      blocks_(layout.rank_count(), std::vector<double>(layout.block_size(), 0.0)) {}

DistributedVector DistributedVector::scatter(const BlockLayout& layout,
                                             std::span<const double> global) {
  require(global.size() == layout.block_size() * layout.rank_count(),
          "DistributedVector::scatter: dimension mismatch");
  DistributedVector out(layout);
  for (unsigned rank = 0; rank < layout.rank_count(); ++rank) {
    const auto begin = global.begin() + static_cast<std::ptrdiff_t>(
                                            layout.block_begin(rank));
    std::copy(begin, begin + static_cast<std::ptrdiff_t>(layout.block_size()),
              out.blocks_[rank].begin());
  }
  return out;
}

std::vector<double> DistributedVector::gather() const {
  std::vector<double> global(layout_->block_size() * layout_->rank_count());
  for (unsigned rank = 0; rank < layout_->rank_count(); ++rank) {
    std::copy(blocks_[rank].begin(), blocks_[rank].end(),
              global.begin() +
                  static_cast<std::ptrdiff_t>(layout_->block_begin(rank)));
  }
  return global;
}

void distributed_apply_w(const core::MutationModel& model,
                         const core::Landscape& landscape, DistributedVector& v,
                         TrafficStats& stats, const transforms::BlockedPlan& plan) {
  const BlockLayout& layout = v.layout();
  require(model.nu() == layout.nu(), "distributed_apply_w: model nu mismatch");
  require(landscape.dimension() == sequence_count(layout.nu()),
          "distributed_apply_w: landscape dimension mismatch");
  if (model.kind() == core::MutationKind::grouped) {
    throw UnsupportedModelError(model.kind());
  }

  const auto& sites = model.site_factors();
  const std::size_t block = layout.block_size();
  const unsigned ranks = layout.rank_count();
  const unsigned local_levels = log2_exact(block);
  const auto f = landscape.values();
  const transforms::SvKernels* sv = transforms::resolve_sv_kernels(plan.sv_kernel);

  // Superstep 1 (fully local): fitness scaling fused into the banded
  // blocked butterfly over every level whose stride stays inside a block.
  QS_TRACE_SPAN("dist.local_band", distributed);
  for (unsigned rank = 0; rank < ranks; ++rank) {
    auto mine = v.block(rank);
    transforms::apply_blocked_butterfly_fused(
        mine, mine, std::span<const transforms::Factor2>(sites).first(local_levels),
        f.subspan(layout.block_begin(rank), block), {}, parallel::serial_engine(),
        plan);
  }

  // Supersteps 2..: one pairwise block exchange per cross-rank level.  The
  // lower rank of each pair holds the "lo" entries, its partner the "hi"
  // entries, at identical offsets within their blocks; both blocks live in
  // this address space, so the combine kernel writes both halves directly.
  for (unsigned k = local_levels; k < layout.nu(); ++k) {
    const std::size_t stride = std::size_t{1} << k;
    QS_TRACE_SPAN_ARG("dist.exchange", distributed, k);
    QS_TRACE_COUNTER("dist.exchange_messages", 2 * (ranks / 2));
    for (unsigned lo = 0; lo < ranks; ++lo) {
      const unsigned hi = layout.partner(lo, stride);
      if (hi < lo) continue;  // visit each pair once, from the lower rank
      // Simulated MPI_Sendrecv: both ranks ship their block to the partner.
      stats.messages += 2;
      stats.doubles_moved += 2 * block;
      combine_cross_segment(v.block(lo).data(), v.block(hi).data(), true, block,
                            sites[k], sv);
    }
  }
}

std::vector<double> tree_landscape_start(const core::Landscape& landscape) {
  std::vector<double> s(landscape.values().begin(), landscape.values().end());
  const double norm = tree_abs_sum(s);
  require(norm > 0.0, "tree_landscape_start: landscape has zero 1-norm");
  linalg::scale(s, 1.0 / norm);
  return s;
}

DistributedPowerResult distributed_power_rank(
    Exchange& exchange, const BlockLayout& layout,
    std::span<const transforms::Factor2> sites,
    std::span<const double> fitness_block, const DistributedPowerOptions& options,
    const io::SolverCheckpoint* resume) {
  const unsigned rank = exchange.rank();
  const bool root = rank == 0;
  const std::size_t block = layout.block_size();
  // Span-shipping cutoff: a forked rank only ships spans that started at or
  // after its own entry (everything earlier is the parent's, already in
  // rank 0's rings).  Taken before any work so no own span is lost.
  const std::uint64_t rank_start_ns = monotonic_ns();
  require(exchange.rank_count() == layout.rank_count(),
          "distributed_power_rank: exchange/layout rank count mismatch");
  require(sites.size() == layout.nu(),
          "distributed_power_rank: factor count does not match nu");
  require(fitness_block.size() == block,
          "distributed_power_rank: fitness block has the wrong size");

  const transforms::SvKernels* sv =
      transforms::resolve_sv_kernels(options.plan.sv_kernel);

  DistributedPowerResult out;
  out.rank_count = layout.rank_count();
  out.plan_kernel = transforms::resolved_sv_kernel_name(options.plan.sv_kernel);
  out.local_levels = log2_exact(block);

  // Replicated control plane: every rank runs its own IterationDriver on
  // identical allreduced values, so every verdict (convergence, stall,
  // guard, cancellation) is taken identically everywhere.  Non-root ranks
  // strip the I/O and observability hooks — those fire on rank 0 only —
  // but keep identical decision state.
  DistributedPowerOptions local = options;
  if (!root) {
    local.checkpoint_path.clear();
    local.checkpoint_sink = nullptr;
    local.on_residual = nullptr;
  }
  bool agreed_stop = false;
  const bool vote_stop = static_cast<bool>(options.should_stop);
  const bool control_word_needed =
      vote_stop || options.checkpoint_every_seconds > 0.0;
  if (vote_stop) {
    // The driver polls the *agreed* verdict, computed by the control-word
    // allreduce below before each observe; any rank's vote cancels all.
    local.should_stop = [&agreed_stop] { return agreed_stop; };
  }
  // Whether checkpoints are written at all — evaluated on the ORIGINAL
  // options, which every rank shares, so the gather rendezvous below is a
  // replicated decision even though only rank 0 writes.
  const bool checkpoint_configured =
      (options.checkpoint_every > 0 || options.checkpoint_every_seconds > 0.0) &&
      (options.checkpoint_sink || !options.checkpoint_path.empty());

  solvers::IterationDriver driver(local, io::SolverKind::power);

  std::vector<double> x(block);
  std::vector<double> y(block);
  std::vector<double> recv(block);
  std::vector<double> full;  // rank 0's gather target (checkpoints, result)
  if (root && (checkpoint_configured || options.gather_eigenvector)) {
    full.resize(block * static_cast<std::size_t>(layout.rank_count()));
  }
  auto full_span = [&]() {
    return root ? std::span<double>(full) : std::span<double>{};
  };

  solvers::IterationTrace trace;
  if (resume != nullptr) {
    // Scalars verbatim on every rank; the iterate slice taken locally (the
    // wrappers validated finiteness and solver kind before spawning ranks).
    require(resume->eigenvector.size() == block * layout.rank_count(),
            "distributed_power_rank: checkpoint dimension mismatch");
    trace.start_iteration = static_cast<unsigned>(resume->iteration);
    trace.eigenvalue = resume->eigenvalue;
    trace.residual = resume->residual;
    driver.restore(*resume);
    const double* src = resume->eigenvector.data() + layout.block_begin(rank);
    std::copy(src, src + block, x.begin());
  } else {
    // Cold start: the landscape block scaled by the reciprocal of the
    // global tree-ordered 1-norm — bit-identical to tree_landscape_start.
    const double norm =
        exchange.allreduce_sum(tree_abs_sum(fitness_block), kTagStartNorm);
    require(norm > 0.0, "distributed_power_iteration: landscape has zero 1-norm");
    const double inv = 1.0 / norm;
    for (std::size_t t = 0; t < block; ++t) x[t] = fitness_block[t] * inv;
  }
  out.eigenvalue = trace.eigenvalue;
  out.residual = trace.residual;
  out.iterations = trace.start_iteration;

  const double mu = options.shift;
  std::uint64_t last_checkpoint_ns = monotonic_ns();  // rank 0 time cadence
  bool agreed_time_due = false;

  // The loop below mirrors solvers::run_power_loop operation for operation;
  // every global quantity is formed as (per-block tree partial, tree-ordered
  // allreduce), which equals the serial tree_engine() reduction bit for bit.
  for (unsigned it = trace.start_iteration + 1; it <= options.max_iterations;
       ++it) {
    QS_TRACE_SPAN_ARG("power.iteration", solver, it);
    apply_w_rank(exchange, layout, sites, fitness_block, options.plan, sv, x, y,
                 recv);
    out.iterations = it;

    if (driver.should_check(it, options.max_iterations)) {
      const double xx = exchange.allreduce_sum(tree_dot(x, x), kTagXX);
      const double xy = exchange.allreduce_sum(tree_dot(x, y), kTagXY);
      const double lambda = xy / xx;
      const double* yp = y.data();
      const double* xp = x.data();
      const double res2_local = tree_reduce(
          std::size_t{0}, block, [yp, xp, lambda](std::size_t i) {
            const double r = yp[i] - lambda * xp[i];
            return r * r;
          });
      const double res2 = exchange.allreduce_sum(res2_local, kTagRes2);
      if (!driver.guard({lambda, res2}, out)) break;
      out.eigenvalue = lambda;
      out.residual =
          std::sqrt(res2) / std::max(std::abs(lambda) * std::sqrt(xx), 1e-300);

      agreed_time_due = false;
      if (control_word_needed) {
        double word = 0.0;
        if (vote_stop && options.should_stop()) word += 1.0;
        if (root && options.checkpoint_every_seconds > 0.0 &&
            static_cast<double>(monotonic_ns() - last_checkpoint_ns) * 1e-9 >=
                options.checkpoint_every_seconds) {
          word += kControlTimeBit;
        }
        const double agreed = exchange.allreduce_sum(word, kTagControl);
        agreed_stop = std::fmod(agreed, kControlTimeBit) != 0.0;
        agreed_time_due = agreed >= kControlTimeBit;
      }

      const solvers::IterationDriver::Verdict verdict =
          driver.observe(it, out.residual, out);
      if (verdict != solvers::IterationDriver::Verdict::proceed) {
        if (verdict == solvers::IterationDriver::Verdict::cancelled &&
            checkpoint_configured) {
          // Flush the finite pre-update iterate (the result of iteration
          // it-1), gathered to rank 0 — same content the serial loop
          // writes, so a restart resumes exactly this aborted iteration.
          exchange.gather_to_root(x, full_span(), kTagGather);
          if (root) driver.write_checkpoint(it - 1, out, full, it - 1);
        }
        break;
      }
    }

    if (mu != 0.0) {
      for (std::size_t t = 0; t < block; ++t) y[t] -= mu * x[t];
    }
    const double norm = exchange.allreduce_sum(tree_abs_sum(y), kTagNorm);
    if (!driver.guard({norm}, out)) break;
    require(norm > 0.0, "distributed_power_iteration: iterate collapsed to zero");
    const double inv = 1.0 / norm;
    for (std::size_t t = 0; t < block; ++t) x[t] = y[t] * inv;

    const bool iter_due = options.checkpoint_every > 0 &&
                          it % options.checkpoint_every == 0;
    if (checkpoint_configured && (iter_due || agreed_time_due)) {
      // All ranks rendezvous for the gather (the decision is replicated:
      // iteration cadence is deterministic, time cadence was agreed in the
      // control word); only rank 0 writes.
      exchange.gather_to_root(x, full_span(), kTagGather);
      if (root) {
        driver.write_checkpoint(it, out, full, it);
        last_checkpoint_ns = monotonic_ns();
      }
      agreed_time_due = false;
    }
  }

  if (out.failure == solvers::SolverFailure::none) {
    // Perron orientation, then the exact final normalisation of the serial
    // loop: reduce_sum in tree order, and — on the gathered vector — the
    // serial linalg::normalize1 (left-to-right 1-norm), so rank 0's result
    // is bit-identical to the facade's.
    const double s = exchange.allreduce_sum(tree_sum(x), kTagSign);
    if (s < 0.0) linalg::scale(x, -1.0);
    if (options.gather_eigenvector) {
      exchange.gather_to_root(x, full_span(), kTagGather);
      if (root) {
        out.eigenvector = std::move(full);
        linalg::normalize1(out.eigenvector);
      }
    } else {
      // Capacity mode: no rank materialises the full vector; blocks are
      // normalised by the tree-ordered global 1-norm instead.
      const double norm1 =
          exchange.allreduce_sum(tree_abs_sum(x), kTagFinalNorm);
      linalg::scale(x, 1.0 / norm1);
      out.eigenvector.assign(x.begin(), x.end());
    }
  } else if (options.gather_eigenvector) {
    // Failed or cancelled: gather the last iterate anyway (post-mortem
    // parity with the serial loop, which leaves it in place).
    exchange.gather_to_root(x, full_span(), kTagGather);
    if (root) out.eigenvector = std::move(full);
  }

  // Aggregate traffic over all ranks.  The snapshot is taken before the
  // aggregation allreduce so the aggregation itself is not counted.
  const TrafficStats mine = exchange.stats();
  double agg[5] = {static_cast<double>(mine.messages),
                   static_cast<double>(mine.doubles_moved),
                   static_cast<double>(mine.allreduce_calls),
                   static_cast<double>(mine.exchange_ns),
                   static_cast<double>(mine.overlap_ns)};
  exchange.allreduce_sum(std::span<double>(agg), kTagStats);
  out.traffic.messages = static_cast<std::size_t>(agg[0]);
  out.traffic.doubles_moved = static_cast<std::size_t>(agg[1]);
  out.traffic.allreduce_calls = static_cast<std::size_t>(agg[2]);
  out.traffic.exchange_ns = static_cast<std::uint64_t>(agg[3]);
  out.traffic.overlap_ns = static_cast<std::uint64_t>(agg[4]);

  // Final collective: merge every rank's span buffer into rank 0's
  // timeline (no-op in span-less builds, with tracing disabled, or when
  // the ranks share this address space).
  ship_spans_to_root(exchange, rank_start_ns);
  return out;
}

namespace {

DistributedPowerResult run_distributed(const core::MutationModel& model,
                                       unsigned rank_count,
                                       const DistributedPowerOptions& options,
                                       const FitnessBlockFn& fitness,
                                       const io::SolverCheckpoint* resume) {
  if (model.kind() == core::MutationKind::grouped) {
    throw UnsupportedModelError(model.kind());
  }
  const BlockLayout layout(model.nu(), rank_count);
  const auto& sites = model.site_factors();

  DistributedPowerResult root_result;
  auto body = [&](Exchange& exchange) {
    const std::vector<double> block = fitness(layout, exchange.rank());
    DistributedPowerResult res =
        distributed_power_rank(exchange, layout, sites, block, options, resume);
    if (exchange.rank() == 0) root_result = std::move(res);
  };
  if (options.exchange == ExchangeKind::process) {
    run_multiprocess(rank_count, body, options.exchange_timeout_ms);
  } else {
    LockstepGroup group(rank_count);
    group.run(body);
  }

  // Provenance: which transport and which rank-local kernel tier ran.
  auto& recorder = obs::metrics();
  recorder.set_info("dist.exchange", to_string(options.exchange));
  recorder.set_info("dist.sv_kernel", root_result.plan_kernel);
  recorder.set_value("dist.ranks", static_cast<double>(rank_count));
  recorder.set_value("dist.block_doubles",
                     static_cast<double>(layout.block_size()));
  recorder.set_value("dist.local_levels",
                     static_cast<double>(root_result.local_levels));
  recorder.set_value("dist.messages",
                     static_cast<double>(root_result.traffic.messages));
  recorder.set_value("dist.bytes_moved",
                     static_cast<double>(root_result.traffic.bytes_moved()));
  recorder.set_value("dist.overlap_ratio", root_result.traffic.overlap_ratio());
  return root_result;
}

}  // namespace

DistributedPowerResult distributed_power_iteration(
    const core::MutationModel& model, const core::Landscape& landscape,
    unsigned rank_count, const DistributedPowerOptions& options) {
  require(landscape.dimension() == model.dimension(),
          "distributed_power_iteration: dimension mismatch");
  const auto values = landscape.values();
  auto fitness = [values](const BlockLayout& layout, unsigned rank) {
    const auto block = values.subspan(layout.block_begin(rank),
                                      layout.block_size());
    return std::vector<double>(block.begin(), block.end());
  };
  return run_distributed(model, rank_count, options, fitness, nullptr);
}

DistributedPowerResult distributed_power_iteration_blocks(
    const core::MutationModel& model, unsigned rank_count,
    const FitnessBlockFn& fitness, const DistributedPowerOptions& options) {
  require(static_cast<bool>(fitness),
          "distributed_power_iteration_blocks: fitness source must be set");
  return run_distributed(model, rank_count, options, fitness, nullptr);
}

DistributedPowerResult resume_distributed_power_iteration(
    const core::MutationModel& model, const core::Landscape& landscape,
    unsigned rank_count, const io::SolverCheckpoint& checkpoint,
    const DistributedPowerOptions& options) {
  require(landscape.dimension() == model.dimension(),
          "resume_distributed_power_iteration: dimension mismatch");
  require(checkpoint.eigenvector.size() == model.dimension(),
          "resume_distributed_power_iteration: checkpoint dimension does not "
          "match the model");

  // Validate once, before any rank exists: wrong solver kind throws, a
  // poisoned iterate returns without iterating (exactly like the serial
  // resume path).
  solvers::IterationTrace trace;
  solvers::IterationResult probe;
  if (!solvers::restore_trace(checkpoint, io::SolverKind::power, trace, probe)) {
    DistributedPowerResult out;
    static_cast<solvers::IterationResult&>(out) = probe;
    out.eigenvalue = trace.eigenvalue;
    out.residual = trace.residual;
    out.iterations = trace.start_iteration;
    out.eigenvector = std::move(trace.iterate);
    out.rank_count = rank_count;
    return out;
  }

  const auto values = landscape.values();
  auto fitness = [values](const BlockLayout& layout, unsigned rank) {
    const auto block = values.subspan(layout.block_begin(rank),
                                      layout.block_size());
    return std::vector<double>(block.begin(), block.end());
  };
  return run_distributed(model, rank_count, options, fitness, &checkpoint);
}

}  // namespace qs::distributed
