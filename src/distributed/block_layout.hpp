// Rank-blocked layout of the sequence space for distributed-memory solves.
//
// The paper's conclusion names distributed memory the next frontier ("the
// main limiting factor ... is not any more the runtime, but the memory
// requirements").  This module defines the decomposition such a solver
// uses: the 2^nu concentration vector is split into P = 2^r contiguous
// blocks, one per rank, keyed by the top r bits of the sequence index.
//
// The butterfly structure then splits cleanly:
//   * levels with stride < block size touch only local pairs;
//   * each of the r highest levels pairs rank q with rank q XOR
//     (stride / block) — one pairwise block exchange per level, the exact
//     communication pattern an MPI implementation performs.
//
// All message passing goes through the Exchange interface of
// distributed/exchange.hpp, which has two real implementations: an
// in-process lockstep transport (one thread per rank, deterministic, the
// TSan target) and a multi-process transport over AF_UNIX socketpairs
// (forked ranks, each holding only its own block).  The call structure maps
// 1:1 onto MPI_Sendrecv / MPI_Allreduce; see docs/distributed.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/bits.hpp"

namespace qs::distributed {

/// Describes the block decomposition of a 2^nu vector over 2^r ranks.
class BlockLayout {
 public:
  /// Requires 1 <= nu <= kMaxChainLength and rank_count a power of two
  /// with rank_count <= 2^(nu-1) (each rank holds at least two entries so
  /// every butterfly level has work).
  BlockLayout(unsigned nu, unsigned rank_count);

  unsigned nu() const { return nu_; }
  unsigned rank_count() const { return rank_count_; }
  unsigned rank_bits() const { return rank_bits_; }

  /// Entries per rank: 2^nu / rank_count.
  std::size_t block_size() const { return block_size_; }

  /// Global index of the first entry of `rank`'s block.
  seq_t block_begin(unsigned rank) const {
    return static_cast<seq_t>(rank) * block_size_;
  }

  /// Rank owning global index i.
  unsigned owner(seq_t i) const { return static_cast<unsigned>(i / block_size_); }

  /// True iff the butterfly level of the given stride stays rank-local.
  bool level_is_local(std::size_t stride) const { return stride < block_size_; }

  /// Partner rank for a cross-rank butterfly level (stride >= block size).
  unsigned partner(unsigned rank, std::size_t stride) const;

 private:
  unsigned nu_;
  unsigned rank_count_;
  unsigned rank_bits_;
  std::size_t block_size_;
};

/// Traffic statistics of a distributed run.  Each Exchange endpoint counts
/// its *own* sends, so summing endpoint stats over all ranks gives the same
/// totals the old pair-site accounting produced (two messages per pairwise
/// exchange, one per direction).
struct TrafficStats {
  std::size_t messages = 0;        ///< Pairwise block sends (one per direction).
  std::size_t doubles_moved = 0;   ///< Total doubles transferred.
  std::size_t allreduce_calls = 0; ///< Global reductions performed.
  std::uint64_t exchange_ns = 0;   ///< Wall time inside pairwise exchanges,
                                   ///< excluding combine work done while
                                   ///< segments were still in flight.
  std::uint64_t overlap_ns = 0;    ///< Combine (compute) time spent while at
                                   ///< least one exchange segment was still
                                   ///< in flight — the overlapped fraction.

  /// Payload volume on the wire.
  std::uint64_t bytes_moved() const {
    return static_cast<std::uint64_t>(doubles_moved) * sizeof(double);
  }

  /// Fraction of exchange wall time that was hidden behind combine work
  /// (0 when nothing was exchanged or the transport cannot overlap).
  double overlap_ratio() const {
    const std::uint64_t total = exchange_ns + overlap_ns;
    return total == 0 ? 0.0
                      : static_cast<double>(overlap_ns) / static_cast<double>(total);
  }
};

}  // namespace qs::distributed
