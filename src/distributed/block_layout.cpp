#include "distributed/block_layout.hpp"

#include "support/contracts.hpp"

namespace qs::distributed {

BlockLayout::BlockLayout(unsigned nu, unsigned rank_count)
    : nu_(nu), rank_count_(rank_count) {
  require(nu >= 1 && nu <= kMaxChainLength, "BlockLayout: nu out of range");
  require(rank_count >= 1 && is_power_of_two(rank_count),
          "BlockLayout: rank count must be a power of two");
  rank_bits_ = log2_exact(rank_count);
  require(rank_bits_ + 1 <= nu,
          "BlockLayout: each rank must hold at least two entries");
  block_size_ = static_cast<std::size_t>(sequence_count(nu)) / rank_count;
}

unsigned BlockLayout::partner(unsigned rank, std::size_t stride) const {
  require(!level_is_local(stride), "partner(): level is rank-local");
  const unsigned level_bit = static_cast<unsigned>(stride / block_size_);
  require(is_power_of_two(level_bit) && level_bit < rank_count_,
          "partner(): stride out of range");
  return rank ^ level_bit;
}

}  // namespace qs::distributed
