#include "distributed/exchange.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <bit>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "distributed/reduction.hpp"
#include "service/transport.hpp"
#include "support/bits.hpp"
#include "support/contracts.hpp"
#include "support/signals.hpp"
#include "support/timer.hpp"

namespace qs::distributed {
namespace {

/// Segment size of the pipelined exchanges: 4096 doubles = 32 KiB, small
/// enough that two in-flight segments stay far below the default AF_UNIX
/// socket buffer (the symmetric write-ahead-by-one schedule is then
/// deadlock-free), large enough that per-segment overhead is noise.
constexpr std::size_t kSegmentDoubles = 4096;

std::size_t segment_count(std::size_t n) {
  return (n + kSegmentDoubles - 1) / kSegmentDoubles;
}

}  // namespace

void Exchange::sendrecv_overlapped(unsigned partner, std::span<const double> send,
                                   std::span<double> recv, unsigned tag,
                                   const SegmentFn& on_segment) {
  sendrecv(partner, send, recv, tag);
  if (on_segment && !recv.empty()) on_segment(0, recv.size());
}

// ---------------------------------------------------------------------------
// Lockstep (in-process, rank-per-thread) transport.
// ---------------------------------------------------------------------------

namespace {

/// Per-rank publication slot.  Cache-line sized so two ranks publishing
/// simultaneously never share a line; every field is written strictly
/// before a barrier arrival and read strictly after the matching barrier
/// completion, so the barrier provides the happens-before edge (no atomics
/// needed on the payload).
struct alignas(64) LockstepSlot {
  const double* data = nullptr;  ///< published block / vector / full image
  double* full = nullptr;        ///< root's gather target
  std::size_t count = 0;
  unsigned tag = 0;
  double partial = 0.0;
};

}  // namespace

struct LockstepGroup::Impl {
  explicit Impl(unsigned ranks)
      : rank_count(ranks), barrier(static_cast<std::ptrdiff_t>(ranks)),
        slots(ranks) {}

  unsigned rank_count;
  std::barrier<> barrier;
  std::vector<LockstepSlot> slots;
  std::atomic<int> aborted{-1};  ///< rank that dropped out, or -1
  std::vector<std::unique_ptr<Exchange>> endpoints;
};

namespace {

class LockstepEndpoint final : public Exchange {
 public:
  LockstepEndpoint(LockstepGroup::Impl& impl, unsigned rank)
      : impl_(impl), rank_(rank) {}

  unsigned rank() const override { return rank_; }
  unsigned rank_count() const override { return impl_.rank_count; }

  void sendrecv(unsigned partner, std::span<const double> send,
                std::span<double> recv, unsigned tag) override {
    require(partner < impl_.rank_count && partner != rank_,
            "lockstep sendrecv: bad partner rank");
    const std::uint64_t t0 = monotonic_ns();
    auto& mine = impl_.slots[rank_];
    mine.data = send.data();
    mine.count = send.size();
    mine.tag = tag;
    wait();
    const auto& theirs = impl_.slots[partner];
    const bool ok =
        theirs.count == send.size() && theirs.tag == tag && recv.size() == send.size();
    if (ok && !recv.empty()) {
      std::memcpy(recv.data(), theirs.data, recv.size() * sizeof(double));
    }
    if (!ok) {
      fail("lockstep sendrecv: rank " + std::to_string(rank_) + " and rank " +
           std::to_string(partner) + " desynchronised (tag " + std::to_string(tag) +
           " vs " + std::to_string(theirs.tag) + ", count " +
           std::to_string(send.size()) + " vs " + std::to_string(theirs.count) + ")");
    }
    wait();
    stats_.messages += 1;
    stats_.doubles_moved += send.size();
    stats_.exchange_ns += monotonic_ns() - t0;
  }

  double allreduce_sum(double partial, unsigned tag) override {
    auto& mine = impl_.slots[rank_];
    mine.partial = partial;
    mine.tag = tag;
    wait();
    check_tags(tag, "allreduce");
    const auto& slots = impl_.slots;
    const double total =
        tree_reduce(std::size_t{0}, std::size_t{impl_.rank_count},
                    [&slots](std::size_t r) { return slots[r].partial; });
    wait();
    ++stats_.allreduce_calls;
    return total;
  }

  void allreduce_sum(std::span<double> values, unsigned tag) override {
    auto& mine = impl_.slots[rank_];
    mine.data = values.data();
    mine.count = values.size();
    mine.tag = tag;
    wait();
    check_tags(tag, "allreduce");
    for (unsigned r = 0; r < impl_.rank_count; ++r) {
      if (impl_.slots[r].count != values.size()) {
        fail("lockstep allreduce: rank " + std::to_string(r) +
             " published a different vector length");
      }
    }
    scratch_.resize(values.size());
    const auto& slots = impl_.slots;
    for (std::size_t i = 0; i < values.size(); ++i) {
      scratch_[i] =
          tree_reduce(std::size_t{0}, std::size_t{impl_.rank_count},
                      [&slots, i](std::size_t r) { return slots[r].data[i]; });
    }
    wait();
    std::copy(scratch_.begin(), scratch_.end(), values.begin());
    ++stats_.allreduce_calls;
  }

  void gather_to_root(std::span<const double> block, std::span<double> full,
                      unsigned tag) override {
    auto& mine = impl_.slots[rank_];
    mine.count = block.size();
    mine.tag = tag;
    if (rank_ == 0) {
      if (full.size() != block.size() * impl_.rank_count) {
        mine.full = nullptr;
      } else {
        mine.full = full.data();
      }
    }
    wait();
    check_tags(tag, "gather");
    double* dst = impl_.slots[0].full;
    if (dst == nullptr) {
      fail("lockstep gather: root buffer missing or of the wrong size");
    }
    std::memcpy(dst + static_cast<std::size_t>(rank_) * block.size(), block.data(),
                block.size() * sizeof(double));
    wait();
    if (rank_ != 0) {
      stats_.messages += 1;
      stats_.doubles_moved += block.size();
    }
  }

  void scatter_from_root(std::span<double> block, std::span<const double> full,
                         unsigned tag) override {
    auto& mine = impl_.slots[rank_];
    mine.count = block.size();
    mine.tag = tag;
    if (rank_ == 0) {
      mine.data = full.size() == block.size() * impl_.rank_count ? full.data() : nullptr;
    }
    wait();
    check_tags(tag, "scatter");
    const double* src = impl_.slots[0].data;
    if (src == nullptr) {
      fail("lockstep scatter: root image missing or of the wrong size");
    }
    std::memcpy(block.data(), src + static_cast<std::size_t>(rank_) * block.size(),
                block.size() * sizeof(double));
    wait();
    if (rank_ == 0) {
      stats_.messages += impl_.rank_count - 1;
      stats_.doubles_moved += block.size() * (impl_.rank_count - 1);
    }
  }

  /// Called by LockstepGroup::run when fn threw outside an exchange call:
  /// marks the group aborted and pre-arrives the next phase so surviving
  /// ranks pass their barrier and see the flag instead of hanging.
  void abort_from_outside() {
    impl_.aborted.store(static_cast<int>(rank_), std::memory_order_seq_cst);
    impl_.barrier.arrive_and_drop();
  }

 private:
  void wait() {
    impl_.barrier.arrive_and_wait();
    const int aborted = impl_.aborted.load(std::memory_order_seq_cst);
    if (aborted >= 0 && aborted != static_cast<int>(rank_)) {
      impl_.barrier.arrive_and_drop();
      throw ExchangeError("lockstep: rank " + std::to_string(aborted) +
                          " aborted; rank " + std::to_string(rank_) +
                          " abandoning the collective");
    }
  }

  [[noreturn]] void fail(const std::string& what) {
    impl_.aborted.store(static_cast<int>(rank_), std::memory_order_seq_cst);
    impl_.barrier.arrive_and_drop();
    throw ExchangeError(what);
  }

  void check_tags(unsigned tag, const char* op) {
    for (unsigned r = 0; r < impl_.rank_count; ++r) {
      if (impl_.slots[r].tag != tag) {
        fail(std::string("lockstep ") + op + ": rank " + std::to_string(rank_) +
             " used tag " + std::to_string(tag) + " but rank " + std::to_string(r) +
             " used tag " + std::to_string(impl_.slots[r].tag));
      }
    }
  }

  LockstepGroup::Impl& impl_;
  unsigned rank_;
  std::vector<double> scratch_;
};

}  // namespace

LockstepGroup::LockstepGroup(unsigned rank_count) {
  require(rank_count >= 1 && is_power_of_two(rank_count),
          "LockstepGroup: rank_count must be a power of two");
  impl_ = std::make_unique<Impl>(rank_count);
  impl_->endpoints.reserve(rank_count);
  for (unsigned r = 0; r < rank_count; ++r) {
    impl_->endpoints.push_back(std::make_unique<LockstepEndpoint>(*impl_, r));
  }
}

LockstepGroup::~LockstepGroup() = default;

unsigned LockstepGroup::rank_count() const { return impl_->rank_count; }

Exchange& LockstepGroup::endpoint(unsigned rank) {
  require(rank < impl_->rank_count, "LockstepGroup::endpoint: rank out of range");
  return *impl_->endpoints[rank];
}

void LockstepGroup::run(const std::function<void(Exchange&)>& fn) {
  const unsigned ranks = impl_->rank_count;
  std::vector<std::exception_ptr> errors(ranks);
  std::vector<std::thread> threads;
  threads.reserve(ranks);
  for (unsigned r = 0; r < ranks; ++r) {
    threads.emplace_back([this, &fn, &errors, r] {
      auto& endpoint = static_cast<LockstepEndpoint&>(*impl_->endpoints[r]);
      try {
        fn(endpoint);
      } catch (...) {
        errors[r] = std::current_exception();
        // An ExchangeError already dropped this rank from the barrier; any
        // other exception (solver guard, precondition) has not, and the
        // surviving ranks would wait forever at their next collective.
        if (impl_->aborted.load(std::memory_order_seq_cst) < 0) {
          endpoint.abort_from_outside();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (unsigned r = 0; r < ranks; ++r) {
    if (errors[r]) std::rethrow_exception(errors[r]);
  }
}

// ---------------------------------------------------------------------------
// Socket (multi-process) transport.
// ---------------------------------------------------------------------------

namespace detail {

namespace {

/// Per-message wire header: magic catches a desynchronised byte stream,
/// tag/count catch two ranks running different collectives.
struct WireHeader {
  std::uint32_t magic = 0;
  std::uint32_t tag = 0;
  std::uint64_t count = 0;
};
constexpr std::uint32_t kWireMagic = 0x51534458;  // "QSDX"

}  // namespace

class SocketExchangeImpl {
 public:
  SocketExchangeImpl(unsigned rank, unsigned rank_count,
                     std::vector<std::unique_ptr<service::FdStream>> links)
      : rank_(rank), rank_count_(rank_count),
        rank_bits_(log2_exact(rank_count)), links_(std::move(links)) {}

  unsigned rank_;
  unsigned rank_count_;
  unsigned rank_bits_;
  std::vector<std::unique_ptr<service::FdStream>> links_;  ///< links_[j] <-> rank ^ (1<<j)
  std::vector<double> scratch_;

  service::FdStream& link_to(unsigned partner) {
    const unsigned diff = rank_ ^ partner;
    require(partner < rank_count_ && is_power_of_two(diff),
            "SocketExchange: partner is not a hypercube neighbour");
    return *links_[log2_exact(diff)];
  }

  [[noreturn]] void transport_failed(unsigned partner, const char* op,
                                     const std::exception& e) {
    throw ExchangeError("distributed " + std::string(op) + ": rank " +
                        std::to_string(rank_) + " lost rank " +
                        std::to_string(partner) + " (" + e.what() + ")");
  }

  void write_header(service::FdStream& s, unsigned tag, std::uint64_t count) {
    WireHeader h{kWireMagic, tag, count};
    s.write_all(&h, sizeof h);
  }

  void read_and_check_header(service::FdStream& s, unsigned partner, unsigned tag,
                             std::uint64_t count) {
    WireHeader h;
    s.read_exact(&h, sizeof h);
    if (h.magic != kWireMagic) {
      throw ExchangeError("distributed exchange: rank " + std::to_string(rank_) +
                          " received garbage from rank " + std::to_string(partner) +
                          " (bad magic — byte stream desynchronised)");
    }
    if (h.tag != tag || h.count != count) {
      throw ExchangeError(
          "distributed exchange: rank " + std::to_string(rank_) + " and rank " +
          std::to_string(partner) + " desynchronised (tag " + std::to_string(tag) +
          " vs " + std::to_string(h.tag) + ", count " + std::to_string(count) +
          " vs " + std::to_string(h.count) + ")");
    }
  }

  /// Symmetric pipelined block swap: both sides write segment s before
  /// reading segment s-1, so each socket buffer holds at most two
  /// outstanding segments and the schedule cannot deadlock.  `on_segment`,
  /// when set, combines segment s-1 while segment s is still in flight;
  /// the final segment's combine runs after the exchange timer stops (the
  /// wire is idle by then — that work is plain compute, not overlap).
  void swap_blocks(unsigned partner, std::span<const double> send,
                   std::span<double> recv, unsigned tag, const SegmentFn& on_segment,
                   TrafficStats& stats, bool count_message) {
    require(send.size() == recv.size(), "SocketExchange: send/recv length mismatch");
    auto& link = link_to(partner);
    const std::size_t n = send.size();
    const std::size_t nseg = segment_count(n);
    const std::uint64_t t0 = monotonic_ns();
    std::uint64_t combine_ns = 0;
    try {
      write_header(link, tag, n);
      std::size_t written = 0;
      auto write_segment = [&](std::size_t s) {
        const std::size_t begin = s * kSegmentDoubles;
        const std::size_t end = std::min(n, begin + kSegmentDoubles);
        link.write_all(send.data() + begin, (end - begin) * sizeof(double));
      };
      if (nseg > 0) write_segment(written++);
      read_and_check_header(link, partner, tag, n);
      for (std::size_t s = 0; s < nseg; ++s) {
        if (written < nseg) write_segment(written++);
        const std::size_t begin = s * kSegmentDoubles;
        const std::size_t end = std::min(n, begin + kSegmentDoubles);
        link.read_exact(recv.data() + begin, (end - begin) * sizeof(double));
        if (on_segment && s + 1 < nseg) {
          const std::uint64_t c0 = monotonic_ns();
          on_segment(begin, end);
          combine_ns += monotonic_ns() - c0;
        }
      }
    } catch (const service::TransportError& e) {
      transport_failed(partner, "exchange", e);
    }
    stats.exchange_ns += (monotonic_ns() - t0) - combine_ns;
    stats.overlap_ns += combine_ns;
    if (count_message) {
      stats.messages += 1;
      stats.doubles_moved += n;
    }
    if (on_segment && nseg > 0) {
      on_segment((nseg - 1) * kSegmentDoubles, n);
    }
  }

  void send_buf(unsigned partner, std::span<const double> buf, unsigned tag,
                TrafficStats& stats) {
    auto& link = link_to(partner);
    try {
      write_header(link, tag, buf.size());
      if (!buf.empty()) link.write_all(buf.data(), buf.size() * sizeof(double));
    } catch (const service::TransportError& e) {
      transport_failed(partner, "send", e);
    }
    stats.messages += 1;
    stats.doubles_moved += buf.size();
  }

  void recv_buf(unsigned partner, std::span<double> buf, unsigned tag) {
    auto& link = link_to(partner);
    try {
      read_and_check_header(link, partner, tag, buf.size());
      if (!buf.empty()) link.read_exact(buf.data(), buf.size() * sizeof(double));
    } catch (const service::TransportError& e) {
      transport_failed(partner, "recv", e);
    }
  }
};

}  // namespace detail

SocketExchange::SocketExchange(std::unique_ptr<detail::SocketExchangeImpl> impl)
    : impl_(std::move(impl)) {}

SocketExchange::~SocketExchange() = default;

unsigned SocketExchange::rank() const { return impl_->rank_; }
unsigned SocketExchange::rank_count() const { return impl_->rank_count_; }

void SocketExchange::sendrecv(unsigned partner, std::span<const double> send,
                              std::span<double> recv, unsigned tag) {
  impl_->swap_blocks(partner, send, recv, tag, nullptr, stats_, true);
}

void SocketExchange::sendrecv_overlapped(unsigned partner,
                                         std::span<const double> send,
                                         std::span<double> recv, unsigned tag,
                                         const SegmentFn& on_segment) {
  impl_->swap_blocks(partner, send, recv, tag, on_segment, stats_, true);
}

double SocketExchange::allreduce_sum(double partial, unsigned tag) {
  // Recursive doubling in ascending bit order: after round j every rank of
  // an aligned 2^(j+1) group holds the group's tree sum, with the lower
  // half's partial always on the left — exactly the binary tree over rank
  // indices, so the result matches tree_reduce over the published partials
  // (what LockstepEndpoint computes) bit for bit.
  double acc = partial;
  for (unsigned j = 0; j < impl_->rank_bits_; ++j) {
    const unsigned partner = impl_->rank_ ^ (1u << j);
    double theirs = 0.0;
    impl_->swap_blocks(partner, std::span<const double>(&acc, 1),
                       std::span<double>(&theirs, 1), tag, nullptr, stats_, false);
    acc = ((impl_->rank_ >> j) & 1u) != 0 ? theirs + acc : acc + theirs;
  }
  ++stats_.allreduce_calls;
  return acc;
}

void SocketExchange::allreduce_sum(std::span<double> values, unsigned tag) {
  impl_->scratch_.resize(values.size());
  for (unsigned j = 0; j < impl_->rank_bits_; ++j) {
    const unsigned partner = impl_->rank_ ^ (1u << j);
    impl_->swap_blocks(partner, values, std::span<double>(impl_->scratch_), tag,
                       nullptr, stats_, false);
    const bool upper = ((impl_->rank_ >> j) & 1u) != 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = upper ? impl_->scratch_[i] + values[i]
                        : values[i] + impl_->scratch_[i];
    }
  }
  ++stats_.allreduce_calls;
}

void SocketExchange::gather_to_root(std::span<const double> block,
                                    std::span<double> full, unsigned tag) {
  const std::size_t nb = block.size();
  const unsigned rank = impl_->rank_;
  if (rank == 0) {
    require(full.size() == nb * impl_->rank_count_,
            "SocketExchange::gather_to_root: root buffer size mismatch");
    std::memcpy(full.data(), block.data(), nb * sizeof(double));
    // Step j receives blocks [2^j, 2^(j+1)) from neighbour 2^j, which has
    // accumulated them over steps 0..j-1 (binomial gather over the
    // hypercube links, contiguous because blocks are rank-ordered).
    for (unsigned j = 0; j < impl_->rank_bits_; ++j) {
      const std::size_t count = nb << j;
      impl_->recv_buf(1u << j, full.subspan(count, count), tag);
    }
    return;
  }
  const unsigned send_step = static_cast<unsigned>(std::countr_zero(rank));
  impl_->scratch_.resize(nb << send_step);
  std::memcpy(impl_->scratch_.data(), block.data(), nb * sizeof(double));
  for (unsigned j = 0; j < send_step; ++j) {
    const std::size_t count = nb << j;
    impl_->recv_buf(rank + (1u << j),
                    std::span<double>(impl_->scratch_).subspan(count, count), tag);
  }
  impl_->send_buf(rank - (1u << send_step), impl_->scratch_, tag, stats_);
}

void SocketExchange::scatter_from_root(std::span<double> block,
                                       std::span<const double> full, unsigned tag) {
  const std::size_t nb = block.size();
  const unsigned rank = impl_->rank_;
  if (rank == 0) {
    require(full.size() == nb * impl_->rank_count_,
            "SocketExchange::scatter_from_root: root image size mismatch");
    for (unsigned j = impl_->rank_bits_; j-- > 0;) {
      const std::size_t count = nb << j;
      impl_->send_buf(1u << j, full.subspan(count, count), tag, stats_);
    }
    std::memcpy(block.data(), full.data(), nb * sizeof(double));
    return;
  }
  const unsigned recv_step = static_cast<unsigned>(std::countr_zero(rank));
  impl_->scratch_.resize(nb << recv_step);
  impl_->recv_buf(rank - (1u << recv_step), impl_->scratch_, tag);
  for (unsigned j = recv_step; j-- > 0;) {
    const std::size_t count = nb << j;
    impl_->send_buf(rank + (1u << j),
                    std::span<const double>(impl_->scratch_).subspan(count, count),
                    tag, stats_);
  }
  std::memcpy(block.data(), impl_->scratch_.data(), nb * sizeof(double));
}

// ---------------------------------------------------------------------------
// Multi-process launcher.
// ---------------------------------------------------------------------------

void run_multiprocess(unsigned rank_count, const std::function<void(Exchange&)>& fn,
                      unsigned link_timeout_ms) {
  require(rank_count >= 1 && is_power_of_two(rank_count),
          "run_multiprocess: rank_count must be a power of two");
  require(link_timeout_ms > 0, "run_multiprocess: link timeout must be nonzero");
  ignore_sigpipe();

  const unsigned rank_bits = log2_exact(rank_count);

  if (rank_count == 1) {
    SocketExchange ex(std::make_unique<detail::SocketExchangeImpl>(
        0, 1, std::vector<std::unique_ptr<service::FdStream>>{}));
    fn(ex);
    return;
  }

  // All hypercube edges are socketpaired before the first fork; fds[q][j]
  // is rank q's end of its bit-j link.
  std::vector<std::vector<int>> fds(rank_count, std::vector<int>(rank_bits, -1));
  auto close_all = [&fds](unsigned except_rank) {
    for (unsigned q = 0; q < fds.size(); ++q) {
      if (q == except_rank) continue;
      for (int& fd : fds[q]) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
    }
  };
  for (unsigned j = 0; j < rank_bits; ++j) {
    for (unsigned q = 0; q < rank_count; ++q) {
      if ((q >> j) & 1u) continue;
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        close_all(rank_count);  // no rank excepted: close everything
        throw ExchangeError("run_multiprocess: socketpair failed: " +
                            std::string(std::strerror(errno)));
      }
      fds[q][j] = sv[0];
      fds[q | (1u << j)][j] = sv[1];
    }
  }

  auto make_exchange = [&](unsigned rank) {
    std::vector<std::unique_ptr<service::FdStream>> links;
    links.reserve(rank_bits);
    for (unsigned j = 0; j < rank_bits; ++j) {
      links.push_back(std::make_unique<service::FdStream>(fds[rank][j],
                                                          link_timeout_ms));
      fds[rank][j] = -1;  // ownership transferred
    }
    return SocketExchange(std::make_unique<detail::SocketExchangeImpl>(
        rank, rank_count, std::move(links)));
  };

  std::vector<pid_t> children;
  children.reserve(rank_count - 1);
  for (unsigned rank = 1; rank < rank_count; ++rank) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      // Child = rank `rank`.  Everything that matters to the parent (gtest
      // state, stdio buffers, atexit hooks) must be left untouched: run fn,
      // then _exit.  Exit status 0 = clean SPMD return, 2 = fn threw.
      for (unsigned q = 0; q < rank_count; ++q) {
        if (q == rank) continue;
        for (int fd : fds[q]) {
          if (fd >= 0) ::close(fd);
        }
      }
      int status = 0;
      try {
        SocketExchange ex = make_exchange(rank);
        fn(ex);
      } catch (...) {
        status = 2;
      }
      ::_exit(status);
    }
    if (pid < 0) {
      for (pid_t child : children) ::kill(child, SIGKILL);
      for (pid_t child : children) ::waitpid(child, nullptr, 0);
      close_all(rank_count);
      throw ExchangeError("run_multiprocess: fork failed: " +
                          std::string(std::strerror(errno)));
    }
    children.push_back(pid);
  }

  // Parent = rank 0.  Child ends of the pairs are closed here so a dead
  // child turns into EOF on our links instead of a silent wedge.
  close_all(0);
  std::exception_ptr error;
  try {
    SocketExchange ex = make_exchange(0);
    fn(ex);
    // ex destructs here, closing rank 0's links: children still blocked in
    // a read see EOF and wind down on their own.
  } catch (...) {
    error = std::current_exception();
    for (pid_t child : children) ::kill(child, SIGKILL);
  }

  std::string child_failure;
  for (std::size_t i = 0; i < children.size(); ++i) {
    int status = 0;
    ::waitpid(children[i], &status, 0);
    if (error) continue;  // killed above; their status is ours, not theirs
    const unsigned rank = static_cast<unsigned>(i + 1);
    if (WIFSIGNALED(status)) {
      child_failure = "run_multiprocess: rank " + std::to_string(rank) +
                      " died on signal " + std::to_string(WTERMSIG(status));
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
      child_failure = "run_multiprocess: rank " + std::to_string(rank) +
                      " exited with status " + std::to_string(WEXITSTATUS(status));
    }
  }
  if (error) std::rethrow_exception(error);
  if (!child_failure.empty()) throw ExchangeError(child_failure);
}

}  // namespace qs::distributed
