// Deterministic tree-ordered reductions for the distributed layer.
//
// A distributed sum must not depend on how many ranks computed it, or the
// promise "the distributed solve is bit-identical to the serial facade for
// every rank count" is unkeepable: floating-point addition is not
// associative, and the serial engine's left-to-right order is exactly the
// one a blocked decomposition cannot reproduce.  This module fixes ONE
// summation order — the complete binary tree over the (power-of-two) index
// space — chosen because it is the order a recursive-doubling allreduce on
// a hypercube computes for free:
//
//   * within a rank, the block partial is the binary tree over the block
//     (an aligned power-of-two block is a complete subtree of the global
//     tree);
//   * across ranks, combining partners in bit order (bit 0 first) builds
//     ((r0+r1)+(r2+r3))+... — the remaining upper levels of the same tree.
//
// The grand total therefore equals the binary tree over the full vector,
// bit for bit, for ANY power-of-two rank count — including rank_count = 1
// and including a serial run through TreeEngine below.  That engine plugs
// the same order into solvers::IterationOptions::engine, which is how the
// serial facade reproduces a distributed residual stream exactly (see
// docs/distributed.md).
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <span>

#include "parallel/engine.hpp"

namespace qs::distributed {

/// Binary-tree reduction of leaf(i) over [begin, end).  The tree splits at
/// the largest power of two not exceeding the range size, so power-of-two
/// ranges (the only ones the distributed layer produces) halve exactly and
/// aligned sub-ranges are complete subtrees of the enclosing range's tree.
template <typename Leaf>
double tree_reduce(std::size_t begin, std::size_t end, const Leaf& leaf) {
  const std::size_t n = end - begin;
  switch (n) {
    case 0: return 0.0;
    case 1: return leaf(begin);
    case 2: return leaf(begin) + leaf(begin + 1);
    case 4: return (leaf(begin) + leaf(begin + 1)) +
                   (leaf(begin + 2) + leaf(begin + 3));
    default: break;
  }
  const std::size_t half = std::bit_ceil(n) / 2;
  return tree_reduce(begin, begin + half, leaf) +
         tree_reduce(begin + half, end, leaf);
}

/// Tree-ordered sum of a span.
inline double tree_sum(std::span<const double> v) {
  const double* p = v.data();
  return tree_reduce(std::size_t{0}, v.size(),
                     [p](std::size_t i) { return p[i]; });
}

/// Tree-ordered 1-norm.
inline double tree_abs_sum(std::span<const double> v) {
  const double* p = v.data();
  return tree_reduce(std::size_t{0}, v.size(),
                     [p](std::size_t i) { return std::abs(p[i]); });
}

/// Tree-ordered sum of squares.
inline double tree_sum_squares(std::span<const double> v) {
  const double* p = v.data();
  return tree_reduce(std::size_t{0}, v.size(),
                     [p](std::size_t i) { return p[i] * p[i]; });
}

/// Tree-ordered inner product.  Requires equal lengths.
inline double tree_dot(std::span<const double> a, std::span<const double> b) {
  const double* pa = a.data();
  const double* pb = b.data();
  return tree_reduce(std::size_t{0}, a.size(),
                     [pa, pb](std::size_t i) { return pa[i] * pb[i]; });
}

/// Serial engine whose reductions all use the tree order above.  dispatch /
/// reduce_partials run their kernels per element so the combination order is
/// the engine's, not the kernel body's — slower than a fused sweep, but this
/// engine exists for equivalence testing and facade comparisons, not for
/// production throughput.
class TreeEngine final : public parallel::Engine {
 public:
  std::string_view name() const override { return "tree-serial"; }
  unsigned concurrency() const override { return 1; }
  void dispatch(std::size_t n, const parallel::RangeKernel& kernel) const override;
  double reduce_sum(std::span<const double> v) const override;
  double reduce_abs_sum(std::span<const double> v) const override;
  double reduce_sum_squares(std::span<const double> v) const override;
  double reduce_dot(std::span<const double> a,
                    std::span<const double> b) const override;
  double reduce_partials(std::size_t n,
                         const parallel::PartialKernel& kernel) const override;
};

/// Process-lifetime TreeEngine instance.
const parallel::Engine& tree_engine();

}  // namespace qs::distributed
