#include "distributed/reduction.hpp"

namespace qs::distributed {

void TreeEngine::dispatch(std::size_t n, const parallel::RangeKernel& kernel) const {
  if (n != 0) kernel(0, n);
}

double TreeEngine::reduce_sum(std::span<const double> v) const {
  return tree_sum(v);
}

double TreeEngine::reduce_abs_sum(std::span<const double> v) const {
  return tree_abs_sum(v);
}

double TreeEngine::reduce_sum_squares(std::span<const double> v) const {
  return tree_sum_squares(v);
}

double TreeEngine::reduce_dot(std::span<const double> a,
                              std::span<const double> b) const {
  return tree_dot(a, b);
}

double TreeEngine::reduce_partials(std::size_t n,
                                   const parallel::PartialKernel& kernel) const {
  // Single-element kernel invocations: the partial for [i, i+1) is exactly
  // the leaf value, so the combination order is the tree's regardless of how
  // the kernel body would have accumulated a wider range.
  return tree_reduce(std::size_t{0}, n,
                     [&kernel](std::size_t i) { return kernel(i, i + 1); });
}

const parallel::Engine& tree_engine() {
  static const TreeEngine engine;
  return engine;
}

}  // namespace qs::distributed
