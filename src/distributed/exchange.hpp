// The one transport interface of the distributed layer.
//
// Every communication a distributed solve performs goes through Exchange:
// pairwise block sendrecv along hypercube links (with per-band tags so a
// desynchronised rank is caught as a structured error, not silent
// corruption), allreduce in the deterministic tree order of
// distributed/reduction.hpp, and binomial-tree gather/scatter against the
// root.  Two implementations:
//
//   * LockstepGroup — rank-per-thread endpoints in one process,
//     barrier-synchronised through shared memory.  Deterministic, cheap,
//     and the TSan target; this is the direct descendant of the original
//     "simulated MPI" communicator.
//   * SocketExchange / run_multiprocess — real multi-process transport:
//     the caller's process becomes rank 0 and forks the other ranks, with
//     one AF_UNIX socketpair per hypercube edge wrapped in the solver
//     service's poll-gated FdStream.  Each rank holds only its own
//     2^(nu-k) block — the first configuration where the aggregate solver
//     state exceeds one address space.
//
// Overlap: sendrecv_overlapped delivers the incoming block in segments and
// invokes the caller's combine callback on segment s-1 while segment s is
// still in flight, so the butterfly's cross-rank combine hides behind the
// wire time.  TrafficStats::overlap_ns / exchange_ns quantify the effect
// (the obs `dist.exchange` spans prove it in traces).
//
// Determinism contract: all reduction entry points combine in the
// tree order of distributed/reduction.hpp — rank partial r0..rR-1 become
// ((r0+r1)+(r2+r3))+..., which is what recursive doubling on a hypercube
// computes natively.  Results are bit-identical across transports and rank
// counts (see docs/distributed.md for the full argument).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "distributed/block_layout.hpp"

namespace qs::distributed {

/// Any distributed-transport failure: a peer rank died mid-exchange, a link
/// timed out, or the ranks desynchronised (mismatched tag or length).  The
/// message names the ranks involved; callers get a structured error and a
/// prompt return, never a hang (every socket operation is poll-gated).
class ExchangeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Segment-delivery callback of sendrecv_overlapped: called once per
/// received segment [begin, end) (indices in doubles, ascending, exactly
/// covering the block).
using SegmentFn = std::function<void(std::size_t begin, std::size_t end)>;

/// One rank's endpoint of the collective transport.  All ranks of a group
/// must call the same sequence of collective operations with matching tags
/// and lengths (MPI-style SPMD discipline); the implementations validate
/// tags/lengths where the transport allows and raise ExchangeError on
/// mismatch.
class Exchange {
 public:
  virtual ~Exchange() = default;

  virtual unsigned rank() const = 0;
  virtual unsigned rank_count() const = 0;

  /// Pairwise block swap: sends `send` to `partner` and fills `recv` with
  /// the partner's block.  Both sides must pass the same length and tag.
  virtual void sendrecv(unsigned partner, std::span<const double> send,
                        std::span<double> recv, unsigned tag) = 0;

  /// Pipelined sendrecv: `recv` is delivered in segments, and `on_segment`
  /// runs as soon as its segment arrived — on a real transport, while later
  /// segments are still in flight, so combine work overlaps the wire.  The
  /// callback may overwrite already-sent prefixes of `send` (the transport
  /// guarantees segment s is fully written out before on_segment(s) runs).
  /// The base implementation completes the swap first and then delivers one
  /// whole-block segment (no overlap).
  virtual void sendrecv_overlapped(unsigned partner, std::span<const double> send,
                                   std::span<double> recv, unsigned tag,
                                   const SegmentFn& on_segment);

  /// Tree-ordered global sum of one scalar; every rank receives the same
  /// bits, invariant to rank count (see reduction.hpp).
  virtual double allreduce_sum(double partial, unsigned tag) = 0;

  /// Element-wise tree-ordered global sum of a small vector (stats,
  /// multi-scalar control words).  Same determinism contract per element.
  virtual void allreduce_sum(std::span<double> values, unsigned tag) = 0;

  /// Binomial-tree gather of the per-rank blocks into rank 0's `full`
  /// (size rank_count * block length there; ignored elsewhere — pass {}).
  virtual void gather_to_root(std::span<const double> block,
                              std::span<double> full, unsigned tag) = 0;

  /// Inverse of gather_to_root: rank 0's `full` is split into per-rank
  /// blocks (non-root ranks pass {} for `full`).
  virtual void scatter_from_root(std::span<double> block,
                                 std::span<const double> full, unsigned tag) = 0;

  /// True when every rank of this group can see this process's memory — the
  /// ranks share one span-buffer registry, so trace spans need no shipping.
  /// SocketExchange (forked processes) overrides to false, which switches
  /// on the cross-rank span gather at the end of a distributed solve.
  virtual bool shared_address_space() const { return true; }

  /// This endpoint's traffic counters (sends and reductions it performed).
  TrafficStats& stats() { return stats_; }
  const TrafficStats& stats() const { return stats_; }

 protected:
  TrafficStats stats_;
};

/// In-process lockstep transport: one endpoint per rank, shared-memory
/// block swaps synchronised with a std::barrier.  Run one thread per rank
/// (run() below does) and have each call the collective operations in the
/// same order — the barrier protocol makes every data hand-off a
/// happens-before edge, so the group is race-free under TSan by
/// construction.
class LockstepGroup {
 public:
  explicit LockstepGroup(unsigned rank_count);
  ~LockstepGroup();

  LockstepGroup(const LockstepGroup&) = delete;
  LockstepGroup& operator=(const LockstepGroup&) = delete;

  unsigned rank_count() const;

  /// Endpoint for `rank`; valid for the group's lifetime.  Each endpoint
  /// must be used by exactly one thread at a time.
  Exchange& endpoint(unsigned rank);

  /// Convenience SPMD runner: spawns one thread per rank, calls
  /// fn(endpoint(rank)) on each, joins, and rethrows rank 0's exception
  /// (or the lowest-ranked one).  A rank that throws drops out of the
  /// barrier protocol and flags the group, so surviving ranks fail with
  /// ExchangeError instead of hanging.
  void run(const std::function<void(Exchange&)>& fn);

  struct Impl;  // implementation detail (public only for the .cpp's endpoints)

 private:
  std::unique_ptr<Impl> impl_;
};

namespace detail {
class SocketExchangeImpl;
}  // namespace detail

/// Multi-process transport over pre-forked AF_UNIX socketpairs, one per
/// hypercube edge, each wrapped in the solver service's poll-gated
/// FdStream.  Construction is handled by run_multiprocess; the type is
/// exposed so tests can probe rank()/stats() through the Exchange
/// interface.
class SocketExchange final : public Exchange {
 public:
  ~SocketExchange() override;

  unsigned rank() const override;
  unsigned rank_count() const override;
  bool shared_address_space() const override { return false; }
  void sendrecv(unsigned partner, std::span<const double> send,
                std::span<double> recv, unsigned tag) override;
  void sendrecv_overlapped(unsigned partner, std::span<const double> send,
                           std::span<double> recv, unsigned tag,
                           const SegmentFn& on_segment) override;
  double allreduce_sum(double partial, unsigned tag) override;
  void allreduce_sum(std::span<double> values, unsigned tag) override;
  void gather_to_root(std::span<const double> block, std::span<double> full,
                      unsigned tag) override;
  void scatter_from_root(std::span<double> block, std::span<const double> full,
                         unsigned tag) override;

 private:
  friend void run_multiprocess(unsigned, const std::function<void(Exchange&)>&,
                               unsigned);
  explicit SocketExchange(std::unique_ptr<detail::SocketExchangeImpl> impl);
  std::unique_ptr<detail::SocketExchangeImpl> impl_;
};

/// Runs `fn` as an SPMD program over `rank_count` real processes: the
/// calling process becomes rank 0 and the other ranks are forked children
/// (which _exit when their fn returns, skipping atexit handlers).  All
/// hypercube socketpairs are created before the first fork; each rank keeps
/// only the fds of its own edges.  `link_timeout_ms` bounds every poll-gated
/// socket chunk, so a dead or wedged peer costs at most the timeout.
///
/// Throws ExchangeError when rank 0's fn throws, when any child exits
/// abnormally, or when a link breaks mid-exchange (remaining children are
/// killed and reaped first — no orphans, no hangs).  rank_count must be a
/// power of two.  Fork duplicates only the calling thread; call this from a
/// process whose other threads (if any) hold no locks the children need.
void run_multiprocess(unsigned rank_count, const std::function<void(Exchange&)>& fn,
                      unsigned link_timeout_ms = 30000);

}  // namespace qs::distributed
