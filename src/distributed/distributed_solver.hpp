// Distributed-memory Fmmp and power iteration over the Exchange transport.
//
// The distributed solve is an SPMD program: every rank owns one contiguous
// 2^(nu-k) block of the concentration vector (BlockLayout), runs the bottom
// nu-k butterfly levels rank-locally through the banded blocked kernel
// (transforms/blocked_butterfly — same BlockedPlan, same sv microkernels as
// the serial solver), and performs one pairwise block exchange per top
// level, combining the partner's segments while later segments are still in
// flight (Exchange::sendrecv_overlapped).  Global reductions go through the
// tree order of distributed/reduction.hpp, which makes every number the
// solve produces independent of the rank count and the transport.
//
// The iteration control plane is solvers::IterationDriver, replicated
// MPI-style: every rank runs its own driver on identical allreduced values,
// so convergence, stall windows, NaN/Inf guards, and cancellation verdicts
// are taken identically everywhere without extra communication; the only
// agreement traffic is one small control-word allreduce per residual check,
// exchanged when cooperative cancellation or wall-clock checkpointing is
// configured.  Checkpoint writes and observability hooks fire on rank 0
// only, against the gathered full iterate, so checkpoint files interoperate
// with the serial solver's resume path.
//
// Equivalence contract (tested in tests/distributed_exchange_test.cpp and
// derived in docs/distributed.md): for any power-of-two rank count and
// either transport, the solve is BIT-IDENTICAL — eigenvalue, iteration
// count, full residual stream, and gathered eigenvector — to the serial
// facade `resume_power_iteration` run with distributed::tree_engine() as
// IterationOptions::engine and a tree_landscape_start iterate.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "distributed/block_layout.hpp"
#include "distributed/exchange.hpp"
#include "io/binary_io.hpp"
#include "solvers/iteration_driver.hpp"
#include "support/contracts.hpp"
#include "transforms/blocked_butterfly.hpp"

namespace qs::distributed {

/// The distributed layer was handed a problem class its kernels cannot run
/// (today: grouped mutation models, whose factors are dense per-group
/// matrices rather than 2x2 site factors).  Structured — carries the
/// offending kind and maps onto SolverFailure::unsupported — so callers can
/// route the solve to a serial backend instead of dying on a contract
/// abort.  Derives from precondition_error: pre-existing catch sites keep
/// working.
class UnsupportedModelError : public precondition_error {
 public:
  explicit UnsupportedModelError(core::MutationKind kind);

  core::MutationKind kind() const { return kind_; }
  solvers::SolverFailure failure() const {
    return solvers::SolverFailure::unsupported;
  }

 private:
  core::MutationKind kind_;
};

/// Which Exchange implementation a distributed solve runs on.
enum class ExchangeKind {
  lockstep,  ///< In-process rank-per-thread transport (deterministic tests).
  process,   ///< Real fork + AF_UNIX transport; each rank owns only its block.
};

const char* to_string(ExchangeKind kind);

/// A 2^nu vector held as per-rank blocks.  Legacy single-process container
/// used by the in-place apply below and by the bench/test harnesses; the
/// power iteration itself never materialises one (each rank holds only its
/// own block).
class DistributedVector {
 public:
  /// Zero-initialised blocks for the given layout.
  explicit DistributedVector(const BlockLayout& layout);

  /// Scatters a global vector into blocks. Requires matching length.
  static DistributedVector scatter(const BlockLayout& layout,
                                   std::span<const double> global);

  const BlockLayout& layout() const { return *layout_; }

  std::span<double> block(unsigned rank) { return blocks_[rank]; }
  std::span<const double> block(unsigned rank) const { return blocks_[rank]; }

  /// Gathers the blocks back into one global vector.
  std::vector<double> gather() const;

 private:
  const BlockLayout* layout_;
  std::vector<std::vector<double>> blocks_;
};

/// Distributed W x = Q F x in place (right formulation): per-rank diagonal
/// scaling fused into the banded blocked butterfly for the local levels,
/// then one pairwise block exchange per cross-rank level, combined with the
/// same sv microkernel the plan resolves for the serial solver.  Throws
/// UnsupportedModelError for grouped models.  Traffic is accumulated into
/// `stats`.
void distributed_apply_w(const core::MutationModel& model,
                         const core::Landscape& landscape, DistributedVector& v,
                         TrafficStats& stats,
                         const transforms::BlockedPlan& plan = {});

/// Options of the distributed power iteration.  Everything IterationOptions
/// offers works unchanged: tolerance / stall windows, checkpoint_path /
/// checkpoint_sink / checkpoint_every[_seconds] (written by rank 0 against
/// the gathered iterate; resumable by the serial solver and vice versa),
/// on_residual (rank 0), and should_stop (polled on every rank, agreed via
/// allreduce — any rank can cancel the whole solve).  `engine` is ignored:
/// reductions are tree-ordered by construction and rank-local compute is
/// serial (parallelism is across ranks).
struct DistributedPowerOptions : solvers::IterationOptions {
  /// Power-iteration shift (x <- (W - shift I) x updates).
  double shift = 0.0;

  /// Tiling/microkernel plan of the rank-local banded butterfly; the same
  /// plan type (and provenance strings) the serial blocked solver uses.
  transforms::BlockedPlan plan;

  /// Transport to run on.
  ExchangeKind exchange = ExchangeKind::lockstep;

  /// Gather the final eigenvector to rank 0 (and 1-normalise it exactly as
  /// the serial solver does).  Disable for capacity runs where no single
  /// rank should materialise the 2^nu vector; each rank then keeps its own
  /// block, normalised by the tree-ordered global 1-norm.
  bool gather_eigenvector = true;

  /// Per-chunk socket timeout of the process transport (ms); a dead peer
  /// costs at most this long before the solve fails with ExchangeError.
  unsigned exchange_timeout_ms = 30000;
};

/// Result of a distributed solve (rank 0's view).
struct DistributedPowerResult : solvers::IterationResult {
  /// Gathered full eigenvector (gather_eigenvector == true), else rank 0's
  /// block.
  std::vector<double> eigenvector;

  /// Traffic aggregated over all ranks (allreduced at the end of the solve;
  /// on a cancelled or failed solve these are the partial totals up to the
  /// abort point).
  TrafficStats traffic;

  unsigned rank_count = 0;

  /// Resolved sv microkernel provenance of the rank-local banded kernel
  /// ("autovec" / "avx2" / "avx512") — proof of which kernel tier ran.
  std::string plan_kernel;

  /// Butterfly levels that ran rank-locally (log2 of the block size).
  unsigned local_levels = 0;
};

/// Produces each rank's landscape block: called once per rank with the
/// layout and the rank id, must return block_size() fitness values.  This is
/// the capacity-run entry point — no rank ever holds the full landscape.
using FitnessBlockFn =
    std::function<std::vector<double>(const BlockLayout& layout, unsigned rank)>;

/// The serial-facade starting iterate of a distributed solve: the landscape
/// scaled by the reciprocal of its tree-ordered 1-norm.  Feed this to
/// resume_power_iteration (iteration-0 checkpoint) with tree_engine() to
/// reproduce a distributed solve bit for bit on one rank.
std::vector<double> tree_landscape_start(const core::Landscape& landscape);

/// Shifted power iteration over the blocked decomposition.  Requires a
/// 2x2-factor model (throws UnsupportedModelError for grouped ones) and
/// rank_count a power of two <= 2^(nu-1).
DistributedPowerResult distributed_power_iteration(
    const core::MutationModel& model, const core::Landscape& landscape,
    unsigned rank_count, const DistributedPowerOptions& options = {});

/// Same solve with rank-sourced landscape blocks (no full landscape
/// anywhere).  gather_eigenvector defaults should be set false by callers
/// at capacity scale.
DistributedPowerResult distributed_power_iteration_blocks(
    const core::MutationModel& model, unsigned rank_count,
    const FitnessBlockFn& fitness, const DistributedPowerOptions& options = {});

/// Resumes a distributed solve from a checkpoint written by a previous
/// distributed run or by the serial power iteration (kind must be power /
/// unspecified; the iterate is taken verbatim).  The rank count may differ
/// from the run that wrote the checkpoint — the trajectory continues
/// bit-identically regardless.
DistributedPowerResult resume_distributed_power_iteration(
    const core::MutationModel& model, const core::Landscape& landscape,
    unsigned rank_count, const io::SolverCheckpoint& checkpoint,
    const DistributedPowerOptions& options = {});

/// One rank's body of the distributed power iteration, exposed so tests and
/// custom launchers can drive it over any Exchange.  `fitness_block` is this
/// rank's landscape block; `resume`, when set, must be valid on every rank
/// (scalars are read everywhere, the iterate slice locally).  Returns this
/// rank's view of the result (rank 0's carries the gathered eigenvector and
/// the aggregated traffic).
DistributedPowerResult distributed_power_rank(
    Exchange& exchange, const BlockLayout& layout,
    std::span<const transforms::Factor2> sites,
    std::span<const double> fitness_block, const DistributedPowerOptions& options,
    const io::SolverCheckpoint* resume = nullptr);

}  // namespace qs::distributed
