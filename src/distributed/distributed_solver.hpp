// Simulated distributed-memory Fmmp and power iteration.
//
// Implements the full numerical pipeline of a distributed quasispecies
// solve over the BlockLayout decomposition: per-rank landscape blocks,
// rank-local butterfly levels, pairwise block exchanges for the top levels,
// and allreduce-style global reductions for norms and residuals.  Ranks are
// simulated in lockstep inside one process (deterministic and unit
// testable); every data movement is tallied in TrafficStats, and the
// communication schedule is exactly what an MPI port would issue.
#pragma once

#include <span>
#include <vector>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "distributed/block_layout.hpp"

namespace qs::distributed {

/// A 2^nu vector held as per-rank blocks.
class DistributedVector {
 public:
  /// Zero-initialised blocks for the given layout.
  explicit DistributedVector(const BlockLayout& layout);

  /// Scatters a global vector into blocks. Requires matching length.
  static DistributedVector scatter(const BlockLayout& layout,
                                   std::span<const double> global);

  const BlockLayout& layout() const { return *layout_; }

  std::span<double> block(unsigned rank) { return blocks_[rank]; }
  std::span<const double> block(unsigned rank) const { return blocks_[rank]; }

  /// Gathers the blocks back into one global vector.
  std::vector<double> gather() const;

 private:
  const BlockLayout* layout_;
  std::vector<std::vector<double>> blocks_;
};

/// Distributed W x = Q F x in place (right formulation): per-rank diagonal
/// scaling, local butterfly levels, then one pairwise block exchange per
/// cross-rank level.  `landscape` must match the layout's nu; the mutation
/// model must be a 2x2-factor kind (uniform or per-site).  Traffic is
/// accumulated into `stats`.
void distributed_apply_w(const core::MutationModel& model,
                         const core::Landscape& landscape, DistributedVector& v,
                         TrafficStats& stats);

/// Result of the distributed power iteration.
struct DistributedPowerResult {
  double eigenvalue = 0.0;
  std::vector<double> eigenvector;  ///< Gathered, 1-norm normalised.
  unsigned iterations = 0;
  double residual = 0.0;
  bool converged = false;
  TrafficStats traffic;
};

/// Options mirroring the serial power iteration.
struct DistributedPowerOptions {
  double tolerance = 1e-13;
  unsigned max_iterations = 1000000;
  double shift = 0.0;
};

/// Shifted power iteration over the blocked decomposition; numerically
/// identical to the serial solver (same arithmetic, same order within
/// blocks), with all global quantities computed via simulated allreduce.
DistributedPowerResult distributed_power_iteration(
    const core::MutationModel& model, const core::Landscape& landscape,
    unsigned rank_count, const DistributedPowerOptions& options = {});

}  // namespace qs::distributed
