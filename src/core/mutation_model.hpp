// Implicit mutation matrices Q.
//
// A MutationModel describes Q without storing any of its N^2 entries, in one
// of three increasingly general Kronecker forms from the paper:
//
//   uniform   — Eq. (2)/(7): Q = (x)_{k} [[1-p, p], [p, 1-p]], one error
//               rate p for all positions (the classic quasispecies model);
//   per-site  — Section 2.2: Q = (x)_{k} M_k with arbitrary column-
//               stochastic 2x2 factors (position-dependent / asymmetric
//               rates);
//   grouped   — Eq. (11): Q = (x)_{i} Q_{G_i} with column-stochastic blocks
//               of size 2^{g_i} (dependent mutations within groups).
//
// All three expose the same implicit Theta(N log N)-ish mat-vec (the fast
// mutation matrix product runs through transforms/butterfly or
// transforms/kronecker) plus entrywise access for baselines and tests.
//
// Bit convention: bit k of a sequence index is position k; factors are
// indexed by position, factor 0 acting on the least significant bit.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "parallel/engine.hpp"
#include "support/bits.hpp"
#include "transforms/blocked_butterfly.hpp"
#include "transforms/butterfly.hpp"
#include "transforms/kronecker.hpp"

namespace qs::core {

/// Structural kind of a mutation model.
enum class MutationKind {
  uniform,
  per_site,
  grouped,
};

/// Implicit description of the mutation matrix Q of chain length nu.
class MutationModel {
 public:
  /// Classic uniform-error-rate model. Requires 1 <= nu <= kMaxChainLength
  /// and 0 < p <= 1/2.
  static MutationModel uniform(unsigned nu, double p);

  /// Per-site model; sites[k] acts on position k. Each factor must be
  /// column stochastic with probability entries. Requires 1 <= sites.size()
  /// <= kMaxChainLength.
  static MutationModel per_site(std::vector<transforms::Factor2> sites);

  /// Grouped model from validated column-stochastic group factors;
  /// groups[0] acts on the least significant bit group.
  static MutationModel grouped(std::vector<linalg::DenseMatrix> groups);

  MutationKind kind() const { return kind_; }

  /// Chain length nu.  Models may be constructed for nu up to 1000 (they
  /// store only per-site factors); operations that index the full sequence
  /// space (dimension(), entry(), apply()) additionally require
  /// nu <= kMaxChainLength.
  unsigned nu() const { return nu_; }

  /// Problem dimension N = 2^nu. Requires nu <= kMaxChainLength.
  seq_t dimension() const {
    require(nu_ <= kMaxChainLength,
            "dimension(): chain length too large to index explicitly");
    return sequence_count(nu_);
  }

  /// Uniform error rate p. Requires kind() == uniform.
  double error_rate() const;

  /// True iff Q is symmetric (always for uniform; per-site/grouped when
  /// every factor is).  The symmetric problem formulation (Eq. (4)) is only
  /// admissible for symmetric Q.
  bool symmetric() const { return symmetric_; }

  /// Entry Q_{i,j}: probability that sequence X_j replicates into X_i.
  /// O(nu) per entry for 2x2 kinds, O(g) for grouped. Underflows to 0 for
  /// very distant pairs at large nu, exactly like the explicit matrix would.
  double entry(seq_t i, seq_t j) const;

  /// The class value Q_Gamma_k = p^k (1-p)^(nu-k) (uniform only).
  double class_value(unsigned k) const;

  /// In-place fast product v <- Q v (the Fmmp of Section 2.1 for 2x2 kinds,
  /// the grouped Kronecker product for Eq. (11)). Requires
  /// v.size() == dimension().
  void apply(std::span<double> v,
             transforms::LevelOrder order = transforms::LevelOrder::ascending) const;

  /// Engine-parallel fast product.  2x2 kinds run the cache-blocked banded
  /// butterfly (one kernel launch per level *band*, every work item applying
  /// the whole band inside an L2-resident tile); the grouped kind runs the
  /// group-banded Kronecker kernel of transforms/kronecker, packing
  /// consecutive groups into the same bands.
  void apply(std::span<double> v, const parallel::Engine& engine) const;

  /// Engine-parallel banded product with an explicit tiling plan (all kinds).
  void apply_blocked(std::span<double> v, const parallel::Engine& engine,
                     const transforms::BlockedPlan& plan) const;

  /// Engine-parallel banded product on an interleaved panel of m vectors
  /// (panel[i*m + j] = element i of vector j): every column becomes Q column.
  /// Requires panel.size() == dimension() * m.
  void apply_panel(std::span<double> panel, std::size_t m,
                   const parallel::Engine& engine,
                   const transforms::BlockedPlan& plan = {}) const;

  /// The paper's literal Algorithm 2: one kernel launch per butterfly level
  /// with the GPU index mapping j = 2*ID - (ID & (stride - 1)); the grouped
  /// kind launches once per group factor.  Kept as the reference engine path
  /// the banded kernels are benchmarked against.
  void apply_per_level(std::span<double> v, const parallel::Engine& engine) const;

  /// v <- Q^T v (needed by left-eigenvector computations; equal to apply()
  /// for symmetric models).
  void apply_transposed(std::span<double> v) const;

  /// 2x2 site factors (uniform and per-site kinds). Requires
  /// kind() != grouped.
  const std::vector<transforms::Factor2>& site_factors() const;

  /// Group factors (grouped kind). Requires kind() == grouped.
  const transforms::KroneckerProduct& group_product() const;

  /// Eigenvalue of Q belonging to Walsh index w (symmetric 2x2 kinds only):
  /// the product over set bits k of w of (1 - m01_k - m10_k); for the
  /// uniform model this is (1-2p)^{popcount(w)} as in Section 2.
  double walsh_eigenvalue(seq_t w) const;

 private:
  MutationModel() = default;

  void apply_grouped(std::span<double> v, const parallel::Engine& engine) const;

  MutationKind kind_ = MutationKind::uniform;
  unsigned nu_ = 0;
  double p_ = 0.0;  // uniform only
  bool symmetric_ = true;
  std::vector<transforms::Factor2> sites_;                 // 2x2 kinds
  std::optional<transforms::KroneckerProduct> groups_;     // grouped kind
};

}  // namespace qs::core
