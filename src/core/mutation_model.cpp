#include "core/mutation_model.hpp"

#include <cmath>

#include "core/site_process.hpp"
#include "support/contracts.hpp"
#include "transforms/panel_butterfly.hpp"

namespace qs::core {

MutationModel MutationModel::uniform(unsigned nu, double p) {
  require(nu >= 1 && nu <= 1000, "chain length nu out of range");
  require(p > 0.0 && p <= 0.5, "error rate p must satisfy 0 < p <= 1/2");
  MutationModel m;
  m.kind_ = MutationKind::uniform;
  m.nu_ = nu;
  m.p_ = p;
  m.symmetric_ = true;
  m.sites_.assign(nu, transforms::Factor2::uniform(p));
  return m;
}

MutationModel MutationModel::per_site(std::vector<transforms::Factor2> sites) {
  require(!sites.empty() && sites.size() <= 1000,
          "per-site model needs 1..1000 factors");
  bool symmetric = true;
  for (const auto& f : sites) {
    validate_site(f);
    if (std::abs(f.m01 - f.m10) > 0.0) symmetric = false;
  }
  MutationModel m;
  m.kind_ = MutationKind::per_site;
  m.nu_ = static_cast<unsigned>(sites.size());
  m.symmetric_ = symmetric;
  m.sites_ = std::move(sites);
  return m;
}

MutationModel MutationModel::grouped(std::vector<linalg::DenseMatrix> groups) {
  require(!groups.empty(), "grouped model needs at least one group factor");
  bool symmetric = true;
  for (const auto& g : groups) {
    validate_group(g);
    if (!g.is_symmetric(0.0)) symmetric = false;
  }
  MutationModel m;
  m.kind_ = MutationKind::grouped;
  m.groups_.emplace(std::move(groups));
  m.nu_ = m.groups_->total_bits();
  m.symmetric_ = symmetric;
  return m;
}

double MutationModel::error_rate() const {
  require(kind_ == MutationKind::uniform, "error_rate(): model is not uniform");
  return p_;
}

double MutationModel::entry(seq_t i, seq_t j) const {
  require(i < dimension() && j < dimension(), "entry(): index out of range");
  if (kind_ == MutationKind::grouped) {
    double prod = 1.0;
    unsigned lo = 0;
    const auto& kp = *groups_;
    for (std::size_t g = 0; g < kp.group_count(); ++g) {
      const unsigned bits = kp.group_bits(g);
      const seq_t mask = (seq_t{1} << bits) - 1;
      const auto row = static_cast<std::size_t>((i >> lo) & mask);
      const auto col = static_cast<std::size_t>((j >> lo) & mask);
      prod *= kp.factors()[g](row, col);
      lo += bits;
    }
    return prod;
  }
  if (kind_ == MutationKind::uniform) {
    const unsigned d = hamming_distance(i, j);
    return std::pow(p_, static_cast<double>(d)) *
           std::pow(1.0 - p_, static_cast<double>(nu_ - d));
  }
  double prod = 1.0;
  for (unsigned k = 0; k < nu_; ++k) {
    const bool bi = (i >> k) & 1;
    const bool bj = (j >> k) & 1;
    const transforms::Factor2& f = sites_[k];
    // Factor entry (row = state after, col = state before).
    prod *= bi ? (bj ? f.m11 : f.m10) : (bj ? f.m01 : f.m00);
  }
  return prod;
}

double MutationModel::class_value(unsigned k) const {
  require(kind_ == MutationKind::uniform, "class_value(): model is not uniform");
  require(k <= nu_, "class_value(): class index k must satisfy k <= nu");
  return std::pow(p_, static_cast<double>(k)) *
         std::pow(1.0 - p_, static_cast<double>(nu_ - k));
}

void MutationModel::apply(std::span<double> v, transforms::LevelOrder order) const {
  require(v.size() == dimension(), "apply(): dimension mismatch");
  if (kind_ == MutationKind::grouped) {
    groups_->apply(v);
    return;
  }
  transforms::apply_butterfly(v, sites_, order);
}

void MutationModel::apply(std::span<double> v, const parallel::Engine& engine) const {
  require(v.size() == dimension(), "apply(): dimension mismatch");
  if (kind_ == MutationKind::grouped) {
    transforms::apply_blocked_kronecker(v, 1, *groups_, engine);
    return;
  }
  transforms::apply_blocked_butterfly(v, sites_, engine);
}

void MutationModel::apply_blocked(std::span<double> v, const parallel::Engine& engine,
                                  const transforms::BlockedPlan& plan) const {
  require(v.size() == dimension(), "apply_blocked(): dimension mismatch");
  if (kind_ == MutationKind::grouped) {
    transforms::apply_blocked_kronecker(v, 1, *groups_, engine, plan);
    return;
  }
  transforms::apply_blocked_butterfly(v, sites_, engine, plan);
}

void MutationModel::apply_panel(std::span<double> panel, std::size_t m,
                                const parallel::Engine& engine,
                                const transforms::BlockedPlan& plan) const {
  require(m >= 1, "apply_panel(): panel width m must be >= 1");
  require(panel.size() == dimension() * m, "apply_panel(): dimension mismatch");
  if (kind_ == MutationKind::grouped) {
    transforms::apply_blocked_kronecker(panel, m, *groups_, engine, plan);
    return;
  }
  transforms::apply_blocked_panel_butterfly(panel, m, sites_, engine, plan);
}

void MutationModel::apply_per_level(std::span<double> v,
                                    const parallel::Engine& engine) const {
  require(v.size() == dimension(), "apply_per_level(): dimension mismatch");
  if (kind_ == MutationKind::grouped) {
    apply_grouped(v, engine);
    return;
  }
  // Algorithm 2 of the paper: per butterfly level, a kernel over the
  // N/2 independent pair indices ID with j = 2*ID - (ID & (stride-1)).
  double* data = v.data();
  const std::size_t half = v.size() / 2;
  for (unsigned k = 0; k < nu_; ++k) {
    const std::size_t stride = std::size_t{1} << k;
    const transforms::Factor2 f = sites_[k];
    engine.dispatch(half, [data, stride, f](std::size_t begin, std::size_t end) {
      for (std::size_t id = begin; id < end; ++id) {
        const std::size_t j = 2 * id - (id & (stride - 1));
        const double t1 = data[j];
        const double t2 = data[j + stride];
        data[j] = f.m00 * t1 + f.m01 * t2;
        data[j + stride] = f.m10 * t1 + f.m11 * t2;
      }
    });
  }
}

void MutationModel::apply_grouped(std::span<double> v,
                                  const parallel::Engine& engine) const {
  // Per-group reference path (one kernel launch per group; each work item
  // owns one strided m-tuple, the generalisation of a butterfly pair to
  // block size m).  Kept for apply_per_level; the banded grouped kernel in
  // transforms/kronecker is benchmarked against it.
  double* data = v.data();
  const auto& kp = *groups_;
  unsigned lo = 0;
  for (std::size_t g = 0; g < kp.group_count(); ++g) {
    const linalg::DenseMatrix& f = kp.factors()[g];
    const std::size_t m = f.rows();
    const std::size_t lo_stride = std::size_t{1} << lo;
    const std::size_t items = v.size() / m;
    engine.dispatch(items, [data, &f, m, lo_stride](std::size_t begin, std::size_t end) {
      // Stack staging for the strided m-tuple: group sizes are a few bits
      // (m rarely beyond 16), so the per-lane heap vector this replaces was
      // pure allocator traffic on the hot path.
      constexpr std::size_t kStackTuple = 64;
      double stack_tmp[kStackTuple];
      std::vector<double> heap_tmp;
      double* tmp = stack_tmp;
      if (m > kStackTuple) {
        heap_tmp.resize(m);
        tmp = heap_tmp.data();
      }
      for (std::size_t id = begin; id < end; ++id) {
        const std::size_t high = id / lo_stride;
        const std::size_t low = id % lo_stride;
        const std::size_t base = high * (m * lo_stride) + low;
        for (std::size_t r = 0; r < m; ++r) {
          double acc = 0.0;
          for (std::size_t c = 0; c < m; ++c) {
            acc += f(r, c) * data[base + c * lo_stride];
          }
          tmp[r] = acc;
        }
        for (std::size_t r = 0; r < m; ++r) data[base + r * lo_stride] = tmp[r];
      }
    });
    lo += kp.group_bits(g);
  }
}

void MutationModel::apply_transposed(std::span<double> v) const {
  require(v.size() == dimension(), "apply_transposed(): dimension mismatch");
  if (kind_ == MutationKind::grouped) {
    std::vector<linalg::DenseMatrix> transposed;
    transposed.reserve(groups_->group_count());
    for (const auto& f : groups_->factors()) transposed.push_back(f.transposed());
    transforms::KroneckerProduct(std::move(transposed)).apply(v);
    return;
  }
  std::vector<transforms::Factor2> transposed;
  transposed.reserve(sites_.size());
  for (const auto& f : sites_) transposed.push_back(f.transposed());
  transforms::apply_butterfly(v, transposed);
}

const std::vector<transforms::Factor2>& MutationModel::site_factors() const {
  require(kind_ != MutationKind::grouped, "site_factors(): grouped model has none");
  return sites_;
}

const transforms::KroneckerProduct& MutationModel::group_product() const {
  require(kind_ == MutationKind::grouped, "group_product(): model is not grouped");
  return *groups_;
}

double MutationModel::walsh_eigenvalue(seq_t w) const {
  require(kind_ != MutationKind::grouped,
          "walsh_eigenvalue(): only 2x2-factor models are Hadamard-diagonalisable");
  require(symmetric_, "walsh_eigenvalue(): model must be symmetric");
  require(w < dimension(), "walsh_eigenvalue(): index out of range");
  double prod = 1.0;
  for (unsigned k = 0; k < nu_; ++k) {
    if ((w >> k) & 1) {
      const transforms::Factor2& f = sites_[k];
      prod *= 1.0 - f.m01 - f.m10;  // (1 - 2 p_k) for the uniform factor
    }
  }
  return prod;
}

}  // namespace qs::core
