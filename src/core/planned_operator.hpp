// PlannedOperator — the operator layer's one-stop execution object.
//
// Before this layer every call site that wanted the fast product assembled
// the pieces itself: construct an FmmpOperator, thread a BlockedPlan through,
// optionally run the autotuner, and allocate its own scratch.  A
// PlannedOperator owns all of it in one object:
//
//   * the FmmpOperator (model copy + landscape reference + formulation),
//   * the banded/panel butterfly tiling plan — either the caller's fixed
//     plan or the result of running transforms::autotune_blocked_plan at
//     construction (the report is retained for observability),
//   * a preallocated scratch Workspace shared with the solver loops, so the
//     per-iteration hot path performs zero heap allocations.
//
// `apply` / `apply_panel` route through the owned plan on every backend
// (serial, openmp, thread_pool).  The facade, qs_solve/qs_sweep, the block
// solver, and the benches all build their operator through this class.
#pragma once

#include <memory>
#include <optional>

#include "core/fmmp.hpp"
#include "core/workspace.hpp"
#include "obs/trace.hpp"
#include "transforms/plan_autotune.hpp"

namespace qs::core {

/// Construction-time configuration for a PlannedOperator.
struct PlannedOperatorConfig {
  Formulation formulation = Formulation::right;

  /// Execution engine; null routes default configurations (blocked kernel,
  /// ascending order, non-grouped model) through the serial engine so they
  /// get the banded kernel + single-vector microkernels — bit-identical to
  /// the classic serial sweep.  Per-level/descending/grouped configurations
  /// keep the classic serial path when null.
  const parallel::Engine* engine = nullptr;
  transforms::LevelOrder order = transforms::LevelOrder::ascending;
  EngineKernel kernel = EngineKernel::blocked;

  /// Starting tiling plan (the hand-tuned default unless overridden).
  transforms::BlockedPlan plan;

  /// Measure a candidate grid at this problem size during construction and
  /// adopt the fastest plan (never slower than `plan` up to timing noise);
  /// the full report is retained (see autotune_report()).
  bool autotune = false;

  /// Panel width the autotuner should optimise for (m = 1 tunes the
  /// single-vector banded kernel); only used when autotune is set.
  std::size_t autotune_panel_width = 1;
};

/// Implicit fast product with W that owns its plan, autotune result, and
/// scratch workspace.
class PlannedOperator final : public LinearOperator {
 public:
  /// Builds the operator.  `model` is copied (it is small); `landscape` is
  /// referenced and must outlive the operator, as must `config.engine` when
  /// non-null.  With config.autotune set the constructor runs the plan
  /// autotuner once (a few dozen banded matvecs) before building the
  /// underlying FmmpOperator with the winning plan.
  PlannedOperator(MutationModel model, const Landscape& landscape,
                  const PlannedOperatorConfig& config = {});

  seq_t dimension() const override { return op_->dimension(); }
  void apply(std::span<const double> x, std::span<double> y) const override {
    QS_TRACE_SPAN("fmmp.apply", kernel);
    op_->apply(x, y);
  }
  std::string_view name() const override { return "PlannedFmmp"; }

  /// Panel product Y <- W X on an interleaved panel of m vectors; see
  /// FmmpOperator::apply_panel.
  void apply_panel(std::span<const double> x, std::span<double> y,
                   std::size_t m) const {
    QS_TRACE_SPAN_ARG("fmmp.apply_panel", kernel, m);
    op_->apply_panel(x, y, m);
  }

  /// The underlying Fmmp operator (for call sites that need the concrete
  /// type, e.g. the block solver's formulation check).
  const FmmpOperator& fmmp() const { return *op_; }

  /// The plan the operator executes with (the autotuned one when autotune
  /// was requested and detection/measurement succeeded).
  const transforms::BlockedPlan& plan() const { return op_->plan(); }

  /// The autotune measurements, when config.autotune was set.
  const std::optional<transforms::AutotuneReport>& autotune_report() const {
    return report_;
  }

  /// The scratch arena solver loops draw their temporaries from.  Mutable
  /// through a const operator: scratch contents are not part of the
  /// operator's logical state (one solve at a time, like apply itself).
  Workspace& workspace() const { return workspace_; }

 private:
  std::optional<transforms::AutotuneReport> report_;
  std::unique_ptr<FmmpOperator> op_;
  mutable Workspace workspace_;
};

}  // namespace qs::core
