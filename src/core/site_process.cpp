#include "core/site_process.hpp"

#include <cmath>

#include "support/bits.hpp"
#include "support/contracts.hpp"

namespace qs::core {

transforms::Factor2 uniform_site(double p) {
  require(p > 0.0 && p <= 0.5, "error rate p must satisfy 0 < p <= 1/2");
  return transforms::Factor2::uniform(p);
}

transforms::Factor2 asymmetric_site(double p01, double p10) {
  require(p01 >= 0.0 && p01 < 1.0, "flip probability p01 must be in [0, 1)");
  require(p10 >= 0.0 && p10 < 1.0, "flip probability p10 must be in [0, 1)");
  return transforms::Factor2::asymmetric(p01, p10);
}

void validate_site(const transforms::Factor2& f, double tol) {
  const double entries[] = {f.m00, f.m01, f.m10, f.m11};
  for (double e : entries) {
    require(e >= -tol && e <= 1.0 + tol, "site factor entries must be probabilities");
  }
  require(f.stochastic_deviation() <= tol, "site factor must be column stochastic");
}

void validate_group(const linalg::DenseMatrix& g, double tol) {
  require(g.rows() == g.cols(), "group factor must be square");
  require(g.rows() >= 2 && is_power_of_two(g.rows()),
          "group factor dimension must be a power of two >= 2");
  for (std::size_t i = 0; i < g.rows(); ++i) {
    for (std::size_t j = 0; j < g.cols(); ++j) {
      require(g(i, j) >= -tol && g(i, j) <= 1.0 + tol,
              "group factor entries must be probabilities");
    }
  }
  require(g.max_column_sum_deviation() <= tol, "group factor must be column stochastic");
}

linalg::DenseMatrix coupled_single_flip_group(unsigned g, double p_event) {
  require(g >= 1 && g <= 10, "coupled group size must be in [1, 10]");
  require(p_event >= 0.0 && p_event < 1.0, "event probability must be in [0, 1)");
  const std::size_t m = std::size_t{1} << g;
  linalg::DenseMatrix q(m, m);
  const double per_position = p_event / static_cast<double>(g);
  for (std::size_t c = 0; c < m; ++c) {
    q(c, c) = 1.0 - p_event;
    for (unsigned b = 0; b < g; ++b) {
      q(c ^ (std::size_t{1} << b), c) += per_position;
    }
  }
  return q;
}

}  // namespace qs::core
