#include "core/smvp.hpp"

#include "support/contracts.hpp"

namespace qs::core {

SmvpOperator::SmvpOperator(const MutationModel& model, const Landscape& landscape,
                           Formulation formulation, const parallel::Engine* engine)
    : w_(build_w_dense(model, landscape, formulation)), engine_(engine) {}

void SmvpOperator::apply(std::span<const double> x, std::span<double> y) const {
  const std::size_t n = w_.rows();
  require(x.size() == n && y.size() == n, "SmvpOperator::apply: dimension mismatch");
  require(x.data() != y.data(), "SmvpOperator::apply: x and y must not alias");
  if (engine_ == nullptr) {
    w_.multiply(x, y);
    return;
  }
  const double* in = x.data();
  double* out = y.data();
  const linalg::DenseMatrix& w = w_;
  engine_->dispatch(n, [&w, in, out, n](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto row = w.row(i);
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += row[j] * in[j];
      out[i] = acc;
    }
  });
}

}  // namespace qs::core
