#include "core/fmmp.hpp"

#include <cmath>
#include <cstring>

#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"
#include "transforms/blocked_butterfly.hpp"
#include "transforms/panel_butterfly.hpp"

namespace qs::core {

FmmpOperator::FmmpOperator(MutationModel model, const Landscape& landscape,
                           Formulation formulation, const parallel::Engine* engine,
                           transforms::LevelOrder order, EngineKernel kernel,
                           transforms::BlockedPlan plan)
    : model_(std::move(model)),
      landscape_(&landscape),
      formulation_(formulation),
      engine_(engine),
      order_(order),
      kernel_(kernel),
      plan_(plan) {
  require(model_.dimension() == landscape.dimension(),
          "FmmpOperator: mutation model and landscape dimensions differ");
  if (formulation_ == Formulation::symmetric) {
    require(model_.symmetric(),
            "FmmpOperator: symmetric formulation requires a symmetric mutation model");
    sqrt_f_.resize(landscape.dimension());
    const auto f = landscape.values();
    for (std::size_t i = 0; i < sqrt_f_.size(); ++i) sqrt_f_[i] = std::sqrt(f[i]);
  }
}

void FmmpOperator::apply(std::span<const double> x, std::span<double> y) const {
  require(x.size() == dimension() && y.size() == dimension(),
          "FmmpOperator::apply: dimension mismatch");
  require(x.data() != y.data(), "FmmpOperator::apply: x and y must not alias");

  const auto f = landscape_->values();

  // Diagonal scalings of the chosen formulation:
  //   right      W x = Q (F x)            pre = F
  //   symmetric  W x = F^{1/2} Q F^{1/2}  pre = post = F^{1/2}
  //   left       W x = F (Q x)            post = F
  std::span<const double> pre, post;
  switch (formulation_) {
    case Formulation::right:
      pre = f;
      break;
    case Formulation::symmetric:
      pre = sqrt_f_;
      post = sqrt_f_;
      break;
    case Formulation::left:
      post = f;
      break;
  }

  if (engine_ != nullptr && kernel_ == EngineKernel::blocked &&
      model_.kind() != MutationKind::grouped) {
    // Banded kernel: the scalings ride inside the first/last band, so the
    // matvec costs two fewer full passes over the vector.
    transforms::apply_blocked_butterfly_fused(x, y, model_.site_factors(), pre,
                                              post, *engine_, plan_);
    return;
  }

  if (engine_ != nullptr) {
    // Per-level / grouped engine path: the scaling loops go through the
    // engine too, so a parallel backend covers the whole matvec instead of
    // Amdahl-capping it on serial O(N) scaling sweeps.
    const double* xp = x.data();
    double* yp = y.data();
    if (!pre.empty()) {
      const double* pp = pre.data();
      engine_->dispatch(y.size(), [=](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) yp[i] = pp[i] * xp[i];
      });
    } else {
      engine_->dispatch(y.size(), [=](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) yp[i] = xp[i];
      });
    }
    if (kernel_ == EngineKernel::per_level) {
      model_.apply_per_level(y, *engine_);
    } else {
      model_.apply(y, *engine_);
    }
    if (!post.empty()) {
      const double* qp = post.data();
      engine_->dispatch(y.size(), [=](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) yp[i] *= qp[i];
      });
    }
    return;
  }

  // Serial path.
  if (!pre.empty()) {
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = pre[i] * x[i];
  } else {
    linalg::copy(x, y);
  }
  model_.apply(y, order_);
  if (!post.empty()) {
    for (std::size_t i = 0; i < y.size(); ++i) y[i] *= post[i];
  }
}

void FmmpOperator::apply_panel(std::span<const double> x, std::span<double> y,
                               std::size_t m) const {
  require(m >= 1, "FmmpOperator::apply_panel: panel width m must be >= 1");
  require(x.size() == dimension() * m && y.size() == x.size(),
          "FmmpOperator::apply_panel: dimension mismatch");

  const auto f = landscape_->values();
  std::span<const double> pre, post;
  switch (formulation_) {
    case Formulation::right:
      pre = f;
      break;
    case Formulation::symmetric:
      pre = sqrt_f_;
      post = sqrt_f_;
      break;
    case Formulation::left:
      post = f;
      break;
  }

  const parallel::Engine& engine =
      engine_ != nullptr ? *engine_ : parallel::serial_engine();

  if (model_.kind() != MutationKind::grouped) {
    if (m > 8) {
      // Wide panels: the full-width wide entry point (bit-identical per
      // column to the direct path; one place to hang wide-plan policy).
      transforms::apply_panel_wide_fused(x, y, m, model_.site_factors(), pre,
                                         post, engine, plan_);
      return;
    }
    transforms::apply_blocked_panel_butterfly_fused(x, y, m,
                                                    model_.site_factors(), pre,
                                                    post, engine, plan_);
    return;
  }

  // Grouped kind: broadcast scaling sweeps around the banded Kronecker panel
  // kernel (the dense-block contraction has no fused-scaling form).
  const double* xp = x.data();
  double* yp = y.data();
  const std::size_t n = dimension();
  if (!pre.empty()) {
    const double* pp = pre.data();
    engine.dispatch(n, [=](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const double s = pp[i];
        for (std::size_t j = 0; j < m; ++j) yp[i * m + j] = s * xp[i * m + j];
      }
    });
  } else if (xp != yp) {
    engine.dispatch(n, [=](std::size_t begin, std::size_t end) {
      std::memcpy(yp + begin * m, xp + begin * m,
                  (end - begin) * m * sizeof(double));
    });
  }
  transforms::apply_blocked_kronecker(y, m, model_.group_product(), engine,
                                      plan_);
  if (!post.empty()) {
    const double* qp = post.data();
    engine.dispatch(n, [=](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const double s = qp[i];
        for (std::size_t j = 0; j < m; ++j) yp[i * m + j] *= s;
      }
    });
  }
}

}  // namespace qs::core
