#include "core/fmmp.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"

namespace qs::core {

FmmpOperator::FmmpOperator(MutationModel model, const Landscape& landscape,
                           Formulation formulation, const parallel::Engine* engine,
                           transforms::LevelOrder order)
    : model_(std::move(model)),
      landscape_(&landscape),
      formulation_(formulation),
      engine_(engine),
      order_(order) {
  require(model_.dimension() == landscape.dimension(),
          "FmmpOperator: mutation model and landscape dimensions differ");
  if (formulation_ == Formulation::symmetric) {
    require(model_.symmetric(),
            "FmmpOperator: symmetric formulation requires a symmetric mutation model");
    sqrt_f_.resize(landscape.dimension());
    const auto f = landscape.values();
    for (std::size_t i = 0; i < sqrt_f_.size(); ++i) sqrt_f_[i] = std::sqrt(f[i]);
  }
}

void FmmpOperator::apply(std::span<const double> x, std::span<double> y) const {
  require(x.size() == dimension() && y.size() == dimension(),
          "FmmpOperator::apply: dimension mismatch");
  require(x.data() != y.data(), "FmmpOperator::apply: x and y must not alias");

  const auto f = landscape_->values();

  // Pre-scaling into y (the butterfly then runs in place on y).
  switch (formulation_) {
    case Formulation::right:  // W x = Q (F x)
      for (std::size_t i = 0; i < y.size(); ++i) y[i] = f[i] * x[i];
      break;
    case Formulation::symmetric:  // W x = F^{1/2} Q (F^{1/2} x)
      for (std::size_t i = 0; i < y.size(); ++i) y[i] = sqrt_f_[i] * x[i];
      break;
    case Formulation::left:  // W x = F (Q x)
      linalg::copy(x, y);
      break;
  }

  if (engine_ != nullptr) {
    model_.apply(y, *engine_);
  } else {
    model_.apply(y, order_);
  }

  // Post-scaling.
  switch (formulation_) {
    case Formulation::right:
      break;
    case Formulation::symmetric:
      for (std::size_t i = 0; i < y.size(); ++i) y[i] *= sqrt_f_[i];
      break;
    case Formulation::left:
      for (std::size_t i = 0; i < y.size(); ++i) y[i] *= f[i];
      break;
  }
}

}  // namespace qs::core
