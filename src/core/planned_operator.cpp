#include "core/planned_operator.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "transforms/panel_microkernel.hpp"

namespace qs::core {
namespace {

/// Resolves the plan to build with: the caller's fixed plan, or the
/// autotuner's pick seeded around it.
transforms::BlockedPlan resolve_plan(
    unsigned nu, const PlannedOperatorConfig& config,
    std::optional<transforms::AutotuneReport>& report) {
  if (!config.autotune) return config.plan;
  const parallel::Engine& engine =
      config.engine != nullptr ? *config.engine : parallel::serial_engine();
  report = transforms::autotune_blocked_plan(
      nu, engine, std::max<std::size_t>(config.autotune_panel_width, 1));
  return report->best;
}

}  // namespace

PlannedOperator::PlannedOperator(MutationModel model, const Landscape& landscape,
                                 const PlannedOperatorConfig& config) {
  const transforms::BlockedPlan plan = resolve_plan(model.nu(), config, report_);

  // Default solves route through the serial engine instead of the classic
  // serial path: same bit-for-bit results (the banded kernel's per-element
  // arithmetic is identical to the classic ascending sweep, and the serial
  // engine dispatches inline on the calling thread), but the product gets
  // band blocking, fused scalings, and the single-vector SIMD microkernels.
  // Restricted to the configurations where the engine path actually takes
  // the banded kernel: per-level / descending / grouped requests keep their
  // historical classic-path semantics.
  const parallel::Engine* engine = config.engine;
  if (engine == nullptr && config.kernel == EngineKernel::blocked &&
      config.order == transforms::LevelOrder::ascending &&
      model.kind() != MutationKind::grouped) {
    engine = &parallel::serial_engine();
  }

  op_ = std::make_unique<FmmpOperator>(std::move(model), landscape,
                                       config.formulation, engine,
                                       config.order, config.kernel, plan);

  // Provenance for the metrics snapshot: which microkernel tiers the runtime
  // dispatch resolved to and which tiling plan the products will execute
  // with.  This is what makes BENCH_fig2.json rows comparable across hosts.
  obs::MetricsRecorder& m = obs::metrics();
  m.set_info("simd_tier", transforms::panel_kernels().name);
  m.set_info("sv_kernel", transforms::resolved_sv_kernel_name(plan.sv_kernel));
  m.set_value("plan.tile_log2", plan.tile_log2);
  m.set_value("plan.chunk_log2", plan.chunk_log2);
  m.set_value("plan.sv_max_radix", plan.sv_max_radix);
  m.set_value("plan.autotuned", report_.has_value() ? 1.0 : 0.0);
  if (report_.has_value() && !report_->timings.empty()) {
    m.set_value("autotune.default_seconds", report_->timings.front().seconds);
    double best = report_->timings.front().seconds;
    for (const transforms::PlanTiming& t : report_->timings)
      best = std::min(best, t.seconds);
    m.set_value("autotune.best_seconds", best);
  }
}

}  // namespace qs::core
