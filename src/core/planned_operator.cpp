#include "core/planned_operator.hpp"

#include <algorithm>
#include <utility>

namespace qs::core {
namespace {

/// Resolves the plan to build with: the caller's fixed plan, or the
/// autotuner's pick seeded around it.
transforms::BlockedPlan resolve_plan(
    unsigned nu, const PlannedOperatorConfig& config,
    std::optional<transforms::AutotuneReport>& report) {
  if (!config.autotune) return config.plan;
  const parallel::Engine& engine =
      config.engine != nullptr ? *config.engine : parallel::serial_engine();
  report = transforms::autotune_blocked_plan(
      nu, engine, std::max<std::size_t>(config.autotune_panel_width, 1));
  return report->best;
}

}  // namespace

PlannedOperator::PlannedOperator(MutationModel model, const Landscape& landscape,
                                 const PlannedOperatorConfig& config) {
  const transforms::BlockedPlan plan = resolve_plan(model.nu(), config, report_);
  op_ = std::make_unique<FmmpOperator>(std::move(model), landscape,
                                       config.formulation, config.engine,
                                       config.order, config.kernel, plan);
}

}  // namespace qs::core
