// Preallocated scratch arena shared across solves.
//
// Every solver loop needs a handful of length-n temporaries (the product
// vector, Krylov recurrence vectors, panel staging).  Allocating them per
// solve is invisible for one solve but adds up across a sweep of hundreds,
// and the ISSUE-4 zero-allocation guarantee for the iteration hot path needs
// a place for buffers to live that outlives a single call.  A Workspace is
// a slot-indexed set of grow-only buffers: `take(slot, n)` returns a span of
// n doubles backed by slot's buffer, growing it when needed and reusing it
// verbatim otherwise.  Slots are stable identifiers chosen by the caller
// (see Slot below for the solver conventions), so repeated solves through
// the same workspace perform zero allocations once the buffers have grown
// to the working size.
//
// Not thread-safe: one workspace serves one solve at a time.  Contents are
// unspecified on take (callers overwrite).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace qs::core {

class Workspace {
 public:
  /// Conventional slot assignments used by the solvers; callers may use any
  /// index — slots are created on demand.
  enum Slot : std::size_t {
    product = 0,    ///< y = W x in the single-vector loops.
    recurrence = 1, ///< Krylov recurrence vector (w in Lanczos/Arnoldi).
    rhs = 2,        ///< Shift-invert right-hand side.
    scratch = 3,    ///< Generic second temporary.
    panel = 4,      ///< Interleaved n x m panel (block power).
    panel_image = 5,///< Its image under W.
    krylov0 = 6,    ///< Inner Krylov solver temporaries (CG: r z p Ap;
    krylov1 = 7,    ///< MINRES: the Lanczos/update vectors).  Distinct from
    krylov2 = 8,    ///< the outer-loop slots so an inner solve never
    krylov3 = 9,    ///< invalidates the outer iterate's buffers.
    krylov4 = 10,
    krylov5 = 11,
    krylov6 = 12
  };

  /// Returns a span of `n` doubles backed by slot `slot`, growing the
  /// backing buffer when needed (never shrinking).  The contents are
  /// unspecified; callers overwrite.  Spans from earlier `take` calls on
  /// the *same* slot are invalidated by growth; distinct slots are stable.
  std::span<double> take(std::size_t slot, std::size_t n);

  /// Bytes currently held across all slots (observability / tests).
  std::size_t bytes() const;

 private:
  std::vector<std::vector<double>> slots_;
};

}  // namespace qs::core
