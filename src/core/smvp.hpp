// Smvp — the standard dense matrix vector product baseline.
//
// The Theta(N^2) reference every speedup in the paper is measured against:
// the full matrix W is materialised and multiplied row by row.  Restricted
// to small chain lengths by memory; beyond that, the paper (and our Figure 4
// bench) extrapolates its cost.
#pragma once

#include "core/explicit_q.hpp"
#include "core/operators.hpp"
#include "linalg/dense_matrix.hpp"
#include "parallel/engine.hpp"

namespace qs::core {

/// Dense product with an explicitly stored W.
class SmvpOperator final : public LinearOperator {
 public:
  /// Materialises W = Q*F (or the chosen formulation). Requires
  /// nu <= kMaxDenseChainLength.  `engine`, when non-null, parallelises over
  /// output rows and must outlive the operator.
  SmvpOperator(const MutationModel& model, const Landscape& landscape,
               Formulation formulation = Formulation::right,
               const parallel::Engine* engine = nullptr);

  seq_t dimension() const override { return w_.rows(); }
  void apply(std::span<const double> x, std::span<double> y) const override;
  std::string_view name() const override { return "Smvp"; }

  const linalg::DenseMatrix& matrix() const { return w_; }

 private:
  linalg::DenseMatrix w_;
  const parallel::Engine* engine_;
};

}  // namespace qs::core
