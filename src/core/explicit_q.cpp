#include "core/explicit_q.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace qs::core {

linalg::DenseMatrix build_q_dense(const MutationModel& model) {
  require(model.nu() <= kMaxDenseChainLength,
          "build_q_dense: chain length too large for dense assembly");
  const std::size_t n = static_cast<std::size_t>(model.dimension());
  linalg::DenseMatrix q(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      q(i, j) = model.entry(i, j);
    }
  }
  return q;
}

linalg::DenseMatrix build_w_dense(const MutationModel& model,
                                  const Landscape& landscape,
                                  Formulation formulation) {
  require(model.dimension() == landscape.dimension(),
          "build_w_dense: model and landscape dimensions differ");
  linalg::DenseMatrix w = build_q_dense(model);
  const std::size_t n = w.rows();
  const auto f = landscape.values();
  switch (formulation) {
    case Formulation::right:  // Q F: scale columns by f_j
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) w(i, j) *= f[j];
      }
      break;
    case Formulation::symmetric: {  // F^{1/2} Q F^{1/2}
      require(model.symmetric(),
              "build_w_dense: symmetric formulation requires a symmetric model");
      for (std::size_t i = 0; i < n; ++i) {
        const double si = std::sqrt(f[i]);
        for (std::size_t j = 0; j < n; ++j) w(i, j) *= si * std::sqrt(f[j]);
      }
      break;
    }
    case Formulation::left:  // F Q: scale rows by f_i
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) w(i, j) *= f[i];
      }
      break;
  }
  return w;
}

}  // namespace qs::core
