#include "core/xmvp.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"

namespace qs::core {

XmvpOperator::XmvpOperator(MutationModel model, const Landscape& landscape,
                           unsigned d_max, Formulation formulation,
                           const parallel::Engine* engine)
    : model_(std::move(model)),
      landscape_(&landscape),
      d_max_(d_max),
      formulation_(formulation),
      engine_(engine) {
  require(model_.kind() == MutationKind::uniform,
          "XmvpOperator: sparsification requires the uniform mutation model");
  require(model_.dimension() == landscape.dimension(),
          "XmvpOperator: mutation model and landscape dimensions differ");
  require(d_max_ <= model_.nu(), "XmvpOperator: d_max must satisfy d_max <= nu");
  name_ = "Xmvp(" + std::to_string(d_max_) + ")";

  // Precompute every mutation pattern within the truncation radius together
  // with its class probability Q_Gamma(k) = p^k (1-p)^(nu-k).
  const unsigned nu = model_.nu();
  for (unsigned k = 0; k <= d_max_; ++k) {
    const double q_k = model_.class_value(k);
    FixedWeightMasks(nu, k).for_each([&](seq_t m) {
      masks_.push_back(m);
      coefficients_.push_back(q_k);
    });
  }

  if (formulation_ == Formulation::symmetric) {
    sqrt_f_.resize(landscape.dimension());
    const auto f = landscape.values();
    for (std::size_t i = 0; i < sqrt_f_.size(); ++i) sqrt_f_[i] = std::sqrt(f[i]);
  }
}

void XmvpOperator::apply(std::span<const double> x, std::span<double> y) const {
  const std::size_t n = static_cast<std::size_t>(dimension());
  require(x.size() == n && y.size() == n, "XmvpOperator::apply: dimension mismatch");
  require(x.data() != y.data(), "XmvpOperator::apply: x and y must not alias");

  // u = pre-scaled input, matching FmmpOperator's formulation handling.
  scratch_.resize(n);
  const auto f = landscape_->values();
  switch (formulation_) {
    case Formulation::right:
      for (std::size_t i = 0; i < n; ++i) scratch_[i] = f[i] * x[i];
      break;
    case Formulation::symmetric:
      for (std::size_t i = 0; i < n; ++i) scratch_[i] = sqrt_f_[i] * x[i];
      break;
    case Formulation::left:
      linalg::copy(x, std::span<double>(scratch_));
      break;
  }

  const double* u = scratch_.data();
  const seq_t* masks = masks_.data();
  const double* coeff = coefficients_.data();
  const std::size_t pattern_count = masks_.size();

  if (engine_ != nullptr) {
    // Row-parallel: each work item accumulates one output entry over all
    // mutation patterns (the XOR gather of [10]).
    double* out = y.data();
    engine_->dispatch(n, [u, masks, coeff, pattern_count, out](std::size_t begin,
                                                               std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        double acc = 0.0;
        for (std::size_t t = 0; t < pattern_count; ++t) {
          acc += coeff[t] * u[i ^ static_cast<std::size_t>(masks[t])];
        }
        out[i] = acc;
      }
    });
  } else {
    // Serial pattern-major order: for each mutation pattern, stream over all
    // rows (better locality on the output than row-major gathering).
    for (std::size_t i = 0; i < n; ++i) y[i] = coeff[0] * u[i];  // mask 0
    for (std::size_t t = 1; t < pattern_count; ++t) {
      const std::size_t m = static_cast<std::size_t>(masks[t]);
      const double c = coeff[t];
      for (std::size_t i = 0; i < n; ++i) y[i] += c * u[i ^ m];
    }
  }

  // Post-scaling.
  switch (formulation_) {
    case Formulation::right:
      break;
    case Formulation::symmetric:
      for (std::size_t i = 0; i < n; ++i) y[i] *= sqrt_f_[i];
      break;
    case Formulation::left:
      for (std::size_t i = 0; i < n; ++i) y[i] *= f[i];
      break;
  }
}

}  // namespace qs::core
