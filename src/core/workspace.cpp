#include "core/workspace.hpp"

namespace qs::core {

std::span<double> Workspace::take(std::size_t slot, std::size_t n) {
  if (slot >= slots_.size()) slots_.resize(slot + 1);
  std::vector<double>& buffer = slots_[slot];
  if (buffer.size() < n) buffer.resize(n);
  return std::span<double>(buffer.data(), n);
}

std::size_t Workspace::bytes() const {
  std::size_t total = 0;
  for (const auto& s : slots_) total += s.capacity() * sizeof(double);
  return total;
}

}  // namespace qs::core
