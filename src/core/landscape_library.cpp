#include "core/landscape_library.hpp"

#include <cmath>

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::core {

Landscape multiplicative_landscape(unsigned nu, std::span<const double> s,
                                   double peak) {
  require(s.size() == nu, "multiplicative_landscape: need nu coefficients");
  require(peak > 0.0, "multiplicative_landscape: peak must be positive");
  for (double v : s) {
    require(v > 0.0 && v < 1.0,
            "multiplicative_landscape: coefficients must be in (0, 1)");
  }
  const seq_t n = sequence_count(nu);
  std::vector<double> values(n);
  for (seq_t i = 0; i < n; ++i) {
    double f = peak;
    seq_t bits = i;
    while (bits != 0) {
      const unsigned k = log2_exact(bits & (~bits + 1));
      f *= 1.0 - s[k];
      bits &= bits - 1;
    }
    values[i] = f;
  }
  return Landscape::from_values(nu, std::move(values));
}

Landscape nk_landscape(unsigned nu, unsigned k, std::uint64_t seed, double offset) {
  require(nu >= 1 && nu <= 24, "nk_landscape: nu must be 1..24");
  require(k < nu, "nk_landscape: need K < nu");
  require(offset > 0.0, "nk_landscape: offset must be positive");

  // Per-site contribution tables over the (K+1)-bit neighbourhood state.
  Xoshiro256 rng(seed);
  const std::size_t table_size = std::size_t{1} << (k + 1);
  std::vector<std::vector<double>> tables(nu);
  for (auto& table : tables) {
    table.resize(table_size);
    for (double& v : table) v = rng.uniform();
  }

  const seq_t n = sequence_count(nu);
  std::vector<double> values(n);
  for (seq_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (unsigned site = 0; site < nu; ++site) {
      // Neighbourhood: the site itself plus its K cyclic successors.
      std::size_t state = 0;
      for (unsigned b = 0; b <= k; ++b) {
        const unsigned position = (site + b) % nu;
        state |= static_cast<std::size_t>((i >> position) & 1) << b;
      }
      acc += tables[site][state];
    }
    values[i] = offset + acc / static_cast<double>(nu);
  }
  return Landscape::from_values(nu, std::move(values));
}

Landscape royal_road_landscape(unsigned nu, unsigned block, double bonus) {
  require(block >= 1 && nu % block == 0,
          "royal_road_landscape: block size must divide nu");
  require(bonus > 0.0, "royal_road_landscape: bonus must be positive");
  const seq_t n = sequence_count(nu);
  const unsigned blocks = nu / block;
  std::vector<double> values(n);
  for (seq_t i = 0; i < n; ++i) {
    double f = 1.0;
    for (unsigned b = 0; b < blocks; ++b) {
      const seq_t mask = ((seq_t{1} << block) - 1) << (b * block);
      if ((i & mask) == 0) f += bonus;  // block intact (all master bits)
    }
    values[i] = f;
  }
  return Landscape::from_values(nu, std::move(values));
}

Landscape neutral_plateau_landscape(unsigned nu, unsigned radius, double peak,
                                    double rest) {
  require(radius <= nu, "neutral_plateau_landscape: radius must be <= nu");
  require(peak > 0.0 && rest > 0.0,
          "neutral_plateau_landscape: fitness values must be positive");
  const seq_t n = sequence_count(nu);
  std::vector<double> values(n);
  for (seq_t i = 0; i < n; ++i) {
    values[i] = (hamming_weight(i) <= radius) ? peak : rest;
  }
  return Landscape::from_values(nu, std::move(values));
}

}  // namespace qs::core
