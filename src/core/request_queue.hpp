// Bounded request queue with admission control, deadlines, and batch-key
// coalescing — the front door of the solver service (src/service/) and of
// anything else that funnels concurrent work into panel-batched execution.
//
// Robustness posture: the queue is the component that turns overload into a
// structured signal instead of an unbounded backlog.  Three rules:
//
//   * bounded — push() on a full queue returns rejected_overload
//     immediately (load shedding); the caller converts that into a
//     structured REJECTED_OVERLOAD reply, and the clients back off;
//   * deadline-aware — every entry may carry a monotonic-clock deadline;
//     entries whose deadline passed while queued are swept out at the next
//     pop and routed to the on_expired callback, so a stale request never
//     occupies a worker (and never hangs past its deadline);
//   * coalescing — pop_batch() returns up to m entries sharing the FIFO
//     head's batch key (for the solver service: a hash of (nu, p, mutation
//     model)), scanning past non-matching entries without reordering them.
//     Batches feed the panel Fmmp path, which advances m solves in one
//     memory sweep (see analysis/sweep_landscape_family).
//
// Thread safety: every public member is safe to call concurrently from any
// number of producers and consumers (one mutex, two condition variables).
// close() flips the queue into drain mode: pushes reject, pops return the
// remaining entries and then empty batches — the graceful-shutdown path.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "obs/histogram.hpp"
#include "support/contracts.hpp"
#include "support/timer.hpp"

namespace qs::core {

/// What push() decided about a request.
enum class Admission {
  accepted,
  rejected_overload,  ///< Queue full: shed the request, tell the client.
  rejected_closed,    ///< Queue draining for shutdown.
};

/// Stable identifier for logs and structured replies.
constexpr const char* to_string(Admission admission) {
  switch (admission) {
    case Admission::accepted: return "accepted";
    case Admission::rejected_overload: return "rejected-overload";
    case Admission::rejected_closed: return "rejected-closed";
  }
  return "unknown";
}

/// Monotonic counters for telemetry; snapshot via RequestQueue::stats().
struct QueueStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_closed = 0;
  std::uint64_t expired = 0;  ///< Deadline passed while queued.
  std::uint64_t popped = 0;   ///< Entries handed to consumers.
  std::uint64_t batches = 0;  ///< pop_batch calls that returned entries.
};

template <typename T>
class RequestQueue {
 public:
  /// One queued request plus its scheduling envelope.
  struct Entry {
    T value;
    std::uint64_t batch_key = 0;    ///< Coalescing group (equal keys batch).
    std::uint64_t deadline_ns = 0;  ///< monotonic_ns deadline; 0 = none.
    std::uint64_t enqueued_ns = 0;  ///< Stamped by push() (queue-wait metric).
  };

  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {
    require(capacity > 0, "RequestQueue: capacity must be positive");
  }

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Admission control: accepts the request or sheds it immediately — this
  /// call never blocks, so a slow consumer can only ever cost a producer a
  /// mutex, not a stall.
  Admission push(T value, std::uint64_t batch_key, std::uint64_t deadline_ns = 0) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        ++stats_.rejected_closed;
        return Admission::rejected_closed;
      }
      if (entries_.size() >= capacity_) {
        ++stats_.rejected_overload;
        return Admission::rejected_overload;
      }
      Entry entry;
      entry.value = std::move(value);
      entry.batch_key = batch_key;
      entry.deadline_ns = deadline_ns;
      entry.enqueued_ns = monotonic_ns();
      entries_.push_back(std::move(entry));
      ++stats_.accepted;
    }
    ready_.notify_one();
    return Admission::accepted;
  }

  /// Blocks until an entry is available (or `wait_ns` elapsed, or the queue
  /// was closed and drained), sweeps out entries whose deadline already
  /// passed (each handed to `on_expired` outside the lock), then returns up
  /// to `max_batch` entries sharing the FIFO head's batch key.  Entries
  /// with other keys keep their order for later pops.  An empty result
  /// means timeout or closed-and-drained — never a spurious wakeup.
  std::vector<Entry> pop_batch(std::size_t max_batch, std::uint64_t wait_ns,
                               const std::function<void(Entry&&)>& on_expired = {}) {
    require(max_batch > 0, "RequestQueue: max_batch must be positive");
    std::vector<Entry> batch;
    std::vector<Entry> expired;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait_for(lock, std::chrono::nanoseconds(wait_ns),
                      [this] { return closed_ || !entries_.empty(); });
      sweep_expired(expired);
      if (!entries_.empty()) {
        const std::uint64_t key = entries_.front().batch_key;
        for (auto it = entries_.begin();
             it != entries_.end() && batch.size() < max_batch;) {
          if (it->batch_key == key) {
            batch.push_back(std::move(*it));
            it = entries_.erase(it);
          } else {
            ++it;
          }
        }
        stats_.popped += batch.size();
        ++stats_.batches;
      }
    }
    // Queue-wait distribution (push -> pop), recorded outside the lock.
    if (!batch.empty()) {
      obs::Histogram& wait_hist = obs::histogram("queue.wait");
      const std::uint64_t popped_ns = monotonic_ns();
      for (const Entry& e : batch) wait_hist.record_ns(popped_ns - e.enqueued_ns);
    }
    for (Entry& e : expired) {
      if (on_expired) on_expired(std::move(e));
    }
    return batch;
  }

  /// Drain mode: subsequent pushes reject with rejected_closed; pops keep
  /// returning the remaining entries, then empty batches.  Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  QueueStats stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  /// Moves every entry whose deadline passed into `out` (caller invokes the
  /// expiry callback outside the lock).  Called with mutex_ held.
  void sweep_expired(std::vector<Entry>& out) {
    if (entries_.empty()) return;
    const std::uint64_t now = monotonic_ns();
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->deadline_ns != 0 && it->deadline_ns <= now) {
        out.push_back(std::move(*it));
        it = entries_.erase(it);
        ++stats_.expired;
      } else {
        ++it;
      }
    }
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<Entry> entries_;
  QueueStats stats_;
  bool closed_ = false;
};

}  // namespace qs::core
