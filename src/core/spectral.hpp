// Spectral operations on the mutation matrix Q (Sections 2 and 3).
//
// Symmetric 2x2-factor models are diagonalised by the Hadamard matrix:
//   Q = V Lambda V,  V = 2^{-nu/2} H,  Lambda_ww = prod_{k in w} (1 - 2 p_k)
// (for the uniform model Lambda_ww = (1-2p)^{popcount(w)}).  This yields:
//   * an alternative exact product Q v via two FWHTs (cross-validates Fmmp),
//   * the Theta(N log2 N) shift-and-invert product
//       (Q - mu I)^{-1} v = V (Lambda - mu I)^{-1} V v
//     that the paper proposes as the building block of inverse iteration,
//   * the conservative power-iteration shift mu = (1-2p)^nu * f_min derived
//     from ||Q^{-1}||_1 = (1-2p)^{-nu} (Section 3).
#pragma once

#include <span>

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"

namespace qs::core {

/// v <- Q v via the eigendecomposition (two FWHTs and a diagonal scaling).
/// Requires a symmetric 2x2-factor model and v.size() == model.dimension().
void apply_q_spectral(const MutationModel& model, std::span<double> v);

/// v <- (Q - mu I)^{-1} v via the eigendecomposition. Requires a symmetric
/// 2x2-factor model and mu bounded away from every eigenvalue of Q
/// (|lambda_w - mu| >= 1e-300 for all w); the smallest eigenvalue is
/// prod_k (1 - 2 p_k), so any mu strictly below it is always safe.
void apply_q_shift_invert(const MutationModel& model, double mu, std::span<double> v);

/// Smallest eigenvalue of Q: prod_k (1 - 2 p_k) = (1-2p)^nu for the uniform
/// model. Requires a symmetric 2x2-factor model.
double q_min_eigenvalue(const MutationModel& model);

/// The paper's conservative convergence-acceleration shift for the power
/// iteration on W = Q F:  mu = lambda_min(Q) * f_min <= lambda_min(W).
double conservative_shift(const MutationModel& model, const Landscape& landscape);

/// Same bound from an error-class landscape (without expanding it).
double conservative_shift(const MutationModel& model,
                          const ErrorClassLandscape& landscape);

/// Upper bound on the dominant eigenvalue: lambda_0 <= ||W||_1 <= f_max
/// (Section 3).
double dominant_upper_bound(const Landscape& landscape);

}  // namespace qs::core
