// The eigenproblem formulations and the abstract mat-vec interface.
//
// The quasispecies eigenproblem has three mathematically equivalent
// formulations (Eqs. (3)-(5) of the paper) whose solutions are related by
// diagonal scalings:
//
//   right:      Q F x_R = lambda x_R
//   symmetric:  F^{1/2} Q F^{1/2} x_S = lambda x_S   (requires Q symmetric)
//   left:       F Q x_L = lambda x_L
//
//   x_R = F^{-1/2} x_S,   x_S = F^{-1/2} x_L,   x_R = F^{-1} x_L.
//
// Every eigensolver in src/solvers operates on the LinearOperator interface
// below, so the power iteration is oblivious to whether the product is the
// dense baseline, the sparsified Xmvp, or the fast Fmmp.
#pragma once

#include <span>
#include <string_view>

#include "core/landscape.hpp"
#include "support/bits.hpp"

namespace qs::core {

/// Which of Eqs. (3)-(5) the operator represents.
enum class Formulation {
  right,      ///< W = Q * F     (Eq. (3); concentrations directly)
  symmetric,  ///< W = F^{1/2} Q F^{1/2}  (Eq. (4); symmetric eigenproblem)
  left,       ///< W = F * Q     (Eq. (5))
};

/// Abstract mat-vec y = W x.  Implementations are not required to be
/// re-entrant: a single operator instance must not be applied concurrently
/// from multiple threads (internal scratch buffers may be reused).
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  /// Problem dimension N.
  virtual seq_t dimension() const = 0;

  /// y = W x. Requires x.size() == y.size() == dimension() and that x and y
  /// do not alias.
  virtual void apply(std::span<const double> x, std::span<double> y) const = 0;

  /// Identifier for logs and bench output, e.g. "Fmmp" or "Xmvp(5)".
  virtual std::string_view name() const = 0;
};

/// Converts an eigenvector between formulations in place, then re-normalises
/// to unit 1-norm (concentration scale).  `landscape` must be the landscape
/// the operator was built with.
void convert_eigenvector(Formulation from, Formulation to, const Landscape& landscape,
                         std::span<double> x);

}  // namespace qs::core
