#include "core/spectral.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"
#include "transforms/fwht.hpp"

namespace qs::core {
namespace {

void require_hadamard_diagonalisable(const MutationModel& model) {
  require(model.kind() != MutationKind::grouped && model.symmetric(),
          "spectral operation requires a symmetric 2x2-factor mutation model");
}

}  // namespace

void apply_q_spectral(const MutationModel& model, std::span<double> v) {
  require_hadamard_diagonalisable(model);
  require(v.size() == model.dimension(), "apply_q_spectral: dimension mismatch");
  transforms::fwht(v);
  // Q = 2^{-nu} H Lambda H; fold the 1/N into the diagonal pass.
  const double inv_n = 1.0 / static_cast<double>(v.size());
  for (seq_t w = 0; w < v.size(); ++w) {
    v[w] *= model.walsh_eigenvalue(w) * inv_n;
  }
  transforms::fwht(v);
}

void apply_q_shift_invert(const MutationModel& model, double mu, std::span<double> v) {
  require_hadamard_diagonalisable(model);
  require(v.size() == model.dimension(), "apply_q_shift_invert: dimension mismatch");
  transforms::fwht(v);
  const double inv_n = 1.0 / static_cast<double>(v.size());
  for (seq_t w = 0; w < v.size(); ++w) {
    const double denom = model.walsh_eigenvalue(w) - mu;
    require(std::abs(denom) >= 1e-300,
            "apply_q_shift_invert: shift mu coincides with an eigenvalue of Q");
    v[w] *= inv_n / denom;
  }
  transforms::fwht(v);
}

double q_min_eigenvalue(const MutationModel& model) {
  require_hadamard_diagonalisable(model);
  // The all-ones Walsh index has the smallest eigenvalue because every
  // factor contributes its sub-unit eigenvalue (1 - 2 p_k) in (0, 1).
  return model.walsh_eigenvalue(model.dimension() - 1);
}

double conservative_shift(const MutationModel& model, const Landscape& landscape) {
  require(model.dimension() == landscape.dimension(),
          "conservative_shift: dimension mismatch");
  return q_min_eigenvalue(model) * landscape.min_fitness();
}

double conservative_shift(const MutationModel& model,
                          const ErrorClassLandscape& landscape) {
  require(model.nu() == landscape.nu(), "conservative_shift: dimension mismatch");
  double fmin = landscape.value(0);
  for (unsigned k = 1; k <= landscape.nu(); ++k) {
    fmin = std::min(fmin, landscape.value(k));
  }
  return q_min_eigenvalue(model) * fmin;
}

double dominant_upper_bound(const Landscape& landscape) {
  return landscape.max_fitness();
}

}  // namespace qs::core
