// Explicit (dense) assembly of the model matrices for small chain lengths.
//
// Used for the Smvp baseline, for validating the implicit products, and for
// the spectral tests of Section 2 (eigenvalues (1-2p)^k with multiplicities
// C(nu, k)).  Assembly is O(N^2 nu) and restricted to small nu by an
// explicit guard so a typo cannot silently allocate terabytes.
#pragma once

#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "core/operators.hpp"
#include "linalg/dense_matrix.hpp"

namespace qs::core {

/// Largest nu for which dense assembly is permitted (2^14 x 2^14 doubles =
/// 2 GiB; anything beyond that is a usage error for dense paths).
inline constexpr unsigned kMaxDenseChainLength = 14;

/// Dense mutation matrix Q. Requires model.nu() <= kMaxDenseChainLength.
linalg::DenseMatrix build_q_dense(const MutationModel& model);

/// Dense problem matrix in the requested formulation:
/// right: Q F, symmetric: F^{1/2} Q F^{1/2}, left: F Q.
/// Requires matching dimensions and nu <= kMaxDenseChainLength.
linalg::DenseMatrix build_w_dense(const MutationModel& model,
                                  const Landscape& landscape,
                                  Formulation formulation = Formulation::right);

}  // namespace qs::core
