// Xmvp(d_H^max) — the XOR-based sparsified mutation matrix product of the
// authors' prior work ([10] in the paper; Niederbrucker & Gansterer,
// Procedia CS 2011).
//
// The product y = Q u is expanded over mutation patterns:
//   y_i = sum_{m : popcount(m) <= d} Q_Gamma(popcount(m)) * u_{i XOR m},
// i.e. only sequences within Hamming distance d contribute.  d = nu is
// exact and corresponds (up to constant-factor overhead) to the standard
// dense product Smvp; d < nu truncates the matrix and trades accuracy for
// speed with cost Theta(N * sum_{k<=d} C(nu, k)).  This operator is the
// benchmark the paper measures Fmmp against (Figures 2-4).
//
// Only defined for the uniform mutation model (the sparsification relies on
// Q depending on the Hamming distance alone).
#pragma once

#include <vector>

#include "core/mutation_model.hpp"
#include "core/operators.hpp"
#include "parallel/engine.hpp"

namespace qs::core {

/// Implicit sparsified product with W in the chosen formulation.
class XmvpOperator final : public LinearOperator {
 public:
  /// Builds Xmvp(d_max). Requires a uniform mutation model, d_max <= nu,
  /// and for the symmetric formulation nothing extra (uniform Q is always
  /// symmetric).  `landscape` (and `engine` if given) must outlive the
  /// operator.  Mutation patterns are precomputed: Theta(sum_{k<=d} C(nu,k))
  /// space, the Theta(N) of the paper once d is large.
  XmvpOperator(MutationModel model, const Landscape& landscape, unsigned d_max,
               Formulation formulation = Formulation::right,
               const parallel::Engine* engine = nullptr);

  seq_t dimension() const override { return model_.dimension(); }
  void apply(std::span<const double> x, std::span<double> y) const override;
  std::string_view name() const override { return name_; }

  unsigned d_max() const { return d_max_; }

  /// Number of mutation patterns (matrix row density) the product touches.
  std::size_t pattern_count() const { return masks_.size(); }

 private:
  MutationModel model_;
  const Landscape* landscape_;
  unsigned d_max_;
  Formulation formulation_;
  const parallel::Engine* engine_;
  std::string name_;
  std::vector<seq_t> masks_;          // all patterns with popcount <= d_max
  std::vector<double> coefficients_;  // Q_Gamma(popcount(mask)), aligned with masks_
  std::vector<double> sqrt_f_;        // cached for the symmetric formulation
  mutable std::vector<double> scratch_;  // scaled input u (operators are not re-entrant)
};

}  // namespace qs::core
