// Biologically motivated fitness landscape families.
//
// The paper's generality claim is that *no* structure is assumed of F
// beyond diagonality — "we partly use randomly generated landscapes to
// illustrate the generality".  This library supplies the landscape families
// the theoretical-biology literature actually studies, all as plain general
// landscapes the Fmmp solver consumes directly:
//
//   * multiplicative — independent per-site selection coefficients
//     (no epistasis; the classical population-genetics null model);
//   * Kauffman NK — tunable epistasis: each position's fitness contribution
//     depends on itself and K neighbouring positions;
//   * Royal Road — modular neutrality: bonuses for completed blocks;
//   * quasi-neutral plateau — a master sequence plus a neutral network of
//     equally fit one-mutants (error-threshold behaviour with neutrality).
#pragma once

#include <cstdint>

#include "core/landscape.hpp"

namespace qs::core {

/// Multiplicative landscape: f_i = peak * prod_{k set in i} (1 - s_k) with
/// per-site deleterious coefficients s_k in (0, 1). Requires all s_k in
/// (0, 1) and s.size() == nu.
Landscape multiplicative_landscape(unsigned nu, std::span<const double> s,
                                   double peak = 1.0);

/// Kauffman NK landscape: f_i = offset + (1/nu) sum_k c_k(neighbourhood_k)
/// where neighbourhood k consists of position k and its K cyclic successor
/// positions and c_k is a uniform [0,1) table per site.  K = 0 is additive
/// (no epistasis); K = nu-1 is maximally rugged.  `offset` > 0 keeps
/// fitness positive. Requires K < nu <= 24 (table assembly is O(N nu)).
Landscape nk_landscape(unsigned nu, unsigned k, std::uint64_t seed,
                       double offset = 0.5);

/// Royal Road: the chain is divided into blocks of `block` positions; each
/// block whose positions are all 0 (master state) adds `bonus` to the base
/// fitness 1. Requires block >= 1 and block | nu.
Landscape royal_road_landscape(unsigned nu, unsigned block, double bonus);

/// Neutral plateau: the master and every sequence within Hamming distance
/// `radius` share the peak fitness; everything else has `rest`.
Landscape neutral_plateau_landscape(unsigned nu, unsigned radius, double peak,
                                    double rest);

}  // namespace qs::core
