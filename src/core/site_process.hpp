// Single-site and grouped mutation processes.
//
// The quasispecies model composes mutation from independent per-position
// stochastic processes (coin flips in the classic model).  The only validity
// requirement (Section 2.2 of the paper) is that each process be column
// stochastic; these helpers construct and validate the 2x2 single-site
// factors and the 2^g x 2^g group factors that the implicit mutation
// matrices are built from.
#pragma once

#include "linalg/dense_matrix.hpp"
#include "transforms/butterfly.hpp"

namespace qs::core {

/// The classic symmetric single-site process with error rate p:
/// [[1-p, p], [p, 1-p]].  Requires 0 < p <= 1/2 (the model's admissible
/// range; p = 1/2 is random replication).
transforms::Factor2 uniform_site(double p);

/// General single-site process with flip probabilities p01 = P(0 -> 1) and
/// p10 = P(1 -> 0).  Requires both in [0, 1) and p01 + (1 - p10) ... i.e.
/// each in [0, 1); column stochasticity holds by construction.
transforms::Factor2 asymmetric_site(double p01, double p10);

/// Validates a 2x2 factor: entries in [0, 1], columns summing to 1 within
/// `tol`. Throws precondition_error on violation.
void validate_site(const transforms::Factor2& f, double tol = 1e-12);

/// Validates a group factor Q_G in R^{2^g x 2^g}: square power-of-two
/// dimension, entries in [0, 1], column sums 1 within `tol`.
void validate_group(const linalg::DenseMatrix& g, double tol = 1e-12);

/// Builds the group factor of g fully coupled positions where exactly one
/// position mutates per replication event with probability p_event
/// (uniformly among the g positions) — a simple dependent-mutation model
/// exercising the grouped Kronecker machinery of Eq. (11).
linalg::DenseMatrix coupled_single_flip_group(unsigned g, double p_event);

}  // namespace qs::core
