#include "core/landscape.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace qs::core {

Landscape::Landscape(unsigned nu, std::vector<double> values)
    : nu_(nu), values_(std::move(values)) {
  require(nu >= 1 && nu <= kMaxChainLength, "chain length nu out of range");
  require(values_.size() == sequence_count(nu), "landscape size must be 2^nu");
  min_ = values_[0];
  max_ = values_[0];
  for (double v : values_) {
    // isfinite matters: `v > 0.0` alone admits +Inf (and NaN fails every
    // comparison, so it must be rejected explicitly too), and either would
    // poison every downstream product.
    require(std::isfinite(v) && v > 0.0, "fitness values must be positive and finite");
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

Landscape Landscape::flat(unsigned nu, double c) {
  require(c > 0.0, "fitness values must be positive");
  return Landscape(nu, std::vector<double>(sequence_count(nu), c));
}

Landscape Landscape::single_peak(unsigned nu, double peak, double rest) {
  require(peak > 0.0 && rest > 0.0, "fitness values must be positive");
  std::vector<double> v(sequence_count(nu), rest);
  v[0] = peak;
  return Landscape(nu, std::move(v));
}

Landscape Landscape::linear(unsigned nu, double f0, double fnu) {
  require(f0 > 0.0 && fnu > 0.0, "fitness values must be positive");
  const seq_t n = sequence_count(nu);
  std::vector<double> v(n);
  for (seq_t i = 0; i < n; ++i) {
    const double k = static_cast<double>(hamming_weight(i));
    v[i] = f0 - (f0 - fnu) * k / static_cast<double>(nu);
  }
  return Landscape(nu, std::move(v));
}

Landscape Landscape::random(unsigned nu, double c, double sigma, std::uint64_t seed) {
  require(c > 0.0, "peak fitness c must be positive");
  require(sigma > 0.0 && sigma < c / 2.0, "sigma must satisfy 0 < sigma < c/2");
  const seq_t n = sequence_count(nu);
  std::vector<double> v(n);
  Xoshiro256 rng(seed);
  v[0] = c;
  for (seq_t i = 1; i < n; ++i) {
    v[i] = sigma * (rng.uniform() + 0.5);
  }
  return Landscape(nu, std::move(v));
}

Landscape Landscape::from_values(unsigned nu, std::vector<double> values) {
  return Landscape(nu, std::move(values));
}

bool Landscape::is_error_class(double tol) const {
  std::vector<double> rep(nu_ + 1, -1.0);
  for (seq_t i = 0; i < values_.size(); ++i) {
    const unsigned k = hamming_weight(i);
    if (rep[k] < 0.0) {
      rep[k] = values_[i];
    } else if (std::abs(values_[i] - rep[k]) > tol) {
      return false;
    }
  }
  return true;
}

ErrorClassLandscape::ErrorClassLandscape(unsigned nu, std::vector<double> phi)
    : nu_(nu), phi_(std::move(phi)) {
  // The reduced representation never materialises 2^nu values, so chain
  // lengths far beyond the full solvers' reach are admissible (the reduced
  // solver accepts up to nu = 1000); only expand() is capped.
  require(nu >= 1 && nu <= 1000, "chain length nu out of range");
  require(phi_.size() == nu + 1, "error-class landscape needs nu + 1 values");
  for (double v : phi_) {
    require(std::isfinite(v) && v > 0.0, "fitness values must be positive and finite");
  }
}

ErrorClassLandscape ErrorClassLandscape::single_peak(unsigned nu, double peak,
                                                     double rest) {
  require(peak > 0.0 && rest > 0.0, "fitness values must be positive");
  std::vector<double> phi(nu + 1, rest);
  phi[0] = peak;
  return ErrorClassLandscape(nu, std::move(phi));
}

ErrorClassLandscape ErrorClassLandscape::linear(unsigned nu, double f0, double fnu) {
  require(f0 > 0.0 && fnu > 0.0, "fitness values must be positive");
  std::vector<double> phi(nu + 1);
  for (unsigned k = 0; k <= nu; ++k) {
    phi[k] = f0 - (f0 - fnu) * static_cast<double>(k) / static_cast<double>(nu);
  }
  return ErrorClassLandscape(nu, std::move(phi));
}

ErrorClassLandscape ErrorClassLandscape::from_values(unsigned nu,
                                                     std::vector<double> phi) {
  return ErrorClassLandscape(nu, std::move(phi));
}

double ErrorClassLandscape::value(unsigned k) const {
  require(k <= nu_, "class index k must satisfy k <= nu");
  return phi_[k];
}

Landscape ErrorClassLandscape::expand() const {
  require(nu_ <= 30, "expand(): chain length too large to materialise");
  const seq_t n = sequence_count(nu_);
  std::vector<double> v(n);
  for (seq_t i = 0; i < n; ++i) v[i] = phi_[hamming_weight(i)];
  return Landscape::from_values(nu_, std::move(v));
}

KroneckerLandscape::KroneckerLandscape(std::vector<std::vector<double>> factors)
    : factors_(std::move(factors)) {
  require(!factors_.empty(), "Kronecker landscape needs at least one factor");
  for (const auto& f : factors_) {
    require(f.size() >= 2 && is_power_of_two(f.size()),
            "factor size must be a power of two >= 2");
    for (double v : f) {
      require(std::isfinite(v) && v > 0.0,
              "fitness values must be positive and finite");
    }
    const unsigned bits = log2_exact(f.size());
    group_bits_.push_back(bits);
    total_bits_ += bits;
    // Factors are stored per group, so the total width may exceed the
    // explicitly indexable range; only value()/dimension()/expand() need
    // the kMaxChainLength cap.
    require(total_bits_ <= 1000, "total chain length too large");
  }
}

seq_t KroneckerLandscape::dimension() const {
  require(total_bits_ <= kMaxChainLength,
          "dimension(): chain length too large to index explicitly");
  return sequence_count(total_bits_);
}

double KroneckerLandscape::value(seq_t i) const {
  require(i < dimension(), "sequence index out of range");
  double prod = 1.0;
  unsigned lo = 0;
  for (std::size_t g = 0; g < factors_.size(); ++g) {
    const seq_t mask = (seq_t{1} << group_bits_[g]) - 1;
    prod *= factors_[g][static_cast<std::size_t>((i >> lo) & mask)];
    lo += group_bits_[g];
  }
  return prod;
}

Landscape KroneckerLandscape::expand() const {
  const seq_t n = dimension();
  std::vector<double> v(n);
  for (seq_t i = 0; i < n; ++i) v[i] = value(i);
  return Landscape::from_values(total_bits_, std::move(v));
}

}  // namespace qs::core
