// Fmmp — the fast mutation matrix product (Section 2.1 of the paper).
//
// The primary contribution of the paper: W x is computed implicitly in
// Theta(N log2 N) time and Theta(1) extra space by scaling with the diagonal
// fitness landscape and running the Kronecker butterfly of the mutation
// matrix, without ever forming an entry of W.  Works for every MutationModel
// kind (uniform, per-site, grouped) and all three problem formulations.
//
// The optional execution engine selects the paper's Algorithm 2 (kernel
// launch per butterfly level with the GPU index mapping); without an engine
// the serial Algorithm 1 runs, in either level order (Eq. (9) vs Eq. (10)).
#pragma once

#include <vector>

#include "core/mutation_model.hpp"
#include "core/operators.hpp"
#include "parallel/engine.hpp"

namespace qs::core {

/// Which kernel the engine path of FmmpOperator runs for 2x2 mutation kinds.
enum class EngineKernel {
  blocked,    ///< banded cache-blocked butterfly with fused F-scalings
  per_level,  ///< the paper's literal Algorithm 2: one launch per level
};

/// Implicit fast product with W in the chosen formulation.
class FmmpOperator final : public LinearOperator {
 public:
  /// Builds the operator.  `model` is copied (it is small); `landscape` is
  /// referenced and must outlive the operator.  The symmetric formulation
  /// requires a symmetric mutation model.  `engine`, when non-null, must
  /// also outlive the operator and selects the parallel path; `kernel`
  /// picks between the banded kernel (default, diagonal scalings fused into
  /// the first/last band) and the per-level reference; `plan` tunes the
  /// banded kernel's tiling (see transforms::autotune_blocked_plan).
  FmmpOperator(MutationModel model, const Landscape& landscape,
               Formulation formulation = Formulation::right,
               const parallel::Engine* engine = nullptr,
               transforms::LevelOrder order = transforms::LevelOrder::ascending,
               EngineKernel kernel = EngineKernel::blocked,
               transforms::BlockedPlan plan = {});

  seq_t dimension() const override { return model_.dimension(); }
  void apply(std::span<const double> x, std::span<double> y) const override;
  std::string_view name() const override { return "Fmmp"; }

  /// Panel product Y <- W X on an interleaved panel of m vectors
  /// (x[i*m + j] = element i of column j); every column of y becomes
  /// W column of x.  All columns see the same landscape (the scalings are
  /// broadcast across the panel).  Runs the banded panel kernels through the
  /// configured engine (serial engine when none was given); the per-level
  /// reference kernel has no panel form, so EngineKernel::per_level falls
  /// back to the banded panel path too.  Panels wider than 8 are routed
  /// through transforms::apply_panel_wide_fused — the full-width wide
  /// sweep (bit-identical per column to the m <= 8 path).  x may alias y
  /// exactly or not at all.  Requires
  /// x.size() == y.size() == dimension() * m.
  void apply_panel(std::span<const double> x, std::span<double> y,
                   std::size_t m) const;

  const MutationModel& model() const { return model_; }
  const Landscape& landscape() const { return *landscape_; }
  Formulation formulation() const { return formulation_; }
  const transforms::BlockedPlan& plan() const { return plan_; }

 private:
  MutationModel model_;
  const Landscape* landscape_;
  Formulation formulation_;
  const parallel::Engine* engine_;
  transforms::LevelOrder order_;
  EngineKernel kernel_;
  transforms::BlockedPlan plan_;
  std::vector<double> sqrt_f_;  // cached for the symmetric formulation
};

}  // namespace qs::core
