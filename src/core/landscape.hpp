// Fitness landscapes F = diag(f_0, ..., f_{N-1}), f_i > 0.
//
// Three representations mirror the paper's hierarchy of assumptions:
//
//   Landscape           — a general diagonal landscape: all N values stored
//                         (the setting of Sections 2-4, no assumptions);
//   ErrorClassLandscape — f_i = phi(d_H(i, 0)): nu+1 degrees of freedom,
//                         enabling the exact (nu+1) x (nu+1) reduction of
//                         Section 5.1;
//   KroneckerLandscape  — F = (x)_i F_{G_i} (diagonal factors): Section 5.2,
//                         decoupling the problem into independent
//                         subproblems and allowing chain lengths far beyond
//                         direct storage.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/bits.hpp"

namespace qs::core {

class ErrorClassLandscape;
class KroneckerLandscape;

/// General diagonal fitness landscape with explicitly stored values.
class Landscape {
 public:
  /// All sequences equally fit: f_i = c. Requires c > 0.
  static Landscape flat(unsigned nu, double c);

  /// Single peak landscape: f_0 = peak, f_i = rest for i != 0 (the classic
  /// error-threshold setting of Figure 1 left). Requires peak, rest > 0.
  static Landscape single_peak(unsigned nu, double peak, double rest);

  /// Linear landscape f_i = f0 - (f0 - fnu) * d_H(i, 0) / nu (Figure 1
  /// right). Requires f0, fnu > 0.
  static Landscape linear(unsigned nu, double f0, double fnu);

  /// The paper's random landscape, Eq. (13): f_0 = c and
  /// f_i = sigma * (eta_i + 0.5) with eta_i uniform in [0, 1).
  /// Requires c > 0 and 0 < sigma < c/2 (the paper's admissible range,
  /// which keeps the master sequence the fittest).
  static Landscape random(unsigned nu, double c, double sigma, std::uint64_t seed);

  /// Takes ownership of explicit values. Requires values.size() == 2^nu and
  /// every value > 0.
  static Landscape from_values(unsigned nu, std::vector<double> values);

  unsigned nu() const { return nu_; }
  seq_t dimension() const { return sequence_count(nu_); }

  double value(seq_t i) const { return values_[i]; }
  std::span<const double> values() const { return values_; }

  double min_fitness() const { return min_; }
  double max_fitness() const { return max_; }

  /// True iff the landscape is constant on every error class Gamma_k within
  /// `tol` (i.e. represents some phi(d_H(i,0))).
  bool is_error_class(double tol = 0.0) const;

 private:
  Landscape(unsigned nu, std::vector<double> values);

  unsigned nu_;
  std::vector<double> values_;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Hamming-distance-based landscape f_i = phi(d_H(i, 0)).
class ErrorClassLandscape {
 public:
  /// phi(0) = peak, phi(k) = rest for k >= 1.
  static ErrorClassLandscape single_peak(unsigned nu, double peak, double rest);

  /// phi(k) = f0 - (f0 - fnu) * k / nu.
  static ErrorClassLandscape linear(unsigned nu, double f0, double fnu);

  /// Explicit phi values; requires phi.size() == nu + 1, all > 0.
  static ErrorClassLandscape from_values(unsigned nu, std::vector<double> phi);

  unsigned nu() const { return nu_; }

  /// phi(k). Requires k <= nu.
  double value(unsigned k) const;

  std::span<const double> values() const { return phi_; }

  /// Expands to the full 2^nu-value landscape (for cross-validation against
  /// the general solvers; requires nu small enough to allocate).
  Landscape expand() const;

 private:
  ErrorClassLandscape(unsigned nu, std::vector<double> phi);

  unsigned nu_;
  std::vector<double> phi_;
};

/// Kronecker-structured landscape F = F_{G_{g-1}} (x) ... (x) F_{G_0} with
/// diagonal factors; factor 0 acts on the least significant bit group.
class KroneckerLandscape {
 public:
  /// Takes ownership of the diagonal factor values. Each factor must have
  /// power-of-two size >= 2 and positive entries.
  explicit KroneckerLandscape(std::vector<std::vector<double>> factors);

  std::size_t group_count() const { return factors_.size(); }
  unsigned group_bits(std::size_t i) const { return group_bits_[i]; }

  /// Total chain length; may exceed the explicitly indexable range (the
  /// factors are stored per group). value()/dimension()/expand() require
  /// nu() <= kMaxChainLength.
  unsigned nu() const { return total_bits_; }

  /// N = 2^nu. Requires nu() <= kMaxChainLength.
  seq_t dimension() const;

  const std::vector<std::vector<double>>& factors() const { return factors_; }

  /// f_i as the product of the per-group factor values.
  double value(seq_t i) const;

  /// Expands to the full landscape (requires nu small enough to allocate).
  Landscape expand() const;

 private:
  std::vector<std::vector<double>> factors_;
  std::vector<unsigned> group_bits_;
  unsigned total_bits_ = 0;
};

}  // namespace qs::core
