#include "core/operators.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"

namespace qs::core {
namespace {

/// Power of F applied when converting `from` -> `to`:
/// x_to = F^{power(to) - power(from)} x_from with the convention
/// power(right) = 0, power(symmetric) = 1/2, power(left) = 1, which encodes
/// x_L = F^{1/2} x_S = F x_R.
double formulation_power(Formulation f) {
  switch (f) {
    case Formulation::right: return 0.0;
    case Formulation::symmetric: return 0.5;
    case Formulation::left: return 1.0;
  }
  return 0.0;
}

}  // namespace

void convert_eigenvector(Formulation from, Formulation to, const Landscape& landscape,
                         std::span<double> x) {
  require(x.size() == landscape.dimension(),
          "convert_eigenvector: dimension mismatch");
  const double exponent = formulation_power(to) - formulation_power(from);
  if (exponent != 0.0) {
    const auto f = landscape.values();
    if (exponent == 1.0) {
      for (std::size_t i = 0; i < x.size(); ++i) x[i] *= f[i];
    } else if (exponent == -1.0) {
      for (std::size_t i = 0; i < x.size(); ++i) x[i] /= f[i];
    } else if (exponent == 0.5) {
      for (std::size_t i = 0; i < x.size(); ++i) x[i] *= std::sqrt(f[i]);
    } else if (exponent == -0.5) {
      for (std::size_t i = 0; i < x.size(); ++i) x[i] /= std::sqrt(f[i]);
    }
  }
  linalg::normalize1(x);
}

}  // namespace qs::core
