// Fault-injection harness for the resilience layer.
//
// Long-running solves must survive three failure families: a poisoned
// product (NaN/Inf sneaking into the iterate), a kernel body that throws
// mid-dispatch on a parallel backend, and checkpoint I/O that fails while a
// solve is healthy.  These wrappers inject each fault deterministically at a
// configured call index so tests can prove the corresponding guard fires:
//
//   * FaultInjectingOperator — wraps any LinearOperator; overwrites one
//     entry of the product with NaN at the k-th apply (once or from then
//     on), or throws InjectedFault from the k-th apply;
//   * FaultInjectingEngine — wraps any Engine; the kernel body of the k-th
//     dispatch (or reduce_partials) throws InjectedFault from inside one
//     lane, exercising the backend's capture-barrier-rethrow path;
//   * FaultInjectingCheckpointSink — a PowerOptions::checkpoint_sink that
//     delegates to a real sink (or swallows) but throws at the k-th write.
//
// The solver service adds two more failure families, injected at its own
// seams:
//
//   * FaultInjectingStream — wraps a service::Stream and corrupts the wire:
//     drop (connection dies at the k-th operation), delay (operation stalls
//     past the peer's timeout), short-read (EOF mid-frame), corrupt (bytes
//     flip in flight) — the transport-level chaos the daemon must answer
//     with structured errors, never a wedge;
//   * FaultInjectingCacheStorage — wraps a service::CacheStorage; stores
//     throw (sick disk) or silently corrupt the payload (bit rot the
//     checksummed loader must catch and quarantine).
//
// The wrappers live in the library (not the test tree) so tools and benches
// can stage chaos drills too; they have zero overhead when not engaged.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/operators.hpp"
#include "io/binary_io.hpp"
#include "parallel/engine.hpp"
#include "service/scenario_cache.hpp"
#include "service/transport.hpp"

namespace qs::testing {

/// The exception every injected throw raises; tests catch precisely this.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Wraps a LinearOperator and injects a fault at a configured apply index
/// (1-based).  Exactly one fault kind should be configured; 0 disables.
class FaultInjectingOperator final : public core::LinearOperator {
 public:
  struct Config {
    std::size_t nan_at_apply = 0;    ///< Poison the product of this apply.
    bool nan_every_apply_after = false;  ///< Keep poisoning once triggered
                                         ///< (persistent vs transient fault).
    std::size_t nan_index = 0;       ///< Which product entry to poison.
    std::size_t throw_at_apply = 0;  ///< Throw InjectedFault on this apply.
  };

  FaultInjectingOperator(const core::LinearOperator& inner, Config config)
      : inner_(inner), config_(config) {}

  seq_t dimension() const override { return inner_.dimension(); }
  std::string_view name() const override { return "fault-injecting"; }
  void apply(std::span<const double> x, std::span<double> y) const override;

  /// Applies performed so far (faulty ones included).
  std::size_t apply_count() const { return apply_count_.load(); }

 private:
  const core::LinearOperator& inner_;
  Config config_;
  mutable std::atomic<std::size_t> apply_count_{0};
};

/// Wraps an Engine and makes the kernel body of the k-th dispatch (or
/// reduce_partials) throw InjectedFault from inside exactly one lane; all
/// other lanes run normally, so the test exercises the backend's
/// first-exception capture and barrier completion, not an empty dispatch.
class FaultInjectingEngine final : public parallel::Engine {
 public:
  struct Config {
    std::size_t throw_at_dispatch = 0;  ///< 1-based dispatch index; 0 = never.
    std::size_t throw_at_reduce = 0;    ///< 1-based reduce_partials index.
  };

  FaultInjectingEngine(const parallel::Engine& inner, Config config)
      : inner_(inner), config_(config) {}

  std::string_view name() const override { return inner_.name(); }
  unsigned concurrency() const override { return inner_.concurrency(); }
  void dispatch(std::size_t n, const parallel::RangeKernel& kernel) const override;
  double reduce_partials(std::size_t n,
                         const parallel::PartialKernel& kernel) const override;
  double reduce_sum(std::span<const double> v) const override {
    return inner_.reduce_sum(v);
  }
  double reduce_abs_sum(std::span<const double> v) const override {
    return inner_.reduce_abs_sum(v);
  }
  double reduce_sum_squares(std::span<const double> v) const override {
    return inner_.reduce_sum_squares(v);
  }
  double reduce_dot(std::span<const double> a,
                    std::span<const double> b) const override {
    return inner_.reduce_dot(a, b);
  }

  std::size_t dispatch_count() const { return dispatch_count_.load(); }
  std::size_t reduce_count() const { return reduce_count_.load(); }

 private:
  const parallel::Engine& inner_;
  Config config_;
  mutable std::atomic<std::size_t> dispatch_count_{0};
  mutable std::atomic<std::size_t> reduce_count_{0};
};

/// Builds a PowerOptions::checkpoint_sink that forwards every write to
/// `delegate` (pass {} to discard writes) but throws InjectedFault at the
/// k-th write (1-based; every write from then on also throws when
/// `fail_forever`), modelling a full disk or a vanished mount mid-solve.
std::function<void(const io::SolverCheckpoint&)> fault_injecting_checkpoint_sink(
    std::function<void(const io::SolverCheckpoint&)> delegate,
    std::size_t fail_at_write, bool fail_forever = false);

/// Wraps a service::Stream and injects transport faults at configured
/// operation indices (1-based, counted separately for reads and writes;
/// 0 disables a fault).  Owns the inner stream.
class FaultInjectingStream final : public service::Stream {
 public:
  struct Config {
    std::size_t drop_at_read = 0;    ///< TransportError (peer died) at read k.
    std::size_t drop_at_write = 0;   ///< TransportError at write k.
    std::size_t delay_at_read = 0;   ///< TimeoutError (stall) at read k.
    std::size_t short_read_at = 0;   ///< Deliver only half the bytes of read
                                     ///< k, then report EOF (torn frame).
    std::size_t corrupt_at_read = 0; ///< Flip bits in the bytes of read k.
    std::size_t corrupt_at_write = 0;///< Flip bits in the bytes of write k.
  };

  FaultInjectingStream(std::unique_ptr<service::Stream> inner, Config config)
      : inner_(std::move(inner)), config_(config) {}

  void read_exact(void* data, std::size_t size) override;
  void write_all(const void* data, std::size_t size) override;

  std::size_t read_count() const { return read_count_.load(); }
  std::size_t write_count() const { return write_count_.load(); }

 private:
  std::unique_ptr<service::Stream> inner_;
  Config config_;
  std::atomic<std::size_t> read_count_{0};
  std::atomic<std::size_t> write_count_{0};
};

/// In-memory service::Stream half: what one side writes, the other reads
/// (two of these, cross-wired via make_stream_pair, emulate a socket pair
/// without fds — the substrate FaultInjectingStream corrupts in tests).
class MemoryStream final : public service::Stream {
 public:
  void read_exact(void* data, std::size_t size) override;
  void write_all(const void* data, std::size_t size) override;

  /// Bytes written here become readable from `peer`.
  void wire_to(MemoryStream* peer) { peer_ = peer; }

 private:
  MemoryStream* peer_ = nullptr;
  std::vector<std::uint8_t> inbox_;
  std::size_t read_at_ = 0;
};

/// Wraps a service::CacheStorage and injects persistence faults: stores
/// throw at the k-th call (sick disk), or the k-th stored payload is
/// corrupted in flight (bit rot the checksummed loader must quarantine).
/// `inner` may be null (memory-only cache): corrupt faults then have no
/// target and store faults still throw.
class FaultInjectingCacheStorage final : public service::CacheStorage {
 public:
  struct Config {
    std::size_t throw_at_store = 0;    ///< InjectedFault at store k (1-based).
    bool throw_forever = false;        ///< Every store from k on throws.
    std::size_t corrupt_at_store = 0;  ///< Store k writes flipped bytes.
    std::size_t throw_at_load = 0;     ///< InjectedFault at load k.
  };

  FaultInjectingCacheStorage(std::unique_ptr<service::CacheStorage> inner,
                             Config config)
      : inner_(std::move(inner)), config_(config) {}

  void store(std::uint64_t key, const std::vector<double>& payload) override;
  std::optional<std::vector<double>> load(std::uint64_t key) override;
  void quarantine(std::uint64_t key) noexcept override;

  std::size_t store_count() const { return store_count_.load(); }
  std::size_t quarantine_count() const { return quarantine_count_.load(); }

 private:
  std::unique_ptr<service::CacheStorage> inner_;
  Config config_;
  std::atomic<std::size_t> store_count_{0};
  std::atomic<std::size_t> load_count_{0};
  std::atomic<std::size_t> quarantine_count_{0};
};

}  // namespace qs::testing
