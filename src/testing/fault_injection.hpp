// Fault-injection harness for the resilience layer.
//
// Long-running solves must survive three failure families: a poisoned
// product (NaN/Inf sneaking into the iterate), a kernel body that throws
// mid-dispatch on a parallel backend, and checkpoint I/O that fails while a
// solve is healthy.  These wrappers inject each fault deterministically at a
// configured call index so tests can prove the corresponding guard fires:
//
//   * FaultInjectingOperator — wraps any LinearOperator; overwrites one
//     entry of the product with NaN at the k-th apply (once or from then
//     on), or throws InjectedFault from the k-th apply;
//   * FaultInjectingEngine — wraps any Engine; the kernel body of the k-th
//     dispatch (or reduce_partials) throws InjectedFault from inside one
//     lane, exercising the backend's capture-barrier-rethrow path;
//   * FaultInjectingCheckpointSink — a PowerOptions::checkpoint_sink that
//     delegates to a real sink (or swallows) but throws at the k-th write.
//
// The wrappers live in the library (not the test tree) so tools and benches
// can stage chaos drills too; they have zero overhead when not engaged.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <stdexcept>

#include "core/operators.hpp"
#include "io/binary_io.hpp"
#include "parallel/engine.hpp"

namespace qs::testing {

/// The exception every injected throw raises; tests catch precisely this.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Wraps a LinearOperator and injects a fault at a configured apply index
/// (1-based).  Exactly one fault kind should be configured; 0 disables.
class FaultInjectingOperator final : public core::LinearOperator {
 public:
  struct Config {
    std::size_t nan_at_apply = 0;    ///< Poison the product of this apply.
    bool nan_every_apply_after = false;  ///< Keep poisoning once triggered
                                         ///< (persistent vs transient fault).
    std::size_t nan_index = 0;       ///< Which product entry to poison.
    std::size_t throw_at_apply = 0;  ///< Throw InjectedFault on this apply.
  };

  FaultInjectingOperator(const core::LinearOperator& inner, Config config)
      : inner_(inner), config_(config) {}

  seq_t dimension() const override { return inner_.dimension(); }
  std::string_view name() const override { return "fault-injecting"; }
  void apply(std::span<const double> x, std::span<double> y) const override;

  /// Applies performed so far (faulty ones included).
  std::size_t apply_count() const { return apply_count_.load(); }

 private:
  const core::LinearOperator& inner_;
  Config config_;
  mutable std::atomic<std::size_t> apply_count_{0};
};

/// Wraps an Engine and makes the kernel body of the k-th dispatch (or
/// reduce_partials) throw InjectedFault from inside exactly one lane; all
/// other lanes run normally, so the test exercises the backend's
/// first-exception capture and barrier completion, not an empty dispatch.
class FaultInjectingEngine final : public parallel::Engine {
 public:
  struct Config {
    std::size_t throw_at_dispatch = 0;  ///< 1-based dispatch index; 0 = never.
    std::size_t throw_at_reduce = 0;    ///< 1-based reduce_partials index.
  };

  FaultInjectingEngine(const parallel::Engine& inner, Config config)
      : inner_(inner), config_(config) {}

  std::string_view name() const override { return inner_.name(); }
  unsigned concurrency() const override { return inner_.concurrency(); }
  void dispatch(std::size_t n, const parallel::RangeKernel& kernel) const override;
  double reduce_partials(std::size_t n,
                         const parallel::PartialKernel& kernel) const override;
  double reduce_sum(std::span<const double> v) const override {
    return inner_.reduce_sum(v);
  }
  double reduce_abs_sum(std::span<const double> v) const override {
    return inner_.reduce_abs_sum(v);
  }
  double reduce_sum_squares(std::span<const double> v) const override {
    return inner_.reduce_sum_squares(v);
  }
  double reduce_dot(std::span<const double> a,
                    std::span<const double> b) const override {
    return inner_.reduce_dot(a, b);
  }

  std::size_t dispatch_count() const { return dispatch_count_.load(); }
  std::size_t reduce_count() const { return reduce_count_.load(); }

 private:
  const parallel::Engine& inner_;
  Config config_;
  mutable std::atomic<std::size_t> dispatch_count_{0};
  mutable std::atomic<std::size_t> reduce_count_{0};
};

/// Builds a PowerOptions::checkpoint_sink that forwards every write to
/// `delegate` (pass {} to discard writes) but throws InjectedFault at the
/// k-th write (1-based; every write from then on also throws when
/// `fail_forever`), modelling a full disk or a vanished mount mid-solve.
std::function<void(const io::SolverCheckpoint&)> fault_injecting_checkpoint_sink(
    std::function<void(const io::SolverCheckpoint&)> delegate,
    std::size_t fail_at_write, bool fail_forever = false);

}  // namespace qs::testing
