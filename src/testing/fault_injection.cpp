#include "testing/fault_injection.hpp"

#include <limits>
#include <memory>

#include "support/contracts.hpp"

namespace qs::testing {

void FaultInjectingOperator::apply(std::span<const double> x,
                                   std::span<double> y) const {
  const std::size_t count = apply_count_.fetch_add(1) + 1;
  if (config_.throw_at_apply != 0 && count == config_.throw_at_apply) {
    throw InjectedFault("injected operator fault at apply " + std::to_string(count));
  }
  inner_.apply(x, y);
  const bool poison =
      config_.nan_at_apply != 0 &&
      (count == config_.nan_at_apply ||
       (config_.nan_every_apply_after && count > config_.nan_at_apply));
  if (poison) {
    require(config_.nan_index < y.size(),
            "FaultInjectingOperator: nan_index out of range");
    y[config_.nan_index] = std::numeric_limits<double>::quiet_NaN();
  }
}

void FaultInjectingEngine::dispatch(std::size_t n,
                                    const parallel::RangeKernel& kernel) const {
  const std::size_t count = dispatch_count_.fetch_add(1) + 1;
  if (config_.throw_at_dispatch == 0 || count != config_.throw_at_dispatch) {
    inner_.dispatch(n, kernel);
    return;
  }
  // Run the real kernel on every lane but make exactly one lane (the first
  // to claim the flag) throw from inside the kernel body: the backend must
  // capture it, let the other lanes finish the barrier, and rethrow here.
  auto thrown = std::make_shared<std::atomic<bool>>(false);
  inner_.dispatch(n, [&kernel, thrown](std::size_t begin, std::size_t end) {
    if (!thrown->exchange(true)) {
      throw InjectedFault("injected kernel fault in dispatch chunk [" +
                          std::to_string(begin) + ", " + std::to_string(end) + ")");
    }
    kernel(begin, end);
  });
}

double FaultInjectingEngine::reduce_partials(
    std::size_t n, const parallel::PartialKernel& kernel) const {
  const std::size_t count = reduce_count_.fetch_add(1) + 1;
  if (config_.throw_at_reduce == 0 || count != config_.throw_at_reduce) {
    return inner_.reduce_partials(n, kernel);
  }
  auto thrown = std::make_shared<std::atomic<bool>>(false);
  return inner_.reduce_partials(n, [&kernel, thrown](std::size_t begin,
                                                     std::size_t end) -> double {
    if (!thrown->exchange(true)) {
      throw InjectedFault("injected kernel fault in reduce chunk [" +
                          std::to_string(begin) + ", " + std::to_string(end) + ")");
    }
    return kernel(begin, end);
  });
}

std::function<void(const io::SolverCheckpoint&)> fault_injecting_checkpoint_sink(
    std::function<void(const io::SolverCheckpoint&)> delegate,
    std::size_t fail_at_write, bool fail_forever) {
  auto count = std::make_shared<std::size_t>(0);
  return [delegate = std::move(delegate), fail_at_write, fail_forever,
          count](const io::SolverCheckpoint& state) {
    const std::size_t write = ++*count;
    if (fail_at_write != 0 &&
        (write == fail_at_write || (fail_forever && write > fail_at_write))) {
      throw InjectedFault("injected checkpoint I/O failure at write " +
                          std::to_string(write));
    }
    if (delegate) delegate(state);
  };
}

}  // namespace qs::testing
