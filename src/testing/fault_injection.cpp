#include "testing/fault_injection.hpp"

#include <cstring>
#include <limits>
#include <memory>

#include "support/contracts.hpp"

namespace qs::testing {

void FaultInjectingOperator::apply(std::span<const double> x,
                                   std::span<double> y) const {
  const std::size_t count = apply_count_.fetch_add(1) + 1;
  if (config_.throw_at_apply != 0 && count == config_.throw_at_apply) {
    throw InjectedFault("injected operator fault at apply " + std::to_string(count));
  }
  inner_.apply(x, y);
  const bool poison =
      config_.nan_at_apply != 0 &&
      (count == config_.nan_at_apply ||
       (config_.nan_every_apply_after && count > config_.nan_at_apply));
  if (poison) {
    require(config_.nan_index < y.size(),
            "FaultInjectingOperator: nan_index out of range");
    y[config_.nan_index] = std::numeric_limits<double>::quiet_NaN();
  }
}

void FaultInjectingEngine::dispatch(std::size_t n,
                                    const parallel::RangeKernel& kernel) const {
  const std::size_t count = dispatch_count_.fetch_add(1) + 1;
  if (config_.throw_at_dispatch == 0 || count != config_.throw_at_dispatch) {
    inner_.dispatch(n, kernel);
    return;
  }
  // Run the real kernel on every lane but make exactly one lane (the first
  // to claim the flag) throw from inside the kernel body: the backend must
  // capture it, let the other lanes finish the barrier, and rethrow here.
  auto thrown = std::make_shared<std::atomic<bool>>(false);
  inner_.dispatch(n, [&kernel, thrown](std::size_t begin, std::size_t end) {
    if (!thrown->exchange(true)) {
      throw InjectedFault("injected kernel fault in dispatch chunk [" +
                          std::to_string(begin) + ", " + std::to_string(end) + ")");
    }
    kernel(begin, end);
  });
}

double FaultInjectingEngine::reduce_partials(
    std::size_t n, const parallel::PartialKernel& kernel) const {
  const std::size_t count = reduce_count_.fetch_add(1) + 1;
  if (config_.throw_at_reduce == 0 || count != config_.throw_at_reduce) {
    return inner_.reduce_partials(n, kernel);
  }
  auto thrown = std::make_shared<std::atomic<bool>>(false);
  return inner_.reduce_partials(n, [&kernel, thrown](std::size_t begin,
                                                     std::size_t end) -> double {
    if (!thrown->exchange(true)) {
      throw InjectedFault("injected kernel fault in reduce chunk [" +
                          std::to_string(begin) + ", " + std::to_string(end) + ")");
    }
    return kernel(begin, end);
  });
}

std::function<void(const io::SolverCheckpoint&)> fault_injecting_checkpoint_sink(
    std::function<void(const io::SolverCheckpoint&)> delegate,
    std::size_t fail_at_write, bool fail_forever) {
  auto count = std::make_shared<std::size_t>(0);
  return [delegate = std::move(delegate), fail_at_write, fail_forever,
          count](const io::SolverCheckpoint& state) {
    const std::size_t write = ++*count;
    if (fail_at_write != 0 &&
        (write == fail_at_write || (fail_forever && write > fail_at_write))) {
      throw InjectedFault("injected checkpoint I/O failure at write " +
                          std::to_string(write));
    }
    if (delegate) delegate(state);
  };
}

void FaultInjectingStream::read_exact(void* data, std::size_t size) {
  const std::size_t count = read_count_.fetch_add(1) + 1;
  if (config_.drop_at_read != 0 && count == config_.drop_at_read) {
    throw service::TransportError("injected drop at read " + std::to_string(count));
  }
  if (config_.delay_at_read != 0 && count == config_.delay_at_read) {
    throw service::TimeoutError("injected stall at read " + std::to_string(count));
  }
  if (config_.short_read_at != 0 && count == config_.short_read_at) {
    // Model a torn frame: the peer delivered half the bytes, then the
    // connection ended.  Consume what a real short read would consume so a
    // resynchronising reader sees the same stream state.
    if (size > 1) inner_->read_exact(data, size / 2);
    throw service::TransportError("injected short read (peer closed mid-frame)");
  }
  inner_->read_exact(data, size);
  if (config_.corrupt_at_read != 0 && count == config_.corrupt_at_read) {
    auto* bytes = static_cast<std::uint8_t*>(data);
    for (std::size_t i = 0; i < size; ++i) bytes[i] ^= 0xa5;
  }
}

void FaultInjectingStream::write_all(const void* data, std::size_t size) {
  const std::size_t count = write_count_.fetch_add(1) + 1;
  if (config_.drop_at_write != 0 && count == config_.drop_at_write) {
    throw service::TransportError("injected drop at write " + std::to_string(count));
  }
  if (config_.corrupt_at_write != 0 && count == config_.corrupt_at_write) {
    std::vector<std::uint8_t> mangled(static_cast<const std::uint8_t*>(data),
                                      static_cast<const std::uint8_t*>(data) + size);
    for (std::uint8_t& byte : mangled) byte ^= 0xa5;
    inner_->write_all(mangled.data(), mangled.size());
    return;
  }
  inner_->write_all(data, size);
}

void MemoryStream::read_exact(void* data, std::size_t size) {
  if (inbox_.size() - read_at_ < size) {
    throw service::TransportError("MemoryStream: read past the written bytes");
  }
  std::memcpy(data, inbox_.data() + read_at_, size);
  read_at_ += size;
}

void MemoryStream::write_all(const void* data, std::size_t size) {
  require(peer_ != nullptr, "MemoryStream: not wired to a peer");
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  peer_->inbox_.insert(peer_->inbox_.end(), bytes, bytes + size);
}

void FaultInjectingCacheStorage::store(std::uint64_t key,
                                       const std::vector<double>& payload) {
  const std::size_t count = store_count_.fetch_add(1) + 1;
  if (config_.throw_at_store != 0 &&
      (count == config_.throw_at_store ||
       (config_.throw_forever && count > config_.throw_at_store))) {
    throw InjectedFault("injected cache store failure at store " +
                        std::to_string(count));
  }
  if (config_.corrupt_at_store != 0 && count == config_.corrupt_at_store && inner_) {
    // Persist a silently-corrupted payload.  binary_io recomputes its
    // checksum over what we hand it, so flip the bytes BEFORE the store:
    // the file is then internally consistent but semantically garbage —
    // exactly what unpack_cache_entry's structural checks must reject.
    std::vector<double> mangled = payload;
    for (double& value : mangled) {
      std::uint64_t bits;
      std::memcpy(&bits, &value, sizeof(bits));
      bits ^= 0xa5a5a5a5a5a5a5a5ull;
      std::memcpy(&value, &bits, sizeof(bits));
    }
    inner_->store(key, mangled);
    return;
  }
  if (inner_) inner_->store(key, payload);
}

std::optional<std::vector<double>> FaultInjectingCacheStorage::load(
    std::uint64_t key) {
  const std::size_t count = load_count_.fetch_add(1) + 1;
  if (config_.throw_at_load != 0 && count == config_.throw_at_load) {
    throw InjectedFault("injected cache load failure at load " +
                        std::to_string(count));
  }
  if (!inner_) return std::nullopt;
  return inner_->load(key);
}

void FaultInjectingCacheStorage::quarantine(std::uint64_t key) noexcept {
  quarantine_count_.fetch_add(1);
  if (inner_) inner_->quarantine(key);
}

}  // namespace qs::testing
