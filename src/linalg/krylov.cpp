#include "linalg/krylov.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/workspace.hpp"
#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"

namespace qs::linalg {

KrylovResult conjugate_gradient(const ApplyFn& apply, std::span<const double> b,
                                std::span<double> x, const KrylovOptions& options,
                                const ApplyFn& preconditioner) {
  const std::size_t n = b.size();
  require(x.size() == n, "conjugate_gradient: dimension mismatch");
  require(static_cast<bool>(apply), "conjugate_gradient: apply callback required");

  KrylovResult out;
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    for (double& v : x) v = 0.0;
    out.converged = true;
    return out;
  }

  core::Workspace local_workspace;
  core::Workspace& workspace =
      options.workspace != nullptr ? *options.workspace : local_workspace;
  std::span<double> r = workspace.take(core::Workspace::Slot::krylov0, n);
  std::span<double> z = workspace.take(core::Workspace::Slot::krylov1, n);
  std::span<double> p = workspace.take(core::Workspace::Slot::krylov2, n);
  std::span<double> ap = workspace.take(core::Workspace::Slot::krylov3, n);
  apply(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

  auto precondition = [&](std::span<const double> in, std::span<double> out_span) {
    if (preconditioner) {
      preconditioner(in, out_span);
    } else {
      copy(in, out_span);
    }
  };

  precondition(r, z);
  copy(z, p);
  double rz = dot(r, z);

  for (unsigned it = 1; it <= options.max_iterations; ++it) {
    apply(p, ap);
    const double pap = dot(p, ap);
    require(pap != 0.0, "conjugate_gradient: breakdown (operator not SPD?)");
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    out.iterations = it;
    out.relative_residual = norm2(r) / b_norm;
    if (out.relative_residual <= options.tolerance) {
      out.converged = true;
      break;
    }
    precondition(r, z);
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return out;
}

KrylovResult minres(const ApplyFn& apply, std::span<const double> b,
                    std::span<double> x, const KrylovOptions& options) {
  const std::size_t n = b.size();
  require(x.size() == n, "minres: dimension mismatch");
  require(static_cast<bool>(apply), "minres: apply callback required");

  KrylovResult out;
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    for (double& v : x) v = 0.0;
    out.converged = true;
    return out;
  }

  // Paige-Saunders MINRES with the compact Givens recurrence; |eta| tracks
  // the exact residual norm in exact arithmetic.
  core::Workspace local_workspace;
  core::Workspace& workspace =
      options.workspace != nullptr ? *options.workspace : local_workspace;
  std::span<double> v_prev = workspace.take(core::Workspace::Slot::krylov0, n);
  std::span<double> v = workspace.take(core::Workspace::Slot::krylov1, n);
  std::span<double> v_next = workspace.take(core::Workspace::Slot::krylov2, n);
  std::span<double> w_old = workspace.take(core::Workspace::Slot::krylov3, n);
  std::span<double> w = workspace.take(core::Workspace::Slot::krylov4, n);
  std::span<double> w_new = workspace.take(core::Workspace::Slot::krylov5, n);
  std::span<double> scratch = workspace.take(core::Workspace::Slot::krylov6, n);
  std::fill(v_prev.begin(), v_prev.end(), 0.0);
  std::fill(w_old.begin(), w_old.end(), 0.0);
  std::fill(w.begin(), w.end(), 0.0);

  apply(x, scratch);
  for (std::size_t i = 0; i < n; ++i) v[i] = b[i] - scratch[i];
  double beta = norm2(v);
  if (beta == 0.0) {
    out.converged = true;
    return out;
  }
  scale(v, 1.0 / beta);

  double eta = beta;
  double gamma_old = 1.0, gamma = 1.0;
  double sigma_old = 0.0, sigma = 0.0;

  for (unsigned it = 1; it <= options.max_iterations; ++it) {
    // Lanczos step.
    apply(v, scratch);
    const double alpha = dot(v, scratch);
    for (std::size_t i = 0; i < n; ++i) {
      v_next[i] = scratch[i] - alpha * v[i] - beta * v_prev[i];
    }
    const double beta_next = norm2(v_next);
    if (beta_next > 0.0) scale(v_next, 1.0 / beta_next);

    // Givens QR update of the tridiagonal factorisation.
    const double delta = gamma * alpha - gamma_old * sigma * beta;
    const double rho1 = std::sqrt(delta * delta + beta_next * beta_next);
    const double rho2 = sigma * alpha + gamma_old * gamma * beta;
    const double rho3 = sigma_old * beta;
    require(rho1 > 0.0, "minres: breakdown");
    const double gamma_next = delta / rho1;
    const double sigma_next = beta_next / rho1;

    for (std::size_t i = 0; i < n; ++i) {
      w_new[i] = (v[i] - rho3 * w_old[i] - rho2 * w[i]) / rho1;
      x[i] += gamma_next * eta * w_new[i];
    }
    eta = -sigma_next * eta;

    out.iterations = it;
    out.relative_residual = std::abs(eta) / b_norm;
    if (out.relative_residual <= options.tolerance) {
      out.converged = true;
      break;
    }

    // Shift the recurrences (span swaps rotate the backing buffers).
    std::swap(w_old, w);
    std::swap(w, w_new);
    std::swap(v_prev, v);
    std::swap(v, v_next);
    beta = beta_next;
    gamma_old = gamma;
    gamma = gamma_next;
    sigma_old = sigma;
    sigma = sigma_next;
    if (beta == 0.0) {  // invariant subspace found; residual is final
      out.converged = out.relative_residual <= options.tolerance;
      break;
    }
  }
  return out;
}

}  // namespace qs::linalg
