#include "linalg/hessenberg_qr.hpp"

#include <cmath>
#include <stdexcept>

#include "support/contracts.hpp"

namespace qs::linalg {

DenseMatrix to_hessenberg(const DenseMatrix& input) {
  require(input.rows() == input.cols(), "to_hessenberg: matrix must be square");
  DenseMatrix a = input;
  const std::size_t n = a.rows();
  if (n < 3) return a;

  std::vector<double> v(n);
  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Householder vector annihilating a(k+2..n-1, k).
    double alpha = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) alpha += a(i, k) * a(i, k);
    alpha = std::sqrt(alpha);
    if (alpha == 0.0) continue;
    if (a(k + 1, k) > 0.0) alpha = -alpha;

    double vnorm2 = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) {
      v[i] = a(i, k);
      if (i == k + 1) v[i] -= alpha;
      vnorm2 += v[i] * v[i];
    }
    if (vnorm2 == 0.0) continue;
    const double beta = 2.0 / vnorm2;

    // A <- (I - beta v v^T) A
    for (std::size_t j = k; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) s += v[i] * a(i, j);
      s *= beta;
      for (std::size_t i = k + 1; i < n; ++i) a(i, j) -= s * v[i];
    }
    // A <- A (I - beta v v^T)
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = k + 1; j < n; ++j) s += a(i, j) * v[j];
      s *= beta;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= s * v[j];
    }
  }
  // Clean the numerically-zero subdiagonal fill-in.
  for (std::size_t i = 2; i < n; ++i) {
    for (std::size_t j = 0; j + 1 < i; ++j) a(i, j) = 0.0;
  }
  return a;
}

namespace {

/// Francis double-shift QR on an upper Hessenberg matrix; classic hqr
/// formulation (Wilkinson / EISPACK lineage). Returns all eigenvalues.
std::vector<std::complex<double>> hqr(DenseMatrix h) {
  const std::size_t size = h.rows();
  std::vector<std::complex<double>> out;
  out.reserve(size);
  if (size == 0) return out;

  // Overall matrix scale for deflation thresholds.
  double anorm = 0.0;
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = (i == 0 ? 0 : i - 1); j < size; ++j) {
      anorm += std::abs(h(i, j));
    }
  }
  if (anorm == 0.0) {
    out.assign(size, std::complex<double>(0.0, 0.0));
    return out;
  }

  long nn = static_cast<long>(size) - 1;
  double t = 0.0;
  while (nn >= 0) {
    int its = 0;
    long l;
    for (;;) {
      // Find a small subdiagonal element (deflation point).
      for (l = nn; l >= 1; --l) {
        const double s = std::abs(h(l - 1, l - 1)) + std::abs(h(l, l));
        const double scale = (s == 0.0) ? anorm : s;
        if (std::abs(h(l, l - 1)) <= 1e-300 + 1e-16 * scale) {
          h(l, l - 1) = 0.0;
          break;
        }
      }
      double x = h(nn, nn);
      if (l == nn) {  // one real eigenvalue found
        out.emplace_back(x + t, 0.0);
        --nn;
        break;
      }
      double y = h(nn - 1, nn - 1);
      double w = h(nn, nn - 1) * h(nn - 1, nn);
      if (l == nn - 1) {  // a 2x2 block: one real pair or a complex pair
        double p = 0.5 * (y - x);
        double q = p * p + w;
        double z = std::sqrt(std::abs(q));
        x += t;
        if (q >= 0.0) {
          z = p + (p >= 0.0 ? z : -z);
          out.emplace_back(x + z, 0.0);
          out.emplace_back(z != 0.0 ? x - w / z : x + z, 0.0);
        } else {
          out.emplace_back(x + p, z);
          out.emplace_back(x + p, -z);
        }
        nn -= 2;
        break;
      }
      if (its == 60) {
        throw std::runtime_error("hessenberg_qr: too many QR iterations");
      }
      if (its == 10 || its == 20) {
        // Exceptional shift to break symmetric stagnation.
        t += x;
        for (long i = 0; i <= nn; ++i) h(i, i) -= x;
        const double s = std::abs(h(nn, nn - 1)) + std::abs(h(nn - 1, nn - 2));
        x = y = 0.75 * s;
        w = -0.4375 * s * s;
      }
      ++its;

      // Look for two consecutive small subdiagonal elements; on exit
      // (p, q, r) holds the first Householder direction of the double step.
      long m;
      double p = 0.0, q = 0.0, r = 0.0, z = 0.0;
      for (m = nn - 2; m >= l; --m) {
        z = h(m, m);
        const double rr = x - z;
        const double ss = y - z;
        p = (rr * ss - w) / h(m + 1, m) + h(m, m + 1);
        q = h(m + 1, m + 1) - z - rr - ss;
        r = h(m + 2, m + 1);
        const double s3 = std::abs(p) + std::abs(q) + std::abs(r);
        p /= s3;
        q /= s3;
        r /= s3;
        if (m == l) break;
        const double u = std::abs(h(m, m - 1)) * (std::abs(q) + std::abs(r));
        const double v = std::abs(p) * (std::abs(h(m - 1, m - 1)) + std::abs(z) +
                                        std::abs(h(m + 1, m + 1)));
        if (u <= 1e-16 * v) break;
      }
      for (long i = m + 2; i <= nn; ++i) {
        h(i, i - 2) = 0.0;
        if (i != m + 2) h(i, i - 3) = 0.0;
      }

      // Double QR step on rows l..nn and columns m..nn.
      for (long k = m; k <= nn - 1; ++k) {
        if (k != m) {
          p = h(k, k - 1);
          q = h(k + 1, k - 1);
          r = (k != nn - 1) ? h(k + 2, k - 1) : 0.0;
          x = std::abs(p) + std::abs(q) + std::abs(r);
          if (x != 0.0) {
            p /= x;
            q /= x;
            r /= x;
          }
        }
        double s = std::sqrt(p * p + q * q + r * r);
        if (p < 0.0) s = -s;
        if (s == 0.0) continue;
        if (k == m) {
          if (l != m) h(k, k - 1) = -h(k, k - 1);
        } else {
          h(k, k - 1) = -s * x;
        }
        p += s;
        x = p / s;
        y = q / s;
        z = r / s;
        q /= p;
        r /= p;
        for (long j = k; j <= nn; ++j) {  // row modification
          p = h(k, j) + q * h(k + 1, j);
          if (k != nn - 1) {
            p += r * h(k + 2, j);
            h(k + 2, j) -= p * z;
          }
          h(k + 1, j) -= p * y;
          h(k, j) -= p * x;
        }
        const long mmin = (nn < k + 3) ? nn : k + 3;
        for (long i = l; i <= mmin; ++i) {  // column modification
          p = x * h(i, k) + y * h(i, k + 1);
          if (k != nn - 1) {
            p += z * h(i, k + 2);
            h(i, k + 2) -= p * r;
          }
          h(i, k + 1) -= p * q;
          h(i, k) -= p;
        }
      }
    }
  }
  return out;
}

}  // namespace

std::vector<std::complex<double>> eigenvalues(const DenseMatrix& a) {
  require(a.rows() == a.cols(), "eigenvalues: matrix must be square");
  return hqr(to_hessenberg(a));
}

double dominant_real_eigenvalue(const DenseMatrix& a) {
  const auto spectrum = eigenvalues(a);
  require(!spectrum.empty(), "dominant_real_eigenvalue: empty matrix");
  std::complex<double> best = spectrum.front();
  for (const auto& z : spectrum) {
    if (std::abs(z) > std::abs(best)) best = z;
  }
  if (std::abs(best.imag()) > 1e-8 * (1.0 + std::abs(best.real()))) {
    throw std::runtime_error(
        "dominant_real_eigenvalue: maximal-modulus eigenvalue is complex");
  }
  return best.real();
}

}  // namespace qs::linalg
