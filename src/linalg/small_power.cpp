#include "linalg/small_power.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "support/contracts.hpp"

namespace qs::linalg {

DominantEigenpair power_iteration(const DenseMatrix& a, std::span<const double> start,
                                  const SmallSolveOptions& opts) {
  require(a.rows() == a.cols(), "power_iteration: matrix must be square");
  const std::size_t n = a.rows();
  require(n > 0, "power_iteration: empty matrix");
  require(start.empty() || start.size() == n,
          "power_iteration: starting vector has wrong dimension");

  DominantEigenpair out;
  out.vector.assign(n, 1.0 / static_cast<double>(n));
  if (!start.empty()) {
    copy(start, out.vector);
    normalize1(out.vector);
  }

  std::vector<double> y(n);
  for (unsigned it = 1; it <= opts.max_iterations; ++it) {
    a.multiply(out.vector, y);
    if (opts.shift != 0.0) axpy(-opts.shift, out.vector, y);

    // Rayleigh quotient of the *unshifted* matrix.
    const double xx = dot(out.vector, out.vector);
    const double lambda = dot(out.vector, y) / xx + opts.shift;

    // Residual ||A x - lambda x||_2 = ||y - (lambda - shift) x||_2 relative
    // to |lambda| * ||x||_2.
    double res2 = 0.0;
    const double mu = lambda - opts.shift;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = y[i] - mu * out.vector[i];
      res2 += r * r;
    }
    const double xnorm = std::sqrt(xx);
    out.value = lambda;
    out.residual = std::sqrt(res2) / std::max(std::abs(lambda) * xnorm, 1e-300);
    out.iterations = it;
    if (out.residual <= opts.tolerance) {
      out.converged = true;
      break;
    }
    copy(y, out.vector);
    normalize1(out.vector);
  }
  normalize1(out.vector);
  return out;
}

DominantEigenpair inverse_iteration(const DenseMatrix& a, double lambda,
                                    const SmallSolveOptions& opts) {
  require(a.rows() == a.cols(), "inverse_iteration: matrix must be square");
  const std::size_t n = a.rows();
  require(n > 0, "inverse_iteration: empty matrix");

  // Shift slightly off the eigenvalue so the factorisation stays regular;
  // the iteration still converges onto the nearby eigenvector.
  DenseMatrix shifted = a;
  double mu = lambda * (1.0 + 1e-10) + 1e-300;
  for (std::size_t i = 0; i < n; ++i) shifted(i, i) -= mu;
  LuFactorization lu(shifted);

  DominantEigenpair out;
  out.vector.assign(n, 1.0 / static_cast<double>(n));
  std::vector<double> y(n);
  for (unsigned it = 1; it <= opts.max_iterations; ++it) {
    lu.solve(out.vector);
    normalize2(out.vector);
    // Rayleigh quotient and residual against the original matrix.
    a.multiply(out.vector, y);
    const double rq = dot(out.vector, y);
    double res2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = y[i] - rq * out.vector[i];
      res2 += r * r;
    }
    out.value = rq;
    out.residual = std::sqrt(res2) / std::max(std::abs(rq), 1e-300);
    out.iterations = it;
    if (out.residual <= opts.tolerance) {
      out.converged = true;
      break;
    }
  }

  // Perron setting: orient nonnegatively and normalise as concentrations.
  double s = sum(out.vector);
  if (s < 0.0) scale(out.vector, -1.0);
  normalize1(out.vector);
  return out;
}

}  // namespace qs::linalg
