#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace qs::linalg {

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "axpy: dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

double dot(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "dot: dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double norm1(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += std::abs(v);
  return acc;
}

double norm2(std::span<const double> x) {
  // Scaled accumulation guards against overflow for very long vectors with
  // large entries; concentrations are tiny, but fitness-scaled intermediates
  // need not be.
  double scale_factor = 0.0;
  double ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) continue;
    const double a = std::abs(v);
    if (scale_factor < a) {
      ssq = 1.0 + ssq * (scale_factor / a) * (scale_factor / a);
      scale_factor = a;
    } else {
      ssq += (a / scale_factor) * (a / scale_factor);
    }
  }
  return scale_factor * std::sqrt(ssq);
}

double norm_inf(std::span<const double> x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

double sum(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc;
}

double normalize1(std::span<double> x) {
  const double n = norm1(x);
  require(n > 0.0, "normalize1: zero vector");
  scale(x, 1.0 / n);
  return n;
}

double normalize2(std::span<double> x) {
  const double n = norm2(x);
  require(n > 0.0, "normalize2: zero vector");
  scale(x, 1.0 / n);
  return n;
}

double max_abs_diff(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "max_abs_diff: dimension mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) m = std::max(m, std::abs(x[i] - y[i]));
  return m;
}

void copy(std::span<const double> x, std::span<double> z) {
  require(x.size() == z.size(), "copy: dimension mismatch");
  std::copy(x.begin(), x.end(), z.begin());
}

void hadamard_scale(std::span<double> y, std::span<const double> d) {
  require(y.size() == d.size(), "hadamard_scale: dimension mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] *= d[i];
}

}  // namespace qs::linalg
