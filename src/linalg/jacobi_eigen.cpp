#include "linalg/jacobi_eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "support/contracts.hpp"

namespace qs::linalg {
namespace {

/// Sum of squares of strictly-off-diagonal entries.
double off_diagonal_norm2(const DenseMatrix& a) {
  double acc = 0.0;
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) acc += 2.0 * a(i, j) * a(i, j);
  }
  return acc;
}

}  // namespace

SymmetricEigen jacobi_eigen(const DenseMatrix& input, const JacobiOptions& opts) {
  require(input.rows() == input.cols(), "jacobi_eigen: matrix must be square");
  require(input.is_symmetric(1e-12), "jacobi_eigen: matrix must be symmetric");

  const std::size_t n = input.rows();
  DenseMatrix a = input;
  DenseMatrix v = DenseMatrix::identity(n);

  double frob2 = 0.0;
  for (double x : a.data()) frob2 += x * x;
  const double target = opts.tolerance * opts.tolerance * std::max(frob2, 1e-300);

  for (unsigned sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    if (off_diagonal_norm2(a) <= target) break;
    if (sweep + 1 == opts.max_sweeps) {
      throw std::runtime_error("jacobi_eigen: no convergence within max_sweeps");
    }
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        // Classic Jacobi rotation annihilating a(p, q).
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return a(i, i) > a(j, j); });

  SymmetricEigen out;
  out.values.resize(n);
  out.vectors = DenseMatrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = a(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

}  // namespace qs::linalg
