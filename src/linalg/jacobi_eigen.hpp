// Cyclic Jacobi eigendecomposition for small symmetric matrices.
//
// The reduced (nu+1) x (nu+1) problem of Section 5.1 is similar to a
// symmetric matrix (see solvers/reduced_solver.cpp for the scaling), so a
// Jacobi sweep gives all its eigenvalues and orthonormal eigenvectors to
// full accuracy — exactly the "standard solver" the paper prescribes for the
// reduced problem.
#pragma once

#include <vector>

#include "linalg/dense_matrix.hpp"

namespace qs::linalg {

/// Full eigendecomposition A = V diag(w) V^T of a symmetric matrix.
struct SymmetricEigen {
  std::vector<double> values;  ///< Eigenvalues in descending order.
  DenseMatrix vectors;         ///< Column j is the eigenvector of values[j].
};

/// Options for the Jacobi iteration.
struct JacobiOptions {
  double tolerance = 1e-14;      ///< Off-diagonal Frobenius norm target
                                 ///< relative to the matrix norm.
  unsigned max_sweeps = 64;      ///< Hard cap on full sweeps.
};

/// Computes all eigenpairs of the symmetric matrix `a`.
///
/// Requires `a` square and symmetric to ~1e-12; throws precondition_error
/// otherwise, and std::runtime_error if convergence is not reached within
/// max_sweeps (which does not happen for well-scaled inputs).
SymmetricEigen jacobi_eigen(const DenseMatrix& a, const JacobiOptions& opts = {});

}  // namespace qs::linalg
