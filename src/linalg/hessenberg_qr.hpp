// Eigenvalues of small general real matrices via Hessenberg reduction and
// the shifted QR iteration.
//
// Needed as the "standard solver" substrate for reduced problems whose
// similarity-to-symmetric scaling is unavailable (e.g. generalized mutation
// processes where the reduced matrix loses reversibility), and for verifying
// the spectral claims of Section 2 (eigenvalues (1-2p)^k of Q) on explicit
// matrices.
#pragma once

#include <complex>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace qs::linalg {

/// Reduces `a` to upper Hessenberg form by Householder similarity
/// transformations. Returns H with H = P^T A P for an orthogonal P
/// (P itself is not accumulated; eigenvalues are preserved).
DenseMatrix to_hessenberg(const DenseMatrix& a);

/// All eigenvalues of the square real matrix `a` (complex in general),
/// unordered. Throws std::runtime_error if the QR iteration fails to
/// converge (practically unobservable for small well-scaled inputs).
std::vector<std::complex<double>> eigenvalues(const DenseMatrix& a);

/// Spectral radius-achieving real dominant eigenvalue of `a`, assuming the
/// Perron-Frobenius setting (unique real eigenvalue of maximal modulus).
/// Throws std::runtime_error if the maximal-modulus eigenvalue has a
/// significant imaginary part.
double dominant_real_eigenvalue(const DenseMatrix& a);

}  // namespace qs::linalg
