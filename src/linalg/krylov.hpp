// Matrix-free Krylov solvers for symmetric systems.
//
// The paper's Section 3 derives a Theta(N log2 N) shift-and-invert product
// for Q alone and names the analogous solver for W = Q F - mu I "one of the
// topics of our current work".  These solvers provide that building block:
// conjugate gradients for positive definite shifts and MINRES for the
// indefinite shifts that arise when mu sits inside the spectrum (the
// interesting case for inverse iteration towards the dominant eigenpair).
// Both are matrix-free — the operator and the optional preconditioner enter
// as callbacks, so the Fmmp product (and the FWHT-based Q^{-1}
// preconditioner) plug in directly.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace qs::core {
class Workspace;
}  // namespace qs::core

namespace qs::linalg {

/// y = A x callback; x and y never alias and have the system dimension.
using ApplyFn = std::function<void(std::span<const double> x, std::span<double> y)>;

/// Options shared by the Krylov solvers.
struct KrylovOptions {
  double tolerance = 1e-12;    ///< Relative residual ||b - A x|| / ||b|| target.
  unsigned max_iterations = 10000;
  core::Workspace* workspace = nullptr;  ///< Optional scratch arena for the
                                         ///< solver temporaries (krylov*
                                         ///< slots); null allocates locally.
};

/// Outcome of a Krylov solve.
struct KrylovResult {
  unsigned iterations = 0;
  double relative_residual = 0.0;  ///< Recurrence residual at exit.
  bool converged = false;
};

/// Preconditioned conjugate gradients for symmetric positive definite A.
/// Solves A x = b starting from x (overwritten with the solution).
/// `preconditioner`, if given, applies an SPD approximation of A^{-1}.
/// Requires matching dimensions; behaviour is undefined (divergence, not
/// UB in the language sense) if A is not SPD — use minres() then.
KrylovResult conjugate_gradient(const ApplyFn& apply, std::span<const double> b,
                                std::span<double> x,
                                const KrylovOptions& options = {},
                                const ApplyFn& preconditioner = nullptr);

/// MINRES for symmetric (possibly indefinite) A: minimises ||b - A x||_2
/// over the Krylov space. Solves A x = b starting from x (overwritten).
KrylovResult minres(const ApplyFn& apply, std::span<const double> b,
                    std::span<double> x, const KrylovOptions& options = {});

}  // namespace qs::linalg
