#include "linalg/dense_matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "support/contracts.hpp"

namespace qs::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void DenseMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  require(x.size() == cols_ && y.size() == rows_, "DenseMatrix::multiply: dimension mismatch");
  require(x.data() != y.data(), "DenseMatrix::multiply: x and y must not alias");
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    const double* a = &data_[i * cols_];
    for (std::size_t j = 0; j < cols_; ++j) acc += a[j] * x[j];
    y[i] = acc;
  }
}

void DenseMatrix::multiply_transposed(std::span<const double> x, std::span<double> y) const {
  require(x.size() == rows_ && y.size() == cols_,
          "DenseMatrix::multiply_transposed: dimension mismatch");
  require(x.data() != y.data(), "DenseMatrix::multiply_transposed: x and y must not alias");
  for (std::size_t j = 0; j < cols_; ++j) y[j] = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = &data_[i * cols_];
    const double xi = x[i];
    for (std::size_t j = 0; j < cols_; ++j) y[j] += a[j] * xi;
  }
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  require(cols_ == other.rows_, "DenseMatrix::multiply: inner dimension mismatch");
  DenseMatrix c(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        c(i, j) += aik * other(k, j);
      }
    }
  }
  return c;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

double DenseMatrix::frobenius_distance(const DenseMatrix& other) const {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "frobenius_distance: shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double DenseMatrix::max_abs_distance(const DenseMatrix& other) const {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "max_abs_distance: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

bool DenseMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i + 1; j < cols_; ++j) {
      if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

double DenseMatrix::max_column_sum_deviation() const {
  double worst = 0.0;
  for (std::size_t j = 0; j < cols_; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) s += (*this)(i, j);
    worst = std::max(worst, std::abs(s - 1.0));
  }
  return worst;
}

LuFactorization::LuFactorization(const DenseMatrix& a) : lu_(a), pivot_(a.rows()) {
  require(a.rows() == a.cols(), "LuFactorization: matrix must be square");
  const std::size_t n = lu_.rows();
  for (std::size_t i = 0; i < n; ++i) pivot_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest |entry| of column k to the diagonal.
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best == 0.0) {
      throw std::runtime_error("LuFactorization: matrix is singular");
    }
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
      std::swap(pivot_[k], pivot_[p]);
      pivot_sign_ = -pivot_sign_;
    }
    const double inv = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      lu_(i, k) *= inv;
      const double lik = lu_(i, k);
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= lik * lu_(k, j);
    }
  }
}

void LuFactorization::solve(std::span<double> b) const {
  const std::size_t n = lu_.rows();
  require(b.size() == n, "LuFactorization::solve: dimension mismatch");
  // Apply the row permutation.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = b[pivot_[i]];
  // Forward substitution with unit lower triangle.
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) y[i] -= lu_(i, j) * y[j];
  }
  // Backward substitution with the upper triangle.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t j = ii + 1; j < n; ++j) y[ii] -= lu_(ii, j) * y[j];
    y[ii] /= lu_(ii, ii);
  }
  for (std::size_t i = 0; i < n; ++i) b[i] = y[i];
}

double LuFactorization::determinant() const {
  double d = static_cast<double>(pivot_sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

}  // namespace qs::linalg
