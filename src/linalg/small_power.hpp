// Dominant eigenpair solvers for small dense matrices.
//
// These are the reference solvers against which the large implicit solvers
// are cross-validated, and the backends of the reduced (nu+1) x (nu+1)
// problems: power iteration (mirrors the large solver's structure) and
// inverse iteration (refines an eigenvalue estimate from hessenberg_qr or
// jacobi_eigen into an eigenvector).
#pragma once

#include <span>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace qs::linalg {

/// Result of a dominant-eigenpair computation.
struct DominantEigenpair {
  double value = 0.0;           ///< Dominant eigenvalue estimate.
  std::vector<double> vector;   ///< Eigenvector, 1-norm normalised.
  unsigned iterations = 0;      ///< Iterations actually performed.
  double residual = 0.0;        ///< ||A x - lambda x||_2 at exit.
  bool converged = false;
};

/// Options shared by the small iterative solvers.
struct SmallSolveOptions {
  double tolerance = 1e-14;    ///< Convergence threshold on the relative
                               ///< residual ||Ax - lambda x||_2 / |lambda|.
  unsigned max_iterations = 100000;
  double shift = 0.0;          ///< Spectral shift applied as A - shift*I.
};

/// Power iteration for the dominant eigenpair of a small dense matrix with
/// nonnegative dominant eigenvector (Perron-Frobenius setting).  `start` may
/// be empty, in which case the uniform vector is used.
DominantEigenpair power_iteration(const DenseMatrix& a,
                                  std::span<const double> start = {},
                                  const SmallSolveOptions& opts = {});

/// Inverse iteration around the estimate `lambda`: repeatedly solves
/// (A - lambda I) x_{k+1} = x_k.  Converges in a handful of iterations when
/// lambda approximates an eigenvalue well; returns the refined eigenpair.
DominantEigenpair inverse_iteration(const DenseMatrix& a, double lambda,
                                    const SmallSolveOptions& opts = {});

}  // namespace qs::linalg
