// Dense vector kernels shared by all solvers.
//
// The quasispecies concentration vectors have length N = 2^nu (up to
// hundreds of millions of entries), so these kernels are written as simple
// contiguous loops the compiler can vectorise, with optional parallel
// variants living in the parallel engine.
#pragma once

#include <cstddef>
#include <span>

namespace qs::linalg {

/// y += alpha * x. Requires x.size() == y.size().
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scale(std::span<double> x, double alpha);

/// Euclidean inner product <x, y>. Requires x.size() == y.size().
double dot(std::span<const double> x, std::span<const double> y);

/// 1-norm: sum of |x_i|.
double norm1(std::span<const double> x);

/// 2-norm.
double norm2(std::span<const double> x);

/// max-norm.
double norm_inf(std::span<const double> x);

/// Sum of entries (no absolute values); used for probability normalisation
/// of nonnegative concentration vectors.
double sum(std::span<const double> x);

/// Scales x so that its 1-norm becomes 1. Requires norm1(x) > 0.
/// Returns the original 1-norm.
double normalize1(std::span<double> x);

/// Scales x so that its 2-norm becomes 1. Requires norm2(x) > 0.
/// Returns the original 2-norm.
double normalize2(std::span<double> x);

/// ||x - y||_inf, the maximum absolute componentwise difference.
double max_abs_diff(std::span<const double> x, std::span<const double> y);

/// z = x (plain copy with dimension check).
void copy(std::span<const double> x, std::span<double> z);

/// Componentwise product: y_i *= d_i. Used for diagonal (fitness) scaling.
void hadamard_scale(std::span<double> y, std::span<const double> d);

}  // namespace qs::linalg
