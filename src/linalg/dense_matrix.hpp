// Small dense matrices (row-major) with the factorisations the reduced
// solvers need.
//
// The only dense matrices in this library are genuinely small: the explicit
// mutation matrix Q for nu <= ~13 (used as the Smvp baseline and in tests)
// and the (nu+1) x (nu+1) reduced matrices of Section 5.1.  The code
// therefore optimises for clarity over blocking.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace qs::linalg {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows x cols matrix, zero initialised.
  DenseMatrix(std::size_t rows, std::size_t cols);

  /// Square identity.
  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) { return data_[i * cols_ + j]; }
  double operator()(std::size_t i, std::size_t j) const { return data_[i * cols_ + j]; }

  /// Contiguous row-major storage.
  std::span<const double> data() const { return data_; }
  std::span<double> data() { return data_; }

  /// Row i as a span.
  std::span<const double> row(std::size_t i) const {
    return std::span<const double>(data_).subspan(i * cols_, cols_);
  }

  /// y = A * x. Requires x.size() == cols, y.size() == rows, and y != x.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y = A^T * x.
  void multiply_transposed(std::span<const double> x, std::span<double> y) const;

  /// C = A * B.
  DenseMatrix multiply(const DenseMatrix& other) const;

  /// A^T.
  DenseMatrix transposed() const;

  /// Frobenius norm of (A - B). Requires matching shapes.
  double frobenius_distance(const DenseMatrix& other) const;

  /// Maximum absolute entry of (A - B). Requires matching shapes.
  double max_abs_distance(const DenseMatrix& other) const;

  /// True iff |A_ij - A_ji| <= tol for all i, j (square matrices only).
  bool is_symmetric(double tol) const;

  /// Maximum absolute deviation of any column sum from 1 (column
  /// stochasticity check for mutation matrices).
  double max_column_sum_deviation() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorisation with partial pivoting of a square matrix.
/// Used by inverse iteration on the small reduced problems.
class LuFactorization {
 public:
  /// Factorises A (copied). Throws precondition_error if A is not square and
  /// std::runtime_error if A is numerically singular.
  explicit LuFactorization(const DenseMatrix& a);

  std::size_t dimension() const { return lu_.rows(); }

  /// Solves A x = b in place: b is overwritten with x.
  void solve(std::span<double> b) const;

  /// Determinant of A (sign included).
  double determinant() const;

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> pivot_;
  int pivot_sign_ = 1;
};

}  // namespace qs::linalg
