// Zero-overhead tracing: RAII spans and monotonic counters on per-thread
// fixed-capacity ring buffers.
//
// Design constraints, in order:
//
//   1. *Compile-time gate.*  The whole layer sits behind QS_ENABLE_TRACING
//      (a CMake option, OFF by default).  When OFF every macro below
//      expands to `((void)0)` — argument expressions are not evaluated, no
//      code is emitted, and the hot paths are byte-identical to a build
//      that never heard of tracing.
//   2. *Zero hot-path allocation when ON.*  Events are PODs written into a
//      fixed-capacity per-thread ring (one heap allocation per thread, at
//      its first event; the rings deliberately outlive their threads so an
//      exporter can run after a thread pool wound down).  Names are static
//      C strings; counters live in a fixed per-thread slot table.  The
//      alloc-guard test asserts a solver iteration records spans without
//      moving the allocation counter.
//   3. *Cheap when runtime-disabled.*  A compiled-in but disabled span
//      site costs one relaxed atomic load and a branch (measured by
//      bench/perf_smoke.cpp, asserted < 2% of a matvec).
//
// A span records wall time AND thread-CPU time (support/timer.hpp clocks):
// wall >> cpu inside an engine worker span is barrier/scheduling wait,
// wall ~ cpu is compute.  Exporters: obs/chrome_trace.hpp (Perfetto /
// chrome://tracing) and obs/metrics.hpp (aggregate JSON/CSV snapshot).
//
// Concurrency contract: recording is thread-local and lock-free; the
// snapshot/reset/export calls lock only the thread registry and must run
// at quiescence (no engine dispatch in flight), which is how the CLIs and
// tests use them.
#pragma once

#include <cstdint>
#include <vector>

#if defined(QS_ENABLE_TRACING) && QS_ENABLE_TRACING
#define QS_TRACING_ON 1
#else
#define QS_TRACING_ON 0
#endif

namespace qs::obs {

/// Span/counter taxonomy; becomes the Chrome trace "cat" field.
enum class Category : std::uint8_t {
  kernel,       ///< butterfly bands, microkernel sweeps
  engine,       ///< dispatch regions, per-worker lanes, reductions
  solver,       ///< iteration driver events, solver cycles
  checkpoint,   ///< checkpoint writes / restores
  autotune,     ///< plan measurement
  distributed,  ///< block-exchange supersteps, allreduces
  facade,       ///< degradation / restart decisions
  app,          ///< CLI-level phases
};

constexpr const char* to_string(Category c) {
  switch (c) {
    case Category::kernel: return "kernel";
    case Category::engine: return "engine";
    case Category::solver: return "solver";
    case Category::checkpoint: return "checkpoint";
    case Category::autotune: return "autotune";
    case Category::distributed: return "distributed";
    case Category::facade: return "facade";
    case Category::app: return "app";
  }
  return "unknown";
}

/// One exported event.  `instant` events carry `value` and no duration;
/// spans carry wall duration plus the thread-CPU time spent inside.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t cpu_ns = 0;
  std::uint64_t trace_id = 0;  ///< request-scoped correlation id (0 = none)
  std::int64_t arg = -1;      ///< integer payload (band, lane, iteration…)
  double value = 0.0;         ///< instant payload (residual, seconds…)
  std::uint32_t tid = 0;      ///< dense thread id assigned at registration
  Category category = Category::app;
  bool instant = false;
};

/// Request-scoped trace context.  A trace id is minted once per request
/// (qs_client) or per batch (SolverService) and stamped on every span the
/// request touches, across threads, processes, and ranks; one Chrome trace
/// filtered by the id shows the request end-to-end.
struct TraceContext {
  std::uint64_t trace_id = 0;
};

/// Mints a process-unique, collision-resistant 64-bit trace id.  Always
/// compiled (the id travels in protocol frames even in span-less builds).
std::uint64_t mint_trace_id();

/// Spans imported from remote ranks (obs::import_spans) are parked on
/// synthetic thread ids so the exporter can render one track per rank:
/// tid = kRankTidBase + rank * kRankTidStride + remote tid.
inline constexpr std::uint32_t kRankTidBase = 4096;
inline constexpr std::uint32_t kRankTidStride = 64;

/// Aggregated counter total (summed across threads, merged by name).
struct CounterTotal {
  const char* name = nullptr;
  std::uint64_t value = 0;
};

/// True when the library was built with QS_ENABLE_TRACING=ON.
constexpr bool compiled_in() { return QS_TRACING_ON != 0; }

#if QS_TRACING_ON

/// Runtime master switch (off by default even in traced builds).
void set_enabled(bool on);
bool enabled();

/// Adds `delta` to the calling thread's slot for `name` (a static string).
void counter_add(const char* name, std::uint64_t delta = 1);

/// Records a zero-duration event with a double payload.
void instant(const char* name, Category category, double value = 0.0,
             std::int64_t arg = -1);

/// Clears every thread's ring and counter table (test seam; run quiescent).
void reset();

/// All recorded spans/instants, every thread, sorted by start time.
std::vector<SpanRecord> snapshot_spans();

/// Counter totals summed across threads and merged by name text.
std::vector<CounterTotal> snapshot_counters();

/// Events lost to ring wrap-around since the last reset().
std::uint64_t dropped_spans();

/// Counter increments lost to per-thread slot-table exhaustion since the
/// last reset() (more than kCounterSlots distinct names on one thread).
std::uint64_t dropped_counters();

/// Sets / reads the calling thread's trace context.  Spans and instants
/// recorded while a context is set carry its trace id.
void set_thread_trace(TraceContext context);
TraceContext thread_trace();

/// Process-wide fallback context, used when the calling thread has none.
/// It survives fork(), so rank children and engine workers inherit the
/// request id without per-thread plumbing.
void set_process_trace(TraceContext context);

/// The context new spans record under: the thread's, else the process's.
TraceContext current_trace();

/// Records a span with explicit timing, for stitching events whose start
/// was observed elsewhere (e.g. a request span starting at the client's
/// send timestamp — CLOCK_MONOTONIC is shared across processes on a host).
void span_event(const char* name, Category category, std::uint64_t start_ns,
                std::uint64_t dur_ns, std::uint64_t trace_id,
                std::int64_t arg = -1);

/// Adds spans gathered from another rank/process to this process's
/// snapshot, offsetting each record's tid by `tid_base` (see kRankTidBase).
/// Cleared by reset(); included (sorted) in snapshot_spans().
void import_spans(const std::vector<SpanRecord>& spans, std::uint32_t tid_base);

/// RAII span: times the enclosing scope on the wall and thread-CPU clocks.
/// Capture-by-value of the construction-time state keeps the destructor a
/// couple of loads plus two clock reads.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, Category category, std::int64_t arg = -1);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_;
  std::uint64_t cpu_start_ns_;
  std::uint64_t trace_id_;
  std::int64_t arg_;
  Category category_;
  bool active_;
};

/// RAII counter: adds the scope's elapsed wall nanoseconds to `name`
/// (e.g. barrier wait time — a duration total, not a span per wait).
class ScopedCounterNs {
 public:
  explicit ScopedCounterNs(const char* name);
  ~ScopedCounterNs();
  ScopedCounterNs(const ScopedCounterNs&) = delete;
  ScopedCounterNs& operator=(const ScopedCounterNs&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_;
  bool active_;
};

/// RAII trace context: installs `context` on the calling thread for the
/// scope, restoring the previous context on exit.
class TraceScope {
 public:
  explicit TraceScope(TraceContext context) : previous_(thread_trace()) {
    set_thread_trace(context);
  }
  ~TraceScope() { set_thread_trace(previous_); }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext previous_;
};

#else  // !QS_TRACING_ON — the whole API collapses to nothing.

inline void set_enabled(bool) {}
inline bool enabled() { return false; }
inline void counter_add(const char*, std::uint64_t = 1) {}
inline void instant(const char*, Category, double = 0.0, std::int64_t = -1) {}
inline void reset() {}
inline std::vector<SpanRecord> snapshot_spans() { return {}; }
inline std::vector<CounterTotal> snapshot_counters() { return {}; }
inline std::uint64_t dropped_spans() { return 0; }
inline std::uint64_t dropped_counters() { return 0; }
inline void set_thread_trace(TraceContext) {}
inline TraceContext thread_trace() { return {}; }
inline void set_process_trace(TraceContext) {}
inline TraceContext current_trace() { return {}; }
inline void span_event(const char*, Category, std::uint64_t, std::uint64_t,
                       std::uint64_t, std::int64_t = -1) {}
inline void import_spans(const std::vector<SpanRecord>&, std::uint32_t) {}

class ScopedSpan {
 public:
  ScopedSpan(const char*, Category, std::int64_t = -1) {}
};

class ScopedCounterNs {
 public:
  explicit ScopedCounterNs(const char*) {}
};

class TraceScope {
 public:
  explicit TraceScope(TraceContext) {}
};

#endif  // QS_TRACING_ON

}  // namespace qs::obs

// Call-site macros.  Use these (not the classes) in library code: when the
// build gate is off they expand to `((void)0)` and their arguments are
// never evaluated.
#if QS_TRACING_ON
#define QS_OBS_CONCAT2(a, b) a##b
#define QS_OBS_CONCAT(a, b) QS_OBS_CONCAT2(a, b)
#define QS_TRACE_SPAN(name, category) \
  ::qs::obs::ScopedSpan QS_OBS_CONCAT(qs_obs_span_, __LINE__)( \
      name, ::qs::obs::Category::category)
#define QS_TRACE_SPAN_ARG(name, category, arg) \
  ::qs::obs::ScopedSpan QS_OBS_CONCAT(qs_obs_span_, __LINE__)( \
      name, ::qs::obs::Category::category, static_cast<std::int64_t>(arg))
#define QS_TRACE_INSTANT(name, category, value) \
  ::qs::obs::instant(name, ::qs::obs::Category::category, value)
#define QS_TRACE_INSTANT_ARG(name, category, value, arg) \
  ::qs::obs::instant(name, ::qs::obs::Category::category, value, \
                     static_cast<std::int64_t>(arg))
#define QS_TRACE_COUNTER(name, delta) ::qs::obs::counter_add(name, delta)
#define QS_TRACE_COUNTER_SCOPE_NS(name) \
  ::qs::obs::ScopedCounterNs QS_OBS_CONCAT(qs_obs_ctr_, __LINE__)(name)
#else
#define QS_TRACE_SPAN(name, category) ((void)0)
#define QS_TRACE_SPAN_ARG(name, category, arg) ((void)0)
#define QS_TRACE_INSTANT(name, category, value) ((void)0)
#define QS_TRACE_INSTANT_ARG(name, category, value, arg) ((void)0)
#define QS_TRACE_COUNTER(name, delta) ((void)0)
#define QS_TRACE_COUNTER_SCOPE_NS(name) ((void)0)
#endif
