#include "obs/span_wire.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <string>

namespace qs::obs {
namespace {

constexpr std::size_t kFieldsPerSpan = 9;

inline double from_u64(std::uint64_t v) { return std::bit_cast<double>(v); }
inline std::uint64_t to_u64(double v) { return std::bit_cast<std::uint64_t>(v); }
inline double from_i64(std::int64_t v) { return std::bit_cast<double>(v); }
inline std::int64_t to_i64(double v) { return std::bit_cast<std::int64_t>(v); }

/// Exact small-integer round trip through a double lane (counts, indices).
inline bool read_size(double v, std::size_t limit, std::size_t& out) {
  if (!(v >= 0.0) || v != static_cast<double>(static_cast<std::size_t>(v))) {
    return false;
  }
  out = static_cast<std::size_t>(v);
  return out <= limit;
}

// Interning arena: deque gives stable storage, the map deduplicates.
std::mutex g_intern_mutex;
std::deque<std::string>& intern_storage() {
  static std::deque<std::string> storage;
  return storage;
}

}  // namespace

const char* intern_span_name(std::string_view name) {
  std::lock_guard lock(g_intern_mutex);
  static std::map<std::string, const char*, std::less<>> index;
  if (const auto it = index.find(name); it != index.end()) return it->second;
  intern_storage().emplace_back(name);
  const char* stable = intern_storage().back().c_str();
  index.emplace(std::string(name), stable);
  return stable;
}

std::vector<double> pack_spans(const std::vector<SpanRecord>& spans) {
  // Deduplicate names preserving first-use order.
  std::map<const char*, std::size_t> name_index;
  std::vector<const char*> names;
  for (const SpanRecord& span : spans) {
    const char* name = span.name != nullptr ? span.name : "";
    if (name_index.emplace(name, names.size()).second) names.push_back(name);
  }
  std::vector<double> out;
  out.reserve(2 + kFieldsPerSpan * spans.size() + 2 * names.size());
  out.push_back(static_cast<double>(spans.size()));
  for (const SpanRecord& span : spans) {
    const char* name = span.name != nullptr ? span.name : "";
    out.push_back(static_cast<double>(name_index.at(name)));
    out.push_back(static_cast<double>(static_cast<unsigned>(span.category) * 2 +
                                      (span.instant ? 1 : 0)));
    out.push_back(static_cast<double>(span.tid));
    out.push_back(from_u64(span.start_ns));
    out.push_back(from_u64(span.dur_ns));
    out.push_back(from_u64(span.cpu_ns));
    out.push_back(from_u64(span.trace_id));
    out.push_back(from_i64(span.arg));
    out.push_back(span.value);
  }
  out.push_back(static_cast<double>(names.size()));
  for (const char* name : names) {
    const std::size_t len = std::strlen(name);
    out.push_back(static_cast<double>(len));
    const std::size_t words = (len + 7) / 8;
    for (std::size_t w = 0; w < words; ++w) {
      char chunk[8] = {};
      const std::size_t take = std::min<std::size_t>(8, len - w * 8);
      std::memcpy(chunk, name + w * 8, take);
      out.push_back(std::bit_cast<double>(chunk));
    }
  }
  return out;
}

bool unpack_spans(std::span<const double> buffer,
                  std::vector<SpanRecord>& out) {
  std::size_t cursor = 0;
  const auto take = [&](double& v) {
    if (cursor >= buffer.size()) return false;
    v = buffer[cursor++];
    return true;
  };
  double header = 0.0;
  std::size_t span_count = 0;
  if (!take(header) || !read_size(header, (buffer.size() / kFieldsPerSpan) + 1,
                                  span_count)) {
    return false;
  }
  if (1 + kFieldsPerSpan * span_count > buffer.size()) return false;

  struct RawSpan {
    std::size_t name_index;
    SpanRecord record;
  };
  std::vector<RawSpan> raw;
  raw.reserve(span_count);
  for (std::size_t s = 0; s < span_count; ++s) {
    RawSpan r;
    double name_field = 0.0, flags = 0.0, tid = 0.0;
    double start = 0.0, dur = 0.0, cpu = 0.0, trace = 0.0, arg = 0.0;
    if (!take(name_field) || !take(flags) || !take(tid) || !take(start) ||
        !take(dur) || !take(cpu) || !take(trace) || !take(arg) ||
        !take(r.record.value)) {
      return false;
    }
    std::size_t flag_bits = 0, tid_value = 0;
    if (!read_size(name_field, buffer.size(), r.name_index) ||
        !read_size(flags, 2 * 256, flag_bits) ||
        !read_size(tid, 1u << 24, tid_value)) {
      return false;
    }
    r.record.category = static_cast<Category>(flag_bits / 2);
    r.record.instant = (flag_bits % 2) != 0;
    r.record.tid = static_cast<std::uint32_t>(tid_value);
    r.record.start_ns = to_u64(start);
    r.record.dur_ns = to_u64(dur);
    r.record.cpu_ns = to_u64(cpu);
    r.record.trace_id = to_u64(trace);
    r.record.arg = to_i64(arg);
    raw.push_back(r);
  }

  double names_field = 0.0;
  std::size_t name_count = 0;
  if (!take(names_field) || !read_size(names_field, buffer.size(), name_count)) {
    return false;
  }
  std::vector<const char*> names;
  names.reserve(name_count);
  for (std::size_t n = 0; n < name_count; ++n) {
    double len_field = 0.0;
    std::size_t len = 0;
    if (!take(len_field) ||
        !read_size(len_field, 8 * (buffer.size() - cursor), len)) {
      return false;
    }
    const std::size_t words = (len + 7) / 8;
    if (cursor + words > buffer.size()) return false;
    std::string text(len, '\0');
    for (std::size_t w = 0; w < words; ++w) {
      const auto chunk = std::bit_cast<std::array<char, 8>>(buffer[cursor + w]);
      const std::size_t put = std::min<std::size_t>(8, len - w * 8);
      std::memcpy(text.data() + w * 8, chunk.data(), put);
    }
    cursor += words;
    names.push_back(intern_span_name(text));
  }

  for (RawSpan& r : raw) {
    if (r.name_index >= names.size()) return false;
    r.record.name = names[r.name_index];
  }
  for (const RawSpan& r : raw) out.push_back(r.record);
  return true;
}

}  // namespace qs::obs
