// Chrome trace-event JSON exporter for the obs span rings.
//
// Writes the "JSON object format" of the Trace Event spec — a top-level
// object with a `traceEvents` array — which loads directly in Perfetto
// (ui.perfetto.dev, drag-and-drop) and chrome://tracing.  Spans become
// complete ("X") events with wall microsecond timestamps relative to the
// first event, thread-CPU microseconds in args; instants become "i"
// events; counter totals become one trailing "C" event per counter.
//
// Always compiled: in a build without QS_ENABLE_TRACING the snapshot is
// empty and the exporter emits a valid trace with zero events plus a
// metadata note, so `qs_solve --trace-json` degrades loudly, not
// confusingly.  See docs/tracing.md for the loading walkthrough.
#pragma once

#include <iosfwd>
#include <string>

namespace qs::obs {

/// Serialises the current span/counter snapshot as Chrome trace JSON.
void write_chrome_trace(std::ostream& out);

/// Convenience: opens `path`, writes the trace, returns false (with no
/// throw) when the file could not be opened.
bool write_chrome_trace_file(const std::string& path);

}  // namespace qs::obs
