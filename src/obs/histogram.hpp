// Always-compiled latency/ratio histograms with fixed log-spaced bins.
//
// Unlike the span layer (obs/trace.hpp), which is compile-gated because it
// sits inside kernel inner loops, histograms record *per-request* and
// *per-check* quantities — queue wait, solve duration, cache lookup,
// exchange segments, residual decay — and are cheap enough to keep on in
// every build (one relaxed fetch_add on a per-thread shard; perf_smoke
// pins the record cost below 1% of a mat-vec).
//
// Design:
//   - Fixed registry of kMaxHistograms static slots claimed by name on
//     first use; no heap allocation on record or lookup (alloc-guard safe).
//   - Log-spaced bins, kBinsPerOctave = 4 (bin edge ratio 2^0.25 ~ 1.19),
//     covering 2^-32 .. 2^16 in the recorded unit.  Durations are recorded
//     in seconds (0.23 ns .. 18 h); residual-decay ratios fit the same
//     range.  Out-of-range values clamp to the edge bins.
//   - Lock-free per-thread shards: each thread hashes to one of kShards
//     bins arrays; record() is a relaxed fetch_add plus a CAS max.
//   - snapshot() merges shards into a HistogramSnapshot; snapshots merge
//     across processes/files and answer quantile(q) at bin resolution.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace qs::obs {

/// Merged, immutable view of one histogram (also the cross-rank/file
/// merge unit).  Quantiles are geometric bin midpoints: exact to within
/// one bin width (a factor of 2^(1/kBinsPerOctave)).
struct HistogramSnapshot {
  static constexpr int kBinsPerOctave = 4;
  static constexpr int kMinExponent = -32;  ///< bin 0 floor = 2^-32
  static constexpr int kBins = 192;         ///< spans 48 octaves

  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kBins> bins{};

  /// Lower edge of bin `index` in recorded units.
  static double bin_floor(int index);

  /// Bin index for a value (clamped to [0, kBins)).
  static int bin_index(double value);

  void merge(const HistogramSnapshot& other);

  /// q in [0, 1]; returns 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// Flat summary used by metrics JSON (schema v2) and the STATS text
/// exposition; also what read_metrics_json() reconstructs from disk.
struct HistogramSummary {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// One named histogram.  Thread-safe; record() never allocates.
class Histogram {
 public:
  static constexpr int kShards = 8;

  /// Records one sample.  Non-finite values are dropped; values outside
  /// the bin range clamp to the edge bins (and still count toward sum/max).
  void record(double value);
  void record_ns(std::uint64_t ns) { record(static_cast<double>(ns) * 1e-9); }

  HistogramSnapshot snapshot() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::uint64_t bins[HistogramSnapshot::kBins];
    std::uint64_t count;
    double sum;
    double max;
  };
  Shard shards_[kShards] = {};
};

struct NamedHistogram {
  const char* name = nullptr;
  HistogramSnapshot snapshot;
};

/// Looks up (or claims) the registry slot for `name`.  `name` must be a
/// string with static storage duration (a literal).  At most kMaxHistograms
/// distinct names; beyond that a shared overflow histogram is returned so
/// callers never need a null check.
Histogram& histogram(const char* name);

inline constexpr std::size_t kMaxHistograms = 32;

/// Snapshots of every registered histogram with at least one sample,
/// sorted by name.
std::vector<NamedHistogram> snapshot_histograms();

/// Clears every registered histogram's samples (test seam; names and
/// slots persist).
void reset_histograms();

/// Summary (count/sum/max/p50/p90/p99) of one snapshot under `name`.
HistogramSummary summarize(const char* name, const HistogramSnapshot& snapshot);

}  // namespace qs::obs
