// Aggregate solver telemetry: one process-wide recorder that solvers and
// CLIs feed, exported as a JSON or CSV snapshot at the end of a run.
//
// Unlike the span layer (obs/trace.hpp) this is ALWAYS compiled: it sits
// off the hot path (a handful of writes per iteration at most, none
// allocating), so `--metrics=FILE` works in every build.  What changes
// with QS_ENABLE_TRACING is richness — the phase table and counter totals
// are aggregated from the span rings and are empty when tracing is
// compiled out; info/values/residual-tail are populated either way.
//
// Provenance keys (set by PlannedOperator when it resolves its plan):
//   simd_tier        — runtime-dispatched microkernel set (scalar/avx2/…)
//   plan.tile_log2   — autotuned or default blocked-plan tile size
//   plan.chunk_log2  — autotuned or default panel chunk size
// These pin down why two hosts produce different BENCH_fig2.json rows.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace qs::obs {

/// Wall/CPU aggregate of every span sharing a name, across threads.
struct MetricsPhase {
  std::string name;
  std::string category;
  std::uint64_t count = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  /// wall_seconds / run elapsed time.  Phases running on several threads
  /// at once can sum past 1.0 — that is parallelism, not an error.
  double share = 0.0;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::string>> info;
  std::vector<std::pair<std::string, double>> values;
  std::vector<MetricsPhase> phases;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<double> residual_tail;   ///< most recent residuals, oldest first
  std::uint64_t residual_count = 0;    ///< total recorded (>= tail size)
  std::vector<HistogramSummary> histograms;  ///< latency/ratio distributions
  bool tracing_compiled_in = false;
  std::uint64_t dropped_spans = 0;
};

/// Process-wide telemetry sink.  set_info/set_value are for cold call
/// sites (CLI setup, plan resolution); record_residual is cheap enough for
/// the per-iteration driver hook and never allocates.
class MetricsRecorder {
 public:
  static constexpr std::size_t kResidualTail = 128;

  void set_info(const std::string& key, const std::string& value);
  void set_value(const std::string& key, double value);
  void record_residual(double residual);
  void reset();

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::string>> info_;
  std::vector<std::pair<std::string, double>> values_;
  std::array<double, kResidualTail> residual_ring_{};
  std::atomic<std::uint64_t> residual_count_{0};
};

/// The process-wide recorder all layers feed.
MetricsRecorder& metrics();

/// Stable-schema JSON export.  schema_version 2: v1 plus a "histograms"
/// section (count/sum/max/p50/p90/p99 per named histogram).
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot);

/// Loads a write_metrics_json() file back into a snapshot.  Accepts both
/// schema v1 (no histograms — the field stays empty) and v2; phases,
/// counters, info, values, residuals and histogram summaries round-trip.
/// Returns false on malformed input or an unknown schema_version.
bool read_metrics_json(std::istream& in, MetricsSnapshot& out,
                       int* schema_version = nullptr);

/// Ragged CSV export: `kind,name,...` rows (info/value/counter/phase/
/// residual) for quick grep or spreadsheet import.
void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snapshot);

/// Writes snapshot() of the global recorder to `path` as JSON (or CSV when
/// the path ends in ".csv").  Returns false if the file cannot be written.
bool write_metrics_file(const std::string& path);

}  // namespace qs::obs
