// Trace-id minting lives outside the QS_TRACING_ON gate: ids travel in
// protocol frames and correlate client/server logs even in builds where
// no spans are recorded.
#include <atomic>
#include <cstdint>

#include <unistd.h>

#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace qs::obs {
namespace {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::atomic<std::uint64_t> g_mint_sequence{0};

}  // namespace

std::uint64_t mint_trace_id() {
  // Boot-time clock + pid + a process-local sequence: unique within a
  // process by construction, collision-resistant across the processes of
  // one host (distinct pids) and across hosts (distinct clocks).
  const std::uint64_t seq =
      g_mint_sequence.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t id = mix64(monotonic_ns()) ^
                     mix64(static_cast<std::uint64_t>(::getpid()) << 32 | seq);
  if (id == 0) id = 1;  // 0 means "no trace" on the wire
  return id;
}

}  // namespace qs::obs
