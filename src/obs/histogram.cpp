#include "obs/histogram.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>

namespace qs::obs {
namespace {

/// Threads are striped over shards round-robin at first record; one TLS
/// integer shared by every histogram keeps record() to a single indexed
/// access with no per-histogram thread state.
std::atomic<unsigned> g_shard_seq{0};

inline unsigned shard_index() {
  thread_local const unsigned shard =
      g_shard_seq.fetch_add(1, std::memory_order_relaxed) % Histogram::kShards;
  return shard;
}

struct Slot {
  std::atomic<const char*> name{nullptr};
  Histogram hist;
};

// Static registry: claimed-once slots, never freed, no heap.  The mutex
// guards claiming only; lookup is a lock-free scan over published slots.
Slot g_slots[kMaxHistograms];
std::atomic<std::size_t> g_slot_count{0};
std::mutex g_claim_mutex;

// Returned when the registry is full so call sites never branch on null;
// its samples are exported under a recognizable name.
Histogram g_overflow_histogram;
constexpr const char* kOverflowName = "obs.histogram_overflow";

}  // namespace

double HistogramSnapshot::bin_floor(int index) {
  return std::exp2(kMinExponent +
                   static_cast<double>(index) / kBinsPerOctave);
}

int HistogramSnapshot::bin_index(double value) {
  if (!(value > 0.0)) return 0;  // zero/negative clamp to the bottom bin
  const double octaves = std::log2(value) - kMinExponent;
  const int index = static_cast<int>(std::floor(octaves * kBinsPerOctave));
  return std::clamp(index, 0, kBins - 1);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (int i = 0; i < kBins; ++i) bins[i] += other.bins[i];
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (nearest-rank, 1-based), then walk bins.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBins; ++i) {
    cumulative += bins[i];
    if (cumulative >= rank) {
      // Geometric bin midpoint, capped by the exact recorded max.
      const double mid = std::exp2(
          kMinExponent + (static_cast<double>(i) + 0.5) / kBinsPerOctave);
      return max > 0.0 ? std::min(mid, max) : mid;
    }
  }
  return max;
}

void Histogram::record(double value) {
  if (!std::isfinite(value)) return;
  Shard& shard = shards_[shard_index()];
  const int bin = HistogramSnapshot::bin_index(value);
  std::atomic_ref<std::uint64_t>(shard.bins[bin])
      .fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<std::uint64_t>(shard.count)
      .fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<double> sum(shard.sum);
  double expected = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(expected, expected + value,
                                    std::memory_order_relaxed)) {
  }
  std::atomic_ref<double> max(shard.max);
  double seen = max.load(std::memory_order_relaxed);
  while (value > seen && !max.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  for (const Shard& shard : shards_) {
    out.count += std::atomic_ref<const std::uint64_t>(shard.count)
                     .load(std::memory_order_relaxed);
    out.sum += std::atomic_ref<const double>(shard.sum)
                   .load(std::memory_order_relaxed);
    out.max = std::max(out.max, std::atomic_ref<const double>(shard.max)
                                    .load(std::memory_order_relaxed));
    for (int i = 0; i < HistogramSnapshot::kBins; ++i) {
      out.bins[i] += std::atomic_ref<const std::uint64_t>(shard.bins[i])
                         .load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    std::atomic_ref<std::uint64_t>(shard.count).store(
        0, std::memory_order_relaxed);
    std::atomic_ref<double>(shard.sum).store(0.0, std::memory_order_relaxed);
    std::atomic_ref<double>(shard.max).store(0.0, std::memory_order_relaxed);
    for (int i = 0; i < HistogramSnapshot::kBins; ++i) {
      std::atomic_ref<std::uint64_t>(shard.bins[i])
          .store(0, std::memory_order_relaxed);
    }
  }
}

Histogram& histogram(const char* name) {
  const std::size_t published = g_slot_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < published; ++i) {
    const char* slot_name = g_slots[i].name.load(std::memory_order_acquire);
    if (slot_name == name ||
        (slot_name != nullptr && std::strcmp(slot_name, name) == 0)) {
      return g_slots[i].hist;
    }
  }
  std::lock_guard lock(g_claim_mutex);
  const std::size_t n = g_slot_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const char* slot_name = g_slots[i].name.load(std::memory_order_acquire);
    if (slot_name != nullptr && std::strcmp(slot_name, name) == 0) {
      return g_slots[i].hist;
    }
  }
  if (n >= kMaxHistograms) return g_overflow_histogram;
  g_slots[n].name.store(name, std::memory_order_release);
  g_slot_count.store(n + 1, std::memory_order_release);
  return g_slots[n].hist;
}

std::vector<NamedHistogram> snapshot_histograms() {
  std::vector<NamedHistogram> out;
  const std::size_t published = g_slot_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < published; ++i) {
    const char* name = g_slots[i].name.load(std::memory_order_acquire);
    if (name == nullptr) continue;
    HistogramSnapshot snap = g_slots[i].hist.snapshot();
    if (snap.count == 0) continue;
    out.push_back({name, std::move(snap)});
  }
  HistogramSnapshot overflow = g_overflow_histogram.snapshot();
  if (overflow.count > 0) out.push_back({kOverflowName, std::move(overflow)});
  std::sort(out.begin(), out.end(),
            [](const NamedHistogram& a, const NamedHistogram& b) {
              return std::strcmp(a.name, b.name) < 0;
            });
  return out;
}

void reset_histograms() {
  const std::size_t published = g_slot_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < published; ++i) g_slots[i].hist.reset();
  g_overflow_histogram.reset();
}

HistogramSummary summarize(const char* name, const HistogramSnapshot& snapshot) {
  HistogramSummary out;
  out.name = name;
  out.count = snapshot.count;
  out.sum = snapshot.sum;
  out.max = snapshot.max;
  out.p50 = snapshot.p50();
  out.p90 = snapshot.p90();
  out.p99 = snapshot.p99();
  return out;
}

}  // namespace qs::obs
