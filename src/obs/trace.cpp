#include "obs/trace.hpp"

#if QS_TRACING_ON

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>

#include "support/timer.hpp"

namespace qs::obs {
namespace {

/// Ring capacity per thread: 32k events * 64 B = 2 MiB.  A nu = 18 solve
/// records a few spans per iteration; the ring keeps the most recent ~10k
/// iterations — the window that matters for a post-mortem or a Perfetto
/// zoom — and counts what it overwrote.
constexpr std::size_t kSpanCapacity = std::size_t{1} << 15;

/// Distinct counter names per thread.  Names are static strings; the slot
/// scan is pointer-compare first-fit over a handful of live entries.
constexpr std::size_t kCounterSlots = 64;

constexpr std::size_t kMaxThreads = 512;

struct CounterSlot {
  const char* name = nullptr;
  std::uint64_t value = 0;
};

struct ThreadBuffer {
  SpanRecord spans[kSpanCapacity];
  std::uint64_t span_count = 0;  ///< total recorded; ring index = count % cap
  CounterSlot counters[kCounterSlots];
  std::uint64_t dropped_counters = 0;
  std::uint32_t tid = 0;
};

std::atomic<bool> g_enabled{false};

// Trace context: per-thread with a process-wide fallback.  The fallback is
// a plain atomic so it survives fork() into rank children and is visible
// to engine worker threads that never had a context installed.
thread_local TraceContext t_trace_context;
thread_local bool t_trace_context_set = false;
std::atomic<std::uint64_t> g_process_trace_id{0};

// Spans shipped from other ranks/processes (import_spans).  Guarded by the
// registry mutex alongside the thread rings; cleared by reset().
std::vector<SpanRecord> g_imported_spans;

// Registry of every thread's buffer.  Buffers are heap-allocated once per
// thread and deliberately never freed: a thread-pool worker's spans must
// survive the pool's destruction so the CLI can export after the solve.
std::mutex g_registry_mutex;
ThreadBuffer* g_buffers[kMaxThreads] = {};
std::atomic<std::uint32_t> g_thread_count{0};

ThreadBuffer* register_thread() {
  auto* buf = new ThreadBuffer();
  std::lock_guard lock(g_registry_mutex);
  const std::uint32_t index = g_thread_count.load(std::memory_order_relaxed);
  if (index >= kMaxThreads) {
    delete buf;
    return nullptr;  // beyond capacity: this thread records nothing
  }
  buf->tid = index;
  g_buffers[index] = buf;
  g_thread_count.store(index + 1, std::memory_order_release);
  return buf;
}

/// The calling thread's buffer; allocated (once) on first use.
inline ThreadBuffer* tls_buffer() {
  thread_local ThreadBuffer* buf = register_thread();
  return buf;
}

inline void push_span(ThreadBuffer* buf, const SpanRecord& record) {
  buf->spans[buf->span_count % kSpanCapacity] = record;
  ++buf->span_count;
}

}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_thread_trace(TraceContext context) {
  t_trace_context = context;
  t_trace_context_set = context.trace_id != 0;
}

TraceContext thread_trace() {
  return t_trace_context_set ? t_trace_context : TraceContext{};
}

void set_process_trace(TraceContext context) {
  g_process_trace_id.store(context.trace_id, std::memory_order_relaxed);
}

TraceContext current_trace() {
  if (t_trace_context_set) return t_trace_context;
  return {g_process_trace_id.load(std::memory_order_relaxed)};
}

void span_event(const char* name, Category category, std::uint64_t start_ns,
                std::uint64_t dur_ns, std::uint64_t trace_id,
                std::int64_t arg) {
  if (!enabled()) return;
  ThreadBuffer* buf = tls_buffer();
  if (buf == nullptr) return;
  SpanRecord record;
  record.name = name;
  record.start_ns = start_ns;
  record.dur_ns = dur_ns;
  record.trace_id = trace_id;
  record.arg = arg;
  record.tid = buf->tid;
  record.category = category;
  push_span(buf, record);
}

void import_spans(const std::vector<SpanRecord>& spans,
                  std::uint32_t tid_base) {
  std::lock_guard lock(g_registry_mutex);
  g_imported_spans.reserve(g_imported_spans.size() + spans.size());
  for (SpanRecord record : spans) {
    record.tid += tid_base;
    g_imported_spans.push_back(record);
  }
}

void counter_add(const char* name, std::uint64_t delta) {
  if (!enabled()) return;
  ThreadBuffer* buf = tls_buffer();
  if (buf == nullptr) return;
  for (CounterSlot& slot : buf->counters) {
    if (slot.name == name) {
      slot.value += delta;
      return;
    }
    if (slot.name == nullptr) {
      slot.name = name;
      slot.value = delta;
      return;
    }
  }
  ++buf->dropped_counters;
}

void instant(const char* name, Category category, double value,
             std::int64_t arg) {
  if (!enabled()) return;
  ThreadBuffer* buf = tls_buffer();
  if (buf == nullptr) return;
  SpanRecord record;
  record.name = name;
  record.start_ns = monotonic_ns();
  record.trace_id = current_trace().trace_id;
  record.arg = arg;
  record.value = value;
  record.tid = buf->tid;
  record.category = category;
  record.instant = true;
  push_span(buf, record);
}

void reset() {
  std::lock_guard lock(g_registry_mutex);
  const std::uint32_t count = g_thread_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < count; ++i) {
    ThreadBuffer* buf = g_buffers[i];
    buf->span_count = 0;
    buf->dropped_counters = 0;
    for (CounterSlot& slot : buf->counters) slot = CounterSlot{};
  }
  g_imported_spans.clear();
}

std::vector<SpanRecord> snapshot_spans() {
  std::vector<SpanRecord> out;
  std::lock_guard lock(g_registry_mutex);
  const std::uint32_t count = g_thread_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < count; ++i) {
    const ThreadBuffer* buf = g_buffers[i];
    const std::uint64_t kept = std::min<std::uint64_t>(buf->span_count, kSpanCapacity);
    for (std::uint64_t e = 0; e < kept; ++e) out.push_back(buf->spans[e]);
  }
  out.insert(out.end(), g_imported_spans.begin(), g_imported_spans.end());
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

std::vector<CounterTotal> snapshot_counters() {
  std::vector<CounterTotal> out;
  std::lock_guard lock(g_registry_mutex);
  const std::uint32_t count = g_thread_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < count; ++i) {
    const ThreadBuffer* buf = g_buffers[i];
    for (const CounterSlot& slot : buf->counters) {
      if (slot.name == nullptr) break;
      bool merged = false;
      // Merge by text, not pointer: the same literal in two translation
      // units may have two addresses.
      for (CounterTotal& total : out) {
        if (std::strcmp(total.name, slot.name) == 0) {
          total.value += slot.value;
          merged = true;
          break;
        }
      }
      if (!merged) out.push_back({slot.name, slot.value});
    }
  }
  std::sort(out.begin(), out.end(), [](const CounterTotal& a, const CounterTotal& b) {
    return std::strcmp(a.name, b.name) < 0;
  });
  return out;
}

std::uint64_t dropped_spans() {
  std::uint64_t dropped = 0;
  std::lock_guard lock(g_registry_mutex);
  const std::uint32_t count = g_thread_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < count; ++i) {
    const ThreadBuffer* buf = g_buffers[i];
    if (buf->span_count > kSpanCapacity) dropped += buf->span_count - kSpanCapacity;
  }
  return dropped;
}

std::uint64_t dropped_counters() {
  std::uint64_t dropped = 0;
  std::lock_guard lock(g_registry_mutex);
  const std::uint32_t count = g_thread_count.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < count; ++i) dropped += g_buffers[i]->dropped_counters;
  return dropped;
}

ScopedSpan::ScopedSpan(const char* name, Category category, std::int64_t arg)
    : name_(name),
      start_ns_(0),
      cpu_start_ns_(0),
      trace_id_(0),
      arg_(arg),
      category_(category),
      active_(enabled()) {
  if (!active_) return;
  start_ns_ = monotonic_ns();
  cpu_start_ns_ = thread_cpu_ns();
  trace_id_ = current_trace().trace_id;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  ThreadBuffer* buf = tls_buffer();
  if (buf == nullptr) return;
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_ns_;
  record.dur_ns = monotonic_ns() - start_ns_;
  record.cpu_ns = thread_cpu_ns() - cpu_start_ns_;
  record.trace_id = trace_id_;
  record.arg = arg_;
  record.tid = buf->tid;
  record.category = category_;
  push_span(buf, record);
}

ScopedCounterNs::ScopedCounterNs(const char* name)
    : name_(name), start_ns_(0), active_(enabled()) {
  if (active_) start_ns_ = monotonic_ns();
}

ScopedCounterNs::~ScopedCounterNs() {
  if (active_) counter_add(name_, monotonic_ns() - start_ns_);
}

}  // namespace qs::obs

#endif  // QS_TRACING_ON
