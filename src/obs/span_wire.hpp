// Wire format for shipping span buffers between ranks over the Exchange
// transport (whose collectives move `double` blocks).  A rank packs its
// SpanRecords — names included, as an inline string table, so the format
// survives any transport, not just fork()'s shared address space — and
// rank 0 unpacks them into obs::import_spans() for the merged timeline.
//
// Layout (all doubles):
//   [0]                 span count S
//   [1 .. 1+9S)         S records x 9 fields (name index, flags, tid,
//                       start/dur/cpu ns, trace id, arg — u64/i64 fields
//                       bit-cast into the double lanes — and value)
//   [1+9S]              name count N
//   then N names        [byte length L][ceil(L/8) doubles of raw bytes]
//
// Always compiled: pack/unpack have no dependency on the recording gate
// (in span-less builds they simply see empty vectors).
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace qs::obs {

/// Packs spans (records + deduplicated name table) into a double buffer.
std::vector<double> pack_spans(const std::vector<SpanRecord>& spans);

/// Unpacks a pack_spans() buffer, appending to `out`.  Names are interned
/// into a process-lifetime arena (SpanRecord::name stays a borrowed
/// pointer).  Returns false — appending nothing — on a malformed buffer.
bool unpack_spans(std::span<const double> buffer, std::vector<SpanRecord>& out);

/// Copies `name` into a process-lifetime arena and returns a stable
/// pointer; repeated calls with equal text return the same pointer.
const char* intern_span_name(std::string_view name);

}  // namespace qs::obs
