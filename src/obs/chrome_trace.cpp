#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <ostream>
#include <vector>

#include "obs/trace.hpp"

namespace qs::obs {
namespace {

/// Span names are static C strings under our control, but escape anyway so
/// a future name with a quote can't produce an unparseable trace.
void write_escaped(std::ostream& out, const char* text) {
  out << '"';
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Trace ids render as fixed-width hex strings: JSON numbers lose u64
/// precision past 2^53, and hex is what one pastes into Perfetto's query.
std::string hex_id(std::uint64_t id) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

/// Microseconds with three decimals: the trace spec's `ts`/`dur` unit.
void write_us(std::ostream& out, std::uint64_t ns) {
  out << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
      << static_cast<char>('0' + (ns / 10) % 10)
      << static_cast<char>('0' + ns % 10);
}

}  // namespace

void write_chrome_trace(std::ostream& out) {
  const std::vector<SpanRecord> spans = snapshot_spans();
  const std::vector<CounterTotal> counters = snapshot_counters();

  // Normalise timestamps to the first event so Perfetto's timeline starts
  // at ~0 instead of hours into the machine's steady-clock epoch.
  std::uint64_t t0 = spans.empty() ? 0 : spans.front().start_ns;
  for (const SpanRecord& s : spans) t0 = std::min(t0, s.start_ns);

  // Distinct tids, not 0..max: imported rank spans sit on sparse synthetic
  // ids at kRankTidBase and above (one track per rank).
  std::vector<std::uint32_t> tids;
  for (const SpanRecord& s : spans) tids.push_back(s.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());

  const auto thread_label = [](std::uint32_t tid) -> std::string {
    if (tid < kRankTidBase) {
      return tid == 0 ? std::string("main") : "worker-" + std::to_string(tid);
    }
    const std::uint32_t rank = (tid - kRankTidBase) / kRankTidStride;
    const std::uint32_t remote = (tid - kRankTidBase) % kRankTidStride;
    std::string label = "rank-" + std::to_string(rank);
    if (remote != 0) label += "/worker-" + std::to_string(remote);
    return label;
  };

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ',';
    first = false;
    out << '\n';
  };

  // Process/thread naming metadata ("M" events).
  sep();
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"quasispecies\"}}";
  for (const std::uint32_t tid : tids) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << thread_label(tid) << "\"}}";
  }

  for (const SpanRecord& s : spans) {
    sep();
    out << "{\"name\":";
    write_escaped(out, s.name);
    out << ",\"cat\":\"" << to_string(s.category) << "\",\"ph\":\""
        << (s.instant ? 'i' : 'X') << "\",\"pid\":1,\"tid\":" << s.tid
        << ",\"ts\":";
    write_us(out, s.start_ns - t0);
    if (s.instant) {
      out << ",\"s\":\"t\",\"args\":{\"value\":" << s.value;
    } else {
      out << ",\"dur\":";
      write_us(out, s.dur_ns);
      out << ",\"args\":{\"cpu_us\":";
      write_us(out, s.cpu_ns);
    }
    if (s.arg >= 0) out << ",\"arg\":" << s.arg;
    if (s.trace_id != 0) out << ",\"trace_id\":\"" << hex_id(s.trace_id) << "\"";
    out << "}}";
  }

  // Counter totals as one trailing "C" event each, stamped after the last
  // span so they read as end-of-run aggregates on the timeline.
  std::uint64_t t_end = 0;
  for (const SpanRecord& s : spans)
    t_end = std::max(t_end, s.start_ns - t0 + s.dur_ns);
  for (const CounterTotal& c : counters) {
    sep();
    out << "{\"name\":";
    write_escaped(out, c.name);
    out << ",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":";
    write_us(out, t_end);
    out << ",\"args\":{\"total\":" << c.value << "}}";
  }

  out << "\n],\"otherData\":{\"tracing_compiled_in\":"
      << (compiled_in() ? "true" : "false")
      << ",\"dropped_spans\":" << dropped_spans()
      << ",\"dropped_counters\":" << dropped_counters()
      << ",\"span_count\":" << spans.size() << "}}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

}  // namespace qs::obs
