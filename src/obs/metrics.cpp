#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <iterator>
#include <limits>
#include <ostream>

#include "obs/trace.hpp"

namespace qs::obs {
namespace {

void write_escaped(std::ostream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// JSON has no NaN/Inf literals; emit null so the file stays parseable.
void write_double(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  const auto flags = out.flags();
  const auto precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << v;
  out.precision(precision);
  out.flags(flags);
}

/// Groups the span snapshot by (name, category) into phase aggregates.
std::vector<MetricsPhase> aggregate_phases() {
  std::vector<MetricsPhase> phases;
  const std::vector<SpanRecord> spans = snapshot_spans();
  std::uint64_t run_start = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t run_end = 0;
  for (const SpanRecord& s : spans) {
    run_start = std::min(run_start, s.start_ns);
    run_end = std::max(run_end, s.start_ns + s.dur_ns);
    if (s.instant) continue;
    const char* category = to_string(s.category);
    MetricsPhase* phase = nullptr;
    for (MetricsPhase& p : phases) {
      if (p.name == s.name && p.category == category) {
        phase = &p;
        break;
      }
    }
    if (phase == nullptr) {
      phases.push_back(MetricsPhase{s.name, category, 0, 0.0, 0.0, 0.0});
      phase = &phases.back();
    }
    ++phase->count;
    phase->wall_seconds += static_cast<double>(s.dur_ns) * 1e-9;
    phase->cpu_seconds += static_cast<double>(s.cpu_ns) * 1e-9;
  }
  const double elapsed =
      run_end > run_start ? static_cast<double>(run_end - run_start) * 1e-9 : 0.0;
  for (MetricsPhase& p : phases) {
    p.share = elapsed > 0.0 ? p.wall_seconds / elapsed : 0.0;
  }
  std::sort(phases.begin(), phases.end(),
            [](const MetricsPhase& a, const MetricsPhase& b) {
              return a.wall_seconds > b.wall_seconds;
            });
  return phases;
}

}  // namespace

void MetricsRecorder::set_info(const std::string& key, const std::string& value) {
  std::lock_guard lock(mutex_);
  for (auto& entry : info_) {
    if (entry.first == key) {
      entry.second = value;
      return;
    }
  }
  info_.emplace_back(key, value);
}

void MetricsRecorder::set_value(const std::string& key, double value) {
  std::lock_guard lock(mutex_);
  for (auto& entry : values_) {
    if (entry.first == key) {
      entry.second = value;
      return;
    }
  }
  values_.emplace_back(key, value);
}

void MetricsRecorder::record_residual(double residual) {
  // Single writer in practice (the iteration driver); the relaxed counter
  // only orders the ring index.  No locks, no allocation — safe inside the
  // alloc-guarded solver loop.
  const std::uint64_t n = residual_count_.fetch_add(1, std::memory_order_relaxed);
  residual_ring_[n % kResidualTail] = residual;
}

void MetricsRecorder::reset() {
  {
    std::lock_guard lock(mutex_);
    info_.clear();
    values_.clear();
    residual_ring_.fill(0.0);
    residual_count_.store(0, std::memory_order_relaxed);
  }
  reset_histograms();
}

MetricsSnapshot MetricsRecorder::snapshot() const {
  MetricsSnapshot out;
  {
    std::lock_guard lock(mutex_);
    out.info = info_;
    out.values = values_;
    out.residual_count = residual_count_.load(std::memory_order_relaxed);
    const std::uint64_t kept =
        std::min<std::uint64_t>(out.residual_count, kResidualTail);
    out.residual_tail.reserve(kept);
    // Oldest retained entry first.
    for (std::uint64_t i = out.residual_count - kept; i < out.residual_count; ++i)
      out.residual_tail.push_back(residual_ring_[i % kResidualTail]);
  }
  out.phases = aggregate_phases();
  for (const CounterTotal& c : snapshot_counters())
    out.counters.emplace_back(c.name, c.value);
  for (const NamedHistogram& h : snapshot_histograms())
    out.histograms.push_back(summarize(h.name, h.snapshot));
  out.tracing_compiled_in = compiled_in();
  out.dropped_spans = dropped_spans();
  return out;
}

MetricsRecorder& metrics() {
  static MetricsRecorder recorder;
  return recorder;
}

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot) {
  out << "{\n  \"schema_version\": 2,\n  \"tracing_compiled_in\": "
      << (snapshot.tracing_compiled_in ? "true" : "false")
      << ",\n  \"dropped_spans\": " << snapshot.dropped_spans << ",\n";

  out << "  \"info\": {";
  for (std::size_t i = 0; i < snapshot.info.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    ";
    write_escaped(out, snapshot.info[i].first);
    out << ": ";
    write_escaped(out, snapshot.info[i].second);
  }
  out << (snapshot.info.empty() ? "}" : "\n  }") << ",\n";

  out << "  \"values\": {";
  for (std::size_t i = 0; i < snapshot.values.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    ";
    write_escaped(out, snapshot.values[i].first);
    out << ": ";
    write_double(out, snapshot.values[i].second);
  }
  out << (snapshot.values.empty() ? "}" : "\n  }") << ",\n";

  out << "  \"residuals\": {\"count\": " << snapshot.residual_count
      << ", \"tail\": [";
  for (std::size_t i = 0; i < snapshot.residual_tail.size(); ++i) {
    if (i != 0) out << ", ";
    write_double(out, snapshot.residual_tail[i]);
  }
  out << "]},\n";

  out << "  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSummary& h = snapshot.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    ";
    write_escaped(out, h.name);
    out << ": {\"count\": " << h.count << ", \"sum\": ";
    write_double(out, h.sum);
    out << ", \"max\": ";
    write_double(out, h.max);
    out << ", \"p50\": ";
    write_double(out, h.p50);
    out << ", \"p90\": ";
    write_double(out, h.p90);
    out << ", \"p99\": ";
    write_double(out, h.p99);
    out << "}";
  }
  out << (snapshot.histograms.empty() ? "}" : "\n  }") << ",\n";

  out << "  \"phases\": [";
  for (std::size_t i = 0; i < snapshot.phases.size(); ++i) {
    const MetricsPhase& p = snapshot.phases[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": ";
    write_escaped(out, p.name);
    out << ", \"category\": ";
    write_escaped(out, p.category);
    out << ", \"count\": " << p.count << ", \"wall_seconds\": ";
    write_double(out, p.wall_seconds);
    out << ", \"cpu_seconds\": ";
    write_double(out, p.cpu_seconds);
    out << ", \"share\": ";
    write_double(out, p.share);
    out << "}";
  }
  out << (snapshot.phases.empty() ? "]" : "\n  ]") << ",\n";

  out << "  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    ";
    write_escaped(out, snapshot.counters[i].first);
    out << ": " << snapshot.counters[i].second;
  }
  out << (snapshot.counters.empty() ? "}" : "\n  }") << "\n}\n";
}

void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snapshot) {
  const auto precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "kind,name,value\n";
  out << "meta,tracing_compiled_in," << (snapshot.tracing_compiled_in ? 1 : 0)
      << "\n";
  out << "meta,dropped_spans," << snapshot.dropped_spans << "\n";
  for (const auto& [key, value] : snapshot.info)
    out << "info," << key << "," << value << "\n";
  for (const auto& [key, value] : snapshot.values)
    out << "value," << key << "," << value << "\n";
  for (const auto& [key, value] : snapshot.counters)
    out << "counter," << key << "," << value << "\n";
  out << "kind,name,category,count,wall_seconds,cpu_seconds,share\n";
  for (const MetricsPhase& p : snapshot.phases)
    out << "phase," << p.name << "," << p.category << "," << p.count << ","
        << p.wall_seconds << "," << p.cpu_seconds << "," << p.share << "\n";
  out << "kind,name,count,sum,max,p50,p90,p99\n";
  for (const HistogramSummary& h : snapshot.histograms)
    out << "histogram," << h.name << "," << h.count << "," << h.sum << ","
        << h.max << "," << h.p50 << "," << h.p90 << "," << h.p99 << "\n";
  out << "kind,index,residual\n";
  const std::uint64_t base =
      snapshot.residual_count - snapshot.residual_tail.size();
  for (std::size_t i = 0; i < snapshot.residual_tail.size(); ++i)
    out << "residual," << base + i << "," << snapshot.residual_tail[i] << "\n";
  out.precision(precision);
}

namespace {

// Minimal JSON reader for files this module wrote: objects, arrays,
// strings, finite numbers, true/false/null (write_double() emits null for
// non-finite values, read back as NaN).  Not a general-purpose parser.
struct JsonValue {
  enum class Kind { null, boolean, number, string, array, object };
  Kind kind = Kind::null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct JsonParser {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (static_cast<std::size_t>(end - p) < len || std::strncmp(p, word, len) != 0)
      return false;
    p += len;
    return true;
  }

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return false;
    ++p;
    out.clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p >= end) return false;
        const char esc = *p++;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (end - p < 4) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p++;
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            c = static_cast<char>(code);  // our writer only emits < 0x20
            break;
          }
          default: return false;
        }
      }
      out.push_back(c);
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (p >= end) return false;
    if (*p == '{') {
      ++p;
      out.kind = JsonValue::Kind::object;
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (p >= end || *p != ':') return false;
        ++p;
        JsonValue value;
        if (!parse_value(value)) return false;
        out.members.emplace_back(std::move(key), std::move(value));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        return false;
      }
    }
    if (*p == '[') {
      ++p;
      out.kind = JsonValue::Kind::array;
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      while (true) {
        JsonValue item;
        if (!parse_value(item)) return false;
        out.items.push_back(std::move(item));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        return false;
      }
    }
    if (*p == '"') {
      out.kind = JsonValue::Kind::string;
      return parse_string(out.text);
    }
    if (literal("true")) {
      out.kind = JsonValue::Kind::boolean;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.kind = JsonValue::Kind::boolean;
      out.boolean = false;
      return true;
    }
    if (literal("null")) {
      out.kind = JsonValue::Kind::null;
      return true;
    }
    char* after = nullptr;
    const double v = std::strtod(p, &after);
    if (after == p || after > end) return false;
    out.kind = JsonValue::Kind::number;
    out.number = v;
    p = after;
    return true;
  }
};

/// Numbers load as themselves; the writer's null (non-finite) loads as NaN.
double as_number(const JsonValue& v) {
  if (v.kind == JsonValue::Kind::number) return v.number;
  return std::numeric_limits<double>::quiet_NaN();
}

std::uint64_t as_count(const JsonValue* v) {
  if (v == nullptr || v->kind != JsonValue::Kind::number || !(v->number >= 0))
    return 0;
  return static_cast<std::uint64_t>(v->number);
}

}  // namespace

bool read_metrics_json(std::istream& in, MetricsSnapshot& out,
                       int* schema_version) {
  std::string text{std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  JsonParser parser{text.data(), text.data() + text.size()};
  JsonValue root;
  if (!parser.parse_value(root)) return false;
  parser.skip_ws();
  if (parser.p != parser.end || root.kind != JsonValue::Kind::object)
    return false;

  const JsonValue* version = root.find("schema_version");
  if (version == nullptr || version->kind != JsonValue::Kind::number)
    return false;
  const int schema = static_cast<int>(version->number);
  if (schema < 1 || schema > 2) return false;
  if (schema_version != nullptr) *schema_version = schema;

  out = MetricsSnapshot{};
  if (const JsonValue* v = root.find("tracing_compiled_in");
      v != nullptr && v->kind == JsonValue::Kind::boolean) {
    out.tracing_compiled_in = v->boolean;
  }
  out.dropped_spans = as_count(root.find("dropped_spans"));

  if (const JsonValue* info = root.find("info");
      info != nullptr && info->kind == JsonValue::Kind::object) {
    for (const auto& [key, value] : info->members) {
      if (value.kind == JsonValue::Kind::string)
        out.info.emplace_back(key, value.text);
    }
  }
  if (const JsonValue* values = root.find("values");
      values != nullptr && values->kind == JsonValue::Kind::object) {
    for (const auto& [key, value] : values->members)
      out.values.emplace_back(key, as_number(value));
  }
  if (const JsonValue* residuals = root.find("residuals");
      residuals != nullptr && residuals->kind == JsonValue::Kind::object) {
    out.residual_count = as_count(residuals->find("count"));
    if (const JsonValue* tail = residuals->find("tail");
        tail != nullptr && tail->kind == JsonValue::Kind::array) {
      for (const JsonValue& item : tail->items)
        out.residual_tail.push_back(as_number(item));
    }
  }
  // v1 files predate the histograms section; leave the field empty there.
  if (const JsonValue* histograms = root.find("histograms");
      histograms != nullptr && histograms->kind == JsonValue::Kind::object) {
    for (const auto& [name, h] : histograms->members) {
      if (h.kind != JsonValue::Kind::object) continue;
      HistogramSummary summary;
      summary.name = name;
      summary.count = as_count(h.find("count"));
      if (const JsonValue* v = h.find("sum")) summary.sum = as_number(*v);
      if (const JsonValue* v = h.find("max")) summary.max = as_number(*v);
      if (const JsonValue* v = h.find("p50")) summary.p50 = as_number(*v);
      if (const JsonValue* v = h.find("p90")) summary.p90 = as_number(*v);
      if (const JsonValue* v = h.find("p99")) summary.p99 = as_number(*v);
      out.histograms.push_back(std::move(summary));
    }
  }
  if (const JsonValue* phases = root.find("phases");
      phases != nullptr && phases->kind == JsonValue::Kind::array) {
    for (const JsonValue& item : phases->items) {
      if (item.kind != JsonValue::Kind::object) continue;
      MetricsPhase phase;
      if (const JsonValue* v = item.find("name");
          v != nullptr && v->kind == JsonValue::Kind::string) {
        phase.name = v->text;
      }
      if (const JsonValue* v = item.find("category");
          v != nullptr && v->kind == JsonValue::Kind::string) {
        phase.category = v->text;
      }
      phase.count = as_count(item.find("count"));
      if (const JsonValue* v = item.find("wall_seconds"))
        phase.wall_seconds = as_number(*v);
      if (const JsonValue* v = item.find("cpu_seconds"))
        phase.cpu_seconds = as_number(*v);
      if (const JsonValue* v = item.find("share")) phase.share = as_number(*v);
      out.phases.push_back(std::move(phase));
    }
  }
  if (const JsonValue* counters = root.find("counters");
      counters != nullptr && counters->kind == JsonValue::Kind::object) {
    for (const auto& [key, value] : counters->members)
      out.counters.emplace_back(key, as_count(&value));
  }
  return true;
}

bool write_metrics_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const MetricsSnapshot snap = metrics().snapshot();
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    write_metrics_csv(out, snap);
  } else {
    write_metrics_json(out, snap);
  }
  return static_cast<bool>(out);
}

}  // namespace qs::obs
