#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <ostream>

#include "obs/trace.hpp"

namespace qs::obs {
namespace {

void write_escaped(std::ostream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// JSON has no NaN/Inf literals; emit null so the file stays parseable.
void write_double(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  const auto flags = out.flags();
  const auto precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << v;
  out.precision(precision);
  out.flags(flags);
}

/// Groups the span snapshot by (name, category) into phase aggregates.
std::vector<MetricsPhase> aggregate_phases() {
  std::vector<MetricsPhase> phases;
  const std::vector<SpanRecord> spans = snapshot_spans();
  std::uint64_t run_start = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t run_end = 0;
  for (const SpanRecord& s : spans) {
    run_start = std::min(run_start, s.start_ns);
    run_end = std::max(run_end, s.start_ns + s.dur_ns);
    if (s.instant) continue;
    const char* category = to_string(s.category);
    MetricsPhase* phase = nullptr;
    for (MetricsPhase& p : phases) {
      if (p.name == s.name && p.category == category) {
        phase = &p;
        break;
      }
    }
    if (phase == nullptr) {
      phases.push_back(MetricsPhase{s.name, category, 0, 0.0, 0.0, 0.0});
      phase = &phases.back();
    }
    ++phase->count;
    phase->wall_seconds += static_cast<double>(s.dur_ns) * 1e-9;
    phase->cpu_seconds += static_cast<double>(s.cpu_ns) * 1e-9;
  }
  const double elapsed =
      run_end > run_start ? static_cast<double>(run_end - run_start) * 1e-9 : 0.0;
  for (MetricsPhase& p : phases) {
    p.share = elapsed > 0.0 ? p.wall_seconds / elapsed : 0.0;
  }
  std::sort(phases.begin(), phases.end(),
            [](const MetricsPhase& a, const MetricsPhase& b) {
              return a.wall_seconds > b.wall_seconds;
            });
  return phases;
}

}  // namespace

void MetricsRecorder::set_info(const std::string& key, const std::string& value) {
  std::lock_guard lock(mutex_);
  for (auto& entry : info_) {
    if (entry.first == key) {
      entry.second = value;
      return;
    }
  }
  info_.emplace_back(key, value);
}

void MetricsRecorder::set_value(const std::string& key, double value) {
  std::lock_guard lock(mutex_);
  for (auto& entry : values_) {
    if (entry.first == key) {
      entry.second = value;
      return;
    }
  }
  values_.emplace_back(key, value);
}

void MetricsRecorder::record_residual(double residual) {
  // Single writer in practice (the iteration driver); the relaxed counter
  // only orders the ring index.  No locks, no allocation — safe inside the
  // alloc-guarded solver loop.
  const std::uint64_t n = residual_count_.fetch_add(1, std::memory_order_relaxed);
  residual_ring_[n % kResidualTail] = residual;
}

void MetricsRecorder::reset() {
  std::lock_guard lock(mutex_);
  info_.clear();
  values_.clear();
  residual_ring_.fill(0.0);
  residual_count_.store(0, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRecorder::snapshot() const {
  MetricsSnapshot out;
  {
    std::lock_guard lock(mutex_);
    out.info = info_;
    out.values = values_;
    out.residual_count = residual_count_.load(std::memory_order_relaxed);
    const std::uint64_t kept =
        std::min<std::uint64_t>(out.residual_count, kResidualTail);
    out.residual_tail.reserve(kept);
    // Oldest retained entry first.
    for (std::uint64_t i = out.residual_count - kept; i < out.residual_count; ++i)
      out.residual_tail.push_back(residual_ring_[i % kResidualTail]);
  }
  out.phases = aggregate_phases();
  for (const CounterTotal& c : snapshot_counters())
    out.counters.emplace_back(c.name, c.value);
  out.tracing_compiled_in = compiled_in();
  out.dropped_spans = dropped_spans();
  return out;
}

MetricsRecorder& metrics() {
  static MetricsRecorder recorder;
  return recorder;
}

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot) {
  out << "{\n  \"schema_version\": 1,\n  \"tracing_compiled_in\": "
      << (snapshot.tracing_compiled_in ? "true" : "false")
      << ",\n  \"dropped_spans\": " << snapshot.dropped_spans << ",\n";

  out << "  \"info\": {";
  for (std::size_t i = 0; i < snapshot.info.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    ";
    write_escaped(out, snapshot.info[i].first);
    out << ": ";
    write_escaped(out, snapshot.info[i].second);
  }
  out << (snapshot.info.empty() ? "}" : "\n  }") << ",\n";

  out << "  \"values\": {";
  for (std::size_t i = 0; i < snapshot.values.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    ";
    write_escaped(out, snapshot.values[i].first);
    out << ": ";
    write_double(out, snapshot.values[i].second);
  }
  out << (snapshot.values.empty() ? "}" : "\n  }") << ",\n";

  out << "  \"residuals\": {\"count\": " << snapshot.residual_count
      << ", \"tail\": [";
  for (std::size_t i = 0; i < snapshot.residual_tail.size(); ++i) {
    if (i != 0) out << ", ";
    write_double(out, snapshot.residual_tail[i]);
  }
  out << "]},\n";

  out << "  \"phases\": [";
  for (std::size_t i = 0; i < snapshot.phases.size(); ++i) {
    const MetricsPhase& p = snapshot.phases[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": ";
    write_escaped(out, p.name);
    out << ", \"category\": ";
    write_escaped(out, p.category);
    out << ", \"count\": " << p.count << ", \"wall_seconds\": ";
    write_double(out, p.wall_seconds);
    out << ", \"cpu_seconds\": ";
    write_double(out, p.cpu_seconds);
    out << ", \"share\": ";
    write_double(out, p.share);
    out << "}";
  }
  out << (snapshot.phases.empty() ? "]" : "\n  ]") << ",\n";

  out << "  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    ";
    write_escaped(out, snapshot.counters[i].first);
    out << ": " << snapshot.counters[i].second;
  }
  out << (snapshot.counters.empty() ? "}" : "\n  }") << "\n}\n";
}

void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snapshot) {
  const auto precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "kind,name,value\n";
  out << "meta,tracing_compiled_in," << (snapshot.tracing_compiled_in ? 1 : 0)
      << "\n";
  out << "meta,dropped_spans," << snapshot.dropped_spans << "\n";
  for (const auto& [key, value] : snapshot.info)
    out << "info," << key << "," << value << "\n";
  for (const auto& [key, value] : snapshot.values)
    out << "value," << key << "," << value << "\n";
  for (const auto& [key, value] : snapshot.counters)
    out << "counter," << key << "," << value << "\n";
  out << "kind,name,category,count,wall_seconds,cpu_seconds,share\n";
  for (const MetricsPhase& p : snapshot.phases)
    out << "phase," << p.name << "," << p.category << "," << p.count << ","
        << p.wall_seconds << "," << p.cpu_seconds << "," << p.share << "\n";
  out << "kind,index,residual\n";
  const std::uint64_t base =
      snapshot.residual_count - snapshot.residual_tail.size();
  for (std::size_t i = 0; i < snapshot.residual_tail.size(); ++i)
    out << "residual," << base + i << "," << snapshot.residual_tail[i] << "\n";
  out.precision(precision);
}

bool write_metrics_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const MetricsSnapshot snap = metrics().snapshot();
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    write_metrics_csv(out, snap);
  } else {
    write_metrics_json(out, snap);
  }
  return static_cast<bool>(out);
}

}  // namespace qs::obs
