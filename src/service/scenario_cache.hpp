// Crash-safe scenario cache: content-hash-keyed LRU over the checksummed
// atomic binary_io format.
//
// A cache entry is the *answer* to one scenario — indexed by protocol.hpp's
// scenario_key hash, verified by its scenario_fingerprint (the canonical
// bytes the key hashes, stored with the entry and required to match
// byte-for-byte on lookup, so a 64-bit key collision is a recompute, never
// a wrong answer): eigenvalue, residual, iteration count, and the
// error-class concentrations, packed into one vector<double> and persisted
// through io::save_vector — which writes to a temporary sibling and
// rename(2)s it into place, so a crash mid-store leaves either the old
// entry or the new one, never a torn file.  Loads go through
// io::load_vector, whose header checks (magic, version, checksum,
// length-vs-file-size) catch truncation and bit rot; a corrupt entry is
// QUARANTINED (renamed to <entry>.bad so the evidence survives for
// inspection), counted, and treated as a miss — the service recomputes and
// overwrites it.  A cache must never turn one bad sector into a wrong
// answer or a crashed daemon.
//
// Layout: an in-memory LRU (bounded entry count) in front of a CacheStorage
// backend.  The disk tier is the crash-safe one — LRU eviction only drops
// the memory copy; a later lookup falls through to disk, so the cache
// survives both eviction and restart.  The CacheStorage interface exists so
// tests can interpose fault injection (throwing stores, corrupting sinks)
// without touching a real filesystem path.
#pragma once

#include <cstdint>
#include <filesystem>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace qs::service {

/// The cached answer for one scenario, plus the canonical scenario
/// fingerprint it answers (protocol.hpp's scenario_fingerprint).  The
/// 64-bit key is only an index; the fingerprint is the equality witness —
/// a lookup that supplies one is served only on byte-exact match, so a
/// hash collision costs a recompute, never a wrong answer.
struct CacheEntry {
  double eigenvalue = 0.0;
  double residual = 0.0;
  std::uint64_t iterations = 0;
  std::vector<double> class_concentrations;
  std::vector<std::uint8_t> fingerprint;
};

/// Counters for telemetry and the fault-injection assertions.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t store_failures = 0;  ///< Backend store threw (cache stayed warm
                                     ///< in memory; answer still served).
  std::uint64_t quarantined = 0;     ///< Corrupt entries renamed aside.
  std::uint64_t evictions = 0;       ///< Memory-tier LRU evictions.
  std::uint64_t collisions = 0;      ///< Key hits whose fingerprint differed
                                     ///< (reported as misses, recomputed).
};

/// Durable tier under the LRU.  Implementations must be safe to call from
/// one thread at a time (ScenarioCache serialises access); they signal
/// failure by throwing — the cache converts store failures into counters
/// and load failures into quarantine-and-miss.
class CacheStorage {
 public:
  virtual ~CacheStorage() = default;

  /// Persists `payload` under `key`, replacing any previous entry.
  virtual void store(std::uint64_t key, const std::vector<double>& payload) = 0;

  /// Returns the payload, or nullopt when no entry exists.  Throws on a
  /// present-but-unreadable entry (corruption) — the cache then calls
  /// quarantine() and treats the key as a miss.
  virtual std::optional<std::vector<double>> load(std::uint64_t key) = 0;

  /// Moves a corrupt entry aside so the next store starts clean.  Must not
  /// throw (best effort).
  virtual void quarantine(std::uint64_t key) noexcept = 0;
};

/// Filesystem backend: one `<hex key>.qsc` file per entry in `directory`,
/// written via io::save_vector (atomic + checksummed).  Quarantine renames
/// to `<hex key>.qsc.bad`.
class FsCacheStorage final : public CacheStorage {
 public:
  /// Creates `directory` (and parents) if absent.
  explicit FsCacheStorage(std::filesystem::path directory);

  void store(std::uint64_t key, const std::vector<double>& payload) override;
  std::optional<std::vector<double>> load(std::uint64_t key) override;
  void quarantine(std::uint64_t key) noexcept override;

  std::filesystem::path entry_path(std::uint64_t key) const;

 private:
  std::filesystem::path directory_;
};

/// Thread-safe LRU + durable backend.  `nullptr` storage runs memory-only
/// (tests, --cache-dir unset).
class ScenarioCache {
 public:
  explicit ScenarioCache(std::size_t max_entries,
                         std::unique_ptr<CacheStorage> storage = nullptr);

  /// Memory LRU first, then the backend (a disk hit is promoted into the
  /// LRU).  A corrupt backend entry is quarantined and reported as a miss.
  /// A non-empty `fingerprint` must match the stored entry's byte-for-byte,
  /// else the hit is a key collision: counted and reported as a miss (the
  /// colliding disk entry is left in place — it is valid for its own
  /// scenario — and simply overwritten by the recompute's store).  An empty
  /// fingerprint skips the check (trusted callers / tests).
  std::optional<CacheEntry> lookup(std::uint64_t key,
                                   const std::vector<std::uint8_t>& fingerprint = {});

  /// Inserts into the LRU and writes through to the backend.  A backend
  /// failure is absorbed (counted in store_failures): the answer was
  /// already computed, so the caller's reply must not fail with it.
  void store(std::uint64_t key, const CacheEntry& entry);

  CacheStats stats() const;
  std::size_t size() const;

 private:
  void touch_locked(std::uint64_t key);
  void insert_locked(std::uint64_t key, CacheEntry entry);

  const std::size_t max_entries_;
  std::unique_ptr<CacheStorage> storage_;

  mutable std::mutex mutex_;
  std::list<std::uint64_t> order_;  // front = most recent
  struct Slot {
    CacheEntry entry;
    std::list<std::uint64_t>::iterator where;
  };
  std::unordered_map<std::uint64_t, Slot> map_;
  CacheStats stats_;
};

/// Packing between CacheEntry and the flat payload binary_io stores:
/// [eigenvalue, residual, iterations, count, Gamma_0..Gamma_count-1,
///  fingerprint_bytes, fingerprint packed 8 bytes per double (zero-padded)].
std::vector<double> pack_cache_entry(const CacheEntry& entry);

/// Throws std::runtime_error on a structurally invalid payload (too short,
/// count mismatch, or a length/count field that is not a finite
/// non-negative in-range integer — doubles read from disk are data, never
/// trusted sizes) — FsCacheStorage surfaces that as corruption.
CacheEntry unpack_cache_entry(const std::vector<double>& payload);

}  // namespace qs::service
