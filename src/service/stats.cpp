#include "service/stats.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "service/protocol.hpp"

namespace qs::service {
namespace {

void append_metric(std::string& out, const std::string& metric, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  out += metric;
  out += ' ';
  out += buf;
  out += '\n';
}

void append_metric(std::string& out, const std::string& metric,
                   std::uint64_t value) {
  out += metric;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::string render_stats_text(const ServiceStatsSnapshot& stats) {
  std::string out;
  out.reserve(2048);
  out += "# qs_serve live stats: one `metric{labels} value` per line\n";
  append_metric(out, "qs_uptime_seconds", stats.uptime_seconds);
  append_metric(out, "qs_connections_total", stats.connections);
  append_metric(out, "qs_completed_total", stats.completed);
  append_metric(out, "qs_queue_depth",
                static_cast<std::uint64_t>(stats.queue_depth));

  append_metric(out, "qs_queue_total{event=\"accepted\"}", stats.queue.accepted);
  append_metric(out, "qs_queue_total{event=\"rejected_overload\"}",
                stats.queue.rejected_overload);
  append_metric(out, "qs_queue_total{event=\"rejected_closed\"}",
                stats.queue.rejected_closed);
  append_metric(out, "qs_queue_total{event=\"expired\"}", stats.queue.expired);
  append_metric(out, "qs_queue_total{event=\"popped\"}", stats.queue.popped);
  append_metric(out, "qs_queue_total{event=\"batches\"}", stats.queue.batches);

  append_metric(out, "qs_cache_total{event=\"hits\"}", stats.cache.hits);
  append_metric(out, "qs_cache_total{event=\"misses\"}", stats.cache.misses);
  append_metric(out, "qs_cache_total{event=\"stores\"}", stats.cache.stores);
  append_metric(out, "qs_cache_total{event=\"store_failures\"}",
                stats.cache.store_failures);
  append_metric(out, "qs_cache_total{event=\"quarantined\"}",
                stats.cache.quarantined);
  append_metric(out, "qs_cache_total{event=\"evictions\"}",
                stats.cache.evictions);
  append_metric(out, "qs_cache_total{event=\"collisions\"}",
                stats.cache.collisions);

  for (std::size_t i = 0; i < stats.request_mix.size(); ++i) {
    const auto kind = static_cast<LandscapeKind>(i + 1);
    append_metric(out,
                  std::string("qs_requests_total{landscape=\"") +
                      to_string(kind) + "\"}",
                  stats.request_mix[i]);
  }

  for (const obs::HistogramSummary& h : stats.histograms) {
    // Durations expose as seconds; the residual-decay distribution is a
    // unitless per-check ratio and gets its own family.
    const bool ratio = h.name.find("residual_decay") != std::string::npos;
    const std::string family = ratio ? "qs_ratio" : "qs_latency_seconds";
    const std::string prefix = family + "{op=\"" + h.name + "\",stat=\"";
    append_metric(out, prefix + "count\"}", h.count);
    append_metric(out, prefix + "sum\"}", h.sum);
    append_metric(out, prefix + "p50\"}", h.p50);
    append_metric(out, prefix + "p90\"}", h.p90);
    append_metric(out, prefix + "p99\"}", h.p99);
    append_metric(out, prefix + "max\"}", h.max);
  }
  return out;
}

std::optional<double> stats_value(const std::string& text,
                                  const std::string& metric) {
  std::size_t at = 0;
  while (at < text.size()) {
    std::size_t eol = text.find('\n', at);
    if (eol == std::string::npos) eol = text.size();
    // `metric value` — exact metric spelling (labels included), one space.
    if (eol - at > metric.size() + 1 &&
        text.compare(at, metric.size(), metric) == 0 &&
        text[at + metric.size()] == ' ') {
      const std::string value = text.substr(at + metric.size() + 1,
                                            eol - at - metric.size() - 1);
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end != value.c_str()) return parsed;
      return std::nullopt;
    }
    at = eol + 1;
  }
  return std::nullopt;
}

}  // namespace qs::service
