#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "analysis/error_classes.hpp"
#include "analysis/sweep.hpp"
#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/signals.hpp"
#include "support/timer.hpp"

namespace qs::service {
namespace {

constexpr double kNsPerMs = 1e6;

core::Landscape build_landscape(const SolveRequest& request) {
  const unsigned nu = request.nu;
  switch (request.landscape) {
    case LandscapeKind::single_peak:
      return core::Landscape::single_peak(nu, request.param0, request.param1);
    case LandscapeKind::linear:
      return core::Landscape::linear(nu, request.param0, request.param1);
    case LandscapeKind::random:
      return core::Landscape::random(nu, request.param0, request.param1,
                                     request.seed);
    case LandscapeKind::flat:
      return core::Landscape::flat(nu, request.param0);
  }
  throw std::runtime_error("unknown landscape kind");
}

SolveReply make_reply(StatusCode status, std::string message = {}) {
  SolveReply reply;
  reply.status = status;
  reply.message = std::move(message);
  return reply;
}

}  // namespace

SolverService::SolverService(const ServiceConfig& config) : config_(config) {
  start_ns_ = monotonic_ns();
  std::unique_ptr<CacheStorage> storage;
  if (!config_.cache_dir.empty()) {
    storage = std::make_unique<FsCacheStorage>(config_.cache_dir);
  }
  if (config_.wrap_cache_storage) {
    storage = config_.wrap_cache_storage(std::move(storage));
  }
  cache_ = std::make_unique<ScenarioCache>(std::max<std::size_t>(1, config_.cache_entries),
                                           std::move(storage));
  queue_ = std::make_unique<Queue>(std::max<std::size_t>(1, config_.queue_capacity));
  const std::size_t workers = std::max<std::size_t>(1, config_.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SolverService::~SolverService() { shutdown(); }

std::future<SolveReply> SolverService::submit(
    const SolveRequest& request, std::shared_ptr<std::atomic<bool>> alive) {
  auto promise = std::make_shared<std::promise<SolveReply>>();
  std::future<SolveReply> future = promise->get_future();

  // Reject before enqueue: a malformed scenario must never occupy a queue
  // slot or reach a worker.
  if (std::string violation = validate(request); !violation.empty()) {
    promise->set_value(make_reply(StatusCode::bad_request, std::move(violation)));
    ++completed_;
    return future;
  }
  // Request mix counts every well-formed submission, shed or admitted —
  // the STATS view of offered (not just served) load per landscape kind.
  const auto kind_index = static_cast<std::size_t>(request.landscape) - 1;
  if (kind_index < request_mix_.size()) {
    request_mix_[kind_index].fetch_add(1, std::memory_order_relaxed);
  }
  if (stopping_.load()) {
    promise->set_value(make_reply(StatusCode::shutting_down, "service draining"));
    ++completed_;
    return future;
  }

  Pending pending;
  pending.request = request;
  pending.key = scenario_key(request);
  pending.fingerprint = scenario_fingerprint(request);
  if (request.deadline_ms != 0) {
    pending.deadline_ns = monotonic_ns() + request.deadline_ms * 1000000ull;
  }
  pending.alive = std::move(alive);
  pending.promise = promise;

  const std::uint64_t deadline_ns = pending.deadline_ns;
  const core::Admission admission =
      queue_->push(std::move(pending), batch_key(request), deadline_ns);
  switch (admission) {
    case core::Admission::accepted:
      break;
    case core::Admission::rejected_overload:
      promise->set_value(make_reply(
          StatusCode::rejected_overload,
          "queue full (" + std::to_string(config_.queue_capacity) +
              " pending); retry with backoff"));
      ++completed_;
      break;
    case core::Admission::rejected_closed:
      promise->set_value(make_reply(StatusCode::shutting_down, "service draining"));
      ++completed_;
      break;
  }
  return future;
}

SolveReply SolverService::solve(const SolveRequest& request) {
  return submit(request).get();
}

void SolverService::shutdown() {
  std::call_once(shutdown_once_, [this] {
    stopping_.store(true);
    queue_->close();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    // Export the end-of-life totals alongside the per-request values the
    // workers recorded as they went.
    auto& rec = obs::metrics();
    const core::QueueStats qs = queue_->stats();
    const CacheStats cs = cache_->stats();
    rec.set_value("service.requests.accepted", static_cast<double>(qs.accepted));
    rec.set_value("service.requests.rejected_overload",
                  static_cast<double>(qs.rejected_overload));
    rec.set_value("service.requests.expired", static_cast<double>(qs.expired));
    rec.set_value("service.batches", static_cast<double>(qs.batches));
    rec.set_value("service.cache.hits", static_cast<double>(cs.hits));
    rec.set_value("service.cache.misses", static_cast<double>(cs.misses));
    rec.set_value("service.cache.quarantined", static_cast<double>(cs.quarantined));
    rec.set_value("service.cache.collisions", static_cast<double>(cs.collisions));
    rec.set_value("service.completed", static_cast<double>(completed_.load()));
  });
}

ServiceStatsSnapshot SolverService::stats_snapshot() const {
  ServiceStatsSnapshot out;
  out.uptime_seconds =
      static_cast<double>(monotonic_ns() - start_ns_) * 1e-9;
  out.queue_depth = queue_->depth();
  out.queue = queue_->stats();
  out.cache = cache_->stats();
  out.completed = completed_.load();
  for (std::size_t i = 0; i < request_mix_.size(); ++i) {
    out.request_mix[i] = request_mix_[i].load(std::memory_order_relaxed);
  }
  for (const obs::NamedHistogram& h : obs::snapshot_histograms()) {
    out.histograms.push_back(obs::summarize(h.name, h.snapshot));
  }
  return out;
}

void SolverService::record_request_metrics(const SolveReply& reply) {
  // Last-value export per request; the reply itself carries the same fields
  // back to the client, so the recorder is the operator's view, not the
  // client's.
  auto& rec = obs::metrics();
  rec.set_value("service.last.queue_wait_ms", reply.queue_wait_ms);
  rec.set_value("service.last.batch_width", static_cast<double>(reply.batch_width));
  rec.set_value("service.last.cache_hit", reply.cache_hit ? 1.0 : 0.0);
  rec.set_value("service.last.deadline_slack_ms", reply.deadline_slack_ms);
  rec.set_info("service.last.status", to_string(reply.status));
}

void SolverService::deliver(Entry& entry, SolveReply reply, std::uint32_t batch_width) {
  if (!entry.value.promise) return;  // already answered
  const std::uint64_t now = monotonic_ns();
  reply.queue_wait_ms =
      static_cast<double>(now - entry.enqueued_ns) / kNsPerMs;
  reply.batch_width = batch_width;
  reply.trace_id = entry.value.request.trace_id;
  if (entry.value.deadline_ns != 0) {
    reply.deadline_slack_ms =
        (static_cast<double>(entry.value.deadline_ns) - static_cast<double>(now)) /
        kNsPerMs;
  }
  // End-to-end request span: starts at the client's send timestamp when it
  // was stamped and is plausible (CLOCK_MONOTONIC is shared across the
  // processes of one host), else at enqueue.
  std::uint64_t started = entry.enqueued_ns;
  const std::uint64_t sent = entry.value.request.client_send_ns;
  if (sent != 0 && sent <= started) started = sent;
  obs::span_event("service.request", obs::Category::app, started, now - started,
                  entry.value.request.trace_id,
                  static_cast<std::int64_t>(batch_width));
  record_request_metrics(reply);
  entry.value.promise->set_value(std::move(reply));
  entry.value.promise.reset();
  ++completed_;
}

void SolverService::worker_loop() {
  const std::uint64_t wait_ns = config_.poll_wait_ms * 1000000ull;
  const std::size_t max_batch = std::max<std::size_t>(1, config_.max_batch);
  for (;;) {
    std::vector<Entry> batch = queue_->pop_batch(
        max_batch, wait_ns, [this](Entry&& expired) {
          Entry e = std::move(expired);
          deliver(e, make_reply(StatusCode::deadline_exceeded,
                                "deadline passed while queued"),
                  0);
        });
    if (batch.empty()) {
      if (stopping_.load()) return;
      continue;
    }
    if (stopping_.load()) {
      // Drain mode: everything still queued is answered, never solved.
      for (Entry& entry : batch) {
        deliver(entry, make_reply(StatusCode::shutting_down, "service draining"), 0);
      }
      continue;
    }
    try {
      execute_batch(batch);
    } catch (const std::exception& e) {
      // The worker survives anything a batch throws: every unanswered
      // member gets a structured INTERNAL_ERROR and the loop returns to
      // pop_batch.  This is the daemon-never-wedges invariant the
      // fault-injection suite leans on.
      for (Entry& entry : batch) {
        deliver(entry, make_reply(StatusCode::internal_error, e.what()),
                static_cast<std::uint32_t>(batch.size()));
      }
    }
  }
}

void SolverService::execute_batch(std::vector<Entry>& batch) {
  if (config_.before_batch_hook) config_.before_batch_hook();

  const std::uint64_t now = monotonic_ns();
  const auto width = static_cast<std::uint32_t>(batch.size());

  // One batch span linking N request spans: the batch runs under the first
  // traced member's id (else a freshly minted one), so every span recorded
  // below — triage, cache lookups, the joint solve's iterations — carries
  // the trace id a client can filter the merged timeline by.  Each member
  // additionally gets a queue-wait span under its own id.
  obs::TraceContext batch_trace;
  for (const Entry& entry : batch) {
    obs::span_event("service.queue_wait", obs::Category::app,
                    entry.enqueued_ns, now - entry.enqueued_ns,
                    entry.value.request.trace_id);
    if (batch_trace.trace_id == 0) {
      batch_trace.trace_id = entry.value.request.trace_id;
    }
  }
  if (batch_trace.trace_id == 0 && obs::compiled_in() && obs::enabled()) {
    batch_trace.trace_id = obs::mint_trace_id();
  }
  const obs::TraceScope batch_scope(batch_trace);
  QS_TRACE_SPAN_ARG("service.batch", app, width);

  obs::Histogram& cache_lookup_hist = obs::histogram("service.cache_lookup");
  obs::Histogram& solve_hist = obs::histogram("service.solve");

  // Pre-solve triage: dead clients, missed deadlines, cache hits.
  std::vector<Entry*> to_solve;
  for (Entry& entry : batch) {
    Pending& p = entry.value;
    if (p.alive && !p.alive->load()) {
      deliver(entry, make_reply(StatusCode::cancelled, "client disconnected"), width);
      continue;
    }
    if (p.deadline_ns != 0 && p.deadline_ns <= now) {
      deliver(entry,
              make_reply(StatusCode::deadline_exceeded, "deadline passed in queue"),
              width);
      continue;
    }
    const std::uint64_t lookup_start = monotonic_ns();
    auto hit = cache_->lookup(p.key, p.fingerprint);
    cache_lookup_hist.record_ns(monotonic_ns() - lookup_start);
    if (hit) {
      SolveReply reply = make_reply(StatusCode::ok);
      reply.eigenvalue = hit->eigenvalue;
      reply.residual = hit->residual;
      reply.iterations = hit->iterations;
      reply.class_concentrations = std::move(hit->class_concentrations);
      reply.cache_hit = true;
      deliver(entry, std::move(reply), width);
      continue;
    }
    to_solve.push_back(&entry);
  }
  if (to_solve.empty()) return;

  // Batch keys are hashes: equal keys *should* mean equal (nu, p), but the
  // panel solve requires it, so partition by the actual values — a hash
  // collision costs batching width, never correctness.
  while (!to_solve.empty()) {
    const std::uint32_t nu = to_solve.front()->value.request.nu;
    const double p = to_solve.front()->value.request.p;
    std::vector<Entry*> group;
    std::vector<Entry*> rest;
    for (Entry* entry : to_solve) {
      if (entry->value.request.nu == nu && entry->value.request.p == p) {
        group.push_back(entry);
      } else {
        rest.push_back(entry);
      }
    }
    to_solve = std::move(rest);

    // Dedupe identical scenarios: one panel column answers them all.
    // Identity is the canonical fingerprint, not the 64-bit key — a hash
    // collision may cost a duplicate column, never merge two different
    // scenarios onto one answer.  Linear scan: the group is at most
    // max_batch wide.
    std::vector<const SolveRequest*> scenarios;
    std::vector<const std::vector<std::uint8_t>*> column_fingerprints;
    std::vector<std::size_t> entry_column(group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
      const Pending& pending = group[i]->value;
      std::size_t col = scenarios.size();
      for (std::size_t j = 0; j < column_fingerprints.size(); ++j) {
        if (*column_fingerprints[j] == pending.fingerprint) {
          col = j;
          break;
        }
      }
      if (col == scenarios.size()) {
        scenarios.push_back(&pending.request);
        column_fingerprints.push_back(&pending.fingerprint);
      }
      entry_column[i] = col;
    }

    std::vector<core::Landscape> family;
    family.reserve(scenarios.size());
    double tolerance = scenarios.front()->tolerance;
    std::uint64_t max_iterations = scenarios.front()->max_iterations;
    bool build_failed = false;
    try {
      for (const SolveRequest* scenario : scenarios) {
        family.push_back(build_landscape(*scenario));
        tolerance = std::min(tolerance, scenario->tolerance);
        max_iterations = std::max(max_iterations, scenario->max_iterations);
      }
    } catch (const std::exception& e) {
      for (Entry* entry : group) {
        deliver(*entry, make_reply(StatusCode::bad_request, e.what()), width);
      }
      build_failed = true;
    }
    if (build_failed) continue;

    // Cooperative cancellation token: the joint solve keeps running while
    // ANY member still wants the answer; once every member's deadline
    // passed or client vanished (or the service is draining), the next
    // iteration boundary aborts it.
    struct Watch {
      std::uint64_t deadline_ns;
      std::shared_ptr<std::atomic<bool>> alive;
    };
    std::vector<Watch> watches;
    watches.reserve(group.size());
    for (Entry* entry : group) {
      watches.push_back({entry->value.deadline_ns, entry->value.alive});
    }
    analysis::FamilyOptions options;
    options.tolerance = tolerance;
    options.max_iterations = static_cast<unsigned>(
        std::min<std::uint64_t>(max_iterations, 1000000));
    options.should_stop = [this, &watches] {
      if (stopping_.load()) return true;
      const std::uint64_t t = monotonic_ns();
      for (const Watch& w : watches) {
        const bool expired = w.deadline_ns != 0 && w.deadline_ns <= t;
        const bool dead = w.alive && !w.alive->load();
        if (!expired && !dead) return false;  // someone still wants it
      }
      return true;
    };

    const core::MutationModel model = core::MutationModel::uniform(nu, p);
    const std::uint64_t solve_start = monotonic_ns();
    const analysis::FamilyResult result = [&] {
      QS_TRACE_SPAN_ARG("service.solve", app, scenarios.size());
      return analysis::sweep_landscape_family(model, family, options);
    }();

    const std::uint64_t done = monotonic_ns();
    solve_hist.record_ns(done - solve_start);
    for (std::size_t i = 0; i < group.size(); ++i) {
      Entry& entry = *group[i];
      const Pending& pending = entry.value;
      const std::size_t col = entry_column[i];
      if (result.cancelled) {
        if (stopping_.load()) {
          deliver(entry, make_reply(StatusCode::shutting_down, "service draining"),
                  width);
        } else if (pending.alive && !pending.alive->load()) {
          deliver(entry, make_reply(StatusCode::cancelled, "client disconnected"),
                  width);
        } else {
          deliver(entry,
                  make_reply(StatusCode::deadline_exceeded,
                             "deadline passed mid-solve; aborted at an "
                             "iteration boundary"),
                  width);
        }
        continue;
      }
      const double residual = result.residuals[col];
      if (!(residual <= pending.request.tolerance)) {
        deliver(entry,
                make_reply(StatusCode::solver_failure,
                           "did not converge: residual " + std::to_string(residual) +
                               " above tolerance after " +
                               std::to_string(result.panel_products) +
                               " panel products"),
                width);
        continue;
      }
      SolveReply reply = make_reply(StatusCode::ok);
      reply.eigenvalue = result.eigenvalues[col];
      reply.residual = residual;
      reply.iterations = result.panel_products;
      reply.class_concentrations =
          analysis::class_concentrations(nu, result.eigenvectors[col]);

      CacheEntry cached;
      cached.eigenvalue = reply.eigenvalue;
      cached.residual = reply.residual;
      cached.iterations = reply.iterations;
      cached.class_concentrations = reply.class_concentrations;
      cached.fingerprint = pending.fingerprint;
      cache_->store(pending.key, cached);

      // A member whose deadline passed during the solve still missed it,
      // even though the batch kept running for the others.
      if (pending.deadline_ns != 0 && pending.deadline_ns <= done) {
        deliver(entry,
                make_reply(StatusCode::deadline_exceeded,
                           "deadline passed mid-solve (answer cached for retry)"),
                width);
        continue;
      }
      deliver(entry, std::move(reply), width);
    }
  }
}

// ---------------------------------------------------------------------------
// SocketServer
// ---------------------------------------------------------------------------

SocketServer::SocketServer(const SocketServerConfig& config) : config_(config) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  if (running_.load()) return;
  // A client may close its socket at any point between our liveness checks
  // and a reply write; the write must surface as EPIPE -> TransportError
  // (handled per connection), never as a process-killing SIGPIPE.
  // FdStream::write_all also sends with MSG_NOSIGNAL — this covers every
  // other fd the daemon might write.
  ignore_sigpipe();
  service_ = std::make_unique<SolverService>(config_.service);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw TransportError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string path = config_.socket_path.string();
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw TransportError("socket path too long for AF_UNIX: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // a stale socket file from a crashed daemon
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw TransportError("bind " + path + ": " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw TransportError("listen " + path + ": " + std::strerror(err));
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketServer::stop() {
  if (!running_.exchange(false)) {
    if (service_) service_->shutdown();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Drain order matters: answer every queued/in-flight request first so the
  // connection threads waiting on futures unblock, then join them.
  service_->shutdown();
  {
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    for (Conn& conn : conn_threads_) {
      if (conn.thread.joinable()) conn.thread.join();
    }
    conn_threads_.clear();
  }
  ::unlink(config_.socket_path.string().c_str());
}

void SocketServer::accept_loop() {
  while (running_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) break;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) continue;
      break;  // listener shut down
    }
    ++connections_;
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    reap_finished_locked();
    Conn conn;
    conn.done = std::make_shared<std::atomic<bool>>(false);
    auto done = conn.done;
    conn.thread = std::thread([this, fd, done] {
      serve_connection(fd);
      done->store(true);
    });
    conn_threads_.push_back(std::move(conn));
  }
}

void SocketServer::reap_finished_locked() {
  // Join threads whose connections already ended so a long-lived daemon
  // does not accumulate one thread handle per past client.
  auto it = conn_threads_.begin();
  while (it != conn_threads_.end()) {
    if (it->done->load()) {
      if (it->thread.joinable()) it->thread.join();
      it = conn_threads_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::serve_connection(int fd) {
  try {
    FdStream stream(fd, config_.io_timeout_ms);
    while (running_.load()) {
      // Idle wait in short slices so shutdown is never blocked on a silent
      // client; the per-chunk io timeout only starts once bytes flow.
      pollfd pfd{};
      pfd.fd = stream.fd();
      pfd.events = POLLIN;
      const int rc = ::poll(&pfd, 1, 100);
      if (rc < 0 && errno != EINTR) return;
      if (rc <= 0) continue;
      if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return;
      if ((pfd.revents & POLLIN) == 0 && (pfd.revents & POLLHUP) != 0) return;

      Frame frame;
      try {
        frame = read_frame(stream);
      } catch (const TransportError&) {
        return;  // peer gone or stalled mid-frame
      }
      if (frame.type == FrameType::ping) {
        write_frame(stream, Frame{FrameType::pong, {}});
        continue;
      }
      if (frame.type == FrameType::stats_request) {
        // Answered inline off the service's counters: a STATS probe works
        // even when every worker is busy and the queue is full.
        ServiceStatsSnapshot stats = service_->stats_snapshot();
        stats.connections = connections_.load();
        const std::string text = render_stats_text(stats);
        write_frame(stream, Frame{FrameType::stats_reply,
                                  std::vector<std::uint8_t>(text.begin(),
                                                            text.end())});
        continue;
      }
      if (frame.type != FrameType::solve_request) {
        continue;  // replies/pongs from a confused peer: ignore, stay up
      }

      SolveReply reply;
      bool have_reply = false;
      SolveRequest request;
      try {
        request = decode_request(frame.payload);
      } catch (const ProtocolError& e) {
        // The frame itself was well-formed (length-prefixed, under the
        // cap), only the request payload was malformed — the connection is
        // still in sync, so answer structurally instead of dropping it.
        reply.status = StatusCode::bad_request;
        reply.message = e.what();
        have_reply = true;
      }

      if (!have_reply) {
        auto alive = std::make_shared<std::atomic<bool>>(true);
        std::future<SolveReply> future = service_->submit(request, alive);
        // Watch the socket while the solve runs: a client that hangs up
        // mid-solve flips `alive`, which the batch's cancellation token
        // reads at the next iteration boundary.
        for (;;) {
          if (future.wait_for(std::chrono::milliseconds(20)) ==
              std::future_status::ready) {
            reply = future.get();
            break;
          }
          if (stream.peer_closed()) {
            alive->store(false);
            reply = future.get();  // service still answers (status: cancelled)
            return;                // nobody left to write to
          }
        }
      }
      write_frame(stream, Frame{FrameType::solve_reply, encode(reply)});
    }
  } catch (const std::exception&) {
    // Connection-scoped failure only: the thread ends, the daemon serves on.
  }
}

}  // namespace qs::service
