#include "service/scenario_cache.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "io/binary_io.hpp"
#include "support/contracts.hpp"

namespace qs::service {
namespace {

/// A double read from disk is data, not a trusted size: NaN, negative,
/// fractional, or out-of-range values must throw (-> quarantine) before any
/// cast — a static_cast of such a value to an integer is undefined
/// behavior, and the binary_io checksum does not guard against a
/// validly-checksummed bad file.
std::size_t checked_count(double value, double ceiling, const char* what) {
  if (!(value >= 0.0) || value != std::floor(value) || value > ceiling) {
    throw std::runtime_error(std::string("scenario cache entry: invalid ") +
                             what);
  }
  return static_cast<std::size_t>(value);
}

std::string hex_key(std::uint64_t key) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[key & 0xf];
    key >>= 4;
  }
  return out;
}

}  // namespace

std::vector<double> pack_cache_entry(const CacheEntry& entry) {
  const std::size_t fp_doubles = (entry.fingerprint.size() + 7) / 8;
  std::vector<double> payload;
  payload.reserve(5 + entry.class_concentrations.size() + fp_doubles);
  payload.push_back(entry.eigenvalue);
  payload.push_back(entry.residual);
  payload.push_back(static_cast<double>(entry.iterations));
  payload.push_back(static_cast<double>(entry.class_concentrations.size()));
  payload.insert(payload.end(), entry.class_concentrations.begin(),
                 entry.class_concentrations.end());
  payload.push_back(static_cast<double>(entry.fingerprint.size()));
  const std::size_t at = payload.size();
  payload.resize(at + fp_doubles, 0.0);
  if (!entry.fingerprint.empty()) {
    std::memcpy(payload.data() + at, entry.fingerprint.data(),
                entry.fingerprint.size());
  }
  return payload;
}

CacheEntry unpack_cache_entry(const std::vector<double>& payload) {
  if (payload.size() < 5) {
    throw std::runtime_error("scenario cache entry too short");
  }
  const std::size_t count = checked_count(
      payload[3], static_cast<double>(payload.size()), "concentration count");
  if (payload.size() < 5 + count) {
    throw std::runtime_error("scenario cache entry length mismatch");
  }
  const std::size_t fp_at = 4 + count;
  const std::size_t fp_bytes = checked_count(
      payload[fp_at], static_cast<double>(payload.size()) * 8.0,
      "fingerprint length");
  const std::size_t fp_doubles = (fp_bytes + 7) / 8;
  if (payload.size() != fp_at + 1 + fp_doubles) {
    throw std::runtime_error("scenario cache entry length mismatch");
  }
  CacheEntry entry;
  entry.eigenvalue = payload[0];
  entry.residual = payload[1];
  // 2^53: above it a double no longer represents every integer exactly, so
  // an iteration count there is corruption, not a plausible solve.
  entry.iterations = static_cast<std::uint64_t>(
      checked_count(payload[2], 9007199254740992.0, "iteration count"));
  entry.class_concentrations.assign(payload.begin() + 4,
                                    payload.begin() + 4 + static_cast<std::ptrdiff_t>(count));
  entry.fingerprint.resize(fp_bytes);
  if (fp_bytes != 0) {
    std::memcpy(entry.fingerprint.data(), payload.data() + fp_at + 1, fp_bytes);
  }
  return entry;
}

FsCacheStorage::FsCacheStorage(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  std::filesystem::create_directories(directory_);
}

std::filesystem::path FsCacheStorage::entry_path(std::uint64_t key) const {
  return directory_ / (hex_key(key) + ".qsc");
}

void FsCacheStorage::store(std::uint64_t key, const std::vector<double>& payload) {
  io::save_vector(entry_path(key), payload);
}

std::optional<std::vector<double>> FsCacheStorage::load(std::uint64_t key) {
  const std::filesystem::path path = entry_path(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    return std::nullopt;  // plain miss, not corruption
  }
  // Any failure past this point (bad magic, checksum mismatch, truncation,
  // malformed packing) propagates as an exception: the entry EXISTS but
  // cannot be trusted, and the caller quarantines it.
  return io::load_vector(path);
}

void FsCacheStorage::quarantine(std::uint64_t key) noexcept {
  const std::filesystem::path path = entry_path(key);
  std::filesystem::path bad = path;
  bad += ".bad";
  std::error_code ec;
  std::filesystem::rename(path, bad, ec);
  if (ec) {
    // rename across the corruption failed too (e.g. the directory vanished);
    // removing is the fallback that still unblocks the next store.
    std::filesystem::remove(path, ec);
  }
}

ScenarioCache::ScenarioCache(std::size_t max_entries,
                             std::unique_ptr<CacheStorage> storage)
    : max_entries_(max_entries), storage_(std::move(storage)) {
  require(max_entries > 0, "ScenarioCache: max_entries must be positive");
}

std::optional<CacheEntry> ScenarioCache::lookup(
    std::uint64_t key, const std::vector<std::uint8_t>& fingerprint) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = map_.find(key); it != map_.end()) {
    if (!fingerprint.empty() && it->second.entry.fingerprint != fingerprint) {
      ++stats_.collisions;
      ++stats_.misses;
      return std::nullopt;
    }
    touch_locked(key);
    ++stats_.hits;
    return it->second.entry;
  }
  if (storage_) {
    try {
      if (auto payload = storage_->load(key)) {
        CacheEntry entry = unpack_cache_entry(*payload);
        if (!fingerprint.empty() && entry.fingerprint != fingerprint) {
          // Not corruption: the entry is valid for its own scenario, it just
          // shares our 64-bit key.  Miss (recompute overwrites it); do not
          // promote it into the LRU under this key.
          ++stats_.collisions;
          ++stats_.misses;
          return std::nullopt;
        }
        insert_locked(key, entry);
        ++stats_.hits;
        return entry;
      }
    } catch (const std::exception&) {
      // Present but unreadable: corruption.  Quarantine so the next store
      // writes a fresh file, then fall through to a miss — the service
      // recomputes the scenario.
      storage_->quarantine(key);
      ++stats_.quarantined;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ScenarioCache::store(std::uint64_t key, const CacheEntry& entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  insert_locked(key, entry);
  ++stats_.stores;
  if (storage_) {
    try {
      storage_->store(key, pack_cache_entry(entry));
    } catch (const std::exception&) {
      // Durability is best-effort per store: the computed answer is already
      // in memory (and in the caller's reply).  The failure is counted so
      // operators see a sick disk in the metrics, not in lost requests.
      ++stats_.store_failures;
    }
  }
}

CacheStats ScenarioCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ScenarioCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

void ScenarioCache::touch_locked(std::uint64_t key) {
  auto it = map_.find(key);
  order_.erase(it->second.where);
  order_.push_front(key);
  it->second.where = order_.begin();
}

void ScenarioCache::insert_locked(std::uint64_t key, CacheEntry entry) {
  if (auto it = map_.find(key); it != map_.end()) {
    it->second.entry = std::move(entry);
    touch_locked(key);
    return;
  }
  while (map_.size() >= max_entries_) {
    const std::uint64_t victim = order_.back();
    order_.pop_back();
    map_.erase(victim);
    ++stats_.evictions;  // memory tier only; the disk entry survives
  }
  order_.push_front(key);
  map_.emplace(key, Slot{std::move(entry), order_.begin()});
}

}  // namespace qs::service
