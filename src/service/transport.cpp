#include "service/transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>

namespace qs::service {
namespace {

constexpr std::uint32_t kFrameMagic = 0x51535256;  // "QSRV"

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint32_t type = 0;
  std::uint64_t length = 0;
};
static_assert(sizeof(FrameHeader) == 16, "wire header layout");

/// Waits until `fd` is ready for `events` or the timeout passes.  EINTR
/// restarts the wait (signals are handled at the server loop level, not
/// here) — but a shutdown-minded caller still regains control at the next
/// chunk boundary because the poll deadline is short.
void wait_ready(int fd, short events, unsigned timeout_ms, const char* what) {
  // timeout_ms is nonzero by FdStream's constructor contract — there is no
  // infinite-poll mode, so a stalled peer can never pin a thread forever.
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  const int wait_ms = static_cast<int>(
      std::min<unsigned>(timeout_ms, std::numeric_limits<int>::max()));
  for (;;) {
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc > 0) {
      if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) {
        throw TransportError(std::string(what) + ": socket error");
      }
      return;  // readable/writable (POLLHUP surfaces as EOF on read)
    }
    if (rc == 0) {
      throw TimeoutError(std::string(what) + ": timed out after " +
                         std::to_string(timeout_ms) + " ms");
    }
    if (errno != EINTR) {
      throw TransportError(std::string(what) + ": poll failed: " +
                           std::strerror(errno));
    }
  }
}

}  // namespace

FdStream::FdStream(int fd, unsigned timeout_ms) : fd_(fd), timeout_ms_(timeout_ms) {
  if (fd_ < 0) {
    throw TransportError("FdStream: invalid file descriptor");
  }
  if (timeout_ms_ == 0) {
    // A zero timeout would mean an unbounded poll: one stalled peer could
    // pin a connection thread (and hang SocketServer::stop at the join).
    ::close(fd_);
    fd_ = -1;
    throw TransportError("FdStream: timeout_ms must be nonzero");
  }
}

FdStream::~FdStream() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void FdStream::read_exact(void* data, std::size_t size) {
  auto* out = static_cast<std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < size) {
    wait_ready(fd_, POLLIN, timeout_ms_, "read");
    const ssize_t n = ::read(fd_, out + done, size - done);
    if (n == 0) {
      throw TransportError("read: peer closed the connection mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      throw TransportError(std::string("read: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

void FdStream::write_all(const void* data, std::size_t size) {
  const auto* in = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  while (done < size) {
    wait_ready(fd_, POLLOUT, timeout_ms_, "write");
    // MSG_NOSIGNAL: a peer that hung up between our liveness checks and
    // this write must surface as EPIPE -> TransportError on this one
    // stream, never as a process-killing SIGPIPE.
    ssize_t n = ::send(fd_, in + done, size - done, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      // Non-socket fd (pipe): send(2) does not apply; the daemon also
      // ignores SIGPIPE process-wide, so EPIPE still comes back as an error.
      n = ::write(fd_, in + done, size - done);
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      throw TransportError(std::string("write: ") + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

bool FdStream::peer_closed() const {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, 0);
  if (rc <= 0) return false;  // quiet or transient error: assume alive
  if ((pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) return true;
  if ((pfd.revents & POLLIN) != 0) {
    // Readable with nothing expected: either a pipelined frame (alive) or
    // EOF.  Peek one byte without consuming to tell them apart.
    std::uint8_t byte = 0;
    const ssize_t n = ::recv(fd_, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
    return n == 0;
  }
  return false;
}

void write_frame(Stream& stream, const Frame& frame) {
  FrameHeader header;
  header.type = static_cast<std::uint32_t>(frame.type);
  header.length = frame.payload.size();
  if (header.length > kMaxFramePayload) {
    throw ProtocolError("write_frame: payload exceeds the 64 MiB frame cap");
  }
  // One buffer, one write_all: a frame must never interleave with another
  // thread's frame at the fd level, and small header-only writes would
  // defeat Nagle-less local sockets anyway.
  std::vector<std::uint8_t> wire(sizeof(header) + frame.payload.size());
  std::memcpy(wire.data(), &header, sizeof(header));
  if (!frame.payload.empty()) {
    std::memcpy(wire.data() + sizeof(header), frame.payload.data(),
                frame.payload.size());
  }
  stream.write_all(wire.data(), wire.size());
}

Frame read_frame(Stream& stream) {
  FrameHeader header;
  stream.read_exact(&header, sizeof(header));
  if (header.magic != kFrameMagic) {
    throw ProtocolError("read_frame: bad magic (not a solver-service frame)");
  }
  if (header.type < static_cast<std::uint32_t>(FrameType::solve_request) ||
      header.type > static_cast<std::uint32_t>(FrameType::stats_reply)) {
    throw ProtocolError("read_frame: unknown frame type " +
                        std::to_string(header.type));
  }
  // Validate before allocating: a corrupted length must produce a clear
  // error, never a multi-gigabyte resize.
  if (header.length > kMaxFramePayload) {
    throw ProtocolError("read_frame: declared payload of " +
                        std::to_string(header.length) +
                        " bytes exceeds the 64 MiB frame cap (corrupt header?)");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header.type);
  frame.payload.resize(static_cast<std::size_t>(header.length));
  if (!frame.payload.empty()) {
    stream.read_exact(frame.payload.data(), frame.payload.size());
  }
  return frame;
}

}  // namespace qs::service
