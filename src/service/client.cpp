#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace qs::service {
namespace {

int connect_unix(const std::filesystem::path& path, unsigned timeout_ms) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw TransportError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string p = path.string();
  if (p.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw TransportError("socket path too long for AF_UNIX: " + p);
  }
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  // AF_UNIX connect either succeeds immediately or fails immediately (the
  // backlog is the only wait, and the kernel handles it synchronously), so
  // no non-blocking connect dance is needed; timeout_ms governs the stream.
  (void)timeout_ms;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    throw TransportError("connect " + p + ": " + std::strerror(err));
  }
  return fd;
}

std::uint64_t xorshift64(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

}  // namespace

std::uint64_t backoff_delay_ms(const RetryPolicy& policy, std::uint64_t& jitter_state,
                               unsigned attempt) {
  double delay = static_cast<double>(policy.base_delay_ms);
  for (unsigned i = 1; i < attempt; ++i) {
    delay *= policy.multiplier;
    if (delay >= static_cast<double>(policy.max_delay_ms)) break;
  }
  if (delay > static_cast<double>(policy.max_delay_ms)) {
    delay = static_cast<double>(policy.max_delay_ms);
  }
  // Jitter shrinks the delay by up to `jitter`: retries spread out instead
  // of arriving in the synchronised wave that re-overloads the daemon.
  const double unit =
      static_cast<double>(xorshift64(jitter_state) >> 11) / 9007199254740992.0;
  const double scale = 1.0 - policy.jitter * unit;
  return static_cast<std::uint64_t>(delay * scale);
}

Client::Client(std::filesystem::path socket_path, unsigned io_timeout_ms)
    : socket_path_(std::move(socket_path)), io_timeout_ms_(io_timeout_ms) {}

Stream& Client::ensure_connected() {
  if (!stream_) {
    stream_ = std::make_unique<FdStream>(connect_unix(socket_path_, io_timeout_ms_),
                                         io_timeout_ms_);
  }
  return *stream_;
}

void Client::disconnect() { stream_.reset(); }

SolveReply Client::solve(const SolveRequest& request) {
  try {
    // Trace context: every request leaves with a nonzero trace id (caller's
    // if set, freshly minted otherwise) and the client's send timestamp, so
    // the daemon's spans and this client's span share one timeline.
    SolveRequest traced = request;
    if (traced.trace_id == 0) traced.trace_id = obs::mint_trace_id();
    const obs::TraceScope scope(obs::TraceContext{traced.trace_id});
    QS_TRACE_SPAN("client.solve", app);
    Stream& stream = ensure_connected();
    traced.client_send_ns = monotonic_ns();
    write_frame(stream, Frame{FrameType::solve_request, encode(traced)});
    const Frame frame = read_frame(stream);
    if (frame.type != FrameType::solve_reply) {
      throw ProtocolError("client: expected a solve_reply frame, got type " +
                          std::to_string(static_cast<std::uint32_t>(frame.type)));
    }
    return decode_reply(frame.payload);
  } catch (...) {
    // Whatever broke, the connection's framing state is unknown — drop it
    // so the next attempt starts on a clean socket.
    disconnect();
    throw;
  }
}

bool Client::ping() {
  try {
    Stream& stream = ensure_connected();
    write_frame(stream, Frame{FrameType::ping, {}});
    return read_frame(stream).type == FrameType::pong;
  } catch (const std::exception&) {
    disconnect();
    return false;
  }
}

std::string Client::stats() {
  try {
    Stream& stream = ensure_connected();
    write_frame(stream, Frame{FrameType::stats_request, {}});
    const Frame frame = read_frame(stream);
    if (frame.type != FrameType::stats_reply) {
      throw ProtocolError("client: expected a stats_reply frame, got type " +
                          std::to_string(static_cast<std::uint32_t>(frame.type)));
    }
    return std::string(frame.payload.begin(), frame.payload.end());
  } catch (...) {
    disconnect();
    throw;
  }
}

ClientOutcome Client::solve_with_retry(const SolveRequest& request,
                                       const RetryPolicy& policy) {
  ClientOutcome outcome;
  std::uint64_t jitter_state = policy.seed | 1;  // xorshift must not start at 0
  const unsigned attempts = policy.max_attempts == 0 ? 1 : policy.max_attempts;
  for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
    outcome.attempts = attempt;
    bool transport_failed = false;
    try {
      outcome.reply = solve(request);
      outcome.last_error.clear();
    } catch (const std::exception& e) {
      transport_failed = true;
      outcome.last_error = e.what();
      outcome.reply = SolveReply{};
      outcome.reply.status = StatusCode::internal_error;
      outcome.reply.message = std::string("transport: ") + e.what();
    }
    const bool retry = transport_failed || retryable(outcome.reply.status);
    if (!retry || attempt == attempts) {
      return outcome;
    }
    const std::uint64_t delay = backoff_delay_ms(policy, jitter_state, attempt);
    outcome.backoff_ms += delay;
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  return outcome;
}

}  // namespace qs::service
