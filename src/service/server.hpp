// The solver service: admission-controlled, deadline-aware, batch-coalescing
// execution of solve scenarios — and the AF_UNIX daemon that serves it.
//
// Two layers, separable for testing:
//
//   SolverService — the in-process engine.  submit() runs admission control
//     (bounded core::RequestQueue; a full queue sheds with
//     REJECTED_OVERLOAD) and hands back a future.  Worker threads pop
//     batches coalesced by batch_key — requests sharing (nu, p) share a
//     mutation model Q, so the batch solves jointly through
//     analysis::sweep_landscape_family: the m scenarios' landscapes become
//     the panel columns of W_j = Q F_j and every power step advances all
//     of them in one memory sweep.  Identical scenarios within a batch
//     (byte-verified via scenario_fingerprint, never by hash alone) dedupe
//     to one column.  Before solving, each scenario consults the
//     crash-safe ScenarioCache; hits reply without touching a solver, and
//     a cached reply is bit-identical to a fresh solve of the same
//     scenario (the cache stores the exact answer fields and serves them
//     only on a fingerprint match).
//
//     Failure is data, not control flow: deadlines cancel the batch
//     cooperatively through FamilyOptions::should_stop (DEADLINE_EXCEEDED),
//     vanished clients cancel it too (CANCELLED), a worker exception
//     becomes INTERNAL_ERROR — and in every case the worker loops back to
//     pop_batch.  One request can never wedge or kill the service.
//
//   SocketServer — the transport shell: an AF_UNIX listener, one thread per
//     connection reading frames with timeouts, replies written back on the
//     same connection.  While a request is in flight the connection thread
//     watches the socket for hangup and flips the request's alive flag, so
//     a disconnect propagates into cancellation.  stop() drains
//     gracefully: the listener closes, queued requests are answered
//     SHUTTING_DOWN, in-flight batches cancel at the next iteration
//     boundary, and every connection thread is joined.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/request_queue.hpp"
#include "service/protocol.hpp"
#include "service/scenario_cache.hpp"
#include "service/stats.hpp"
#include "service/transport.hpp"

namespace qs::service {

struct ServiceConfig {
  /// Admission-control bound: requests beyond this depth shed immediately.
  std::size_t queue_capacity = 64;

  /// Worker threads popping batches.  One worker keeps batches maximally
  /// wide (every queued compatible request coalesces); more workers trade
  /// batch width for latency.
  std::size_t workers = 1;

  /// Panel width cap per batch — m of the panel Fmmp kernels; 8 matches
  /// the AVX-512 microkernel width.
  std::size_t max_batch = 8;

  /// How long a worker waits in pop_batch before re-checking shutdown.
  std::uint64_t poll_wait_ms = 20;

  /// In-memory LRU entries; the disk tier (when cache_dir is set) is
  /// unbounded and crash-safe.
  std::size_t cache_entries = 256;

  /// Durable cache directory; empty = memory-only cache.
  std::filesystem::path cache_dir;

  /// Testing seam: wraps/replaces the cache storage backend (fault
  /// injection).  Called once at construction with the filesystem backend
  /// (nullptr when cache_dir is empty); the returned storage is used.
  std::function<std::unique_ptr<CacheStorage>(std::unique_ptr<CacheStorage>)>
      wrap_cache_storage;

  /// Testing seam: runs at the top of every batch execution (after the
  /// batch is popped, before cache lookups).  A throw here exercises the
  /// worker's INTERNAL_ERROR path.
  std::function<void()> before_batch_hook;
};

/// In-process solver service (no sockets).  Thread-safe.
class SolverService {
 public:
  explicit SolverService(const ServiceConfig& config = {});
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Admission control + enqueue.  The future always becomes ready with a
  /// structured reply — overload and shutdown reject synchronously, every
  /// admitted request is answered by a worker (or by drain).  `alive`
  /// (optional) is the caller's liveness flag: when it flips false the
  /// request's work is cancelled and the reply status becomes CANCELLED.
  std::future<SolveReply> submit(const SolveRequest& request,
                                 std::shared_ptr<std::atomic<bool>> alive = nullptr);

  /// Blocking convenience: submit + wait.
  SolveReply solve(const SolveRequest& request);

  /// Graceful drain: close admission, answer queued requests with
  /// SHUTTING_DOWN, cancel in-flight batches, join workers.  Idempotent.
  void shutdown();

  core::QueueStats queue_stats() const { return queue_->stats(); }
  CacheStats cache_stats() const { return cache_->stats(); }

  /// Requests fully answered (any status) since construction.
  std::uint64_t completed() const { return completed_.load(); }

  /// Live-introspection snapshot: counter/histogram reads only (the queue
  /// mutex is held just long enough to copy its stats struct) — it never
  /// enqueues work, waits on a worker, or touches the solver path.
  /// `connections` is left 0 for the transport shell to fill.
  ServiceStatsSnapshot stats_snapshot() const;

 private:
  struct Pending {
    SolveRequest request;
    std::uint64_t key = 0;             // scenario_key(request): index only
    std::vector<std::uint8_t> fingerprint;  // equality witness for key
    std::uint64_t deadline_ns = 0;     // absolute monotonic deadline, 0 = none
    std::shared_ptr<std::atomic<bool>> alive;
    std::shared_ptr<std::promise<SolveReply>> promise;
  };
  using Queue = core::RequestQueue<Pending>;
  using Entry = Queue::Entry;

  void worker_loop();
  void execute_batch(std::vector<Entry>& batch);
  void deliver(Entry& entry, SolveReply reply, std::uint32_t batch_width);
  static void record_request_metrics(const SolveReply& reply);

  ServiceConfig config_;
  std::unique_ptr<ScenarioCache> cache_;
  std::unique_ptr<Queue> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> completed_{0};
  std::uint64_t start_ns_ = 0;  ///< Construction time (uptime baseline).
  /// Validated submissions per landscape kind (kind - 1), for the STATS
  /// request-mix section.
  std::array<std::atomic<std::uint64_t>, 4> request_mix_{};
  std::once_flag shutdown_once_;
};

struct SocketServerConfig {
  std::filesystem::path socket_path;  ///< AF_UNIX path; unlinked on start/stop.
  unsigned io_timeout_ms = 5000;      ///< Per-chunk read/write timeout.
  ServiceConfig service;
};

/// AF_UNIX daemon shell around SolverService.
class SocketServer {
 public:
  explicit SocketServer(const SocketServerConfig& config);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and starts the accept thread.  Throws TransportError
  /// on bind failure (stale socket files are unlinked first).
  void start();

  /// Graceful drain: stop accepting, drain the service, join every
  /// connection thread, unlink the socket.  Idempotent; safe from a signal
  /// handler *thread* (not from the handler itself — qs_serve's handler
  /// only sets a flag).
  void stop();

  bool running() const { return running_.load(); }
  const std::filesystem::path& socket_path() const { return config_.socket_path; }
  SolverService& service() { return *service_; }

  /// Connections accepted since start().
  std::uint64_t connections() const { return connections_.load(); }

 private:
  void accept_loop();
  void serve_connection(int fd);
  void reap_finished_locked();

  SocketServerConfig config_;
  std::unique_ptr<SolverService> service_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> connections_{0};

  struct Conn {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex threads_mutex_;
  std::vector<Conn> conn_threads_;
};

}  // namespace qs::service
