// Client side of the solver service: connect, solve, retry.
//
// The retry policy is deliberately narrow: only failures where the daemon
// provably never started the work are resent — transport errors before a
// reply arrived, REJECTED_OVERLOAD, SHUTTING_DOWN.  BAD_REQUEST and
// SOLVER_FAILURE would fail identically on retry; OK/DEADLINE_EXCEEDED/
// CANCELLED already consumed the request's budget.  Between attempts the
// client sleeps exponential backoff with decorrelated jitter (a deterministic
// per-client xorshift stream, seeded explicitly so tests are reproducible):
// capped doubling keeps a struggling daemon from seeing its own load
// reflected back in synchronised retry waves.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>

#include "service/protocol.hpp"
#include "service/transport.hpp"

namespace qs::service {

struct RetryPolicy {
  unsigned max_attempts = 4;        ///< Total tries (1 = no retry).
  std::uint64_t base_delay_ms = 25; ///< First backoff step.
  std::uint64_t max_delay_ms = 1000;
  double multiplier = 2.0;
  double jitter = 0.5;              ///< Delay drawn from [d*(1-j), d].
  std::uint64_t seed = 1;           ///< Jitter stream seed (reproducibility).
};

/// Result of solve_with_retry: the reply plus how hard it was to get.
struct ClientOutcome {
  SolveReply reply;
  unsigned attempts = 0;          ///< Connections/solve attempts consumed.
  std::uint64_t backoff_ms = 0;   ///< Total time slept between attempts.
  std::string last_error;         ///< Transport diagnostic of the final retryable
                                  ///< failure (empty on clean success).
};

class Client {
 public:
  /// `socket_path` names the daemon's AF_UNIX socket; `io_timeout_ms`
  /// bounds each read/write chunk on the wire.
  explicit Client(std::filesystem::path socket_path, unsigned io_timeout_ms = 5000);

  /// One attempt: connect (or reuse the live connection), send, await the
  /// reply.  Throws TransportError/TimeoutError/ProtocolError on wire
  /// failure — no retry at this layer.
  ///
  /// Trace context: when the request's trace_id is 0 a fresh id is minted
  /// (obs::mint_trace_id — works in span-less builds too; the id still
  /// rides the frame and comes back in the reply).  client_send_ns is
  /// stamped with monotonic_ns() just before the frame goes out, so the
  /// daemon can start the request span at the client's send time
  /// (CLOCK_MONOTONIC is shared across processes on one host).
  SolveReply solve(const SolveRequest& request);

  /// Round-trip health probe on a fresh or existing connection.
  bool ping();

  /// Fetches the daemon's live stats (the STATS op): returns the text
  /// exposition verbatim (see service/stats.hpp for the format).  Throws
  /// on wire failure like solve().
  std::string stats();

  /// Retrying solve per `policy`.  Transport failures and retryable status
  /// codes consume attempts; the final failure (attempts exhausted) is
  /// reported as the last reply/error rather than thrown, so callers always
  /// get a structured outcome.
  ClientOutcome solve_with_retry(const SolveRequest& request,
                                 const RetryPolicy& policy = {});

  /// Drops the pooled connection (next call reconnects).
  void disconnect();

 private:
  Stream& ensure_connected();

  std::filesystem::path socket_path_;
  unsigned io_timeout_ms_;
  std::unique_ptr<FdStream> stream_;
};

/// Exposed for tests: the deterministic backoff schedule.  `attempt` is
/// 1-based (delay before attempt 2 is backoff_delay_ms(policy, state, 1)).
/// `jitter_state` advances each call (xorshift64).
std::uint64_t backoff_delay_ms(const RetryPolicy& policy, std::uint64_t& jitter_state,
                               unsigned attempt);

}  // namespace qs::service
