// Framed byte transport for the solver service.
//
// The wire unit is a length-prefixed frame: a fixed 16-byte little-endian
// header (magic, frame type, payload length) followed by the payload.  The
// reader validates the magic and caps the declared length at 64 MiB before
// allocating — a corrupted or hostile length field fails with a structured
// ProtocolError, it never drives an allocation (the same posture as
// io/binary_io's payload-length check).
//
// Streams carry per-operation timeouts: FdStream wraps a connected socket
// and bounds every read/write chunk with poll(2), so a peer that stops
// draining (or stops sending mid-frame) costs the calling thread at most
// the timeout, never a wedge.  TimeoutError derives from TransportError so
// callers can distinguish "slow peer" from "broken peer" when deciding to
// retry.  Writes use send(2) with MSG_NOSIGNAL: a peer that hung up makes
// the write fail with EPIPE -> TransportError instead of raising a
// process-killing SIGPIPE (the daemon additionally ignores SIGPIPE at
// startup via qs::ignore_sigpipe for non-socket fds).
//
// The Stream interface exists so tests can interpose fault injection
// (testing/fault_injection: drop, delay, short-read, corrupt) between the
// protocol layer and the file descriptor without touching kernel sockets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace qs::service {

/// Any transport-layer failure: peer gone, short read, poll error.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A read or write did not complete within its timeout.
class TimeoutError : public TransportError {
 public:
  using TransportError::TransportError;
};

/// A frame violated the wire format (bad magic, absurd length, truncation).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Byte stream with blocking-with-timeout semantics.  read_exact either
/// fills the whole span or throws; write_all either sends every byte or
/// throws.  Implementations must be usable from one thread at a time.
class Stream {
 public:
  virtual ~Stream() = default;

  /// Reads exactly `size` bytes into `data`.  Throws TimeoutError when the
  /// deadline passes mid-read, TransportError on EOF or socket error.
  virtual void read_exact(void* data, std::size_t size) = 0;

  /// Writes all `size` bytes.  Throws TimeoutError / TransportError.
  virtual void write_all(const void* data, std::size_t size) = 0;
};

/// Stream over a connected file descriptor (AF_UNIX or TCP socket, pipe).
/// Owns the fd and closes it on destruction.  Every chunk transferred is
/// gated by poll(2) with the configured timeout.
class FdStream final : public Stream {
 public:
  /// Takes ownership of `fd`.  `timeout_ms` bounds each read/write chunk
  /// and must be nonzero — there is no wait-forever mode (an unbounded poll
  /// would let one stalled peer pin a thread and hang server shutdown).
  /// Throws TransportError (closing `fd`) on a zero timeout.
  explicit FdStream(int fd, unsigned timeout_ms = 5000);
  ~FdStream() override;

  FdStream(const FdStream&) = delete;
  FdStream& operator=(const FdStream&) = delete;

  void read_exact(void* data, std::size_t size) override;
  void write_all(const void* data, std::size_t size) override;

  int fd() const { return fd_; }
  unsigned timeout_ms() const { return timeout_ms_; }
  void set_timeout_ms(unsigned timeout_ms) {
    if (timeout_ms == 0) {
      throw TransportError("FdStream: timeout_ms must be nonzero");
    }
    timeout_ms_ = timeout_ms;
  }

  /// Non-blocking liveness probe: true once the peer has hung up (POLLHUP /
  /// POLLERR, or a pending EOF).  The server polls this while a request
  /// waits in the queue so a vanished client can cancel its own work.
  bool peer_closed() const;

 private:
  int fd_ = -1;
  unsigned timeout_ms_ = 5000;
};

/// Frame types on the wire.
enum class FrameType : std::uint32_t {
  solve_request = 1,
  solve_reply = 2,
  ping = 3,
  pong = 4,
  stats_request = 5,  ///< Empty payload; answered off the solver path.
  stats_reply = 6,    ///< Payload is the UTF-8 text exposition (stats.hpp).
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::ping;
  std::vector<std::uint8_t> payload;
};

/// Largest payload a frame may declare (64 MiB).  A reply for nu = 20 is a
/// few hundred KiB; anything near the cap is a corrupted or hostile header.
inline constexpr std::uint64_t kMaxFramePayload = 64ull << 20;

/// Writes `frame` to `stream` (header + payload, single logical operation).
void write_frame(Stream& stream, const Frame& frame);

/// Reads one frame.  Throws ProtocolError on bad magic, unknown type, or a
/// declared length above kMaxFramePayload; transport errors pass through.
Frame read_frame(Stream& stream);

}  // namespace qs::service
