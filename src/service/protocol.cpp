#include "service/protocol.hpp"

#include <bit>
#include <cstring>
#include <type_traits>

#include "support/bits.hpp"

namespace qs::service {
namespace {

static_assert(std::endian::native == std::endian::little,
              "service protocol assumes a little-endian host");

/// Append-only little-endian encoder.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = out_.size();
    out_.resize(at + sizeof(T));
    std::memcpy(out_.data() + at, &value, sizeof(T));
  }

  void put_doubles(const std::vector<double>& values) {
    put<std::uint64_t>(values.size());
    const std::size_t at = out_.size();
    out_.resize(at + values.size() * sizeof(double));
    if (!values.empty()) {
      std::memcpy(out_.data() + at, values.data(), values.size() * sizeof(double));
    }
  }

  void put_string(const std::string& value) {
    put<std::uint32_t>(static_cast<std::uint32_t>(value.size()));
    out_.insert(out_.end(), value.begin(), value.end());
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked little-endian decoder: every read validates the remaining
/// byte count first, and length-prefixed fields validate the declared
/// length against what is actually present before allocating (the same
/// never-trust-a-length rule as io/binary_io and the frame reader).
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& in) : in_(in) {}

  template <typename T>
  T get(const char* field) {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T), field);
    T value;
    std::memcpy(&value, in_.data() + at_, sizeof(T));
    at_ += sizeof(T);
    return value;
  }

  std::vector<double> get_doubles(const char* field) {
    const auto count = get<std::uint64_t>(field);
    if (count > remaining() / sizeof(double)) {
      throw ProtocolError(std::string("decode: ") + field + " declares " +
                          std::to_string(count) + " doubles but only " +
                          std::to_string(remaining()) + " bytes remain");
    }
    std::vector<double> values(static_cast<std::size_t>(count));
    if (count != 0) {
      std::memcpy(values.data(), in_.data() + at_,
                  static_cast<std::size_t>(count) * sizeof(double));
      at_ += static_cast<std::size_t>(count) * sizeof(double);
    }
    return values;
  }

  std::string get_string(const char* field) {
    const auto size = get<std::uint32_t>(field);
    need(size, field);
    std::string value(reinterpret_cast<const char*>(in_.data() + at_), size);
    at_ += size;
    return value;
  }

  bool at_end() const { return at_ == in_.size(); }

  void expect_end(const char* what) const {
    if (at_ != in_.size()) {
      throw ProtocolError(std::string("decode: ") + what + " carries " +
                          std::to_string(in_.size() - at_) + " trailing bytes");
    }
  }

 private:
  std::size_t remaining() const { return in_.size() - at_; }

  void need(std::size_t bytes, const char* field) const {
    if (bytes > remaining()) {
      throw ProtocolError(std::string("decode: payload truncated at ") + field);
    }
  }

  const std::vector<std::uint8_t>& in_;
  std::size_t at_ = 0;
};

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void hash_bytes(std::uint64_t& hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
}

template <typename T>
void hash_value(std::uint64_t& hash, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  hash_bytes(hash, &value, sizeof(T));
}

}  // namespace

const char* to_string(LandscapeKind kind) {
  switch (kind) {
    case LandscapeKind::single_peak: return "single-peak";
    case LandscapeKind::linear: return "linear";
    case LandscapeKind::random: return "random";
    case LandscapeKind::flat: return "flat";
  }
  return "unknown";
}

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::ok: return "ok";
    case StatusCode::rejected_overload: return "rejected-overload";
    case StatusCode::deadline_exceeded: return "deadline-exceeded";
    case StatusCode::cancelled: return "cancelled";
    case StatusCode::bad_request: return "bad-request";
    case StatusCode::solver_failure: return "solver-failure";
    case StatusCode::shutting_down: return "shutting-down";
    case StatusCode::internal_error: return "internal-error";
  }
  return "unknown";
}

bool retryable(StatusCode code) {
  // Overload and drain mean "the daemon never started this work" — safe to
  // resend.  Everything else either succeeded, is the request's own fault,
  // or failed *during* a solve where a blind resend would repeat the
  // failure.
  return code == StatusCode::rejected_overload || code == StatusCode::shutting_down;
}

std::vector<std::uint8_t> scenario_fingerprint(const SolveRequest& request) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(48);
  Writer w(bytes);
  w.put(request.nu);
  w.put(static_cast<std::uint32_t>(request.landscape));
  w.put(request.param0);
  w.put(request.param1);
  // The seed only matters for the random landscape; folding it in always
  // would make single-peak requests with cosmetically different seeds miss
  // the cache for the same computation.
  if (request.landscape == LandscapeKind::random) {
    w.put(request.seed);
  }
  w.put(request.p);
  w.put(request.tolerance);
  w.put(request.max_iterations);
  return bytes;
}

std::uint64_t scenario_key(const SolveRequest& request) {
  // FNV-1a is byte-sequential, so hashing the fingerprint is identical to
  // hashing the fields one by one — the key IS the hash of the witness.
  const std::vector<std::uint8_t> bytes = scenario_fingerprint(request);
  std::uint64_t hash = kFnvOffset;
  hash_bytes(hash, bytes.data(), bytes.size());
  return hash;
}

std::uint64_t batch_key(const SolveRequest& request) {
  std::uint64_t hash = kFnvOffset;
  hash_value(hash, request.nu);
  hash_value(hash, request.p);
  return hash;
}

std::string validate(const SolveRequest& request) {
  if (request.nu < 1 || request.nu > kMaxChainLength) {
    return "chain length nu must satisfy 1 <= nu <= " +
           std::to_string(kMaxChainLength);
  }
  if (request.nu > 24) {
    return "service caps nu at 24 (2^nu-sized state per batch column)";
  }
  if (!(request.p > 0.0 && request.p <= 0.5)) {
    return "error rate p must satisfy 0 < p <= 1/2";
  }
  if (!(request.tolerance > 0.0)) {
    return "tolerance must be positive";
  }
  if (request.max_iterations == 0) {
    return "max_iterations must be positive";
  }
  switch (request.landscape) {
    case LandscapeKind::single_peak:
    case LandscapeKind::linear:
      if (!(request.param0 > 0.0 && request.param1 > 0.0)) {
        return "landscape parameters must be positive";
      }
      break;
    case LandscapeKind::random:
      if (!(request.param0 > 0.0 && request.param1 > 0.0 &&
            request.param1 < request.param0 / 2.0)) {
        return "random landscape requires c > 0 and 0 < sigma < c/2";
      }
      break;
    case LandscapeKind::flat:
      if (!(request.param0 > 0.0)) {
        return "flat landscape requires c > 0";
      }
      break;
    default:
      return "unknown landscape kind";
  }
  return {};
}

std::vector<std::uint8_t> encode(const SolveRequest& request) {
  std::vector<std::uint8_t> payload;
  payload.reserve(64);
  Writer w(payload);
  w.put(request.nu);
  w.put(static_cast<std::uint32_t>(request.landscape));
  w.put(request.param0);
  w.put(request.param1);
  w.put(request.seed);
  w.put(request.p);
  w.put(request.tolerance);
  w.put(request.max_iterations);
  w.put(request.deadline_ms);
  w.put(request.trace_id);
  w.put(request.client_send_ns);
  return payload;
}

SolveRequest decode_request(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  SolveRequest request;
  request.nu = r.get<std::uint32_t>("nu");
  const auto kind = r.get<std::uint32_t>("landscape kind");
  if (kind < static_cast<std::uint32_t>(LandscapeKind::single_peak) ||
      kind > static_cast<std::uint32_t>(LandscapeKind::flat)) {
    throw ProtocolError("decode: unknown landscape kind " + std::to_string(kind));
  }
  request.landscape = static_cast<LandscapeKind>(kind);
  request.param0 = r.get<double>("param0");
  request.param1 = r.get<double>("param1");
  request.seed = r.get<std::uint64_t>("seed");
  request.p = r.get<double>("p");
  request.tolerance = r.get<double>("tolerance");
  request.max_iterations = r.get<std::uint64_t>("max_iterations");
  request.deadline_ms = r.get<std::uint64_t>("deadline_ms");
  // Optional trace tail: pre-telemetry encoders end here.
  if (!r.at_end()) {
    request.trace_id = r.get<std::uint64_t>("trace_id");
    request.client_send_ns = r.get<std::uint64_t>("client_send_ns");
  }
  r.expect_end("SolveRequest");
  return request;
}

std::vector<std::uint8_t> encode(const SolveReply& reply) {
  std::vector<std::uint8_t> payload;
  payload.reserve(96 + reply.class_concentrations.size() * sizeof(double) +
                  reply.message.size());
  Writer w(payload);
  w.put(static_cast<std::uint32_t>(reply.status));
  w.put(reply.eigenvalue);
  w.put(reply.residual);
  w.put(reply.iterations);
  w.put(static_cast<std::uint32_t>(reply.cache_hit ? 1 : 0));
  w.put(reply.queue_wait_ms);
  w.put(reply.batch_width);
  w.put(reply.deadline_slack_ms);
  w.put_string(reply.message);
  w.put_doubles(reply.class_concentrations);
  w.put(reply.trace_id);
  return payload;
}

SolveReply decode_reply(const std::vector<std::uint8_t>& payload) {
  Reader r(payload);
  SolveReply reply;
  const auto status = r.get<std::uint32_t>("status");
  if (status > static_cast<std::uint32_t>(StatusCode::internal_error)) {
    throw ProtocolError("decode: unknown status code " + std::to_string(status));
  }
  reply.status = static_cast<StatusCode>(status);
  reply.eigenvalue = r.get<double>("eigenvalue");
  reply.residual = r.get<double>("residual");
  reply.iterations = r.get<std::uint64_t>("iterations");
  reply.cache_hit = r.get<std::uint32_t>("cache_hit") != 0;
  reply.queue_wait_ms = r.get<double>("queue_wait_ms");
  reply.batch_width = r.get<std::uint32_t>("batch_width");
  reply.deadline_slack_ms = r.get<double>("deadline_slack_ms");
  reply.message = r.get_string("message");
  reply.class_concentrations = r.get_doubles("class_concentrations");
  if (!r.at_end()) {
    reply.trace_id = r.get<std::uint64_t>("trace_id");
  }
  r.expect_end("SolveReply");
  return reply;
}

}  // namespace qs::service
