// Solver-service message schema: SolveRequest / SolveReply and their wire
// encodings, plus the two content hashes the service schedules by.
//
// A request names a *scenario* — chain length nu, uniform error rate p, a
// parametric fitness landscape, and the solver tolerances — rather than
// shipping the 2^nu landscape values: the service reconstructs the
// landscape locally (landscape generation is deterministic, including the
// `random` kind via its seed), which keeps frames small and makes the
// scenario content-addressable:
//
//   scenario_key — FNV-1a64 over every field that determines the answer
//                  (nu, landscape kind + params + seed, p, tolerance,
//                  iteration cap).  Cache/dedupe *index* only: a 64-bit
//                  hash is not proof of equality, so every consumer pairs
//                  it with scenario_fingerprint — the canonical bytes the
//                  key hashes — and verifies byte equality before treating
//                  two requests as the same computation.
//   batch_key    — FNV-1a64 over (nu, p) only: requests sharing a mutation
//                  model Q coalesce into one panel batch and ride
//                  analysis::sweep_landscape_family (W_j = Q F_j, one
//                  memory sweep advances the whole batch).
//
// Deadlines travel as relative milliseconds (deadline_ms from server
// receipt) — wall-clock timestamps would couple client and server clocks.
//
// Encodings are little-endian fixed-width fields through a bounds-checked
// Reader: a truncated or corrupted payload throws ProtocolError at the
// offending field, never reads past the buffer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/transport.hpp"

namespace qs::service {

/// Parametric landscape families a request can name.
enum class LandscapeKind : std::uint32_t {
  single_peak = 1,  ///< param0 = peak, param1 = rest
  linear = 2,       ///< param0 = f0, param1 = f_nu
  random = 3,       ///< param0 = c, param1 = sigma, seed = RNG seed
  flat = 4,         ///< param0 = c
};

const char* to_string(LandscapeKind kind);

/// One solve scenario plus its scheduling envelope.
struct SolveRequest {
  std::uint32_t nu = 8;
  LandscapeKind landscape = LandscapeKind::single_peak;
  double param0 = 10.0;
  double param1 = 1.0;
  std::uint64_t seed = 1;  ///< Only meaningful for LandscapeKind::random.
  double p = 0.01;         ///< Uniform error rate of the mutation model.
  double tolerance = 1e-10;
  std::uint64_t max_iterations = 200000;
  std::uint64_t deadline_ms = 0;  ///< Relative to server receipt; 0 = none.

  // Trace context: propagated end-to-end, never part of the scenario —
  // scenario_key/fingerprint and batch_key exclude both fields so tracing
  // can never split or poison cache/dedupe/coalescing decisions.  Both
  // ride an optional frame tail: decoders accept frames without them.
  std::uint64_t trace_id = 0;        ///< 0 = untraced request.
  std::uint64_t client_send_ns = 0;  ///< Client CLOCK_MONOTONIC at send; lets
                                     ///< a same-host server start the request
                                     ///< span at the true send time (0 = not
                                     ///< stamped).
};

/// Outcome classification carried in every reply.  The daemon NEVER answers
/// a failure by dropping the connection: every admitted request gets exactly
/// one reply with one of these codes (that is the fault-injection suite's
/// core assertion).
enum class StatusCode : std::uint32_t {
  ok = 0,
  rejected_overload = 1,  ///< Admission control shed the request; retry later.
  deadline_exceeded = 2,  ///< Expired in queue or cancelled mid-solve.
  cancelled = 3,          ///< Client disconnected; solve aborted cooperatively.
  bad_request = 4,        ///< Malformed or precondition-violating scenario.
  solver_failure = 5,     ///< Structured SolverFailure after recovery attempts.
  shutting_down = 6,      ///< Daemon draining; request not admitted.
  internal_error = 7,     ///< Worker threw; daemon still serving.
};

const char* to_string(StatusCode code);

/// True for codes a client may safely retry against the same daemon (the
/// request was never solved and is side-effect free).
bool retryable(StatusCode code);

/// Reply to one SolveRequest: the eigenpair summary in error-class form plus
/// the per-request service telemetry the ISSUE requires (queue wait, batch
/// width, cache hit, deadline slack).
struct SolveReply {
  StatusCode status = StatusCode::internal_error;
  double eigenvalue = 0.0;
  double residual = 0.0;
  std::uint64_t iterations = 0;
  std::vector<double> class_concentrations;  ///< [Gamma_0..Gamma_nu] when ok.
  std::string message;                       ///< Diagnostic for non-ok codes.

  // Service telemetry, filled for every status.
  bool cache_hit = false;
  double queue_wait_ms = 0.0;     ///< push() to pop_batch() latency.
  std::uint32_t batch_width = 0;  ///< Panel columns solved alongside this one.
  double deadline_slack_ms = 0.0; ///< Deadline minus completion (negative =
                                  ///< missed); 0 when no deadline was set.
  std::uint64_t trace_id = 0;     ///< Echo of the request's trace id.
};

/// FNV-1a64 content hash of everything that determines the answer — the
/// cache/dedupe index.  Equal keys are only *probably* the same
/// computation; confirm with scenario_fingerprint before serving one
/// scenario's answer for another.
std::uint64_t scenario_key(const SolveRequest& request);

/// Canonical little-endian encoding of exactly the fields scenario_key
/// hashes.  Byte equality of fingerprints == identical computation; this is
/// the collision-proof witness stored beside every cache entry and checked
/// on every hit and in-batch dedupe.
std::vector<std::uint8_t> scenario_fingerprint(const SolveRequest& request);

/// FNV-1a64 over (nu, p): requests sharing a mutation model coalesce.
std::uint64_t batch_key(const SolveRequest& request);

/// Validates scenario fields (nu range, p range, positive fitness params).
/// Returns an empty string when valid, else the violated requirement.
std::string validate(const SolveRequest& request);

std::vector<std::uint8_t> encode(const SolveRequest& request);
std::vector<std::uint8_t> encode(const SolveReply& reply);

/// Throws ProtocolError on truncated or out-of-range payloads.
SolveRequest decode_request(const std::vector<std::uint8_t>& payload);
SolveReply decode_reply(const std::vector<std::uint8_t>& payload);

}  // namespace qs::service
