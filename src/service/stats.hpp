// Live-introspection snapshot and text exposition for the solver service.
//
// The STATS frame (FrameType::stats_request) is answered by qs_serve's
// connection threads straight off the service's atomic counters and the
// always-compiled histogram registry — it never enters the admission
// queue, takes no solver lock, and costs the solver path nothing.
//
// The reply payload is a line-oriented text exposition suitable for
// scraping:
//
//   qs_uptime_seconds 42.7
//   qs_queue_total{event="accepted"} 128
//   qs_latency_seconds{op="service.solve",stat="p99"} 0.0182
//
// One `metric{labels} value` per line, `#` comments, floats in C locale —
// the same shape Prometheus scrapers and awk both read.  qs_client
// --stats prints it verbatim; qs_top pretty-prints it.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/request_queue.hpp"
#include "obs/histogram.hpp"
#include "service/scenario_cache.hpp"

namespace qs::service {

/// Point-in-time view of the daemon's counters and latency distributions.
struct ServiceStatsSnapshot {
  double uptime_seconds = 0.0;
  std::uint64_t connections = 0;  ///< Accepted since start (SocketServer).
  std::size_t queue_depth = 0;
  core::QueueStats queue;
  CacheStats cache;
  std::uint64_t completed = 0;
  /// Validated submissions per landscape kind, indexed by kind - 1
  /// (single_peak, linear, random, flat).
  std::array<std::uint64_t, 4> request_mix{};
  std::vector<obs::HistogramSummary> histograms;
};

/// Renders the snapshot as the scrape-format text exposition.
std::string render_stats_text(const ServiceStatsSnapshot& stats);

/// Looks up one metric in exposition text by its full spelling including
/// labels, e.g. `qs_latency_seconds{op="service.solve",stat="p50"}`.
/// Returns nullopt when the metric is absent or its value is not a number.
std::optional<double> stats_value(const std::string& text,
                                  const std::string& metric);

}  // namespace qs::service
