// Aligned plain-text tables for human-readable bench output.
//
// Benches print both a CSV block (machine-readable) and one of these tables
// (eyeball-readable); the table mirrors the rows/series of the paper's
// figures.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace qs {

/// Accumulates rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  /// Sets the column headers; defines the column count.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a data row. Requires cells.size() == column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles in %.4g and appends.
  void add_row_numeric(const std::string& label, const std::vector<double>& values);

  /// Renders the table with a header separator to `out`.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double in scientific-ish short form suitable for tables.
std::string format_short(double value);

}  // namespace qs
