// Bit-level utilities for the binary sequence space {0,1}^nu.
//
// A species X_i is identified with the integer i in [0, 2^nu); bit k of i
// (k = 0 is the least significant bit) is position k of the RNA sequence.
// The Hamming distance between species is the popcount of the XOR of their
// indices, which is the workhorse of every structured algorithm in this
// library.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "support/contracts.hpp"

namespace qs {

/// Sequence index type. 64 bits comfortably covers every chain length whose
/// concentration vector fits in memory (nu <= 40 or so).
using seq_t = std::uint64_t;

/// Maximum chain length for which N = 2^nu fits in a seq_t with headroom.
inline constexpr unsigned kMaxChainLength = 62;

/// Number of sequences N = 2^nu of chain length nu.
constexpr seq_t sequence_count(unsigned nu) {
  return seq_t{1} << nu;
}

/// Hamming weight d_H(i, 0): number of mutated positions relative to the
/// master sequence X_0.
constexpr unsigned hamming_weight(seq_t i) {
  return static_cast<unsigned>(std::popcount(i));
}

/// Hamming distance d_H(i, j) between species X_i and X_j.
constexpr unsigned hamming_distance(seq_t i, seq_t j) {
  return hamming_weight(i ^ j);
}

/// Binary reflected Gray code of i.  Consecutive Gray codes differ in exactly
/// one bit, i.e. d_H(gray(i), gray(i+1)) = 1 (footnote 2 of the paper).
constexpr seq_t gray_code(seq_t i) {
  return i ^ (i >> 1);
}

/// Inverse of gray_code: gray_decode(gray_code(i)) == i.
constexpr seq_t gray_decode(seq_t g) {
  seq_t i = g;
  for (unsigned shift = 1; shift < 64; shift <<= 1) {
    i ^= i >> shift;
  }
  return i;
}

/// True iff n is a power of two (and nonzero).
constexpr bool is_power_of_two(seq_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// log2 of a power of two.
constexpr unsigned log2_exact(seq_t n) {
  return static_cast<unsigned>(std::countr_zero(n));
}

/// Iterates all nu-bit masks of a fixed popcount k in increasing numeric
/// order (Gosper's hack).  Used by the sparsified XOR product Xmvp(d) to
/// enumerate every mutation pattern with exactly k flipped positions.
class FixedWeightMasks {
 public:
  /// Requires 0 <= k <= nu <= kMaxChainLength.
  FixedWeightMasks(unsigned nu, unsigned k) : nu_(nu), k_(k) {
    require(nu <= kMaxChainLength, "chain length nu out of range");
    require(k <= nu, "popcount k must satisfy k <= nu");
  }

  /// Invokes fn(mask) for every nu-bit mask with popcount k.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (k_ == 0) {
      fn(seq_t{0});
      return;
    }
    const seq_t limit = sequence_count(nu_);
    seq_t mask = (seq_t{1} << k_) - 1;  // smallest mask with k bits set
    while (mask < limit) {
      fn(mask);
      // Gosper's hack: next larger integer with the same popcount.
      const seq_t c = mask & (~mask + 1);  // lowest set bit
      const seq_t r = mask + c;
      mask = (((r ^ mask) >> 2) / c) | r;
      if (c == 0) break;  // defensive: cannot occur for mask != 0
    }
  }

  /// Collects all masks into a vector (convenience for tests and setup code).
  std::vector<seq_t> to_vector() const {
    std::vector<seq_t> out;
    for_each([&](seq_t m) { out.push_back(m); });
    return out;
  }

 private:
  unsigned nu_;
  unsigned k_;
};

}  // namespace qs
