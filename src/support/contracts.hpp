// Precondition checking for the public API.
//
// The library validates user-facing inputs (chain lengths, error rates,
// fitness values, dimension agreements) eagerly and throws
// qs::precondition_error so that misuse is diagnosed at the call site
// rather than as NaNs thousands of iterations later.  Hot inner loops do
// not re-validate; validation happens once at object construction or at
// the entry of a top-level solve.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace qs {

/// Thrown when a documented precondition of a public API is violated.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Validates a documented precondition; throws precondition_error on failure.
///
/// `what` should state the violated requirement in terms of the caller's
/// arguments, e.g. "error rate p must satisfy 0 < p <= 1/2".
inline void require(bool condition, const std::string& what,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw precondition_error(std::string(loc.function_name()) + ": " + what);
  }
}

}  // namespace qs
