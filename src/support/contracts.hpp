// Precondition checking for the public API.
//
// The library validates user-facing inputs (chain lengths, error rates,
// fitness values, dimension agreements) eagerly and throws
// qs::precondition_error so that misuse is diagnosed at the call site
// rather than as NaNs thousands of iterations later.  Hot inner loops do
// not re-validate; validation happens once at object construction or at
// the entry of a top-level solve.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace qs {

/// Thrown when a documented precondition of a public API is violated.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Validates a documented precondition; throws precondition_error on failure.
///
/// `what` should state the violated requirement in terms of the caller's
/// arguments, e.g. "error rate p must satisfy 0 < p <= 1/2".
///
/// The literal overload is the hot one: checks inside the butterfly kernels
/// run every matvec, and building the message eagerly (a std::string
/// temporary per call) was measurable allocator traffic on the iteration
/// hot path — the message must only materialise on failure.
inline void require(bool condition, const char* what,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw precondition_error(std::string(loc.function_name()) + ": " + what);
  }
}

/// Overload for call sites that compose the message dynamically (cold paths:
/// the composition itself costs an allocation whether or not the check
/// passes, so keep it out of per-iteration code).
inline void require(bool condition, const std::string& what,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw precondition_error(std::string(loc.function_name()) + ": " + what);
  }
}

}  // namespace qs
