#include "support/alloc_counter.hpp"

#include <atomic>

namespace qs::support {
namespace {

// Relaxed is enough: tests only compare snapshots taken on one thread, and
// the counter is monotone.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

std::uint64_t allocation_count() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

void count_allocation() noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace qs::support
