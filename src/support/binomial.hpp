// Binomial coefficients for error-class cardinalities.
//
// The error class Gamma_k of chain length nu contains C(nu, k) sequences;
// every reduced-problem formula in Section 5.1 of the paper and every
// cumulative-concentration rescaling needs these coefficients.  Exact
// integer values overflow 64 bits beyond nu ~ 61 in the middle of the row,
// so the table also exposes a double-precision variant used for rescaling
// at large nu.
#pragma once

#include <cstdint>
#include <vector>

#include "support/contracts.hpp"

namespace qs {

/// Pascal-triangle row holder for one fixed nu.
class BinomialRow {
 public:
  /// Builds the row C(nu, 0..nu).  Requires nu <= 61 for the exact integer
  /// table; the floating-point accessors work for any nu the constructor
  /// accepts.
  explicit BinomialRow(unsigned nu);

  unsigned nu() const { return nu_; }

  /// C(nu, k) as an exact 64-bit integer. Requires k <= nu.
  std::uint64_t exact(unsigned k) const {
    require(k <= nu_, "binomial index k must satisfy k <= nu");
    return exact_[k];
  }

  /// C(nu, k) in double precision. Requires k <= nu.
  double value(unsigned k) const {
    require(k <= nu_, "binomial index k must satisfy k <= nu");
    return real_[k];
  }

  /// Sum of the row, i.e. 2^nu in double precision.
  double row_sum() const { return row_sum_; }

 private:
  unsigned nu_;
  std::vector<std::uint64_t> exact_;
  std::vector<double> real_;
  double row_sum_;
};

/// C(n, k) in double precision via lgamma; valid for any n, k with k <= n.
double binomial_real(unsigned n, unsigned k);

/// Exact C(n, k) for small arguments (n <= 61). Throws on overflow risk.
std::uint64_t binomial_exact(unsigned n, unsigned k);

}  // namespace qs
