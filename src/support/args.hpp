// Minimal command-line argument parsing for the tools and examples.
//
// Supports --key value and --key=value options plus --flag booleans; keeps
// the library free of external dependencies while giving the CLI tools real
// option handling with validation and error messages.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace qs {

/// Parsed command line: options plus positional arguments.
class ArgParser {
 public:
  /// Parses argv; throws precondition_error on malformed input (an option
  /// without a value at the end of the line).
  ArgParser(int argc, const char* const* argv);

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

  /// True iff --name was present (with or without a value).
  bool has(const std::string& name) const;

  /// String option value, or fallback when absent.
  std::string get(const std::string& name, const std::string& fallback) const;

  /// Numeric option values with range validation; throw precondition_error
  /// on parse failure or range violation.
  double get_double(const std::string& name, double fallback, double lo,
                    double hi) const;
  long get_long(const std::string& name, long fallback, long lo, long hi) const;

  /// Positional (non-option) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of all options that were provided (for unknown-option checks).
  std::vector<std::string> provided_options() const;

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace qs
