// Minimal CSV emission for benchmark series and example outputs.
//
// Figures in the paper are plots; our benches emit the plotted series as CSV
// so they can be re-plotted or diffed.  The writer quotes nothing and
// formats doubles with enough digits to round-trip.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace qs {

/// Streams rows of mixed string/double cells as comma-separated values.
class CsvWriter {
 public:
  /// Writes to `out`, which must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes the header row from column names.
  void header(const std::vector<std::string>& names);

  /// Begins a fresh row; subsequent cell() calls append to it.
  CsvWriter& row();

  /// Appends a string cell to the current row.
  CsvWriter& cell(const std::string& value);

  /// Appends a numeric cell formatted to round-trip precision.
  CsvWriter& cell(double value);

  /// Appends an integral cell.
  CsvWriter& cell(std::size_t value);

  /// Terminates the current row.
  void end_row();

 private:
  void separator();

  std::ostream* out_;
  bool row_open_ = false;
  bool first_cell_ = true;
};

/// Formats a double with round-trip precision (shortest representation that
/// parses back exactly).
std::string format_double(double value);

}  // namespace qs
