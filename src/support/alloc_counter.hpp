// Debug heap-allocation counter for the solver hot paths.
//
// The iteration-driver refactor (ISSUE-4) guarantees that a solver loop
// running through a preallocated core::Workspace performs *zero* heap
// allocations per iteration once its buffers have grown to the working
// size.  This header is the observation point for that guarantee: the
// library itself only ever *reads* the counter, and the counter only moves
// when a translation unit providing counting `operator new` overrides is
// linked in (tests/alloc_hooks.cpp in the test binary).  Production builds
// link no hooks, the counter stays at zero, and the cost is nothing.
#pragma once

#include <cstdint>

namespace qs::support {

/// Number of heap allocations observed since process start.  Always 0
/// unless the counting allocation hooks are linked into the binary.
std::uint64_t allocation_count() noexcept;

/// Bumps the counter.  Called by the counting `operator new` overrides;
/// never call it from library code.
void count_allocation() noexcept;

}  // namespace qs::support
