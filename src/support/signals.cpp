#include "support/signals.hpp"

#include <csignal>

namespace qs {
namespace {

// sig_atomic_t is the only type the standard guarantees a handler may
// write; volatile keeps the polling loop honest without needing atomics
// in the handler itself.
volatile std::sig_atomic_t g_signal = 0;

extern "C" void handle_shutdown_signal(int signum) {
  g_signal = signum;
  // One signal asks nicely; the next one should work even if the drain
  // wedged.  Re-arming the default disposition makes a repeated Ctrl-C /
  // kill terminate immediately.
  std::signal(signum, SIG_DFL);
}

}  // namespace

void install_shutdown_handlers() {
  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);
}

void ignore_sigpipe() { std::signal(SIGPIPE, SIG_IGN); }

bool shutdown_requested() { return g_signal != 0; }

int shutdown_signal() { return static_cast<int>(g_signal); }

void clear_shutdown_request() {
  g_signal = 0;
  install_shutdown_handlers();
}

}  // namespace qs
