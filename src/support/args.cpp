#include "support/args.hpp"

#include <cstdlib>

#include "support/contracts.hpp"

namespace qs {

ArgParser::ArgParser(int argc, const char* const* argv) {
  require(argc >= 1, "ArgParser: argc must be >= 1");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself an option;
    // otherwise a bare flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::string ArgParser::get(const std::string& name, const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

double ArgParser::get_double(const std::string& name, double fallback, double lo,
                             double hi) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  require(end != nullptr && *end == '\0' && !it->second.empty(),
          "option --" + name + " expects a number, got '" + it->second + "'");
  require(value >= lo && value <= hi, "option --" + name + " out of range");
  return value;
}

long ArgParser::get_long(const std::string& name, long fallback, long lo,
                         long hi) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  require(end != nullptr && *end == '\0' && !it->second.empty(),
          "option --" + name + " expects an integer, got '" + it->second + "'");
  require(value >= lo && value <= hi, "option --" + name + " out of range");
  return value;
}

std::vector<std::string> ArgParser::provided_options() const {
  std::vector<std::string> names;
  names.reserve(options_.size());
  for (const auto& [name, value] : options_) names.push_back(name);
  return names;
}

}  // namespace qs
