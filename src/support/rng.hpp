// Deterministic pseudo-random number generation.
//
// Random fitness landscapes (Eq. 13 of the paper) and property-test inputs
// must be reproducible across runs and platforms, so the library carries its
// own small generator instead of depending on the unspecified distribution
// algorithms of <random>.  xoshiro256** (Blackman & Vigna) seeded through
// SplitMix64 is the de-facto standard choice: tiny state, excellent
// statistical quality, and a strict output specification.
#pragma once

#include <array>
#include <cstdint>

namespace qs {

/// SplitMix64 — used solely to expand a single 64-bit seed into generator
/// state that is free of the all-zeros pathologies of xorshift families.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0.  Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  /// modulo bias (relevant for property tests drawing sequence indices).
  constexpr std::uint64_t uniform_index(std::uint64_t n) {
    const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Advances the state by 2^128 steps (the canonical xoshiro256** jump
  /// polynomial) without generating the intermediate outputs.  Starting
  /// from one seed and jumping r times yields stream r of a family of
  /// non-overlapping subsequences, each 2^128 draws long — the standard
  /// way to hand every simulation replica its own statistically
  /// independent stream that is reproducible no matter how replicas are
  /// scheduled across threads.
  constexpr void jump() {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (std::uint64_t{1} << b)) {
          s0 ^= state_[0];
          s1 ^= state_[1];
          s2 ^= state_[2];
          s3 ^= state_[3];
        }
        (*this)();
      }
    }
    state_ = {s0, s1, s2, s3};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Stream `index` of the family rooted at `seed`: seed, then jump() applied
/// `index` times.  Streams are 2^128 draws apart, so replicas using
/// consecutive indices never overlap.  O(index) jump applications — build
/// streams incrementally (jump a running generator) when creating many.
constexpr Xoshiro256 jumped_stream(std::uint64_t seed, std::uint64_t index) {
  Xoshiro256 rng(seed);
  for (std::uint64_t i = 0; i < index; ++i) rng.jump();
  return rng;
}

}  // namespace qs
