#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "support/contracts.hpp"

namespace qs {

std::string format_short(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.4g", value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_numeric(const std::string& label, const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_short(v));
  add_row(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace qs
