// Wall-clock and CPU-time measurement for benches, solvers, and the
// observability layer.
//
// Two clocks, exposed both as raw nanosecond counters (the span clock of
// src/obs/) and through the Timer stopwatch:
//
//   * monotonic_ns()  — steady wall clock, never steps backwards;
//   * thread_cpu_ns() — CPU time consumed by the *calling thread*
//     (CLOCK_THREAD_CPUTIME_ID on POSIX; a coarse process-clock fallback
//     elsewhere).  wall >> cpu means the thread was waiting (barrier,
//     I/O), wall ≈ cpu means it was computing — the per-span pair is what
//     separates barrier cost from kernel cost in a trace.
//
// best_of_seconds() is the one benchmark timing idiom (best-of-N wall
// time); bench/bench_common.hpp and transforms/plan_autotune.cpp both
// delegate to it instead of rolling their own chrono loops.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__unix__) || defined(__linux__) || defined(__APPLE__)
#include <time.h>
#define QS_HAVE_THREAD_CPUTIME 1
#else
#include <ctime>
#define QS_HAVE_THREAD_CPUTIME 0
#endif

namespace qs {

/// Steady wall clock in nanoseconds since an arbitrary epoch.
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// CPU time consumed by the calling thread, in nanoseconds.  Falls back to
/// process CPU time (std::clock) on platforms without a thread CPU clock.
inline std::uint64_t thread_cpu_ns() {
#if QS_HAVE_THREAD_CPUTIME
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return static_cast<std::uint64_t>(std::clock()) *
         (1000000000ull / CLOCKS_PER_SEC);
#endif
}

/// Monotonic wall-clock + thread-CPU stopwatch.
class Timer {
 public:
  Timer() { reset(); }

  /// Restarts the stopwatch (both clocks).
  void reset() {
    start_ns_ = monotonic_ns();
    cpu_start_ns_ = thread_cpu_ns();
  }

  /// Elapsed wall-clock seconds since construction or the last reset().
  double seconds() const {
    return static_cast<double>(monotonic_ns() - start_ns_) * 1e-9;
  }

  /// CPU seconds this thread consumed since construction or the last
  /// reset().  For a single-threaded busy loop cpu_seconds() ~ seconds();
  /// a gap means the thread was blocked or descheduled.
  double cpu_seconds() const {
    return static_cast<double>(thread_cpu_ns() - cpu_start_ns_) * 1e-9;
  }

 private:
  std::uint64_t start_ns_ = 0;
  std::uint64_t cpu_start_ns_ = 0;
};

/// Best-of-`reps` wall-clock seconds of fn() (best-of suppresses scheduler
/// noise; kernels with no warm-up effects beyond first touch absorb it in
/// the first rep).  Requires reps >= 1.
template <typename Fn>
double best_of_seconds(unsigned reps, Fn&& fn) {
  double best = 1e300;
  for (unsigned r = 0; r < reps; ++r) {
    Timer t;
    fn();
    const double s = t.seconds();
    if (s < best) best = s;
  }
  return best;
}

}  // namespace qs
