// Wall-clock timing for the benchmark harness.
#pragma once

#include <chrono>

namespace qs {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace qs
