#include "support/binomial.hpp"

#include <cmath>

namespace qs {

BinomialRow::BinomialRow(unsigned nu) : nu_(nu) {
  require(nu <= 61, "exact binomial table limited to nu <= 61");
  exact_.assign(nu + 1, 0);
  real_.assign(nu + 1, 0.0);
  exact_[0] = 1;
  for (unsigned k = 1; k <= nu; ++k) {
    // Multiply-then-divide stays exact because C(nu, k-1) * (nu-k+1) is
    // always divisible by k at this point of the recurrence.
    exact_[k] = exact_[k - 1] * (nu - k + 1) / k;
  }
  row_sum_ = 0.0;
  for (unsigned k = 0; k <= nu; ++k) {
    real_[k] = static_cast<double>(exact_[k]);
    row_sum_ += real_[k];
  }
}

double binomial_real(unsigned n, unsigned k) {
  require(k <= n, "binomial index k must satisfy k <= n");
  if (k == 0 || k == n) return 1.0;
  return std::exp(std::lgamma(static_cast<double>(n) + 1.0) -
                  std::lgamma(static_cast<double>(k) + 1.0) -
                  std::lgamma(static_cast<double>(n - k) + 1.0));
}

std::uint64_t binomial_exact(unsigned n, unsigned k) {
  require(k <= n, "binomial index k must satisfy k <= n");
  require(n <= 61, "exact binomial limited to n <= 61");
  std::uint64_t c = 1;
  for (unsigned i = 1; i <= k; ++i) {
    c = c * (n - i + 1) / i;
  }
  return c;
}

}  // namespace qs
