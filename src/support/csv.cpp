#include "support/csv.hpp"

#include <charconv>

namespace qs {

std::string format_double(double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;  // to_chars cannot fail for doubles into a 64-byte buffer
  return std::string(buf, ptr);
}

void CsvWriter::header(const std::vector<std::string>& names) {
  row();
  for (const auto& n : names) cell(n);
  end_row();
}

CsvWriter& CsvWriter::row() {
  row_open_ = true;
  first_cell_ = true;
  return *this;
}

void CsvWriter::separator() {
  if (!first_cell_) *out_ << ',';
  first_cell_ = false;
}

CsvWriter& CsvWriter::cell(const std::string& value) {
  separator();
  *out_ << value;
  return *this;
}

CsvWriter& CsvWriter::cell(double value) {
  separator();
  *out_ << format_double(value);
  return *this;
}

CsvWriter& CsvWriter::cell(std::size_t value) {
  separator();
  *out_ << value;
  return *this;
}

void CsvWriter::end_row() {
  *out_ << '\n';
  row_open_ = false;
  first_cell_ = true;
}

}  // namespace qs
