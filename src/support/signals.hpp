// Cooperative shutdown on SIGINT/SIGTERM.
//
// The handler does the only async-signal-safe thing possible: it sets a
// flag.  Long-running code polls shutdown_requested() at its natural
// boundaries (an iteration, a generation, an accept timeout) and winds
// down on its own terms — flushing a final checkpoint, draining a queue —
// instead of dying mid-write.  A second signal restores the default
// disposition first, so a stuck process can still be killed with a second
// Ctrl-C.
#pragma once

namespace qs {

/// Installs SIGINT and SIGTERM handlers that set the shutdown flag.
/// Idempotent; call once near the top of main().
void install_shutdown_handlers();

/// Ignores SIGPIPE process-wide so writing to a peer that already hung up
/// fails with EPIPE (a catchable error on the one affected connection)
/// instead of terminating the process.  Idempotent; any long-lived process
/// that writes to sockets or pipes it does not control should call this.
void ignore_sigpipe();

/// True once any handled signal arrived.  Safe to poll from any thread.
bool shutdown_requested();

/// Which signal arrived (SIGINT/SIGTERM), or 0 if none yet.
int shutdown_signal();

/// Resets the flag — for tests and for tools that handle one interruption
/// and keep going.
void clear_shutdown_request();

}  // namespace qs
