#include "stochastic/moran.hpp"

#include "stochastic/sampling.hpp"
#include "support/contracts.hpp"

namespace qs::stochastic {

Moran::Moran(core::MutationModel model, const core::Landscape& landscape,
             std::uint64_t seed)
    : Moran(std::move(model), landscape, Xoshiro256(seed)) {}

Moran::Moran(core::MutationModel model, const core::Landscape& landscape,
             Xoshiro256 stream)
    : model_(std::move(model)), landscape_(&landscape), rng_(stream) {
  require(model_.dimension() == landscape.dimension(),
          "Moran: model and landscape dimensions differ");
  require(model_.kind() != core::MutationKind::grouped,
          "Moran: offspring mutation requires a per-site (2x2-factor) model");
}

seq_t Moran::mutate_offspring(seq_t parent) {
  // Independent per-site mutation: position k flips with the probability
  // encoded in its column-stochastic factor.
  const auto& sites = model_.site_factors();
  seq_t child = parent;
  for (unsigned k = 0; k < model_.nu(); ++k) {
    const bool bit = (parent >> k) & 1;
    // P(flip | current state) is the off-diagonal entry of the state's
    // column: m10 when the bit is 0, m01 when it is 1.
    const double flip = bit ? sites[k].m01 : sites[k].m10;
    if (rng_.uniform() < flip) child ^= (seq_t{1} << k);
  }
  return child;
}

void Moran::event(Population& population) {
  require(population.nu() == model_.nu(), "Moran: population nu mismatch");
  require(population.size() > 0, "Moran: empty population");
  auto counts = population.counts();
  const auto f = landscape_->values();

  // Birth: parent ~ fitness-weighted counts.
  weight_scratch_.resize(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    weight_scratch_[i] = f[i] * static_cast<double>(counts[i]);
  }
  const seq_t parent = categorical_sample(rng_, weight_scratch_);
  const seq_t child = mutate_offspring(parent);

  // Death: uniform over individuals.
  const std::uint64_t victim_index = rng_.uniform_index(population.size());
  std::uint64_t cumulative = 0;
  seq_t victim = 0;
  for (seq_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (victim_index < cumulative) {
      victim = i;
      break;
    }
  }

  ++counts[child];
  --counts[victim];
}

void Moran::run(Population& population, std::uint64_t events) {
  for (std::uint64_t e = 0; e < events; ++e) event(population);
}

}  // namespace qs::stochastic
