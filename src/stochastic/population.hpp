// Finite population state over the sequence space.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/bits.hpp"

namespace qs::stochastic {

/// A population of individuals distributed over the 2^nu species.
class Population {
 public:
  /// Empty population of chain length nu. Requires nu small enough to hold
  /// a dense count vector (nu <= 24 guards accidental huge allocations).
  Population(unsigned nu, std::uint64_t size);

  /// All `size` individuals on the master sequence X_0.
  static Population monomorphic(unsigned nu, std::uint64_t size);

  /// Individuals spread as evenly as possible over all species.
  static Population uniform(unsigned nu, std::uint64_t size);

  unsigned nu() const { return nu_; }
  std::uint64_t size() const { return size_; }
  seq_t species_count() const { return sequence_count(nu_); }

  std::span<const std::uint64_t> counts() const { return counts_; }
  std::span<std::uint64_t> counts() { return counts_; }

  /// Recomputes and stores the total population size from the counts (call
  /// after editing counts() directly).
  void refresh_size();

  /// Relative frequencies x_i = n_i / N_pop.
  std::vector<double> frequencies() const;

  /// Number of species with at least one individual.
  std::size_t occupied_species() const;

 private:
  unsigned nu_;
  std::uint64_t size_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace qs::stochastic
