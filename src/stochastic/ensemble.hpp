// Panel-batched finite-population replica ensemble.
//
// One Wright-Fisher replica costs Theta(N log2 N) per generation — the
// expected-offspring distribution pi = Q (f .* n) rides on the fast
// mutation matrix product — but a single replica says nothing about the
// *distribution* of finite-N outcomes (Dixit & Srivastava's finite
// population model; Cerf & Dalmau's quasispecies distribution).  Estimating
// that distribution takes ensembles of R independent replicas, and R
// sequential mat-vecs per generation are memory-bound: each one streams the
// whole 2^nu vector from DRAM for ~4 flops per double per band.
//
// This engine batches the R expected-offspring products of one generation
// through the multi-vector panel Fmmp path (transforms/panel_butterfly) in
// m-column interleaved panels: the panel kernel advances all m replicas
// through a level band in ONE sweep over memory, through the SIMD
// microkernels, amortising the DRAM traffic m-fold.  Everything around the
// panel product — packing counts, sanitising the per-replica
// distributions, the multinomial resampling draws — fans out across the
// execution engine's lanes.
//
// Reproducibility contract: replica r draws from stream r of a seed-jumped
// Xoshiro256 family (Xoshiro256::jump, streams 2^128 draws apart), work is
// partitioned over replicas/indices in a schedule-independent way, and all
// per-column reductions accumulate in a FIXED order (serial index order or
// fixed-size block partials reduced in block order) that never depends on
// the engine's chunking — so for a fixed seed the ensemble trajectory is
// BIT-IDENTICAL across backends (serial / OpenMP / thread pool) and thread
// counts.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/fmmp.hpp"
#include "core/landscape.hpp"
#include "core/mutation_model.hpp"
#include "parallel/engine.hpp"
#include "stochastic/moran.hpp"
#include "stochastic/population.hpp"
#include "support/rng.hpp"
#include "transforms/blocked_butterfly.hpp"

namespace qs::stochastic {

/// Widest supported interleaved panel (bounds a stack scratch array in the
/// fused unpack/normalise sweep).
inline constexpr std::size_t kMaxPanelWidth = 64;

/// Which finite-population process every replica runs.
enum class EnsembleProcess {
  wright_fisher,  ///< non-overlapping generations, panel-batched mat-vecs
  moran,          ///< N_pop birth-death events per generation, replica fan-out
};

struct EnsembleOptions {
  std::size_t replicas = 8;
  std::uint64_t population_size = 10000;
  EnsembleProcess process = EnsembleProcess::wright_fisher;

  /// Columns per interleaved panel (m of apply_panel).  8 matches the
  /// AVX-512 microkernel width; the replica count need not be a multiple
  /// (the final chunk runs narrower).
  std::size_t panel_width = 8;

  /// Root seed of the per-replica jumped RNG streams.
  std::uint64_t seed = 1;

  /// Start every replica uniform over species instead of monomorphic on
  /// the master sequence.
  bool start_uniform = false;

  /// Tiling plan for the banded/panel Fmmp kernels.
  transforms::BlockedPlan plan{};
};

/// Cross-replica summary of the time-averaged species frequencies.
struct EnsembleStatistics {
  std::size_t replicas = 0;
  std::vector<double> mean;      ///< ensemble mean frequency per species
  std::vector<double> variance;  ///< unbiased cross-replica variance per species
  std::vector<double> class_mean;  ///< error classes [Gamma_k] of `mean`
  double master_mean = 0.0;  ///< mean over replicas of per-replica [Gamma_0]
  double master_std = 0.0;   ///< cross-replica std of [Gamma_0] (smearing width)
  double mean_fitness = 0.0;  ///< landscape mean fitness of `mean`
};

/// R independent finite-population replicas advanced in lockstep, their
/// per-generation mutation products batched through the panel Fmmp path.
class ReplicaEnsemble {
 public:
  /// `model` is copied; `landscape` is referenced and must outlive the
  /// ensemble.  `engine` (nullptr = the serial engine) must outlive the
  /// ensemble; it carries both the panel kernels and the replica fan-out.
  /// The Moran process requires a 2x2-factor mutation kind.
  ReplicaEnsemble(core::MutationModel model, const core::Landscape& landscape,
                  const EnsembleOptions& options,
                  const parallel::Engine* engine = nullptr);

  std::size_t replicas() const { return populations_.size(); }
  unsigned nu() const { return model_.nu(); }
  const EnsembleOptions& options() const { return options_; }
  const parallel::Engine& engine() const { return *engine_; }
  const Population& population(std::size_t r) const;

  /// Computes the expected next-generation distribution of every replica
  /// into expected() — the mutation phase of a Wright-Fisher generation,
  /// and the phase the panel batching accelerates.  `batched` selects the
  /// m-column panel path; false runs the reference per-replica
  /// single-vector products (same math, same backend — the baseline the
  /// ensemble bench compares against).  Wright-Fisher only.
  void compute_expected(bool batched);

  /// Expected distribution of replica r from the last compute_expected.
  std::span<const double> expected(std::size_t r) const;

  /// Resamples every replica's population multinomially from expected(),
  /// fanned out across the engine with per-replica RNG streams.
  /// Wright-Fisher only; population sizes are conserved exactly.
  void resample();

  /// One generation for all replicas: panel-batched expected-offspring +
  /// resampling for Wright-Fisher, N_pop birth-death events per replica
  /// for Moran.
  void step();

  /// One generation through the sequential per-replica reference path
  /// (Wright-Fisher; for Moran this is identical to step()).
  void step_sequential();

  /// Runs `generations` steps, time-averaging each replica's frequency
  /// vector over the last `average_window` generations (0 = keep only the
  /// final state), then makes the averages available via replica_average()
  /// / statistics().  `should_stop` (optional) is polled at every
  /// generation boundary; returning true ends the run early with
  /// cancelled() = true — the averages over the generations completed so
  /// far stay valid, so an interrupted run still reports statistics.
  void run(std::uint64_t generations, std::uint64_t average_window,
           bool batched = true, const std::function<bool()>& should_stop = {});

  /// Generations the last run() completed (== requested unless cancelled).
  std::uint64_t generations_completed() const { return generations_completed_; }

  /// True when the last run() was ended early by its should_stop hook.
  bool cancelled() const { return cancelled_; }

  /// Time-averaged frequencies of replica r from the last run().
  std::span<const double> replica_average(std::size_t r) const;

  /// Cross-replica statistics of the last run()'s time averages.
  EnsembleStatistics statistics() const;

  /// Records the ensemble configuration and `stats` into the process-wide
  /// obs::metrics() recorder (ensemble.* keys).
  void record_metrics(const EnsembleStatistics& stats) const;

 private:
  void step_moran();

  core::MutationModel model_;
  const core::Landscape* landscape_;
  EnsembleOptions options_;
  const parallel::Engine* engine_;
  core::FmmpOperator op_;

  std::vector<Population> populations_;
  std::vector<Xoshiro256> rngs_;  // Wright-Fisher resampling streams
  std::vector<Moran> morans_;     // Moran replicas (own the same streams)

  std::vector<std::vector<double>> expected_;  // R x N
  std::vector<double> panel_;                  // N x panel_width scratch
  std::vector<double> block_sums_;             // fixed-block normaliser partials
  std::vector<std::vector<double>> averages_;  // R x N time averages
  bool have_averages_ = false;
  std::uint64_t generations_completed_ = 0;
  bool cancelled_ = false;
};

}  // namespace qs::stochastic
