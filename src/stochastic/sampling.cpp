#include "stochastic/sampling.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace qs::stochastic {

std::uint64_t binomial_sample(Xoshiro256& rng, std::uint64_t n, double prob) {
  require(prob >= 0.0 && prob <= 1.0, "binomial_sample: prob must be in [0, 1]");
  if (n == 0 || prob == 0.0) return 0;
  if (prob == 1.0) return n;

  // Work with p <= 1/2 and mirror at the end (keeps both branches stable).
  const bool mirrored = prob > 0.5;
  const double p = mirrored ? 1.0 - prob : prob;
  const double np = static_cast<double>(n) * p;

  std::uint64_t k;
  if (np < 30.0) {
    // Inverse-CDF walk over the PMF recurrence
    // P(k+1) = P(k) * (n-k)/(k+1) * p/(1-p).
    const double ratio = p / (1.0 - p);
    double pmf = std::pow(1.0 - p, static_cast<double>(n));  // P(0)
    double cdf = pmf;
    double u = rng.uniform();
    k = 0;
    while (u > cdf && k < n) {
      pmf *= static_cast<double>(n - k) / static_cast<double>(k + 1) * ratio;
      cdf += pmf;
      ++k;
      if (pmf < 1e-300 && cdf >= 1.0 - 1e-12) break;  // numerical tail guard
    }
  } else {
    // Normal approximation with continuity correction; npq >= 15 here, so
    // the approximation error is negligible next to sampling noise.
    const double mean = np;
    const double stddev = std::sqrt(np * (1.0 - p));
    // Box-Muller from two uniforms.
    const double u1 = std::max(rng.uniform(), 1e-300);
    const double u2 = rng.uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double value = std::round(mean + stddev * z);
    k = static_cast<std::uint64_t>(std::clamp(value, 0.0, static_cast<double>(n)));
  }
  return mirrored ? n - k : k;
}

std::vector<std::uint64_t> multinomial_sample(Xoshiro256& rng, std::uint64_t n,
                                              std::span<const double> probabilities) {
  require(!probabilities.empty(), "multinomial_sample: empty probability vector");
  double total = 0.0;
  for (double p : probabilities) {
    require(p >= 0.0, "multinomial_sample: probabilities must be nonnegative");
    total += p;
  }
  require(std::abs(total - 1.0) < 1e-6,
          "multinomial_sample: probabilities must sum to 1");

  // Conditional-binomial decomposition: category i receives
  // Bin(remaining, p_i / remaining_mass).
  std::vector<std::uint64_t> counts(probabilities.size(), 0);
  std::uint64_t remaining = n;
  double remaining_mass = total;
  for (std::size_t i = 0; i + 1 < probabilities.size() && remaining > 0; ++i) {
    if (probabilities[i] <= 0.0) continue;
    const double conditional =
        std::clamp(probabilities[i] / remaining_mass, 0.0, 1.0);
    counts[i] = binomial_sample(rng, remaining, conditional);
    remaining -= counts[i];
    remaining_mass -= probabilities[i];
    if (remaining_mass <= 0.0) break;
  }
  counts.back() += remaining;  // last category absorbs the remainder
  return counts;
}

std::size_t categorical_sample(Xoshiro256& rng, std::span<const double> weights) {
  require(!weights.empty(), "categorical_sample: empty weight vector");
  double total = 0.0;
  for (double w : weights) {
    require(w >= 0.0, "categorical_sample: weights must be nonnegative");
    total += w;
  }
  require(total > 0.0, "categorical_sample: all weights are zero");
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;  // rounding fall-through
}

}  // namespace qs::stochastic
